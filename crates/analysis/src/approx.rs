//! The over-approximate analysis (§3.2 of the paper).
//!
//! To analyze one occurrence of counting, every *other* occurrence `r{m,n}`
//! is relaxed to `r*`. The relaxation only adds paths to the token
//! transition system, so if the relaxed automaton is counter-unambiguous,
//! the original is too; if the relaxed automaton is ambiguous the result is
//! *inconclusive*. The payoff (Example 3.4): the relaxed automaton carries a
//! single counter, so the product exploration shrinks from Θ(n²) token
//! pairs to Θ(n).

use crate::exact::{analyze_nca, ExactConfig, StopPolicy};
use crate::stats::{AnalysisStats, Verdict};
use recama_nca::Nca;
use recama_syntax::{normalize_for_nca, Regex, RepeatId, RepeatRewrite};

/// Relaxes every counting occurrence except `keep` to `body*`.
///
/// # Examples
///
/// ```
/// use recama_analysis::relax_except;
/// use recama_syntax::{parse, RepeatId};
/// let r = parse("a{2,3}b{4,5}").unwrap().regex;
/// assert_eq!(relax_except(&r, RepeatId(0)).to_string(), "a{2,3}b*");
/// assert_eq!(relax_except(&r, RepeatId(1)).to_string(), "a*b{4,5}");
/// ```
pub fn relax_except(regex: &Regex, keep: RepeatId) -> Regex {
    regex.rewrite_repeats(&mut |id| {
        if id == keep {
            RepeatRewrite::Keep
        } else {
            RepeatRewrite::Star
        }
    })
}

/// Runs the over-approximate analysis for occurrence `occ` of `regex`
/// (occurrence ids refer to [`Regex::repeats`] of the given regex).
///
/// Returns [`Verdict::Unambiguous`] (a proof) or [`Verdict::Unknown`]
/// (inconclusive — the relaxed automaton was ambiguous or the pair budget
/// ran out), plus exploration statistics.
pub fn approx_occurrence(regex: &Regex, occ: RepeatId, max_pairs: u64) -> (Verdict, AnalysisStats) {
    let relaxed = relax_except(regex, occ);
    let normalized = normalize_for_nca(&relaxed);
    let nca = crate::glushkov_build(&normalized);
    let result = analyze_nca(
        &nca,
        &ExactConfig {
            max_pairs,
            witness: false,
            stop: StopPolicy::FirstAmbiguity,
        },
    );
    let verdict = match result.nca_ambiguous() {
        Some(false) => Verdict::Unambiguous,
        // Ambiguity of the over-approximation proves nothing about the
        // original — and a blown budget proves nothing either.
        Some(true) | None => Verdict::Unknown,
    };
    (verdict, result.stats)
}

/// Like [`approx_occurrence`], but returns the relaxed automaton too
/// (used by tests and diagnostics).
pub fn approx_occurrence_nca(regex: &Regex, occ: RepeatId) -> Nca {
    crate::glushkov_build(&normalize_for_nca(&relax_except(regex, occ)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use recama_syntax::parse;

    fn ast(p: &str) -> Regex {
        parse(p).unwrap().regex
    }

    const BUDGET: u64 = 1_000_000;

    #[test]
    fn example_3_4_both_occurrences_proven() {
        // Σ*(σ̄1σ1{n} + σ̄2σ2{n}) with overlapping σ1, σ2 — the exact
        // analysis needs Θ(n²) pairs, the approximation Θ(n) per
        // occurrence, and both occurrences are unambiguous.
        let r = ast(".*([^ac][ac]{6}|[^bc][bc]{6})");
        let (v0, s0) = approx_occurrence(&r, RepeatId(0), BUDGET);
        let (v1, s1) = approx_occurrence(&r, RepeatId(1), BUDGET);
        assert_eq!(v0, Verdict::Unambiguous);
        assert_eq!(v1, Verdict::Unambiguous);
        // Each relaxed exploration is linear-ish in n, far below n².
        assert!(s0.pairs_created < 200, "pairs {}", s0.pairs_created);
        assert!(s1.pairs_created < 200, "pairs {}", s1.pairs_created);
    }

    #[test]
    fn ambiguous_occurrence_is_inconclusive() {
        let r = ast(".*a{4}");
        let (v, _) = approx_occurrence(&r, RepeatId(0), BUDGET);
        assert_eq!(v, Verdict::Unknown);
    }

    #[test]
    fn soundness_on_small_zoo() {
        // Whenever approx says Unambiguous, exact must agree.
        for p in [
            ".*[^a]a{4}",
            "a{3}b{4}",
            ".*a{3}",
            ".*(ab){2,4}",
            "a{2,3}.*b{2,3}",
            ".*([^a]a{3}|[^b]b{3})",
            "(a{2,4}|b{3})c",
        ] {
            let r = ast(p);
            for info in r.repeats() {
                let (approx_v, _) = approx_occurrence(&r, info.id, BUDGET);
                if approx_v == Verdict::Unambiguous {
                    let exact = crate::check_occurrence(
                        &r,
                        info.id,
                        crate::Method::Exact,
                        &crate::CheckConfig::default(),
                    );
                    assert_eq!(
                        exact.verdict,
                        Verdict::Unambiguous,
                        "approx claimed unambiguous but exact disagrees: {p} occurrence {:?}",
                        info.id
                    );
                }
            }
        }
    }

    #[test]
    fn relaxation_is_linear_not_quadratic() {
        // Exact pairs grow ~n²; approx pairs grow ~n on the Example 3.4
        // family.
        let small = ast(".*([^ac][ac]{8}|[^bc][bc]{8})");
        let large = ast(".*([^ac][ac]{32}|[^bc][bc]{32})");
        let (_, s_small) = approx_occurrence(&small, RepeatId(0), BUDGET);
        let (_, s_large) = approx_occurrence(&large, RepeatId(0), BUDGET);
        let ratio = s_large.pairs_created as f64 / s_small.pairs_created as f64;
        assert!(
            ratio < 8.0,
            "approx should scale ~linearly: {} -> {} ({ratio:.1}x)",
            s_small.pairs_created,
            s_large.pairs_created
        );
    }
}
