//! The counter-ambiguity checker (§3.3): exact, approximate, hybrid, and
//! hybrid-with-witness analysis variants over regexes — the four columns of
//! Fig. 2 of the paper.
//!
//! The hybrid strategy follows the paper exactly: check each counting
//! occurrence with the over-approximation; on the first inconclusive
//! occurrence, abandon the approximation and run the exact algorithm on the
//! whole regex; otherwise declare the regex counter-unambiguous.

use crate::approx::approx_occurrence;
use crate::exact::{analyze_nca, ExactConfig, NcaAnalysis, StopPolicy};
use crate::stats::{AnalysisStats, Verdict};
use recama_syntax::{normalize_for_nca, simplify, Regex, RepeatId};

/// Analysis variant (the E/A/H/HW columns of Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Exact product exploration of the full automaton.
    Exact,
    /// Over-approximate analysis of every occurrence (never proves
    /// ambiguity — inconclusive results stay [`Verdict::Unknown`]).
    Approximate,
    /// Approximate first; exact fallback on the first inconclusive
    /// occurrence (the production configuration).
    Hybrid,
    /// Hybrid, additionally reconstructing a witness string on ambiguity.
    HybridWitness,
}

/// Checker configuration.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Token-pair budget per product exploration.
    pub max_pairs: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_pairs: 2_000_000,
        }
    }
}

/// Verdict for one counting occurrence of the (simplified) regex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccurrenceVerdict {
    /// Occurrence id in `simplify(regex).repeats()` numbering.
    pub id: RepeatId,
    /// Lower bound m.
    pub min: u32,
    /// Upper bound n (`None` for `{m,}`).
    pub max: Option<u32>,
    /// The verdict.
    pub verdict: Verdict,
}

/// Result of checking one regex.
#[derive(Debug, Clone)]
pub struct RegexCheck {
    /// Regex-level verdict: `Some(true)` = counter-ambiguous, `Some(false)`
    /// = counter-unambiguous, `None` = unknown (budget exhausted, or the
    /// approximate method was inconclusive).
    pub ambiguous: Option<bool>,
    /// Witness input exhibiting two tokens on one state (HybridWitness on
    /// ambiguous regexes).
    pub witness: Option<Vec<u8>>,
    /// Per-occurrence verdicts where the method produced them.
    pub occurrences: Vec<OccurrenceVerdict>,
    /// Aggregated exploration statistics.
    pub stats: AnalysisStats,
}

/// Result of checking a single occurrence (see [`check_occurrence`]).
#[derive(Debug, Clone)]
pub struct OccurrenceCheck {
    /// The verdict.
    pub verdict: Verdict,
    /// Witness for ambiguity, when available.
    pub witness: Option<Vec<u8>>,
    /// Exploration statistics.
    pub stats: AnalysisStats,
}

/// Checks a regex for counter-ambiguity with the chosen method.
///
/// Occurrence ids in the result refer to `simplify(regex)` (the checker
/// always simplifies first, mirroring the compiler front end).
///
/// # Examples
///
/// ```
/// use recama_analysis::{check, CheckConfig, Method};
/// let r = recama_syntax::parse(".*a{8}").unwrap().regex;
/// let res = check(&r, Method::Hybrid, &CheckConfig::default());
/// assert_eq!(res.ambiguous, Some(true));
///
/// let r = recama_syntax::parse(".*[^a]a{8}").unwrap().regex;
/// let res = check(&r, Method::Hybrid, &CheckConfig::default());
/// assert_eq!(res.ambiguous, Some(false));
/// ```
pub fn check(regex: &Regex, method: Method, config: &CheckConfig) -> RegexCheck {
    let simplified = simplify(regex);
    let occ_infos = simplified.repeats();
    if occ_infos.is_empty() {
        return RegexCheck {
            ambiguous: Some(false),
            witness: None,
            occurrences: Vec::new(),
            stats: AnalysisStats::default(),
        };
    }
    let mut stats = AnalysisStats::default();
    let mut occurrences: Vec<OccurrenceVerdict> = occ_infos
        .iter()
        .map(|i| OccurrenceVerdict {
            id: i.id,
            min: i.min,
            max: i.max,
            verdict: Verdict::Unknown,
        })
        .collect();

    match method {
        Method::Exact => {
            let analysis = exact_whole(&simplified, config, false, &mut stats);
            let ambiguous = analysis.nca_ambiguous();
            fill_from_exact(&simplified, &analysis, &mut occurrences);
            RegexCheck {
                ambiguous,
                witness: None,
                occurrences,
                stats,
            }
        }
        Method::Approximate => {
            let mut all_proven = true;
            for occ in occurrences.iter_mut() {
                let (v, s) = approx_occurrence(&simplified, occ.id, config.max_pairs);
                stats += s;
                occ.verdict = v;
                all_proven &= v == Verdict::Unambiguous;
            }
            let ambiguous = if all_proven { Some(false) } else { None };
            RegexCheck {
                ambiguous,
                witness: None,
                occurrences,
                stats,
            }
        }
        Method::Hybrid | Method::HybridWitness => {
            let want_witness = method == Method::HybridWitness;
            let mut inconclusive = false;
            for occ in occurrences.iter_mut() {
                let (v, s) = approx_occurrence(&simplified, occ.id, config.max_pairs);
                stats += s;
                occ.verdict = v;
                if v != Verdict::Unambiguous {
                    inconclusive = true;
                    break; // halt the approximate pass (paper §3.3)
                }
            }
            if !inconclusive {
                return RegexCheck {
                    ambiguous: Some(false),
                    witness: None,
                    occurrences,
                    stats,
                };
            }
            let analysis = exact_whole(&simplified, config, want_witness, &mut stats);
            let ambiguous = analysis.nca_ambiguous();
            let witness = analysis.witness.clone();
            fill_from_exact(&simplified, &analysis, &mut occurrences);
            RegexCheck {
                ambiguous,
                witness,
                occurrences,
                stats,
            }
        }
    }
}

fn exact_whole(
    simplified: &Regex,
    config: &CheckConfig,
    witness: bool,
    stats: &mut AnalysisStats,
) -> NcaAnalysis {
    let normalized = normalize_for_nca(simplified);
    let nca = crate::glushkov_build(&normalized);
    let analysis = analyze_nca(
        &nca,
        &ExactConfig {
            max_pairs: config.max_pairs,
            witness,
            stop: StopPolicy::FullClassification,
        },
    );
    *stats += analysis.stats;
    analysis
}

/// Upgrades occurrence verdicts from the exact whole-regex analysis when the
/// normalization is *occurrence-stable* (the normalized regex has the same
/// counting occurrences in the same preorder — true unless a nullable
/// repetition body forced an ε-stripping rewrite that duplicated
/// occurrences).
fn fill_from_exact(
    simplified: &Regex,
    analysis: &NcaAnalysis,
    occurrences: &mut [OccurrenceVerdict],
) {
    let normalized = normalize_for_nca(simplified);
    let norm_occs = normalized.repeats();
    if norm_occs.len() != occurrences.len() {
        // Unstable mapping: leave the approximate verdicts in place and
        // upgrade only via the regex-level answer below.
        if analysis.nca_ambiguous() == Some(false) {
            for occ in occurrences.iter_mut() {
                occ.verdict = Verdict::Unambiguous;
            }
        }
        return;
    }
    debug_assert_eq!(analysis.ambiguous_counters.len(), norm_occs.len());
    for (k, occ) in occurrences.iter_mut().enumerate() {
        if analysis.ambiguous_counters[k] {
            occ.verdict = Verdict::Ambiguous;
        } else if analysis.complete {
            occ.verdict = Verdict::Unambiguous;
        }
    }
}

/// Checks a single counting occurrence of `regex` (ids refer to
/// `simplify(regex).repeats()`).
///
/// The exact method isolates the occurrence by *unfolding* every other
/// occurrence — a language-preserving rewrite — so the verdict is exact even
/// when occurrence provenance through normalization is ambiguous.
///
/// # Panics
///
/// Panics if `occ` is out of range for the simplified regex.
pub fn check_occurrence(
    regex: &Regex,
    occ: RepeatId,
    method: Method,
    config: &CheckConfig,
) -> OccurrenceCheck {
    let simplified = simplify(regex);
    let n_occs = simplified.repeats().len();
    assert!(
        occ.0 < n_occs,
        "occurrence {occ} out of range (regex has {n_occs})"
    );
    let mut stats = AnalysisStats::default();

    if matches!(
        method,
        Method::Approximate | Method::Hybrid | Method::HybridWitness
    ) {
        let (v, s) = approx_occurrence(&simplified, occ, config.max_pairs);
        stats += s;
        if v == Verdict::Unambiguous || method == Method::Approximate {
            return OccurrenceCheck {
                verdict: v,
                witness: None,
                stats,
            };
        }
    }

    // Exact, isolated: unfold every other occurrence.
    let isolated = unfold_except(&simplified, occ);
    let normalized = normalize_for_nca(&isolated);
    let nca = crate::glushkov_build(&normalized);
    let analysis = analyze_nca(
        &nca,
        &ExactConfig {
            max_pairs: config.max_pairs,
            witness: method == Method::HybridWitness,
            stop: StopPolicy::FirstAmbiguity,
        },
    );
    stats += analysis.stats;
    let verdict = match analysis.nca_ambiguous() {
        Some(true) => Verdict::Ambiguous,
        Some(false) => Verdict::Unambiguous,
        None => Verdict::Unknown,
    };
    OccurrenceCheck {
        verdict,
        witness: analysis.witness,
        stats,
    }
}

/// Unfolds every counting occurrence except `keep` (language-preserving).
fn unfold_except(regex: &Regex, keep: RepeatId) -> Regex {
    fn walk(r: &Regex, next: &mut usize, keep: RepeatId) -> Regex {
        match r {
            Regex::Empty | Regex::Void | Regex::Class(_) => r.clone(),
            Regex::Concat(parts) => {
                Regex::concat(parts.iter().map(|p| walk(p, next, keep)).collect())
            }
            Regex::Alt(parts) => Regex::alt(parts.iter().map(|p| walk(p, next, keep)).collect()),
            Regex::Star(inner) => Regex::star(walk(inner, next, keep)),
            Regex::Repeat { inner, min, max } => {
                if Regex::is_plain_iteration(*min, *max) {
                    return Regex::Repeat {
                        inner: Box::new(walk(inner, next, keep)),
                        min: *min,
                        max: *max,
                    };
                }
                let id = RepeatId(*next);
                *next += 1;
                let body = walk(inner, next, keep);
                if id == keep {
                    Regex::Repeat {
                        inner: Box::new(body),
                        min: *min,
                        max: *max,
                    }
                } else {
                    recama_nca::unfold_one(body, *min, *max)
                }
            }
        }
    }
    let mut next = 0;
    walk(regex, &mut next, keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recama_syntax::parse;

    fn ast(p: &str) -> Regex {
        parse(p).unwrap().regex
    }

    fn cfg() -> CheckConfig {
        CheckConfig::default()
    }

    #[test]
    fn all_methods_agree_on_simple_cases() {
        let cases = [
            (".*a{4}", Some(true)),
            (".*[^a]a{4}", Some(false)),
            ("a{3}b{4}", Some(false)),
            (".*([^a]a{4}|[^b]b{4})", Some(false)),
            ("abc", Some(false)),
        ];
        for (p, expected) in cases {
            let r = ast(p);
            for m in [Method::Exact, Method::Hybrid, Method::HybridWitness] {
                let res = check(&r, m, &cfg());
                assert_eq!(res.ambiguous, expected, "{p} with {m:?}");
            }
            // Approximate can only prove unambiguity.
            let res = check(&r, Method::Approximate, &cfg());
            match expected {
                Some(false) => assert_eq!(res.ambiguous, Some(false), "{p} approx"),
                _ => assert_eq!(res.ambiguous, None, "{p} approx"),
            }
        }
    }

    #[test]
    fn hybrid_avoids_exact_on_easy_regexes() {
        // Example 3.4 family (overlapping classes, so the exact product is
        // quadratic): hybrid should finish with only the linear approximate
        // explorations.
        let r = ast(".*([^ac][ac]{100}|[^bc][bc]{100})");
        let hybrid = check(&r, Method::Hybrid, &cfg());
        let exact = check(&r, Method::Exact, &cfg());
        assert_eq!(hybrid.ambiguous, Some(false));
        assert_eq!(exact.ambiguous, Some(false));
        assert!(
            hybrid.stats.pairs_created * 5 < exact.stats.pairs_created,
            "hybrid {} pairs vs exact {} pairs",
            hybrid.stats.pairs_created,
            exact.stats.pairs_created
        );
    }

    #[test]
    fn per_occurrence_verdicts() {
        // σ1{m}Σ*σ2{n}: occurrence 0 unambiguous, occurrence 1 ambiguous.
        let r = ast("a{3}.*b{3}");
        let res = check(&r, Method::Exact, &cfg());
        assert_eq!(res.ambiguous, Some(true));
        assert_eq!(res.occurrences.len(), 2);
        assert_eq!(res.occurrences[0].verdict, Verdict::Unambiguous);
        assert_eq!(res.occurrences[1].verdict, Verdict::Ambiguous);
        // The dedicated per-occurrence checker agrees.
        let o0 = check_occurrence(&r, RepeatId(0), Method::Exact, &cfg());
        let o1 = check_occurrence(&r, RepeatId(1), Method::Exact, &cfg());
        assert_eq!(o0.verdict, Verdict::Unambiguous);
        assert_eq!(o1.verdict, Verdict::Ambiguous);
    }

    #[test]
    fn witness_replay_exhibits_ambiguity() {
        let r = ast(".*a{2,5}");
        let res = check(&r, Method::HybridWitness, &cfg());
        assert_eq!(res.ambiguous, Some(true));
        let w = res.witness.expect("witness for ambiguous regex");
        let nca = crate::glushkov_build(&normalize_for_nca(&simplify(&r)));
        let mut eng = recama_nca::TokenSetEngine::new(&nca);
        use recama_nca::Engine;
        eng.matches(&w);
        assert!(
            eng.observed_degree() >= 2,
            "witness {w:?} failed to show two tokens"
        );
    }

    #[test]
    fn no_counting_is_trivially_unambiguous() {
        let res = check(&ast("ab*c+"), Method::Hybrid, &cfg());
        assert_eq!(res.ambiguous, Some(false));
        assert!(res.occurrences.is_empty());
        assert_eq!(res.stats.pairs_created, 0);
    }

    #[test]
    fn unfold_except_keeps_only_target() {
        let r = ast("a{2}b{3}c{2,4}");
        let iso = unfold_except(&r, RepeatId(1));
        assert_eq!(iso.repeats().len(), 1);
        assert_eq!(iso.to_string(), "aab{3}ccc?c?");
    }

    #[test]
    fn budget_yields_unknown() {
        let r = ast(".*[^a]a{200}");
        let res = check(&r, Method::Exact, &CheckConfig { max_pairs: 50 });
        assert_eq!(res.ambiguous, None);
        assert!(res.stats.budget_exhausted);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn occurrence_bounds_checked() {
        let _ = check_occurrence(&ast("a{2,3}"), RepeatId(7), Method::Exact, &cfg());
    }
}
