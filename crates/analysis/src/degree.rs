//! Counter-ambiguity *degree* beyond 2 (Definition 3.1, general case).
//!
//! §3.1 notes that a state q has `degree(q) ≥ d` iff the d-fold product
//! `Gᵈ` of the token transition system reaches a tuple
//! `⟨(q,β₁),…,(q,β_d)⟩` with pairwise-distinct valuations. The binary case
//! (d = 2) is the counter-ambiguity check of [`crate::analyze_nca`]; this
//! module explores `Gᵈ` lazily for arbitrary small d — the tool the paper
//! uses conceptually to justify sizing bit vectors at the full range
//! `M` of counter values (a state of `Σ*σ{n}` has degree exactly n).

use crate::stats::AnalysisStats;
use recama_nca::{Nca, Prepared, StateId, Token};
use recama_syntax::ByteClass;
use std::collections::{HashSet, VecDeque};
use std::time::Instant;

/// Result of a degree query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeAnalysis {
    /// The queried state.
    pub state: StateId,
    /// The queried degree d.
    pub degree: usize,
    /// `Some(true)`: a witness tuple was reached; `Some(false)`: the full
    /// d-fold product was exhausted without one; `None`: budget exceeded.
    pub reached: Option<bool>,
    /// Exploration statistics (pairs = tuples here).
    pub stats: AnalysisStats,
}

/// Decides whether `degree(state) ≥ d` by lazy BFS over sorted d-tuples of
/// tokens (the canonical representatives of `Gᵈ` modulo permutation).
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn degree_at_least(nca: &Nca, state: StateId, d: usize, max_tuples: u64) -> DegreeAnalysis {
    assert!(d >= 1, "degree queries start at 1");
    let start_time = Instant::now();
    let prepared = Prepared::new(nca);
    let mut stats = AnalysisStats {
        explorations: 1,
        ..Default::default()
    };

    let init: Vec<Token> = vec![Token::initial(); d];
    let mut visited: HashSet<Vec<Token>> = HashSet::new();
    let mut queue: VecDeque<Vec<Token>> = VecDeque::new();
    visited.insert(init.clone());
    stats.pairs_created += 1;
    queue.push_back(init);

    let witnesses = |tuple: &[Token]| -> bool {
        tuple.iter().all(|t| t.state == state)
            && (0..tuple.len())
                .all(|i| (i + 1..tuple.len()).all(|j| tuple[i].values != tuple[j].values))
    };

    // Degree ≥ 1 just asks for reachability of the state.
    let mut reached = Some(false);
    'bfs: while let Some(tuple) = queue.pop_front() {
        if witnesses(&tuple) {
            reached = Some(true);
            break;
        }
        // Successor tuples: product of the component successor lists with a
        // nonempty intersection of the symbol classes.
        let succs: Vec<Vec<(ByteClass, Token)>> = tuple
            .iter()
            .map(|t| {
                let mut v = Vec::new();
                prepared.for_each_symbolic_successor(t, |_, class, tok| v.push((*class, tok)));
                v
            })
            .collect();
        let mut choice = vec![0usize; d];
        'combos: loop {
            // Evaluate the current combination.
            let mut class = ByteClass::ANY;
            let mut next: Vec<Token> = Vec::with_capacity(d);
            let mut ok = true;
            for (k, options) in succs.iter().enumerate() {
                match options.get(choice[k]) {
                    Some((c, t)) => {
                        class = class.intersect(c);
                        if class.is_empty() {
                            ok = false;
                        }
                        next.push(t.clone());
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            stats.edges_traversed += 1;
            if ok && !class.is_empty() {
                next.sort();
                if visited.insert(next.clone()) {
                    stats.pairs_created += 1;
                    if witnesses(&next) {
                        reached = Some(true);
                        break 'bfs;
                    }
                    if stats.pairs_created >= max_tuples {
                        reached = None;
                        stats.budget_exhausted = true;
                        break 'bfs;
                    }
                    queue.push_back(next);
                }
            }
            // Advance the mixed-radix counter over successor choices.
            let mut k = 0;
            loop {
                if k == d {
                    break 'combos;
                }
                choice[k] += 1;
                if choice[k] < succs[k].len() {
                    break;
                }
                choice[k] = 0;
                k += 1;
            }
        }
    }
    stats.duration = start_time.elapsed();
    DegreeAnalysis {
        state,
        degree: d,
        reached,
        stats,
    }
}

/// The exact degree of `state`, up to `cap`: the largest d ≤ cap with
/// `degree ≥ d` (0 = unreachable). `None` if any query blew the budget.
pub fn degree(nca: &Nca, state: StateId, cap: usize, max_tuples: u64) -> Option<usize> {
    let mut best = 0;
    for d in 1..=cap {
        match degree_at_least(nca, state, d, max_tuples).reached {
            Some(true) => best = d,
            Some(false) => return Some(best),
            None => return None,
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recama_syntax::parse;

    fn nca(p: &str) -> Nca {
        Nca::from_regex(&parse(p).unwrap().regex)
    }

    fn counted_state(a: &Nca) -> StateId {
        (0..a.state_count())
            .map(|i| StateId(i as u32))
            .find(|&q| !a.state(q).is_pure())
            .expect("counted state")
    }

    const BUDGET: u64 = 300_000;

    #[test]
    fn sigma_star_counting_has_degree_n() {
        // Σ*a{n}: the counting state can hold tokens 1..n simultaneously.
        let a = nca(".*a{4}");
        let q = counted_state(&a);
        assert_eq!(degree(&a, q, 6, BUDGET), Some(4));
    }

    #[test]
    fn anchored_counting_has_degree_one() {
        let a = nca("a{5}b");
        let q = counted_state(&a);
        assert_eq!(degree(&a, q, 3, BUDGET), Some(1));
    }

    #[test]
    fn unreachable_state_has_degree_zero() {
        // Build an automaton where a branch is unreachable by predicate:
        // alternation arm behind an empty-intersection is still reachable
        // here, so test q0-reachability semantics instead: q0 always
        // reachable with one token (degree 1).
        let a = nca("ab");
        let r = degree_at_least(&a, StateId::INIT, 1, BUDGET);
        assert_eq!(r.reached, Some(true));
        let r = degree_at_least(&a, StateId::INIT, 2, BUDGET);
        assert_eq!(r.reached, Some(false), "q0 is pure: only one token fits");
    }

    #[test]
    fn degree_2_matches_ambiguity_analysis() {
        for p in [".*a{3}", "a{3}b", ".*[^a]a{3}", ".*a[ab]{2}b"] {
            let a = nca(p);
            let analysis = crate::analyze_nca(&a, &crate::ExactConfig::default());
            for i in 0..a.state_count() {
                let q = StateId(i as u32);
                if a.state(q).is_pure() {
                    continue;
                }
                let deg2 = degree_at_least(&a, q, 2, BUDGET);
                assert_eq!(
                    deg2.reached,
                    Some(analysis.ambiguous_states[i]),
                    "{p}: state {q}"
                );
            }
        }
    }

    #[test]
    fn budget_reports_none() {
        let a = nca(".*a{64}");
        let q = counted_state(&a);
        let r = degree_at_least(&a, q, 3, 5);
        assert_eq!(r.reached, None);
        assert!(r.stats.budget_exhausted);
    }

    #[test]
    fn bounded_window_limits_degree() {
        // Σ*[^a]a{n}: runs are unique → degree 1 despite Σ* prefix.
        let a = nca(".*[^a]a{6}");
        let q = counted_state(&a);
        assert_eq!(degree(&a, q, 3, BUDGET), Some(1));
    }
}
