//! The exact counter-ambiguity analysis (§3.1 of the paper).
//!
//! A state q is counter-ambiguous iff the product `G² = G × G` of the token
//! transition system contains a reachable pair `⟨(q,β), (q,β′)⟩` with
//! `β ≠ β′`. We explore `G²` lazily by BFS over canonically ordered token
//! pairs; edges are kept symbolic — a product edge exists when the two
//! predicate classes intersect (`σ₁ ∩ σ₂ ≠ ∅`), which also yields a concrete
//! witness byte (`min(σ₁ ∩ σ₂)`). Symmetric pairs are identified, halving
//! the space, exactly as Example 3.2 notes.

use crate::stats::AnalysisStats;
use recama_nca::{Nca, Prepared, StateId, Token};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

/// When the exploration may stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopPolicy {
    /// Stop at the first ambiguity witness (whole-regex yes/no check).
    FirstAmbiguity,
    /// Explore until every counted state is classified (or the space is
    /// exhausted) — needed to hand per-state verdicts to the compiler.
    FullClassification,
}

/// Configuration of the product exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExactConfig {
    /// Budget on created token pairs; exceeded ⇒ `complete = false`
    /// (the NP-hard worst case of Lemma 3.3 degrades gracefully).
    pub max_pairs: u64,
    /// Record parent pointers and reconstruct a witness string for the
    /// first ambiguity found (the "HW" analysis variant of Fig. 2).
    pub witness: bool,
    /// Stop policy.
    pub stop: StopPolicy,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_pairs: 2_000_000,
            witness: false,
            stop: StopPolicy::FullClassification,
        }
    }
}

/// Result of the exact analysis of one NCA.
#[derive(Debug, Clone)]
pub struct NcaAnalysis {
    /// Per-state ambiguity flag (indexed by `StateId`); meaningful as a
    /// *proof of unambiguity* only when `complete` is true.
    pub ambiguous_states: Vec<bool>,
    /// Per-counter ambiguity flag: counter c is flagged when two tokens on
    /// one state disagree on c's value — the paper's Definition 3.1
    /// attribution, used for reporting (Table 1).
    pub ambiguous_counters: Vec<bool>,
    /// Per-counter *block-level* ambiguity: counter c is flagged when two
    /// tokens on any (possibly different) states carrying c disagree on its
    /// value. A single hardware counter register per module is faithful iff
    /// the counter is block-unambiguous; for single-state repetition bodies
    /// (`σ{m,n}`) this coincides with `ambiguous_counters`, but for
    /// multi-state bodies staggered entries can desynchronize token values
    /// without ever colliding on one state. The compiler selects counter
    /// modules with this stronger test.
    pub block_ambiguous_counters: Vec<bool>,
    /// Whether the exploration ran to completion (not budget-cut and not
    /// stopped at the first witness with counters left unclassified).
    pub complete: bool,
    /// A string witnessing the first ambiguity found, when requested.
    pub witness: Option<Vec<u8>>,
    /// Exploration counters.
    pub stats: AnalysisStats,
}

impl NcaAnalysis {
    /// Regex-level verdict: `Some(true)` if an ambiguity was found,
    /// `Some(false)` if the full space was explored without one, `None` if
    /// the budget cut the exploration short.
    pub fn nca_ambiguous(&self) -> Option<bool> {
        if self.ambiguous_counters.iter().any(|&b| b) {
            Some(true)
        } else if self.complete {
            Some(false)
        } else {
            None
        }
    }

    /// Whether state `q` is *proven* counter-unambiguous, i.e. safe for a
    /// single counter-register (`SingleValue`) in the compiled engine and
    /// for a counter module in hardware.
    pub fn state_unambiguous(&self, q: StateId) -> bool {
        self.complete && !self.ambiguous_states[q.index()]
    }
}

/// Runs the exact product-system analysis on `nca`.
///
/// # Examples
///
/// ```
/// use recama_analysis::{analyze_nca, ExactConfig};
/// use recama_nca::Nca;
///
/// // Σ*σ{2} (Example 3.2): counter-ambiguous.
/// let nca = Nca::from_regex(&recama_syntax::parse(".*a{2}").unwrap().regex);
/// let result = analyze_nca(&nca, &ExactConfig::default());
/// assert_eq!(result.nca_ambiguous(), Some(true));
///
/// // σ{2} anchored: counter-unambiguous.
/// let nca = Nca::from_regex(&recama_syntax::parse("a{2}").unwrap().regex);
/// let result = analyze_nca(&nca, &ExactConfig::default());
/// assert_eq!(result.nca_ambiguous(), Some(false));
/// ```
pub fn analyze_nca(nca: &Nca, config: &ExactConfig) -> NcaAnalysis {
    let start_time = Instant::now();
    let prepared = Prepared::new(nca);

    let counted_states: Vec<StateId> = (0..nca.state_count())
        .map(|i| StateId(i as u32))
        .filter(|&q| !nca.state(q).is_pure())
        .collect();
    let mut ambiguous_states = vec![false; nca.state_count()];
    let mut ambiguous_counters = vec![false; nca.counters().len()];
    let mut block_ambiguous_counters = vec![false; nca.counters().len()];

    let mut visited: HashSet<(Token, Token)> = HashSet::new();
    let mut parents: HashMap<(Token, Token), ((Token, Token), u8)> = HashMap::new();
    let mut queue: VecDeque<(Token, Token)> = VecDeque::new();
    let mut stats = AnalysisStats {
        explorations: 1,
        ..AnalysisStats::default()
    };

    let init = (Token::initial(), Token::initial());
    visited.insert(init.clone());
    stats.pairs_created += 1;
    queue.push_back(init);

    let mut complete = true;
    let mut witness: Option<Vec<u8>> = None;
    let mut first_witness_pair: Option<(Token, Token)> = None;

    // Nothing to classify? (No counters, e.g. after full unfolding.)
    let all_classified =
        |states: &[bool], counters: &[bool], block: &[bool], counted: &[StateId]| {
            counted.iter().all(|q| states[q.index()])
                && counters.iter().all(|&b| b)
                && block.iter().all(|&b| b)
        };
    let nothing_to_classify = counted_states.is_empty();

    'bfs: while let Some(pair) = queue.pop_front() {
        if nothing_to_classify {
            break;
        }
        // Symbolic successors of each component.
        let mut succ1: Vec<(recama_syntax::ByteClass, Token)> = Vec::new();
        prepared.for_each_symbolic_successor(&pair.0, |_, class, tok| succ1.push((*class, tok)));
        let diagonal = pair.0 == pair.1;
        let succ2: Vec<(recama_syntax::ByteClass, Token)> = if diagonal {
            succ1.clone()
        } else {
            let mut v = Vec::new();
            prepared.for_each_symbolic_successor(&pair.1, |_, class, tok| v.push((*class, tok)));
            v
        };

        for (c1, t1) in &succ1 {
            for (c2, t2) in &succ2 {
                stats.edges_traversed += 1;
                let inter = c1.intersect(c2);
                if inter.is_empty() {
                    continue;
                }
                let key = if t1 <= t2 {
                    (t1.clone(), t2.clone())
                } else {
                    (t2.clone(), t1.clone())
                };
                if !visited.insert(key.clone()) {
                    continue;
                }
                stats.pairs_created += 1;
                if config.witness {
                    let byte = inter.min_byte().expect("nonempty intersection");
                    parents.insert(key.clone(), (pair.clone(), byte));
                }
                // Ambiguity (Definition 3.1): same state, different valuation.
                let same_state_ambiguous =
                    key.0.state == key.1.state && key.0.values != key.1.values;
                if same_state_ambiguous {
                    let q = key.0.state;
                    ambiguous_states[q.index()] = true;
                    let state = nca.state(q);
                    for (slot, (&a, &b)) in key.0.values.iter().zip(&key.1.values).enumerate() {
                        if a != b {
                            ambiguous_counters[state.counters[slot].index()] = true;
                        }
                    }
                }
                // Block-level ambiguity: two tokens share a counter (on any
                // pair of states) but disagree on its value.
                if key.0 != key.1 {
                    let s0 = nca.state(key.0.state);
                    let s1 = nca.state(key.1.state);
                    for (slot0, c) in s0.counters.iter().enumerate() {
                        if let Some(slot1) = s1.slot(*c) {
                            if key.0.values[slot0] != key.1.values[slot1] {
                                block_ambiguous_counters[c.index()] = true;
                            }
                        }
                    }
                }
                if same_state_ambiguous {
                    if first_witness_pair.is_none() {
                        first_witness_pair = Some(key.clone());
                    }
                    match config.stop {
                        StopPolicy::FirstAmbiguity => {
                            // `complete` stays true conceptually for the
                            // regex-level question, but per-state verdicts
                            // are not exhaustive — record that.
                            complete = false;
                            break 'bfs;
                        }
                        StopPolicy::FullClassification => {
                            if all_classified(
                                &ambiguous_states,
                                &ambiguous_counters,
                                &block_ambiguous_counters,
                                &counted_states,
                            ) {
                                break 'bfs;
                            }
                        }
                    }
                }
                if stats.pairs_created >= config.max_pairs {
                    complete = false;
                    stats.budget_exhausted = true;
                    break 'bfs;
                }
                queue.push_back(key);
            }
        }
    }

    if config.witness {
        if let Some(found) = &first_witness_pair {
            witness = Some(reconstruct_witness(&parents, found));
        }
    }

    stats.duration = start_time.elapsed();
    NcaAnalysis {
        ambiguous_states,
        ambiguous_counters,
        block_ambiguous_counters,
        complete,
        witness,
        stats,
    }
}

/// Predecessor links of the pair exploration: child pair -> (parent pair,
/// input byte), enough to replay the path from the initial pair.
type ParentLinks = HashMap<(Token, Token), ((Token, Token), u8)>;

fn reconstruct_witness(parents: &ParentLinks, found: &(Token, Token)) -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut cur = found.clone();
    while let Some((parent, byte)) = parents.get(&cur) {
        bytes.push(*byte);
        cur = parent.clone();
    }
    bytes.reverse();
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use recama_nca::{Engine, TokenSetEngine};
    use recama_syntax::parse;

    fn nca(p: &str) -> Nca {
        Nca::from_regex(&parse(p).unwrap().regex)
    }

    fn verdict(p: &str) -> Option<bool> {
        analyze_nca(&nca(p), &ExactConfig::default()).nca_ambiguous()
    }

    #[test]
    fn paper_example_3_2() {
        // Σ*σ{2} is counter-ambiguous.
        assert_eq!(verdict(".*a{2}"), Some(true));
    }

    #[test]
    fn anchored_counting_is_unambiguous() {
        assert_eq!(verdict("a{5}"), Some(false));
        assert_eq!(verdict("a{2,7}b"), Some(false));
        assert_eq!(verdict("(ab){3,4}"), Some(false));
    }

    #[test]
    fn example_2_2_r1_is_ambiguous() {
        // Σ*σ1σ2{n} with σ2 ⊇ σ1-overlap: .*[ab][^a]{3} — after the first
        // [ab] match, new attempts can start while counting: ambiguous.
        assert_eq!(verdict(".*[ab][^a]{3}"), Some(true));
    }

    #[test]
    fn guarded_prefix_makes_unambiguous() {
        // Σ*σ̄σ{n}: a new attempt can only start after a non-σ byte, which
        // kills all counting tokens — the Example 3.4 shape (one branch).
        assert_eq!(verdict(".*[^a]a{4}"), Some(false));
    }

    #[test]
    fn example_3_4_two_branches_unambiguous() {
        assert_eq!(verdict(".*([^a]a{3}|[^b]b{3})"), Some(false));
    }

    #[test]
    fn r3_mixed_verdicts_per_counter() {
        // σ1{m}Σ*σ2{n}: first occurrence unambiguous, second ambiguous.
        let a = nca("a{3}.*b{2}");
        let res = analyze_nca(&a, &ExactConfig::default());
        assert_eq!(res.nca_ambiguous(), Some(true));
        assert_eq!(res.ambiguous_counters, vec![false, true]);
    }

    #[test]
    fn per_state_verdicts_match_dynamic_degree() {
        // For several regexes, a state the analysis proves unambiguous must
        // never dynamically hold 2 tokens (checked on exhaustive inputs).
        for p in [".*a{2}", "a{3}.*b{2}", ".*[^a]a{3}", "(a|b){2,3}b"] {
            let a = nca(p);
            let res = analyze_nca(&a, &ExactConfig::default());
            if !res.complete {
                continue;
            }
            let mut eng = TokenSetEngine::new(&a);
            let mut queue: Vec<Vec<u8>> = vec![vec![]];
            while let Some(w) = queue.pop() {
                eng.reset();
                eng.matches(&w);
                if w.len() < 6 {
                    for &c in b"ab" {
                        let mut w2 = w.clone();
                        w2.push(c);
                        queue.push(w2);
                    }
                }
            }
            // Dynamic degree ≥ 2 must imply some state flagged ambiguous.
            let any_flagged = res.ambiguous_states.iter().any(|&b| b);
            let mut e2 = TokenSetEngine::new(&a);
            let mut max_deg = 0;
            let mut queue: Vec<Vec<u8>> = vec![vec![]];
            while let Some(w) = queue.pop() {
                e2.matches(&w);
                max_deg = max_deg.max(e2.observed_degree());
                if w.len() < 6 {
                    for &c in b"ab" {
                        let mut w2 = w.clone();
                        w2.push(c);
                        queue.push(w2);
                    }
                }
            }
            if max_deg >= 2 {
                assert!(
                    any_flagged,
                    "{p}: dynamic degree {max_deg} but no state flagged"
                );
            } else {
                assert!(
                    !any_flagged,
                    "{p}: flagged ambiguous but degree stayed {max_deg}"
                );
            }
        }
    }

    #[test]
    fn witness_is_valid() {
        let a = nca(".*a{3}");
        let res = analyze_nca(
            &a,
            &ExactConfig {
                witness: true,
                stop: StopPolicy::FirstAmbiguity,
                ..Default::default()
            },
        );
        let w = res.witness.expect("ambiguous regex must yield witness");
        // Replaying the witness must put ≥ 2 tokens on some state.
        let mut eng = TokenSetEngine::new(&a);
        eng.matches(&w);
        assert!(
            eng.observed_degree() >= 2,
            "witness {w:?} does not exhibit ambiguity"
        );
    }

    #[test]
    fn budget_degrades_gracefully() {
        let a = nca(".*[^a]a{100}");
        let res = analyze_nca(
            &a,
            &ExactConfig {
                max_pairs: 10,
                ..Default::default()
            },
        );
        assert!(!res.complete);
        assert!(res.stats.budget_exhausted);
        assert_eq!(res.nca_ambiguous(), None);
        // Unambiguity must never be claimed for any state when incomplete.
        for i in 0..a.state_count() {
            if !a.state(StateId(i as u32)).is_pure() {
                assert!(!res.state_unambiguous(StateId(i as u32)));
            }
        }
    }

    #[test]
    fn counter_free_automaton_is_trivially_unambiguous() {
        let a = nca("ab*c");
        let res = analyze_nca(&a, &ExactConfig::default());
        assert_eq!(res.nca_ambiguous(), Some(false));
        assert_eq!(res.stats.pairs_created, 1); // just the initial pair
    }

    #[test]
    fn ambiguity_halts_exploration_early() {
        // The exact analysis halts at the first witness (§3.1), so an
        // obviously ambiguous regex explores few pairs regardless of n.
        let small = analyze_nca(&nca(".*a{8}"), &ExactConfig::default());
        let large = analyze_nca(&nca(".*a{64}"), &ExactConfig::default());
        assert_eq!(small.nca_ambiguous(), Some(true));
        assert_eq!(large.nca_ambiguous(), Some(true));
        assert!(large.stats.pairs_created <= small.stats.pairs_created * 4);
    }

    #[test]
    fn pair_counts_scale_quadratically_on_two_overlapping_branches() {
        // Σ*(σ̄1σ1{n} + σ̄2σ2{n}) with σ1 ∩ σ2 ≠ ∅ (Example 3.4): proving
        // unambiguity explores Θ(n²) cross-branch token pairs, because a
        // token counting [ac]-runs and a token counting [bc]-runs coexist
        // with independently drifting values on shared 'c' input.
        let shape = |n: u32| format!(".*([^ac][ac]{{{n}}}|[^bc][bc]{{{n}}})");
        let small = analyze_nca(&nca(&shape(8)), &ExactConfig::default());
        let large = analyze_nca(&nca(&shape(32)), &ExactConfig::default());
        assert_eq!(small.nca_ambiguous(), Some(false));
        assert_eq!(large.nca_ambiguous(), Some(false));
        let ratio = large.stats.pairs_created as f64 / small.stats.pairs_created as f64;
        assert!(
            (8.0..=40.0).contains(&ratio),
            "expected ~16x pair growth, got {ratio:.1} ({} -> {})",
            small.stats.pairs_created,
            large.stats.pairs_created
        );
    }
}

#[cfg(test)]
mod block_tests {
    use super::*;
    use recama_syntax::parse;

    fn analyze(p: &str) -> NcaAnalysis {
        let nca = Nca::from_regex(&parse(p).unwrap().regex);
        analyze_nca(&nca, &ExactConfig::default())
    }

    #[test]
    fn single_class_bodies_agree_on_both_notions() {
        for p in [".*a{4}", ".*[^a]a{4}", "a{3}.*b{2}"] {
            let res = analyze(p);
            assert_eq!(
                res.ambiguous_counters, res.block_ambiguous_counters,
                "σ-body notions must coincide for {p}"
            );
        }
    }

    #[test]
    fn staggered_multi_state_body_is_block_ambiguous_only() {
        // .*[ab]([ab][ab]){2,5}x — entries can start on consecutive cycles,
        // so two tokens sit on the two body states (phases 0 and 1) with
        // different counts, yet each *state* holds distinct-phase tokens.
        let res = analyze(".*x([ab][ab]){2,5}y");
        // Same-state: unambiguous (entry gated by the disjoint 'x').
        assert!(!res.ambiguous_counters[0]);
        assert!(!res.block_ambiguous_counters[0]);
        // Overlapping gate: both notions may fire; key property: block
        // implies-or-equals same-state strictly.
        let res2 = analyze(".*[ab]([ab][ab]){2,5}y");
        assert!(
            res2.block_ambiguous_counters[0],
            "staggered entries must be flagged at block level"
        );
    }

    #[test]
    fn block_implies_nothing_weaker_is_missed() {
        // Same-state ambiguity always implies block ambiguity.
        for p in [".*a{4}", ".*a[ab]{3}b", ".*(ab){2,4}"] {
            let res = analyze(p);
            for (k, &amb) in res.ambiguous_counters.iter().enumerate() {
                if amb {
                    assert!(
                        res.block_ambiguous_counters[k],
                        "{p}: counter {k} same-state ambiguous but not block ambiguous"
                    );
                }
            }
        }
    }
}
