//! The NP-hardness construction of Lemma 3.3: a polynomial-time reduction
//! from SUBSET-SUM to counter-ambiguity checking.
//!
//! For a set `S = {n₁,…,nₘ}` and target `T`, the regex
//!
//! ```text
//! ( (a{n₁}+ε)···(a{nₘ}+ε)#b  +  a{T}#bb ) b{2}
//! ```
//!
//! has a counter-ambiguous rightmost occurrence `b{2}` iff some subset of
//! `S` sums to `T`: on input `aᵀ#bbb`, the left branch (when a subset
//! exists) and the right branch put tokens with counter values 2 and 1 on
//! the `b{2}` states.

use recama_syntax::{Regex, RepeatId};

/// Builds the reduction regex for subset-sum instance `(set, target)`.
///
/// # Panics
///
/// Panics when `set` is empty or any element / the target is 0 (degenerate
/// instances the reduction does not need).
pub fn subset_sum_regex(set: &[u32], target: u32) -> Regex {
    assert!(
        !set.is_empty(),
        "subset-sum instance needs at least one element"
    );
    assert!(
        set.iter().all(|&n| n > 0),
        "subset-sum elements must be positive"
    );
    assert!(target > 0, "subset-sum target must be positive");
    let a = Regex::byte(b'a');
    let hash = Regex::byte(b'#');
    let b = Regex::byte(b'b');

    let mut left_parts: Vec<Regex> = set
        .iter()
        .map(|&n| Regex::opt(Regex::repeat(a.clone(), n, Some(n))))
        .collect();
    left_parts.push(hash.clone());
    left_parts.push(b.clone());
    let left = Regex::concat(left_parts);

    let right = Regex::concat(vec![
        Regex::repeat(a.clone(), target, Some(target)),
        hash,
        b.clone(),
        b.clone(),
    ]);

    Regex::concat(vec![
        Regex::alt(vec![left, right]),
        Regex::repeat(b, 2, Some(2)),
    ])
}

/// The occurrence id of the rightmost `b{2}` in [`subset_sum_regex`]'s
/// output: after the m set occurrences and the `a{T}`.
pub fn target_occurrence(set_len: usize) -> RepeatId {
    RepeatId(set_len + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_occurrence, CheckConfig, Method, Verdict};

    fn solve(set: &[u32], target: u32) -> Verdict {
        let r = subset_sum_regex(set, target);
        check_occurrence(
            &r,
            target_occurrence(set.len()),
            Method::Exact,
            &CheckConfig::default(),
        )
        .verdict
    }

    #[test]
    fn regex_shape() {
        let r = subset_sum_regex(&[2, 3], 5);
        assert_eq!(r.to_string(), "((a{2})?(a{3})?#b|a{5}#bb)b{2}");
        assert_eq!(r.repeats().len(), 4);
        assert_eq!(target_occurrence(2), RepeatId(3));
        let infos = r.repeats();
        assert_eq!((infos[3].min, infos[3].max), (2, Some(2)));
    }

    #[test]
    fn solvable_instances_are_ambiguous() {
        // 2 + 3 = 5 ✓
        assert_eq!(solve(&[2, 3], 5), Verdict::Ambiguous);
        // 3 alone ✓
        assert_eq!(solve(&[2, 3], 3), Verdict::Ambiguous);
        // 2 + 5 = 7 ✓
        assert_eq!(solve(&[2, 5, 9], 7), Verdict::Ambiguous);
    }

    #[test]
    fn unsolvable_instances_are_unambiguous() {
        // sums reachable from {2,3}: 2, 3, 5 — not 4.
        assert_eq!(solve(&[2, 3], 4), Verdict::Unambiguous);
        // sums from {2,5,9}: 2,5,7,9,11,14,16 — not 8.
        assert_eq!(solve(&[2, 5, 9], 8), Verdict::Unambiguous);
    }

    #[test]
    fn other_occurrences_do_not_confuse_the_target() {
        // The a{nᵢ} occurrences themselves may be ambiguous; the reduction
        // only cares about b{2}.
        let r = subset_sum_regex(&[2, 2], 4);
        let res = check_occurrence(
            &r,
            target_occurrence(2),
            Method::Exact,
            &CheckConfig::default(),
        );
        assert_eq!(res.verdict, Verdict::Ambiguous); // 2+2=4
    }
}
