//! # recama-analysis
//!
//! Static analysis for **counter-(un)ambiguity** of regexes with counting
//! and their counter automata — §3 of *Software-Hardware Codesign for
//! Efficient In-Memory Regular Pattern Matching* (PLDI 2022).
//!
//! A state q of an NCA is *counter-unambiguous* when at most one token can
//! sit on it after reading any input (`degree(q) ≤ 1`, Definition 3.1), in
//! which case a repetition `{m,n}` can be implemented with `O(log n)` bits
//! (a counter register / counter module) instead of the `O(n)` bits of a
//! bit vector or the `Θ(n)` STEs of unfolding.
//!
//! The crate provides the three analyses of the paper plus the hardness
//! construction:
//!
//! * [`analyze_nca`] — exact product-system exploration with per-state and
//!   per-counter verdicts, witness reconstruction, and pair-count stats;
//! * [`approx_occurrence`] / [`relax_except`] — the `{m,n}` → `*`
//!   over-approximation (§3.2);
//! * [`check`] / [`check_occurrence`] — the checker front end with the
//!   Exact / Approximate / Hybrid / HybridWitness variants of Fig. 2;
//! * [`hardness`] — the subset-sum reduction of Lemma 3.3.
//!
//! ## Example
//!
//! ```
//! use recama_analysis::{check, CheckConfig, Method, Verdict};
//!
//! // The Fig. 7 shape: counting [ab] while 'a' can start new attempts.
//! let regex = recama_syntax::parse(r".*a[ab]{10}b").unwrap().regex;
//! let result = check(&regex, Method::Hybrid, &CheckConfig::default());
//! assert_eq!(result.ambiguous, Some(true));
//!
//! // Counting runs delimited by a disjoint predicate: unambiguous.
//! let regex = recama_syntax::parse(r".*\d[a-z]{10}").unwrap().regex;
//! let result = check(&regex, Method::Hybrid, &CheckConfig::default());
//! assert_eq!(result.ambiguous, Some(false));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod approx;
mod checker;
mod degree;
mod exact;
pub mod hardness;
mod stats;

pub use approx::{approx_occurrence, approx_occurrence_nca, relax_except};
pub use checker::{
    check, check_occurrence, CheckConfig, Method, OccurrenceCheck, OccurrenceVerdict, RegexCheck,
};
pub use degree::{degree, degree_at_least, DegreeAnalysis};
pub use exact::{analyze_nca, ExactConfig, NcaAnalysis, StopPolicy};
pub use stats::{AnalysisStats, Verdict};

/// Builds the NCA for an already-normalized regex (thin wrapper used across
/// the crate so every call site constructs automata the same way).
pub fn glushkov_build(normalized: &recama_syntax::Regex) -> recama_nca::Nca {
    recama_nca::glushkov::build(normalized)
}
