//! Instrumentation shared by all analysis variants.
//!
//! The paper evaluates the checker on two axes (Fig. 2): running time and
//! the number of token pairs *created* during the exploration of the
//! product transition system (the memory-footprint proxy of §3.3).

use std::ops::AddAssign;
use std::time::Duration;

/// Counters collected by one analysis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Token pairs created (inserted into the visited set) — the quantity
    /// plotted in Fig. 2(b).
    pub pairs_created: u64,
    /// Product edges traversed (successor pairs examined, including ones
    /// already visited).
    pub edges_traversed: u64,
    /// Number of separate product explorations run (1 for exact; one per
    /// occurrence for the approximate variant).
    pub explorations: u64,
    /// True when some exploration hit its pair budget and stopped early.
    pub budget_exhausted: bool,
    /// Wall-clock time spent analyzing.
    pub duration: Duration,
}

impl AddAssign for AnalysisStats {
    fn add_assign(&mut self, rhs: AnalysisStats) {
        self.pairs_created += rhs.pairs_created;
        self.edges_traversed += rhs.edges_traversed;
        self.explorations += rhs.explorations;
        self.budget_exhausted |= rhs.budget_exhausted;
        self.duration += rhs.duration;
    }
}

/// Three-valued verdict for a counting occurrence or a whole regex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Proven counter-unambiguous: `degree(q) ≤ 1` for the relevant states.
    Unambiguous,
    /// Proven counter-ambiguous (two distinct tokens reach one state).
    Ambiguous,
    /// Not determined (approximation inconclusive or budget exhausted).
    Unknown,
}

impl Verdict {
    /// Whether the verdict is a definitive proof of unambiguity.
    pub fn is_unambiguous(self) -> bool {
        self == Verdict::Unambiguous
    }

    /// Whether the verdict is a definitive proof of ambiguity.
    pub fn is_ambiguous(self) -> bool {
        self == Verdict::Ambiguous
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let mut a = AnalysisStats {
            pairs_created: 10,
            edges_traversed: 20,
            explorations: 1,
            budget_exhausted: false,
            duration: Duration::from_millis(5),
        };
        a += AnalysisStats {
            pairs_created: 1,
            edges_traversed: 2,
            explorations: 1,
            budget_exhausted: true,
            duration: Duration::from_millis(1),
        };
        assert_eq!(a.pairs_created, 11);
        assert_eq!(a.edges_traversed, 22);
        assert_eq!(a.explorations, 2);
        assert!(a.budget_exhausted);
        assert_eq!(a.duration, Duration::from_millis(6));
    }

    #[test]
    fn verdict_predicates() {
        assert!(Verdict::Unambiguous.is_unambiguous());
        assert!(!Verdict::Unknown.is_unambiguous());
        assert!(Verdict::Ambiguous.is_ambiguous());
        assert!(!Verdict::Unknown.is_ambiguous());
    }
}
