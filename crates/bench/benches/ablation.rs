//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * storage plans: analysis-informed `SingleValue` registers vs the
//!   always-sound conservative bit vectors (what the static analysis buys
//!   at runtime);
//! * the DFA baseline: lazy-DFA stepping vs the NCA engines on a
//!   counting-heavy pattern (single-lookup speed vs exponential memory);
//! * switch model on/off: the optional routing-energy refinement must not
//!   change comparative results (cost model robustness).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use recama::analysis::{analyze_nca, ExactConfig};
use recama::compiler::{compile, CompileOptions};
use recama::hw::{run_with, AreaGranularity, SwitchParams};
use recama::nca::{
    unfold, CompilePlan, CompiledEngine, DfaEngine, Engine, Nca, StateId, UnfoldPolicy,
};

fn bench_storage_plans(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_storage_plans");
    group.sample_size(20);
    // Counter-unambiguous pattern: the analysis enables SingleValue.
    let r = recama::syntax::parse(".*[^a]a{200}b").unwrap().regex;
    let nca = Nca::from_regex(&r);
    let analysis = analyze_nca(&nca, &ExactConfig::default());
    assert!(analysis.complete);
    let input: Vec<u8> = (0..8192u32)
        .map(|i| if i % 211 == 0 { b'x' } else { b'a' })
        .collect();
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("analysis_informed_single_value", |b| {
        let plan =
            CompilePlan::with_unambiguous_states(&nca, |q: StateId| analysis.state_unambiguous(q));
        let mut e = CompiledEngine::new(&nca, plan);
        b.iter(|| e.match_ends(&input).len())
    });
    group.bench_function("conservative_bit_vectors", |b| {
        let mut e = CompiledEngine::conservative(&nca);
        b.iter(|| e.match_ends(&input).len())
    });
    group.finish();
}

fn bench_counting_representations(c: &mut Criterion) {
    // Bit vector (the paper's hardware representation) vs counting-set
    // queue (Turoňová et al., the software alternative of §5) on an
    // ambiguous σ{m,n} with a large bound.
    let mut group = c.benchmark_group("ablation_counting_representation");
    group.sample_size(20);
    let r = recama::syntax::parse("k.{500,1500}").unwrap().for_stream();
    let nca = Nca::from_regex(&r);
    let input: Vec<u8> = (0..16384u32)
        .map(|i| if i % 97 == 0 { b'k' } else { b'.' })
        .collect();
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("bit_vector_shift", |b| {
        let mut e = CompiledEngine::conservative(&nca);
        b.iter(|| e.match_ends(&input).len())
    });
    group.bench_function("counting_set_queue", |b| {
        let mut e = CompiledEngine::counting_sets(&nca);
        b.iter(|| e.match_ends(&input).len())
    });
    group.finish();
}

fn bench_dfa_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dfa_baseline");
    group.sample_size(15);
    let r = recama::syntax::parse(".*a[ab]{10}").unwrap().regex;
    let unfolded = Nca::from_regex(&unfold(&r, UnfoldPolicy::All));
    let counted = Nca::from_regex(&r);
    let input: Vec<u8> = (0..8192u32)
        .map(|i| if i % 3 == 0 { b'a' } else { b'b' })
        .collect();
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("lazy_dfa", |b| {
        let mut e = DfaEngine::new(&unfolded);
        // Warm the transition cache once so steady-state speed is measured.
        e.match_ends(&input);
        b.iter(|| e.match_ends(&input).len())
    });
    group.bench_function("compiled_nca", |b| {
        let mut e = CompiledEngine::conservative(&counted);
        b.iter(|| e.match_ends(&input).len())
    });
    group.finish();
}

fn bench_switch_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_switch_model");
    group.sample_size(10);
    let parsed = recama::syntax::parse("^a{1200}").unwrap();
    let out = compile(
        &parsed.for_stream(),
        &CompileOptions {
            unfold: UnfoldPolicy::All,
            ..Default::default()
        },
    );
    let input: Vec<u8> = std::iter::repeat_n(b'a', 4096).collect();
    group.bench_function("without_switch_energy", |b| {
        b.iter(|| {
            run_with(&out.network, &input, AreaGranularity::ProRata, None)
                .energy
                .total_fj()
        })
    });
    group.bench_function("with_switch_energy", |b| {
        let params = SwitchParams::default();
        b.iter(|| {
            run_with(
                &out.network,
                &input,
                AreaGranularity::ProRata,
                Some(&params),
            )
            .energy
            .total_fj()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_storage_plans,
    bench_counting_representations,
    bench_dfa_baseline,
    bench_switch_model
);
criterion_main!(benches);
