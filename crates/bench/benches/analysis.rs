//! Criterion bench: the static-analysis variants (Fig. 2/3 time axis) on
//! representative regex families.

use criterion::{criterion_group, criterion_main, BenchmarkId as CritId, Criterion};
use recama::analysis::{check, CheckConfig, Method};

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_variants");
    group.sample_size(20);
    let cfg = CheckConfig::default();
    let cases = [
        ("ambiguous_sigma_star", ".*a{64}".to_string()),
        ("anchored_unambiguous", "^a[bc]{64}d".to_string()),
        (
            "expensive_two_branch",
            ".*([^ac][ac]{64}|[^bc][bc]{64})".to_string(),
        ),
        ("nested", "(ab{2,5}c){2,4}".to_string()),
    ];
    for (name, pattern) in &cases {
        let regex = recama::syntax::parse(pattern).unwrap().regex;
        for (method, tag) in [
            (Method::Exact, "exact"),
            (Method::Approximate, "approx"),
            (Method::Hybrid, "hybrid"),
            (Method::HybridWitness, "hybrid_witness"),
        ] {
            group.bench_with_input(
                CritId::new(format!("{name}/{tag}"), pattern.len()),
                &regex,
                |b, r| b.iter(|| check(r, method, &cfg)),
            );
        }
    }
    group.finish();
}

fn bench_mu_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_mu_scaling");
    group.sample_size(15);
    for n in [16u32, 32, 64, 128] {
        let pattern = format!(".*([^ac][ac]{{{n}}}|[^bc][bc]{{{n}}})");
        let regex = recama::syntax::parse(&pattern).unwrap().regex;
        group.bench_with_input(CritId::new("exact", n), &regex, |b, r| {
            b.iter(|| check(r, Method::Exact, &CheckConfig::default()))
        });
        group.bench_with_input(CritId::new("hybrid", n), &regex, |b, r| {
            b.iter(|| check(r, Method::Hybrid, &CheckConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants, bench_mu_scaling);
criterion_main!(benches);
