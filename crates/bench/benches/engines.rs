//! Criterion bench: software execution engines — the reference token-set
//! semantics vs the compiled counter/bit-vector engine vs the unfolded
//! bitset NFA, on the same pattern and input.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use recama::nca::{unfold, CompiledEngine, Engine, Nca, NfaEngine, TokenSetEngine, UnfoldPolicy};

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("software_engines");
    group.sample_size(20);
    let pattern = recama::syntax::parse("x[ab]{1,100}y").unwrap().for_stream();
    let nca = Nca::from_regex(&pattern);
    let unfolded_nca = Nca::from_regex(&unfold(&pattern, UnfoldPolicy::All));
    // Input with plenty of counting activity.
    let input: Vec<u8> = (0..8192u32)
        .map(|i| match i % 37 {
            0 => b'x',
            36 => b'y',
            k if k % 2 == 0 => b'a',
            _ => b'b',
        })
        .collect();
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("token_set_reference", |b| {
        let mut e = TokenSetEngine::new(&nca);
        b.iter(|| e.match_ends(&input).len())
    });
    group.bench_function("compiled_bitvector", |b| {
        let mut e = CompiledEngine::conservative(&nca);
        b.iter(|| e.match_ends(&input).len())
    });
    group.bench_function("unfolded_bitset_nfa", |b| {
        let mut e = NfaEngine::new(&unfolded_nca);
        b.iter(|| e.match_ends(&input).len())
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
