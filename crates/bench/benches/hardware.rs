//! Criterion bench: the Fig. 10 application pipeline — ruleset compilation,
//! placement, and traffic simulation at a small scale.

use criterion::{criterion_group, criterion_main, BenchmarkId as CritId, Criterion, Throughput};
use recama::compiler::{compile_ruleset, CompileOptions};
use recama::hw::{place, HwSimulator};
use recama::nca::UnfoldPolicy;
use recama::workloads::{generate, traffic, BenchmarkId};

fn bench_ruleset_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("ruleset_compile");
    group.sample_size(10);
    for id in [BenchmarkId::Snort, BenchmarkId::Protomata] {
        let ruleset = generate(id, 0.005, 2022);
        let patterns = ruleset.pattern_strings();
        group.bench_with_input(CritId::new("augmented", id.name()), &patterns, |b, p| {
            b.iter(|| {
                compile_ruleset(p, &CompileOptions::default())
                    .network
                    .node_count()
            })
        });
        group.bench_with_input(CritId::new("unfold_all", id.name()), &patterns, |b, p| {
            b.iter(|| {
                compile_ruleset(
                    p,
                    &CompileOptions {
                        unfold: UnfoldPolicy::All,
                        ..Default::default()
                    },
                )
                .network
                .node_count()
            })
        });
    }
    group.finish();
}

fn bench_placement_and_traffic(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_and_traffic");
    group.sample_size(10);
    let ruleset = generate(BenchmarkId::Snort, 0.005, 2022);
    let patterns = ruleset.pattern_strings();
    let out = compile_ruleset(&patterns, &CompileOptions::default());
    group.bench_function("place_snort_0.5pct", |b| {
        b.iter(|| place(&out.network).pe_count)
    });
    let input = traffic(&ruleset, 8192, 0.0005, 7);
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("simulate_snort_traffic", |b| {
        let mut sim = HwSimulator::new(&out.network);
        b.iter(|| sim.match_ends(&input).len())
    });
    group.finish();
}

criterion_group!(benches, bench_ruleset_compile, bench_placement_and_traffic);
criterion_main!(benches);
