//! Criterion bench: the Fig. 8 micro-benchmark pipeline — compiling and
//! simulating `a{n}` with counter / bit-vector / unfolded realizations.

use criterion::{criterion_group, criterion_main, BenchmarkId as CritId, Criterion, Throughput};
use recama::compiler::{compile, CompileOptions};
use recama::hw::HwSimulator;
use recama::nca::UnfoldPolicy;

fn bench_simulation_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("hw_sim_throughput");
    group.sample_size(20);
    let input: Vec<u8> = std::iter::repeat_n(b'a', 4096).collect();
    group.throughput(Throughput::Bytes(input.len() as u64));
    for n in [64u32, 512] {
        let anchored = recama::syntax::parse(&format!("^a{{{n}}}"))
            .unwrap()
            .for_stream();
        let streaming = recama::syntax::parse(&format!("a{{{n}}}"))
            .unwrap()
            .for_stream();
        let counter_net = compile(&anchored, &CompileOptions::default()).network;
        let bv_net = compile(&streaming, &CompileOptions::default()).network;
        let unfolded_net = compile(
            &streaming,
            &CompileOptions {
                unfold: UnfoldPolicy::All,
                ..Default::default()
            },
        )
        .network;
        group.bench_with_input(CritId::new("counter_module", n), &counter_net, |b, net| {
            let mut sim = HwSimulator::new(net);
            b.iter(|| sim.match_ends(&input).len())
        });
        group.bench_with_input(CritId::new("bitvector_module", n), &bv_net, |b, net| {
            let mut sim = HwSimulator::new(net);
            b.iter(|| sim.match_ends(&input).len())
        });
        group.bench_with_input(CritId::new("unfolded", n), &unfolded_net, |b, net| {
            let mut sim = HwSimulator::new(net);
            b.iter(|| sim.match_ends(&input).len())
        });
    }
    group.finish();
}

fn bench_compile_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_micro");
    group.sample_size(20);
    for n in [64u32, 512] {
        let stream = recama::syntax::parse(&format!("a{{{n}}}"))
            .unwrap()
            .for_stream();
        group.bench_with_input(CritId::new("modules", n), &stream, |b, r| {
            b.iter(|| compile(r, &CompileOptions::default()).network.node_count())
        });
        group.bench_with_input(CritId::new("unfold_all", n), &stream, |b, r| {
            b.iter(|| {
                compile(
                    r,
                    &CompileOptions {
                        unfold: UnfoldPolicy::All,
                        ..Default::default()
                    },
                )
                .network
                .node_count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation_throughput, bench_compile_time);
criterion_main!(benches);
