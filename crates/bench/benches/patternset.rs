//! Multi-pattern matching throughput: the shared [`PatternSet`] engine
//! against the loop-over-[`Pattern`] baseline on the synthetic Snort and
//! Suricata workloads — the software-side payoff of compiling the whole
//! ruleset into one machine image.

use criterion::{criterion_group, criterion_main, BenchmarkId as CritId, Criterion, Throughput};
use recama::hw::ShardPolicy;
use recama::workloads::{generate, traffic, BenchmarkId, PatternClass};
use recama::{Engine, Pattern, PatternSet};
use recama_bench::{scale, seed, traffic_len};

/// The unsharded (single-image) engine the benches compare against.
fn single_shard(patterns: &[String]) -> recama::ShardedPatternSet {
    Engine::builder()
        .patterns(patterns)
        .shard_policy(ShardPolicy::Single)
        .build()
        .expect("set compiles")
        .into_set()
}

fn workload(id: BenchmarkId) -> (Vec<String>, Vec<u8>) {
    let ruleset = generate(id, scale(), seed());
    let patterns: Vec<String> = ruleset
        .patterns
        .iter()
        .filter(|(_, c)| *c != PatternClass::Unsupported)
        .map(|(p, _)| p.clone())
        .filter(|p| recama::syntax::parse(p).is_ok())
        .collect();
    let input = traffic(&ruleset, traffic_len(), 0.001, seed());
    (patterns, input)
}

fn bench_shared_vs_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("patternset_scan");
    group.sample_size(10);
    for id in [BenchmarkId::Snort, BenchmarkId::Suricata] {
        let (patterns, input) = workload(id);
        group.throughput(Throughput::Bytes(input.len() as u64));

        let set = single_shard(&patterns);
        group.bench_with_input(
            CritId::new("shared_engine", id.name()),
            &input,
            |b, input| b.iter(|| set.find_ends(input).len()),
        );

        let baseline = PatternSet::compile_baseline(&patterns).expect("baseline compiles");
        group.bench_with_input(
            CritId::new("pattern_loop", id.name()),
            &input,
            |b, input| {
                b.iter(|| {
                    baseline
                        .iter()
                        .map(|p: &Pattern| p.find_ends(input).len())
                        .sum::<usize>()
                })
            },
        );
    }
    group.finish();
}

fn bench_streaming_chunks(c: &mut Criterion) {
    let mut group = c.benchmark_group("patternset_stream");
    group.sample_size(10);
    let (patterns, input) = workload(BenchmarkId::Snort);
    let set = single_shard(&patterns);
    group.throughput(Throughput::Bytes(input.len() as u64));
    for chunk in [1500usize, 64 * 1024] {
        group.bench_with_input(CritId::new("chunked_feed", chunk), &input, |b, input| {
            b.iter(|| {
                let mut stream = set.stream();
                let mut hits = 0usize;
                for chunk in input.chunks(chunk) {
                    hits += stream.feed(chunk).count();
                }
                hits
            })
        });
    }
    group.finish();
}

fn bench_set_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("patternset_compile");
    group.sample_size(10);
    let (patterns, _) = workload(BenchmarkId::Snort);
    group.bench_with_input(
        CritId::new("engine_build", patterns.len()),
        &patterns,
        |b, patterns| b.iter(|| single_shard(patterns).len()),
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_shared_vs_loop,
    bench_streaming_chunks,
    bench_set_compile
);
criterion_main!(benches);
