//! Fig. 10: per-input-byte energy (left) and total area with waste (right)
//! of the augmented CAMA across unfolding thresholds, for the four
//! hardware benchmarks on synthetic traffic.
//!
//! ```sh
//! RECAMA_SCALE=0.02 RECAMA_TRAFFIC=16384 cargo run --release -p recama-bench --bin fig10
//! ```

use recama::compiler::{compile_ruleset, CompileOptions};
use recama::hw::{run, AreaGranularity};
use recama::nca::UnfoldPolicy;
use recama::workloads::{generate, traffic, BenchmarkId};
use recama_bench::{banner, scale, seed, traffic_len};

fn main() {
    let scale = scale();
    let input_len = traffic_len();
    banner(&format!(
        "Fig. 10: augmented-CAMA energy and area per unfolding threshold (scale {scale}, {input_len} B traffic)"
    ));
    let thresholds: [(&str, UnfoldPolicy); 6] = [
        ("unfold 5", UnfoldPolicy::UpTo(5)),
        ("unfold 10", UnfoldPolicy::UpTo(10)),
        ("unfold 25", UnfoldPolicy::UpTo(25)),
        ("unfold 50", UnfoldPolicy::UpTo(50)),
        ("unfold 100", UnfoldPolicy::UpTo(100)),
        ("unfold all", UnfoldPolicy::All),
    ];
    println!(
        "{:<14} {:<12} {:>12} {:>11} {:>11} {:>9} {:>9}",
        "benchmark", "threshold", "energy nJ/B", "area mm2", "waste mm2", "nodes", "reports"
    );
    for id in BenchmarkId::HARDWARE {
        let ruleset = generate(id, scale, seed());
        let patterns = ruleset.pattern_strings();
        let input = traffic(&ruleset, input_len, 0.0005, seed());
        let mut best_energy = f64::INFINITY;
        let mut unfold_all_energy = 0.0;
        let mut best_area = f64::INFINITY;
        let mut unfold_all_area = 0.0;
        for (label, policy) in &thresholds {
            let out = compile_ruleset(
                &patterns,
                &CompileOptions {
                    unfold: *policy,
                    ..Default::default()
                },
            );
            let report = run(&out.network, &input, AreaGranularity::WholeModule);
            let energy = report.energy.nj_per_byte();
            let area = report.area.total_mm2();
            println!(
                "{:<14} {:<12} {:>12.5} {:>11.6} {:>11.6} {:>9} {:>9}",
                id.name(),
                label,
                energy,
                area,
                report.area.waste_um2 / 1e6,
                out.network.node_count(),
                report.match_ends.len()
            );
            best_energy = best_energy.min(energy);
            best_area = best_area.min(area);
            if *label == "unfold all" {
                unfold_all_energy = energy;
                unfold_all_area = area;
            }
        }
        println!(
            "{:<14} => energy reduction vs unfold-all: {:.0}%   area reduction: {:.0}%\n",
            id.name(),
            100.0 * (1.0 - best_energy / unfold_all_energy),
            100.0 * (1.0 - best_area / unfold_all_area)
        );
    }
    println!("(Paper: up to 76% energy / 58% area reduction for Snort & Suricata;");
    println!(" little to no overhead for Protomata & SpamAssassin.)");
}
