//! Fig. 2: static-analysis running time (a) and created token pairs (b)
//! as functions of μ(r), for the 5 benchmarks × 4 analysis variants
//! (E = exact, A = approximate, H = hybrid, HW = hybrid + witness).
//!
//! Emits one line per (benchmark, variant, regex): `mu time_ms pairs` —
//! the scatter points of the 5×4 grid — plus per-variant totals on stderr.
//!
//! ```sh
//! RECAMA_SCALE=0.02 cargo run --release -p recama-bench --bin fig2
//! ```

use recama::analysis::{CheckConfig, Method};
use recama::workloads::{generate, BenchmarkId};
use recama_bench::{analyze_patterns, banner, ms, scale, seed};

fn main() {
    let scale = scale();
    banner(&format!(
        "Fig. 2: static analysis cost vs mu(r)  (scale {scale})"
    ));
    let variants = [
        (Method::Exact, "E"),
        (Method::Approximate, "A"),
        (Method::Hybrid, "H"),
        (Method::HybridWitness, "HW"),
    ];
    println!(
        "{:<12} {:>3} {:>8} {:>12} {:>12}",
        "benchmark", "var", "mu", "time_ms", "pairs"
    );
    for id in BenchmarkId::ALL {
        let ruleset = generate(id, scale, seed());
        let patterns: Vec<String> = ruleset
            .pattern_strings()
            .into_iter()
            .filter(|p| {
                recama::syntax::parse(p)
                    .map(|x| x.regex.has_counting())
                    .unwrap_or(false)
            })
            .collect();
        for (method, tag) in variants {
            let results = analyze_patterns(&patterns, method, &CheckConfig::default());
            let mut total_ms = 0.0;
            let mut total_pairs = 0u64;
            for r in &results {
                let Some(c) = &r.check else { continue };
                println!(
                    "{:<12} {:>3} {:>8} {:>12.3} {:>12}",
                    id.name(),
                    tag,
                    r.mu,
                    ms(r.time),
                    c.stats.pairs_created
                );
                total_ms += ms(r.time);
                total_pairs += c.stats.pairs_created;
            }
            eprintln!(
                "# {} {}: {} regexes, {:.1} ms total, {} pairs total",
                id.name(),
                tag,
                results.len(),
                total_ms,
                total_pairs
            );
        }
    }
}
