//! Fig. 3: per-regex running-time comparison of the exact and hybrid
//! analyses on the Snort and Suricata rulesets. The points far below the
//! diagonal are the `Σ*(σ̄₁σ₁{m}+σ̄₂σ₂{n}+···)` family, where the paper
//! reports >100× speedups.
//!
//! ```sh
//! RECAMA_SCALE=0.02 cargo run --release -p recama-bench --bin fig3
//! ```

use recama::analysis::{CheckConfig, Method};
use recama::workloads::{generate, BenchmarkId};
use recama_bench::{analyze_patterns, banner, ms, scale, seed};

fn main() {
    let scale = scale();
    banner(&format!(
        "Fig. 3: exact vs hybrid analysis time, Snort + Suricata (scale {scale})"
    ));
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>9}",
        "benchmark", "mu", "exact_ms", "hybrid_ms", "speedup"
    );
    for id in [BenchmarkId::Snort, BenchmarkId::Suricata] {
        let ruleset = generate(id, scale, seed());
        let patterns: Vec<String> = ruleset
            .pattern_strings()
            .into_iter()
            .filter(|p| {
                recama::syntax::parse(p)
                    .map(|x| x.regex.has_counting())
                    .unwrap_or(false)
            })
            .collect();
        let exact = analyze_patterns(&patterns, Method::Exact, &CheckConfig::default());
        let hybrid = analyze_patterns(&patterns, Method::Hybrid, &CheckConfig::default());
        let mut best_speedup: f64 = 0.0;
        let mut over_10x = 0usize;
        for (e, h) in exact.iter().zip(&hybrid) {
            let (e_ms, h_ms) = (ms(e.time), ms(h.time));
            let speedup = if h_ms > 0.0 { e_ms / h_ms } else { 1.0 };
            println!(
                "{:<10} {:>8} {:>12.3} {:>12.3} {:>8.1}x",
                id.name(),
                e.mu,
                e_ms,
                h_ms,
                speedup
            );
            best_speedup = best_speedup.max(speedup);
            if speedup >= 10.0 {
                over_10x += 1;
            }
        }
        eprintln!(
            "# {}: {} counting regexes; best hybrid speedup {:.0}x; {} regexes sped up >=10x",
            id.name(),
            patterns.len(),
            best_speedup,
            over_10x
        );
    }
}
