//! Fig. 8: micro-benchmark — energy and area trade-off of unfolding vs the
//! counter module (`a{n}`, counter-unambiguous when anchored) and vs the
//! bit-vector module (`Σ*a{n}`, counter-ambiguous), sweeping n on a log
//! grid. Area uses the pro-rata accounting (the paper provisions a
//! length-n vector per data point).
//!
//! ```sh
//! cargo run --release -p recama-bench --bin fig8
//! ```

use recama::compiler::{compile, CompileOptions};
use recama::hw::{run, AreaGranularity};
use recama::nca::UnfoldPolicy;
use recama_bench::banner;

fn main() {
    banner("Fig. 8: unfolding vs counter (left) and vs bit vector (right)");
    let input: Vec<u8> = std::iter::repeat_n(b'a', 4096).collect();
    let ns = [8u32, 16, 32, 64, 128, 256, 512, 1000, 1500, 2000];

    println!(
        "{:>6} | {:>13} {:>13} {:>11} {:>11} | {:>13} {:>13} {:>11} {:>11}",
        "n",
        "cnt nJ/B",
        "unf nJ/B",
        "cnt mm2",
        "unf mm2",
        "bv nJ/B",
        "unf nJ/B",
        "bv mm2",
        "unf mm2"
    );
    for n in ns {
        // Left: a{n} anchored — counter module vs unfolding.
        let counter_pat = recama::syntax::parse(&format!("^a{{{n}}}"))
            .unwrap()
            .for_stream();
        let counter = run(
            &compile(&counter_pat, &CompileOptions::default()).network,
            &input,
            AreaGranularity::ProRata,
        );
        let counter_unf = run(
            &compile(
                &counter_pat,
                &CompileOptions {
                    unfold: UnfoldPolicy::All,
                    ..Default::default()
                },
            )
            .network,
            &input,
            AreaGranularity::ProRata,
        );
        // Right: Σ*a{n} — bit vector vs unfolding.
        let bv_pat = recama::syntax::parse(&format!("a{{{n}}}"))
            .unwrap()
            .for_stream();
        let bv = run(
            &compile(&bv_pat, &CompileOptions::default()).network,
            &input,
            AreaGranularity::ProRata,
        );
        let bv_unf = run(
            &compile(
                &bv_pat,
                &CompileOptions {
                    unfold: UnfoldPolicy::All,
                    ..Default::default()
                },
            )
            .network,
            &input,
            AreaGranularity::ProRata,
        );
        println!(
            "{:>6} | {:>13.6} {:>13.6} {:>11.6} {:>11.6} | {:>13.6} {:>13.6} {:>11.6} {:>11.6}",
            n,
            counter.energy.nj_per_byte(),
            counter_unf.energy.nj_per_byte(),
            counter.area.total_mm2(),
            counter_unf.area.total_mm2(),
            bv.energy.nj_per_byte(),
            bv_unf.energy.nj_per_byte(),
            bv.area.total_mm2(),
            bv_unf.area.total_mm2()
        );
    }
    println!("\n(axes are log-scaled in the paper; counter/bit vector win by orders of");
    println!(" magnitude in energy at large n, and by large margins in area)");
}
