//! Fig. 9: total number of MNRL nodes of the compiled machine image as a
//! function of the unfolding threshold, for the four hardware benchmarks
//! (Snort, Suricata, SpamAssassin, Protomata). The rightmost point of each
//! curve is full unfolding.
//!
//! ```sh
//! RECAMA_SCALE=0.02 cargo run --release -p recama-bench --bin fig9
//! ```

use recama::compiler::{compile_ruleset, CompileOptions};
use recama::nca::UnfoldPolicy;
use recama::workloads::{generate, BenchmarkId};
use recama_bench::{banner, scale, seed};

fn main() {
    let scale = scale();
    banner(&format!(
        "Fig. 9: # MNRL nodes vs unfolding threshold (scale {scale})"
    ));
    let thresholds: [(&str, UnfoldPolicy); 9] = [
        ("none", UnfoldPolicy::None),
        ("5", UnfoldPolicy::UpTo(5)),
        ("10", UnfoldPolicy::UpTo(10)),
        ("25", UnfoldPolicy::UpTo(25)),
        ("50", UnfoldPolicy::UpTo(50)),
        ("100", UnfoldPolicy::UpTo(100)),
        ("250", UnfoldPolicy::UpTo(250)),
        ("1000", UnfoldPolicy::UpTo(1000)),
        ("all", UnfoldPolicy::All),
    ];
    print!("{:<14}", "benchmark");
    for (label, _) in &thresholds {
        print!(" {label:>9}");
    }
    println!();
    for id in BenchmarkId::HARDWARE {
        let ruleset = generate(id, scale, seed());
        let patterns = ruleset.pattern_strings();
        print!("{:<14}", id.name());
        for (_, policy) in &thresholds {
            let out = compile_ruleset(
                &patterns,
                &CompileOptions {
                    unfold: *policy,
                    ..Default::default()
                },
            );
            print!(" {:>9}", out.network.node_count());
        }
        println!();
    }
    println!("\n(Each row is one curve of Fig. 9; node counts are linear in STE counts.)");
}
