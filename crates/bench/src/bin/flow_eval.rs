//! flow-eval: the many-flow serving benchmark. Compiles a Snort-profile
//! ruleset with [`Engine::builder`], then drives a
//! [`recama::FlowScheduler`] (`engine.scheduler_with(workers)`) with
//! `flows` concurrent byte streams delivered in `chunk`-sized
//! pieces over `rounds` rounds (one chunk per flow per round — the
//! IDS-tap arrival pattern), for each requested worker-pool size.
//! Reported per worker count: aggregate throughput (MiB/s, measured on
//! batched rounds) and p50/p99 per-chunk scheduling latency (measured
//! in a second pass that times every chunk's push-to-merged
//! individually, so the p99 reflects real tail chunks).
//!
//! ```sh
//! # Defaults: 2%-scale Snort, 32 flows x 8 rounds of 2 KiB chunks,
//! # worker sweep 1,2,4:
//! cargo run --release -p recama-bench --bin flow_eval
//! # CI smoke with a machine-readable record on stdout:
//! cargo run --release -p recama-bench --bin flow_eval -- \
//!     --scale 0.01 --flows 8 --rounds 4 --chunk 512 --workers 1,2 --json
//! ```
//!
//! After the scheduler sweep, a third pass drives the **owned**
//! [`ServiceHandle`](recama::ServiceHandle) (`engine.serve_with(..)`)
//! with the same arrival pattern, optionally hot-reloading an identical
//! engine mid-run (`--reload ROUND`): the `service_metrics` record then
//! carries the handle's [`ServiceMetrics`](recama::ServiceMetrics)
//! snapshot, the reload wall-clock, and whether the mid-run swap lost
//! any matches against the scheduler baseline.
//!
//! A final **prefilter pass** measures the literal-prefilter (MPM)
//! subsystem on the workload it targets: a SpamAssassin-profile ruleset
//! (every rule carries a required literal — the Snort profile's
//! Σ*-family "expensive" rules are always-on in every shard, so
//! shard-level skipping cannot engage there) driven with a **benign**
//! corpus (background bytes, no planted matches) and a **hit-heavy**
//! corpus, each under `PrefilterMode::On` and `::Off`. The `prefilter`
//! JSON record carries the benign skip rate, the four MiB/s numbers,
//! and the on-vs-off speedups.
//!
//! Flags: `--flows N`, `--rounds N`, `--chunk BYTES`, `--workers CSV`,
//! `--shards N`, `--scale F`, `--seed S`, `--reload ROUND` (hot-reload
//! before that 0-based round in the service pass), `--benign` (deliver
//! benign background bytes instead of planted-match traffic in the
//! scheduler/service passes), `--json` (print ONLY the JSON document to
//! stdout; the human-readable report moves to stderr).

use recama::hw::ShardPolicy;
use recama::workloads::{generate, traffic, BenchmarkId};
use recama::{Engine, FlowId, HybridStats, PrefilterMode};
use recama_bench::{ms, seed};
use std::time::{Duration, Instant};

struct Config {
    flows: usize,
    rounds: usize,
    chunk: usize,
    workers: Vec<usize>,
    shards: usize,
    scale: f64,
    seed: u64,
    reload: Option<usize>,
    benign: bool,
    json: bool,
}

fn parse_args() -> Config {
    let mut config = Config {
        flows: 32,
        rounds: 8,
        chunk: 2048,
        workers: vec![1, 2, 4],
        shards: 4,
        scale: 0.02,
        seed: seed(),
        reload: None,
        benign: false,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match flag.as_str() {
            "--flows" => config.flows = value("--flows").parse().expect("--flows"),
            "--rounds" => config.rounds = value("--rounds").parse().expect("--rounds"),
            "--chunk" => config.chunk = value("--chunk").parse().expect("--chunk"),
            "--shards" => config.shards = value("--shards").parse().expect("--shards"),
            "--scale" => config.scale = value("--scale").parse().expect("--scale"),
            "--seed" => config.seed = value("--seed").parse().expect("--seed"),
            "--reload" => config.reload = Some(value("--reload").parse().expect("--reload")),
            "--workers" => {
                config.workers = value("--workers")
                    .split(',')
                    .map(|w| w.trim().parse().expect("--workers takes a CSV of counts"))
                    .collect()
            }
            "--benign" => config.benign = true,
            "--json" => config.json = true,
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    assert!(config.flows > 0 && config.rounds > 0 && config.chunk > 0);
    assert!(!config.workers.is_empty());
    config
}

struct WorkerResult {
    workers: usize,
    mib_per_s: f64,
    p50: Duration,
    p99: Duration,
    hits: usize,
    /// Hybrid-overlay counters aggregated over every flow's shard
    /// engines after the throughput pass (`None` in `ScanMode::Nca`).
    overlay: Option<HybridStats>,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank]
}

fn main() {
    let config = parse_args();
    let say = |line: String| {
        if config.json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    say(format!(
        "flow-eval: Snort at scale {}, {} flows x {} rounds x {} B chunks, {} shard(s)",
        config.scale, config.flows, config.rounds, config.chunk, config.shards
    ));

    let ruleset = generate(BenchmarkId::Snort, config.scale, config.seed);
    let patterns = ruleset.pattern_strings();
    let start = Instant::now();
    let engine = Engine::builder()
        .patterns(&patterns)
        .shard_policy(ShardPolicy::Fixed(config.shards))
        .lossy(true)
        .build()
        .expect("lossy builds are infallible");
    say(format!(
        "compiled {} patterns ({} rejected) into {} shard(s) in {:.0} ms",
        engine.len(),
        engine.skipped().len(),
        engine.shard_count(),
        ms(start.elapsed())
    ));

    // Per-flow traffic, distinct per flow: planted matches by default,
    // background-only bytes under --benign (the production common case
    // the prefilter exists for).
    let per_flow = config.rounds * config.chunk;
    let plant_rate = if config.benign { 0.0 } else { 0.0005 };
    let streams: Vec<Vec<u8>> = (0..config.flows)
        .map(|fi| traffic(&ruleset, per_flow, plant_rate, config.seed * 31 + fi as u64))
        .collect();
    let total_bytes = (config.flows * per_flow) as f64;
    let mib = total_bytes / (1024.0 * 1024.0);

    let mut results: Vec<WorkerResult> = Vec::new();
    for &workers in &config.workers {
        // Throughput pass: one chunk per flow per round, batched runs —
        // the arrival pattern an IDS tap sees.
        let sched = engine.scheduler_with(workers);
        let run = Instant::now();
        for round in 0..config.rounds {
            let at = round * config.chunk;
            for (fi, bytes) in streams.iter().enumerate() {
                sched.push(fi as u64, &bytes[at..at + config.chunk]);
            }
            sched.run();
        }
        let elapsed = run.elapsed();
        // Sample the overlay counters before polling: flows stay open
        // (never closed), so every shard engine is still live.
        let overlay = sched.hybrid_stats();
        let hits: usize = (0..config.flows)
            .map(|fi| sched.poll(fi as u64).len())
            .sum();

        // Latency pass: one chunk scheduled at a time, each timed
        // push-to-merged individually, so the percentiles are a real
        // per-chunk distribution (flows x rounds samples) and a single
        // slow chunk is not averaged away into a round mean.
        let sched = engine.scheduler_with(workers);
        let mut per_chunk: Vec<Duration> = Vec::with_capacity(config.flows * config.rounds);
        for round in 0..config.rounds {
            let at = round * config.chunk;
            for (fi, bytes) in streams.iter().enumerate() {
                let t = Instant::now();
                sched.push(fi as u64, &bytes[at..at + config.chunk]);
                sched.run();
                per_chunk.push(t.elapsed());
            }
        }
        per_chunk.sort();
        results.push(WorkerResult {
            workers,
            mib_per_s: mib / elapsed.as_secs_f64(),
            p50: percentile(&per_chunk, 0.50),
            p99: percentile(&per_chunk, 0.99),
            hits,
            overlay,
        });
    }

    say(format!(
        "\n{:<8} {:>10} {:>12} {:>12} {:>8} {:>10} {:>9}",
        "workers", "MiB/s", "p50/chunk", "p99/chunk", "hits", "dfa-states", "dfa-bytes"
    ));
    for r in &results {
        let (states, hit_rate) = match &r.overlay {
            Some(s) => (
                s.dfa_states.to_string(),
                format!("{:.1}%", s.dfa_hit_rate() * 100.0),
            ),
            None => ("-".into(), "-".into()),
        };
        say(format!(
            "{:<8} {:>10.3} {:>9.1} us {:>9.1} us {:>8} {:>10} {:>9}",
            r.workers,
            r.mib_per_s,
            r.p50.as_secs_f64() * 1e6,
            r.p99.as_secs_f64() * 1e6,
            r.hits,
            states,
            hit_rate,
        ));
    }
    for r in &results {
        assert_eq!(
            r.hits, results[0].hits,
            "per-flow reports must not depend on the worker count"
        );
    }
    if let (Some(first), Some(last)) = (results.first(), results.last()) {
        if last.workers > first.workers {
            say(format!(
                "\nscaling {} -> {} workers: {:.2}x on {} core(s)",
                first.workers,
                last.workers,
                last.mib_per_s / first.mib_per_s.max(1e-9),
                std::thread::available_parallelism().map_or(1, |n| n.get())
            ));
        }
    }

    // ---- owned-service pass -----------------------------------------
    // The same arrival pattern through `Engine::serve_with` (owned
    // ServiceHandle: condvar-parked workers, generational FlowIds),
    // optionally hot-reloading an identical engine mid-run. With no
    // reload the service must report exactly the scheduler's matches;
    // with one, the only tolerated difference is a match straddling the
    // migration cut (checked warn-only in CI).
    let service_workers = *config.workers.last().expect("workers is non-empty");
    let reload_engine = config.reload.map(|_| {
        Engine::builder()
            .patterns(&patterns)
            .shard_policy(ShardPolicy::Fixed(config.shards))
            .lossy(true)
            .build()
            .expect("lossy builds are infallible")
    });
    let svc = engine.serve_with(service_workers, engine.serve_config());
    let ids: Vec<FlowId> = (0..config.flows).map(|_| svc.open_flow()).collect();
    let run = Instant::now();
    let mut reload_wall = Duration::ZERO;
    for round in 0..config.rounds {
        if config.reload == Some(round) {
            // Drain first so every flow migrates exactly at this round
            // boundary — the cut the zero-loss check reasons about.
            svc.barrier();
            let t = Instant::now();
            svc.reload(reload_engine.as_ref().expect("built when --reload is set"));
            reload_wall = t.elapsed();
        }
        let at = round * config.chunk;
        for (fi, bytes) in streams.iter().enumerate() {
            svc.push(ids[fi], &bytes[at..at + config.chunk]);
        }
        svc.barrier();
    }
    let service_elapsed = run.elapsed();
    let service_hits: usize = ids.iter().map(|id| svc.poll(*id).len()).sum();
    let metrics = svc.metrics();
    svc.shutdown();

    let baseline_hits = results[0].hits;
    let reload_lossless = service_hits == baseline_hits;
    match config.reload {
        None => assert!(
            reload_lossless,
            "without a reload the service must report exactly the scheduler's matches \
             (service {service_hits} vs scheduler {baseline_hits})"
        ),
        Some(round) => say(format!(
            "\nhot reload before round {round}: {:.2} ms wall, {} (service {service_hits} vs \
             scheduler {baseline_hits})",
            ms(reload_wall),
            if reload_lossless {
                "zero loss"
            } else {
                "LOSS at the migration cut"
            },
        )),
    }
    say(format!(
        "owned service ({service_workers} workers): {:.3} MiB/s, {service_hits} hits, \
         queue peak {}, epoch {}",
        mib / service_elapsed.as_secs_f64(),
        metrics.queue_depth_peak,
        metrics.epoch,
    ));

    // ---- prefilter pass ---------------------------------------------
    // The literal-prefilter (MPM) measurement: a SpamAssassin-profile
    // ruleset (every rule carries a required literal; the Snort set
    // above keeps its always-on Σ*-family rules in every shard, so
    // skipping never engages there) scanned over a benign and a
    // hit-heavy corpus, with the filter on and off. Same arrival
    // pattern as the scheduler pass.
    let spam_rules = generate(BenchmarkId::SpamAssassin, config.scale, config.seed);
    let spam_patterns = spam_rules.pattern_strings();
    let spam_engine = |mode: PrefilterMode| {
        Engine::builder()
            .patterns(&spam_patterns)
            .shard_policy(ShardPolicy::Fixed(config.shards))
            .prefilter(mode)
            .lossy(true)
            .build()
            .expect("lossy builds are infallible")
    };
    let pf_on = spam_engine(PrefilterMode::On);
    let pf_off = spam_engine(PrefilterMode::Off);
    let corpus = |rate: f64, salt: u64| -> Vec<Vec<u8>> {
        (0..config.flows)
            .map(|fi| {
                traffic(
                    &spam_rules,
                    per_flow,
                    rate,
                    config.seed * 131 + salt + fi as u64,
                )
            })
            .collect()
    };
    let benign_streams = corpus(0.0, 0);
    let hit_streams = corpus(0.002, 7919);
    // Best of three timed runs per configuration: the smoke corpora are
    // tiny, so a single timing is all scheduling noise.
    let drive = |engine: &Engine, streams: &[Vec<u8>]| {
        let mut best = 0.0f64;
        let mut stats = None;
        let mut hits = 0usize;
        for _ in 0..3 {
            let sched = engine.scheduler_with(service_workers);
            let run = Instant::now();
            for round in 0..config.rounds {
                let at = round * config.chunk;
                for (fi, bytes) in streams.iter().enumerate() {
                    sched.push(fi as u64, &bytes[at..at + config.chunk]);
                }
                sched.run();
            }
            let elapsed = run.elapsed();
            best = best.max(mib / elapsed.as_secs_f64());
            // Counters are deterministic, so any run's snapshot serves.
            stats = sched.prefilter_stats();
            hits = (0..config.flows)
                .map(|fi| sched.poll(fi as u64).len())
                .sum();
        }
        (best, stats, hits)
    };
    let (benign_on_mib, benign_stats, _) = drive(&pf_on, &benign_streams);
    let (benign_off_mib, _, _) = drive(&pf_off, &benign_streams);
    let (hit_on_mib, hit_stats, hit_on_hits) = drive(&pf_on, &hit_streams);
    let (hit_off_mib, _, hit_off_hits) = drive(&pf_off, &hit_streams);
    assert_eq!(
        hit_on_hits, hit_off_hits,
        "prefiltered output must be byte-identical to unfiltered"
    );
    let benign_stats = benign_stats.expect("pf_on was built with the filter");
    let hit_stats = hit_stats.expect("pf_on was built with the filter");
    let filterable = (config.flows * per_flow * pf_on.shard_count()) as f64;
    let skip_rate = benign_stats.total_skipped_bytes() as f64 / filterable.max(1.0);
    let benign_speedup = benign_on_mib / benign_off_mib.max(1e-9);
    let hit_speedup = hit_on_mib / hit_off_mib.max(1e-9);
    say(format!(
        "\nprefilter (SpamAssassin profile, {} rules, {} always-on, {} shard(s)):",
        pf_on.len(),
        benign_stats.always_on_rules,
        pf_on.shard_count(),
    ));
    say(format!(
        "  benign:    {benign_on_mib:>8.3} MiB/s on {benign_off_mib:>8.3} off \
         ({benign_speedup:.2}x), skip rate {:.1}%",
        skip_rate * 100.0,
    ));
    say(format!(
        "  hit-heavy: {hit_on_mib:>8.3} MiB/s on {hit_off_mib:>8.3} off \
         ({hit_speedup:.2}x), {} candidate wakes, {hit_on_hits} hits",
        hit_stats.candidate_hits,
    ));

    if config.json {
        // Machine-readable record for the CI perf-tracking artifact.
        let rows: Vec<String> = results
            .iter()
            .map(|r| {
                let overlay = match &r.overlay {
                    Some(s) => format!(
                        ",\"dfa_states\":{},\"dfa_hit_rate\":{:.4},\"fallback_bytes\":{}",
                        s.dfa_states,
                        s.dfa_hit_rate(),
                        s.fallback_bytes
                    ),
                    None => String::new(),
                };
                format!(
                    "{{\"workers\":{},\"mib_per_s\":{:.3},\"p50_us\":{:.1},\"p99_us\":{:.1},\"hits\":{}{}}}",
                    r.workers,
                    r.mib_per_s,
                    r.p50.as_secs_f64() * 1e6,
                    r.p99.as_secs_f64() * 1e6,
                    r.hits,
                    overlay
                )
            })
            .collect();
        let scan_mode = if results.iter().any(|r| r.overlay.is_some()) {
            "hybrid"
        } else {
            "nca"
        };
        let service_record = format!(
            "{{\"workers\":{service_workers},\"mib_per_s\":{:.3},\"hits\":{service_hits},\
             \"reload_round\":{},\"reload_wall_ms\":{:.3},\"reload_lossless\":{reload_lossless},\
             \"epoch\":{},\"reloads\":{},\"queue_depth_peak\":{},\"idle_evictions\":{},\
             \"budget_evictions\":{},\"backpressure\":{},\"scan_bytes\":{},\"scan_ns\":{},\
             \"faults\":{{\"quarantined_flows\":{},\"worker_restarts\":{},\
             \"shed_opens\":{},\"fail_stops\":{}}}{}{}}}",
            mib / service_elapsed.as_secs_f64(),
            config
                .reload
                .map_or("null".into(), |round| round.to_string()),
            ms(reload_wall),
            metrics.epoch,
            metrics.reloads,
            metrics.queue_depth_peak,
            metrics.idle_evictions,
            metrics.budget_evictions,
            metrics.backpressure,
            metrics.shard_scan_bytes.iter().sum::<u64>(),
            metrics.shard_scan_ns.iter().sum::<u64>(),
            metrics.faults.quarantined_flows,
            metrics.faults.worker_restarts,
            metrics.faults.shed_opens,
            metrics.faults.fail_stops,
            match &metrics.hybrid {
                Some(s) => format!(",\"dfa_hit_rate\":{:.4}", s.dfa_hit_rate()),
                None => String::new(),
            },
            match &metrics.prefilter {
                Some(p) => format!(
                    ",\"prefilter\":{{\"skipped_units\":{},\"skipped_bytes\":{},\
                     \"candidate_hits\":{},\"always_on_rules\":{}}}",
                    p.total_skipped_units(),
                    p.total_skipped_bytes(),
                    p.candidate_hits,
                    p.always_on_rules,
                ),
                None => String::new(),
            },
        );
        // The prefilter-pass record: the benign skip rate plus the
        // measured on-vs-off throughput deltas on both corpora.
        let prefilter_record = format!(
            "{{\"ruleset\":\"spamassassin\",\"patterns\":{},\"shards\":{},\
             \"always_on_rules\":{},\"benign_skip_rate\":{:.4},\
             \"benign_mib_per_s_on\":{:.3},\"benign_mib_per_s_off\":{:.3},\
             \"benign_speedup\":{:.3},\"hit_mib_per_s_on\":{:.3},\
             \"hit_mib_per_s_off\":{:.3},\"hit_speedup\":{:.3},\
             \"candidate_hits\":{},\"hits\":{}}}",
            pf_on.len(),
            pf_on.shard_count(),
            benign_stats.always_on_rules,
            skip_rate,
            benign_on_mib,
            benign_off_mib,
            benign_speedup,
            hit_on_mib,
            hit_off_mib,
            hit_speedup,
            hit_stats.candidate_hits,
            hit_on_hits,
        );
        println!(
            "{{\"bench\":\"flow_eval\",\"scale\":{},\"flows\":{},\"rounds\":{},\"chunk_bytes\":{},\
             \"shards\":{},\"patterns\":{},\"scan_mode\":\"{}\",\"benign\":{},\"results\":[{}],\
             \"service_metrics\":{},\"prefilter\":{}}}",
            config.scale,
            config.flows,
            config.rounds,
            config.chunk,
            engine.shard_count(),
            engine.len(),
            scan_mode,
            config.benign,
            rows.join(","),
            service_record,
            prefilter_record
        );
    }
}
