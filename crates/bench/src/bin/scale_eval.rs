//! scale-eval: compile a benchmark ruleset at scale with bank-aware
//! sharding and print the full-scale evaluation numbers the paper's
//! Table 1 / Fig. 9 discussion turns on — shard count, per-shard image
//! size, compile time, and aggregate scan throughput (parallel over
//! shards vs one thread over the same engines).
//!
//! ```sh
//! # Full-scale Snort (Table 1: 5839 rules), one CAMA bank per shard:
//! cargo run --release -p recama-bench --bin scale_eval
//! # Software-parallelism sweep at 10% scale on an 8-core box:
//! RECAMA_SCALE=0.1 RECAMA_SHARDS=8 cargo run --release -p recama-bench --bin scale_eval
//! # CI smoke (tiny scale, exercises the multi-shard path end to end):
//! RECAMA_SCALE=0.01 RECAMA_SHARDS=3 RECAMA_TRAFFIC=8192 \
//!     cargo run --release -p recama-bench --bin scale_eval
//! ```
//!
//! Knobs: `RECAMA_SCALE` (default **1.0** here, unlike the figure
//! binaries), `RECAMA_SHARDS` (override the bank policy with a fixed
//! shard count), `RECAMA_SEED`, `RECAMA_TRAFFIC`. With `--json`, stdout
//! carries ONLY a machine-readable record (for the CI perf-tracking
//! artifact) and the human-readable report moves to stderr.

use recama::hw::{place, RuleCost, ShardPolicy};
use recama::workloads::{generate, traffic, BenchmarkId};
use recama::{Engine, HybridStats, DEFAULT_STATE_BUDGET};
use recama_bench::{banner, ms, seed, traffic_len};
use std::time::Instant;

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    macro_rules! say {
        ($($arg:tt)*) => {
            if json { eprintln!($($arg)*) } else { println!($($arg)*) }
        };
    }
    // This binary defaults to the paper's full scale.
    let scale: f64 = std::env::var("RECAMA_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let policy = match std::env::var("RECAMA_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) => ShardPolicy::Fixed(n),
        None => ShardPolicy::default(),
    };
    let id = BenchmarkId::Snort;
    if json {
        eprintln!(
            "scale-eval: {} at scale {scale}, policy {policy:?}",
            id.name()
        );
    } else {
        banner(&format!(
            "scale-eval: {} at scale {scale}, policy {policy:?}",
            id.name()
        ));
    }

    let ruleset = generate(id, scale, seed());
    let patterns = ruleset.pattern_strings();
    let start = Instant::now();
    let engine = Engine::builder()
        .patterns(&patterns)
        .shard_policy(policy)
        .lossy(true)
        .build()
        .expect("lossy builds are infallible");
    let compile_time = start.elapsed();
    say!(
        "{} patterns ({} accepted, {} rejected), compiled+sharded in {:.0} ms",
        patterns.len(),
        engine.len(),
        engine.skipped().len(),
        ms(compile_time)
    );
    say!(
        "{} shard(s), shared alphabet: {} byte classes\n",
        engine.shard_count(),
        engine.set().multi().alphabet().len()
    );

    say!(
        "{:<6} {:>6} {:>7} {:>9} {:>9} {:>9} {:>6}",
        "shard",
        "rules",
        "nodes",
        "columns",
        "counters",
        "bv-bits",
        "banks"
    );
    let shown = engine.shard_count().min(16);
    for si in 0..shown {
        let network = engine.network(si);
        let cost = RuleCost::of_network(network);
        let placement = place(network);
        say!(
            "{:<6} {:>6} {:>7} {:>9} {:>9} {:>9} {:>6}",
            si,
            engine.set().shard_members(si).len(),
            network.node_count(),
            cost.columns,
            cost.counters,
            cost.bitvector_bits,
            placement.bank_count
        );
    }
    if shown < engine.shard_count() {
        say!("... ({} more shards)", engine.shard_count() - shown);
    }

    let input = traffic(&ruleset, traffic_len(), 0.0005, seed());
    // Warm-up + hit count.
    let hits = engine.scan(&input).len();

    // One thread over all shard engines, both scan modes: the exact
    // per-byte NCA engine (the paper-faithful baseline) vs the hybrid
    // lazy-DFA overlay the engine defaults to. Same total automaton
    // work, no parallelism — the mode comparison the overlay's speedup
    // claim rests on.
    let start = Instant::now();
    let mut nca_hits = 0usize;
    for shard in engine.set().multi().shards() {
        nca_hits += shard.engine().match_reports(&input).len();
    }
    let sequential_nca = start.elapsed();

    let start = Instant::now();
    let mut hybrid_hits = 0usize;
    let mut overlay = HybridStats::default();
    for shard in engine.set().multi().shards() {
        let mut hybrid = shard.hybrid_engine(DEFAULT_STATE_BUDGET);
        hybrid_hits += hybrid.match_reports(&input).len();
        overlay.merge(&hybrid.stats());
    }
    let sequential_hybrid = start.elapsed();

    // Parallel scan (one scoped thread per shard, engine-default mode).
    let start = Instant::now();
    let parallel_hits = engine.scan(&input).len();
    let parallel = start.elapsed();

    let mib = input.len() as f64 / (1024.0 * 1024.0);
    let nca_mib_s = mib / sequential_nca.as_secs_f64();
    let hybrid_mib_s = mib / sequential_hybrid.as_secs_f64();
    say!(
        "\nscan of {} bytes: {hits} reports \
         \n  sequential, exact NCA:  {:>8.1} ms ({:.3} MiB/s)\
         \n  sequential, hybrid:     {:>8.1} ms ({:.3} MiB/s) \
         [{:.2}x, {} DFA states, {:.1}% DFA bytes, {} fallback bytes]\
         \n  parallel over shards:   {:>8.1} ms ({:.3} MiB/s)\
         \n  speedup: {:.2}x on {} core(s)",
        input.len(),
        ms(sequential_nca),
        nca_mib_s,
        ms(sequential_hybrid),
        hybrid_mib_s,
        hybrid_mib_s / nca_mib_s.max(1e-9),
        overlay.dfa_states,
        overlay.dfa_hit_rate() * 100.0,
        overlay.fallback_bytes,
        ms(parallel),
        mib / parallel.as_secs_f64(),
        sequential_hybrid.as_secs_f64() / parallel.as_secs_f64().max(1e-9),
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    assert_eq!(
        parallel_hits, hits,
        "parallel scan must be deterministic across runs"
    );
    assert_eq!(
        hybrid_hits, nca_hits,
        "hybrid overlay must report exactly what the exact engine reports"
    );
    assert!(
        nca_hits >= hits,
        "per-shard engines must cover every report (streams skip the $-filter)"
    );

    if json {
        // Machine-readable record for the CI perf-tracking artifact.
        // `sequential_mib_per_s` keeps its historical meaning (the exact
        // NCA baseline); the `modes` rows carry the per-mode breakdown.
        println!(
            "{{\"bench\":\"scale_eval\",\"scale\":{scale},\"patterns\":{},\"accepted\":{},\
             \"shards\":{},\"byte_classes\":{},\"compile_ms\":{:.1},\"traffic_bytes\":{},\
             \"hits\":{hits},\"sequential_mib_per_s\":{:.3},\"parallel_mib_per_s\":{:.3},\
             \"speedup\":{:.3},\"modes\":[\
             {{\"scan_mode\":\"nca\",\"sequential_mib_per_s\":{:.3}}},\
             {{\"scan_mode\":\"hybrid\",\"sequential_mib_per_s\":{:.3},\
             \"state_budget\":{DEFAULT_STATE_BUDGET},\"dfa_states\":{},\
             \"dfa_hit_rate\":{:.4},\"fallback_bytes\":{}}}]}}",
            patterns.len(),
            engine.len(),
            engine.shard_count(),
            engine.set().multi().alphabet().len(),
            ms(compile_time),
            input.len(),
            nca_mib_s,
            mib / parallel.as_secs_f64(),
            sequential_nca.as_secs_f64() / parallel.as_secs_f64().max(1e-9),
            nca_mib_s,
            hybrid_mib_s,
            overlay.dfa_states,
            overlay.dfa_hit_rate(),
            overlay.fallback_bytes,
        );
    }
}
