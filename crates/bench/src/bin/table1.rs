//! Table 1: regex statistics per benchmark ruleset — total, supported,
//! counting, counter-ambiguous — measured by actually parsing and analyzing
//! the synthetic rulesets, next to the paper's published numbers.
//!
//! ```sh
//! RECAMA_SCALE=0.05 cargo run --release -p recama-bench --bin table1
//! ```

use recama::analysis::{CheckConfig, Method};
use recama::workloads::{generate, paper_table1, BenchmarkId};
use recama_bench::{analyze_patterns, banner, scale, seed};

fn main() {
    let scale = scale();
    banner(&format!(
        "Table 1: analysis of regexes in the benchmarks (synthetic rulesets, scale {scale})"
    ));
    println!(
        "{:<14} {:>8} {:>11} {:>10} {:>13}   paper row (full scale)",
        "Benchmark", "# total", "# supported", "# counting", "# c-ambiguous"
    );
    for id in BenchmarkId::ALL {
        let ruleset = generate(id, scale, seed());
        let patterns = ruleset.pattern_strings();
        let results = analyze_patterns(&patterns, Method::Hybrid, &CheckConfig::default());
        let total = results.len();
        let supported = results.iter().filter(|r| r.check.is_some()).count();
        let counting = results.iter().filter(|r| r.counting).count();
        let ambiguous = results
            .iter()
            .filter(|r| r.check.as_ref().is_some_and(|c| c.ambiguous == Some(true)))
            .count();
        let p = paper_table1(id);
        println!(
            "{:<14} {:>8} {:>11} {:>10} {:>13}   paper: {}/{}/{}/{}",
            id.name(),
            total,
            supported,
            counting,
            ambiguous,
            p.total,
            p.supported,
            p.counting,
            p.ambiguous
        );
    }
    println!("\n(Classification measured with the hybrid checker on the streaming form Σ*r.)");
}
