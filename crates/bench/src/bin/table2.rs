//! Table 2: hardware component parameters (energy / delay / area) used by
//! the cost model — the SPICE-derived TSMC 28 nm scalars of the paper —
//! plus the derived per-column figures and the single-cycle timing check.
//!
//! ```sh
//! cargo run --release -p recama-bench --bin table2
//! ```

use recama::hw::params;
use recama_bench::banner;

fn main() {
    banner("Table 2: hardware component parameters (TSMC 28 nm, SPICE-derived)");
    println!(
        "{:<22} {:>12} {:>11} {:>11}",
        "Component", "Energy (fJ)", "Delay (ps)", "Area (um2)"
    );
    for (name, p) in [
        ("CAMA bank (256 STE)", params::CAM_BLOCK),
        ("17-bit counter", params::COUNTER_MODULE),
        ("2000-bit vector", params::BITVECTOR_MODULE),
    ] {
        println!(
            "{:<22} {:>12.0} {:>11.0} {:>11.0}",
            name, p.energy_fj, p.delay_ps, p.area_um2
        );
    }
    println!();
    println!(
        "clock:                 {:.2} GHz ({:.0} ps cycle)",
        params::CLOCK_GHZ,
        params::CYCLE_PS
    );
    println!(
        "per-STE match energy:  {:.2} fJ/byte",
        params::match_energy_per_column_fj()
    );
    println!(
        "per-STE area:          {:.2} um2",
        params::area_per_column_um2()
    );
    println!(
        "single-cycle feasible: {} (CAM {:.0} ps + module {:.0} ps <= {:.0} ps)",
        params::single_cycle_feasible(),
        params::CAM_BLOCK.delay_ps,
        params::COUNTER_MODULE
            .delay_ps
            .max(params::BITVECTOR_MODULE.delay_ps),
        params::CYCLE_PS
    );
    println!(
        "=> counter/bit-vector operations add no performance penalty at CAMA-T's clock (§4.3)"
    );
}
