//! Shared harness for the table/figure regeneration binaries and the
//! criterion benches.
//!
//! Scale knobs (environment variables, so `cargo run --bin table1` works
//! out of the box and full-scale runs remain possible):
//!
//! * `RECAMA_SCALE` — ruleset scale factor (default 0.02; 1.0 = the paper's
//!   ruleset sizes);
//! * `RECAMA_SEED`  — generator seed (default 2022);
//! * `RECAMA_TRAFFIC` — input stream length in bytes (default 16384);
//! * `RECAMA_THREADS` — worker threads for ruleset analysis (default:
//!   available parallelism).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use recama::analysis::{check, CheckConfig, Method, RegexCheck};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Ruleset scale factor from `RECAMA_SCALE` (default 0.02).
pub fn scale() -> f64 {
    std::env::var("RECAMA_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02)
}

/// Generator seed from `RECAMA_SEED` (default 2022).
pub fn seed() -> u64 {
    std::env::var("RECAMA_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2022)
}

/// Traffic length from `RECAMA_TRAFFIC` (default 16 KiB).
pub fn traffic_len() -> usize {
    std::env::var("RECAMA_TRAFFIC")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16 * 1024)
}

/// Worker thread count from `RECAMA_THREADS` (default: hardware).
pub fn threads() -> usize {
    std::env::var("RECAMA_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .max(1)
}

/// Per-pattern analysis record produced by [`analyze_patterns`].
#[derive(Debug, Clone)]
pub struct PatternAnalysis {
    /// Index into the input pattern list.
    pub index: usize,
    /// μ(r) — max repetition upper bound.
    pub mu: u32,
    /// Whether the pattern has counting.
    pub counting: bool,
    /// The checker result (None when the pattern failed to parse).
    pub check: Option<RegexCheck>,
    /// Wall-clock analysis time.
    pub time: Duration,
}

/// Analyzes a whole pattern list in parallel (std scoped workers) in the
/// streaming form `Σ*r`, with the given checker method.
pub fn analyze_patterns(
    patterns: &[String],
    method: Method,
    config: &CheckConfig,
) -> Vec<PatternAnalysis> {
    let results: Mutex<Vec<Option<PatternAnalysis>>> = Mutex::new(vec![None; patterns.len()]);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads() {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= patterns.len() {
                    break;
                }
                let record = analyze_one(i, &patterns[i], method, config);
                results.lock().expect("no poisoned workers")[i] = Some(record);
            });
        }
    });
    results
        .into_inner()
        .expect("no poisoned workers")
        .into_iter()
        .map(|r| r.expect("all indices filled"))
        .collect()
}

fn analyze_one(
    index: usize,
    pattern: &str,
    method: Method,
    config: &CheckConfig,
) -> PatternAnalysis {
    let start = std::time::Instant::now();
    match recama::syntax::parse(pattern) {
        Ok(parsed) => {
            let stream = parsed.for_stream();
            let mu = stream.mu();
            let counting = stream.has_counting();
            let check = check(&stream, method, config);
            PatternAnalysis {
                index,
                mu,
                counting,
                check: Some(check),
                time: start.elapsed(),
            }
        }
        Err(_) => PatternAnalysis {
            index,
            mu: 0,
            counting: false,
            check: None,
            time: start.elapsed(),
        },
    }
}

/// Pretty milliseconds.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Prints a horizontal rule + title for figure binaries.
pub fn banner(title: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_have_defaults() {
        assert!(scale() > 0.0);
        assert!(traffic_len() > 0);
        assert!(threads() >= 1);
    }

    #[test]
    fn parallel_analysis_covers_all_patterns() {
        let patterns: Vec<String> = vec![
            "^a{20}b".into(),
            "x.{30}".into(),
            "notcounting".into(),
            "bad(".into(),
        ];
        let out = analyze_patterns(&patterns, Method::Hybrid, &CheckConfig::default());
        assert_eq!(out.len(), 4);
        assert!(out[0].check.as_ref().unwrap().ambiguous == Some(false));
        assert!(out[1].check.as_ref().unwrap().ambiguous == Some(true));
        assert!(!out[2].counting);
        assert!(out[3].check.is_none());
        assert_eq!(out[1].mu, 30);
    }
}
