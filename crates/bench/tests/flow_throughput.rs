//! Guards the many-flow scheduling acceptance claims on a synthetic
//! Snort workload: per-flow [`FlowScheduler`] reports must be
//! **byte-identical** to independent per-flow streams regardless of the
//! worker count, and — on machines with at least four cores — aggregate
//! throughput must scale at least 1.5x from one worker to four. The
//! timing half is skipped on smaller machines (a 1-core CI box cannot
//! demonstrate pool speedup); use `cargo run --release -p recama-bench
//! --bin flow_eval` for the full sweep.

use recama::hw::ShardPolicy;
use recama::workloads::{generate, traffic, BenchmarkId, PatternClass};
use recama::{Engine, FlowScheduler, SetMatch, ShardedPatternSet};
use std::time::Instant;

const FLOWS: usize = 16;
const CHUNK: usize = 2048;
const ROUNDS: usize = 8;

/// One full serving pass: round-robin chunk pushes with a run per round,
/// returning (wall time, total hits).
fn serve(
    set: &ShardedPatternSet,
    streams: &[Vec<u8>],
    workers: usize,
) -> (std::time::Duration, usize) {
    let sched = FlowScheduler::new(set, workers);
    let start = Instant::now();
    for round in 0..ROUNDS {
        let at = round * CHUNK;
        for (fi, bytes) in streams.iter().enumerate() {
            sched.push(fi as u64, &bytes[at..at + CHUNK]);
        }
        sched.run();
    }
    let elapsed = start.elapsed();
    let hits = (0..streams.len())
        .map(|fi| sched.poll(fi as u64).len())
        .sum();
    (elapsed, hits)
}

#[test]
fn flow_scheduler_is_byte_identical_and_scales_with_workers() {
    let ruleset = generate(BenchmarkId::Snort, 0.02, 2022);
    let patterns: Vec<String> = ruleset
        .patterns
        .iter()
        .filter(|(_, c)| *c != PatternClass::Unsupported)
        .map(|(p, _)| p.clone())
        .filter(|p| recama::syntax::parse(p).is_ok())
        .collect();
    assert!(
        patterns.len() >= 80,
        "degenerate workload: {}",
        patterns.len()
    );
    let set = Engine::builder()
        .patterns(&patterns)
        .shard_policy(ShardPolicy::Fixed(4))
        .build()
        .expect("sharded set compiles")
        .into_set();

    let streams: Vec<Vec<u8>> = (0..FLOWS)
        .map(|fi| traffic(&ruleset, ROUNDS * CHUNK, 0.0005, 2022 * 31 + fi as u64))
        .collect();

    // Acceptance: per-flow reports equal independent per-flow streams,
    // for 1 worker and 4 workers alike. Serves as warm-up for timing.
    for workers in [1usize, 4] {
        let sched = FlowScheduler::new(&set, workers);
        for round in 0..ROUNDS {
            let at = round * CHUNK;
            for (fi, bytes) in streams.iter().enumerate() {
                sched.push(fi as u64, &bytes[at..at + CHUNK]);
            }
            sched.run();
        }
        for (fi, bytes) in streams.iter().enumerate() {
            let mut stream = set.stream();
            let mut expected: Vec<SetMatch> = Vec::new();
            for chunk in bytes.chunks(CHUNK) {
                expected.extend(stream.feed(chunk));
            }
            assert_eq!(
                sched.poll(fi as u64),
                expected,
                "{workers} worker(s), flow {fi}: scheduler diverges from its stream"
            );
        }
    }

    // Best of three per pool size: one sample per side would let a
    // scheduler stall on a shared CI machine flip the comparison.
    let best = |workers: usize| {
        (0..3)
            .map(|_| serve(&set, &streams, workers))
            .min()
            .expect("three samples")
    };
    let (t1, h1) = best(1);
    let (t4, h4) = best(4);
    assert_eq!(h1, h4, "hit counts must not depend on the worker count");

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = t1.as_secs_f64() / t4.as_secs_f64().max(1e-9);
    println!(
        "snort 2%, {FLOWS} flows x {ROUNDS} x {CHUNK} B on {cores} cores: \
         1 worker {t1:?} vs 4 workers {t4:?} ({speedup:.2}x)"
    );
    // With 16 flows x 4 shards = 64 independent units, 4 workers have
    // ample parallel slack; 1.5x leaves headroom against CI noise.
    // RECAMA_SKIP_TIMING_ASSERTS=1 keeps the differential half while
    // muting the race on very noisy machines.
    let muted = std::env::var_os("RECAMA_SKIP_TIMING_ASSERTS").is_some();
    if cores >= 4 && !muted {
        assert!(
            speedup >= 1.5,
            "with {cores} cores, 4 workers must beat 1 worker by >= 1.5x \
             (got {speedup:.2}x: {t4:?} vs {t1:?})"
        );
    } else {
        println!("(timing assertion skipped: {cores} core(s), muted = {muted})");
    }
}
