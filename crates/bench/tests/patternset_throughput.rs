//! Guards the acceptance claim of the multi-pattern subsystem: on the
//! 1%-scale synthetic Snort workload, one scan of the shared
//! [`PatternSet`] engine is faster than running every [`Pattern`] engine
//! over the input separately. The margin is enormous (the loop pays
//! per-pattern full-automaton sweeps per byte; the shared engine visits
//! only the live frontier once), so a plain faster-than assertion is
//! stable even on noisy CI machines.

use recama::hw::ShardPolicy;
use recama::workloads::{generate, traffic, BenchmarkId, PatternClass};
use recama::{Engine, PatternSet};
use std::time::Instant;

#[test]
fn shared_engine_beats_pattern_loop_on_snort() {
    let ruleset = generate(BenchmarkId::Snort, 0.01, 2022);
    let patterns: Vec<String> = ruleset
        .patterns
        .iter()
        .filter(|(_, c)| *c != PatternClass::Unsupported)
        .map(|(p, _)| p.clone())
        .filter(|p| recama::syntax::parse(p).is_ok())
        .collect();
    assert!(
        patterns.len() >= 40,
        "degenerate workload: {}",
        patterns.len()
    );
    let input = traffic(&ruleset, 8 * 1024, 0.001, 2022);

    let set = Engine::builder()
        .patterns(&patterns)
        .shard_policy(ShardPolicy::Single)
        .build()
        .expect("set compiles")
        .into_set();
    let baseline = PatternSet::compile_baseline(&patterns).expect("baseline compiles");

    // Warm-up + correctness cross-check in the same pass.
    let shared_hits = set.find_ends(&input).len();
    let loop_hits: usize = baseline.iter().map(|p| p.find_ends(&input).len()).sum();
    assert_eq!(
        shared_hits, loop_hits,
        "engines disagree; timing is meaningless"
    );

    let start = Instant::now();
    let n = set.find_ends(&input).len();
    let shared_time = start.elapsed();

    let start = Instant::now();
    let m: usize = baseline.iter().map(|p| p.find_ends(&input).len()).sum();
    let loop_time = start.elapsed();

    assert_eq!(n, m);
    assert!(
        shared_time < loop_time,
        "shared engine must beat the loop-over-patterns baseline: \
         shared {shared_time:?} vs loop {loop_time:?}"
    );
    println!(
        "snort 1%: shared {shared_time:?} vs loop {loop_time:?} ({:.1}x)",
        loop_time.as_secs_f64() / shared_time.as_secs_f64().max(1e-9)
    );
}
