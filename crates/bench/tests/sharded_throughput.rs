//! Guards the sharding acceptance claims on a synthetic Snort workload:
//! the sharded parallel scan must be **byte-identical** to the unsharded
//! [`PatternSet`] scan (reports *and* order), and — on machines with at
//! least four cores — the parallel multi-engine must beat the single
//! shared engine. The timing half is skipped on smaller machines (a
//! 1-core CI box cannot demonstrate parallel speedup); use
//! `RECAMA_SCALE=0.1 RECAMA_SHARDS=8 cargo run --release -p recama-bench
//! --bin scale_eval` for the full 10%-scale measurement.

use recama::hw::ShardPolicy;
use recama::workloads::{generate, traffic, BenchmarkId, PatternClass};
use recama::Engine;
use std::time::Instant;

#[test]
fn sharded_scan_is_byte_identical_and_scales_with_cores() {
    let ruleset = generate(BenchmarkId::Snort, 0.02, 2022);
    let patterns: Vec<String> = ruleset
        .patterns
        .iter()
        .filter(|(_, c)| *c != PatternClass::Unsupported)
        .map(|(p, _)| p.clone())
        .filter(|p| recama::syntax::parse(p).is_ok())
        .collect();
    assert!(
        patterns.len() >= 80,
        "degenerate workload: {}",
        patterns.len()
    );
    let input = traffic(&ruleset, 16 * 1024, 0.001, 2022);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let shards = cores.clamp(2, 8);
    let single = Engine::builder()
        .patterns(&patterns)
        .shard_policy(ShardPolicy::Single)
        .build()
        .expect("single set compiles")
        .into_set();
    let sharded = Engine::builder()
        .patterns(&patterns)
        .shard_policy(ShardPolicy::Fixed(shards))
        .build()
        .expect("sharded set compiles")
        .into_set();
    assert_eq!(sharded.shard_count(), shards);

    // Acceptance: byte-identical reports, same order, no sort. This also
    // serves as the warm-up pass for the timing below.
    let expected = single.find_ends(&input);
    assert_eq!(
        sharded.find_ends(&input),
        expected,
        "sharded parallel scan diverges from the single shared engine"
    );

    // Best of three per engine: one sample per side would let a single
    // scheduler stall on a shared CI machine flip the comparison.
    let best = |f: &dyn Fn() -> usize| {
        (0..3)
            .map(|_| {
                let start = Instant::now();
                let hits = f();
                (start.elapsed(), hits)
            })
            .min()
            .expect("three samples")
    };
    let (single_time, n) = best(&|| single.find_ends(&input).len());
    let (sharded_time, m) = best(&|| sharded.find_ends(&input).len());
    assert_eq!(n, m);

    println!(
        "snort 2%, {shards} shards on {cores} cores: single {single_time:?} vs \
         sharded {sharded_time:?} ({:.2}x)",
        single_time.as_secs_f64() / sharded_time.as_secs_f64().max(1e-9)
    );
    // Expected margin on >= 4 cores is ~2x or better, so best-of-3 leaves
    // plenty of headroom against CI noise; RECAMA_SKIP_TIMING_ASSERTS=1
    // keeps the byte-identical half while muting the race on very noisy
    // machines.
    let muted = std::env::var_os("RECAMA_SKIP_TIMING_ASSERTS").is_some();
    if cores >= 4 && !muted {
        assert!(
            sharded_time < single_time,
            "with {cores} cores the parallel scan must beat the single engine: \
             sharded {sharded_time:?} vs single {single_time:?}"
        );
    } else {
        println!("(timing assertion skipped: {cores} core(s), muted = {muted})");
    }
}
