//! NCA → MNRL code generation.
//!
//! Every position state becomes an STE; every surviving counter becomes a
//! counter or bit-vector module wired through the port discipline of
//! Figs. 6–7:
//!
//! * entry edges `p → first(body)` stay direct STE connections, and `p`
//!   additionally drives the module's `pre` port (the module resets when
//!   `pre` was active and `fst` fires);
//! * loop edges `last(body) → first(body)` are *replaced* by the module's
//!   `en_fst` (counter) / `en_body` (bit vector) output;
//! * exit edges `last(body) → q` are replaced by the module's `en_out`;
//! * body STEs feed the module's `fst`/`lst` (counter) or `body`
//!   (bit vector) inputs;
//! * a finalization predicate over the counter turns into `report` on the
//!   module (its `en_out` condition *is* the acceptance test).
//!
//! Precondition (established by the pipeline's nesting resolution): every
//! transition touches at most one surviving counter, i.e. modules are never
//! nested.

use crate::pipeline::ModuleKind;
use recama_mnrl::{Connection, Enable, MnrlNetwork, Node, NodeKind, Port};
use recama_nca::{ActionOp, CounterId, GuardAtom, Nca, StateId, Transition};
use std::collections::HashSet;

fn ste_id(q: StateId) -> String {
    format!("s{}", q.0)
}

fn module_id(c: CounterId) -> String {
    format!("m{}", c.0)
}

/// Facts about one transition relative to the module counters.
struct EdgeShape {
    /// Counter entered (`x := 1` action), if any.
    entered: Option<CounterId>,
    /// Counter incremented (loop edge), if any.
    looped: Option<CounterId>,
    /// Counter tested by an exit guard (without being incremented), if any.
    exited: Option<CounterId>,
}

fn classify(t: &Transition) -> EdgeShape {
    let mut entered = None;
    let mut looped = None;
    for op in &t.actions {
        match op {
            ActionOp::Set(c, v) => {
                debug_assert_eq!(*v, 1, "entry actions set counters to 1");
                debug_assert!(
                    entered.is_none(),
                    "multiple entries per edge (nested modules?)"
                );
                entered = Some(*c);
            }
            ActionOp::Inc(c) | ActionOp::IncSat(c, _) => {
                debug_assert!(
                    looped.is_none(),
                    "multiple loops per edge (nested modules?)"
                );
                looped = Some(*c);
            }
        }
    }
    let mut exited = None;
    for atom in &t.guard {
        let c = atom.counter();
        if looped == Some(c) {
            continue; // the `x < n` guard of the loop edge
        }
        match atom {
            GuardAtom::Range(..) | GuardAtom::Ge(..) | GuardAtom::Eq(..) => {
                debug_assert!(
                    exited.is_none() || exited == Some(c),
                    "exit guards over two counters (nested modules?)"
                );
                exited = Some(c);
            }
            GuardAtom::Lt(..) => {
                debug_assert!(looped == Some(c), "Lt guard without increment");
            }
        }
    }
    EdgeShape {
        entered,
        looped,
        exited,
    }
}

/// Emits the MNRL network for `nca`, realizing counter `k` with
/// `modules[k]`.
///
/// # Panics
///
/// Panics if `modules.len() != nca.counters().len()` or if the automaton
/// violates the no-nested-modules precondition (debug builds).
pub fn emit(nca: &Nca, modules: &[ModuleKind], id: &str) -> MnrlNetwork {
    assert_eq!(
        modules.len(),
        nca.counters().len(),
        "one module kind per counter"
    );
    let mut net = MnrlNetwork::new(id);

    // Shells for STEs (skip q0).
    struct Shell {
        enable: Enable,
        report: bool,
        connections: HashSet<Connection>,
    }
    let mut ste: Vec<Shell> = (0..nca.state_count())
        .map(|_| Shell {
            enable: Enable::OnActivateIn,
            report: false,
            connections: HashSet::new(),
        })
        .collect();
    let mut module_shell: Vec<Shell> = (0..nca.counters().len())
        .map(|_| Shell {
            enable: Enable::OnActivateIn,
            report: false,
            connections: HashSet::new(),
        })
        .collect();

    // Reports: pure acceptance on the STE; counter-guarded acceptance on
    // the module.
    for (qi, state) in nca.states().iter().enumerate().skip(1) {
        for conj in &state.accepts {
            if conj.is_empty() {
                ste[qi].report = true;
            } else {
                let c = conj[0].counter();
                debug_assert!(
                    conj.iter().all(|a| a.counter() == c),
                    "acceptance over two counters (nested modules?)"
                );
                module_shell[c.index()].report = true;
                // The accepting state is a `lst` source for the module.
                module_port_in(
                    &mut ste[qi].connections,
                    StateId(qi as u32),
                    c,
                    modules,
                    true,
                );
            }
        }
    }

    for t in nca.transitions() {
        let shape = classify(t);
        let from_q0 = t.from == StateId::INIT;
        if let Some(c) = shape.entered {
            if from_q0 {
                module_shell[c.index()].enable = Enable::OnStartAndActivateIn;
            } else {
                ste[t.from.index()].connections.insert(Connection {
                    from_port: Port::Main,
                    to: module_id(c),
                    to_port: Port::Pre,
                });
            }
            // The entry target is a `fst` input of the module.
            module_port_in(&mut ste[t.to.index()].connections, t.to, c, modules, false);
        }
        if let Some(c) = shape.looped {
            // Loop edges are mediated by the module.
            let out_port = match modules[c.index()] {
                ModuleKind::Counter => Port::EnFst,
                ModuleKind::BitVector => Port::EnBody,
            };
            module_shell[c.index()].connections.insert(Connection {
                from_port: out_port,
                to: ste_id(t.to),
                to_port: Port::Main,
            });
            // Loop source is `lst`, loop target is `fst`.
            module_port_in(
                &mut ste[t.from.index()].connections,
                t.from,
                c,
                modules,
                true,
            );
            module_port_in(&mut ste[t.to.index()].connections, t.to, c, modules, false);
            continue;
        }
        if let Some(c) = shape.exited {
            module_shell[c.index()].connections.insert(Connection {
                from_port: Port::EnOut,
                to: ste_id(t.to),
                to_port: Port::Main,
            });
            module_port_in(
                &mut ste[t.from.index()].connections,
                t.from,
                c,
                modules,
                true,
            );
            continue;
        }
        // Direct STE→STE activation (includes entry edges).
        if from_q0 {
            ste[t.to.index()].enable = Enable::OnStartAndActivateIn;
        } else {
            ste[t.from.index()].connections.insert(Connection {
                from_port: Port::Main,
                to: ste_id(t.to),
                to_port: Port::Main,
            });
        }
    }

    for (qi, state) in nca.states().iter().enumerate().skip(1) {
        let shell = &ste[qi];
        let mut connections: Vec<Connection> = shell.connections.iter().cloned().collect();
        connections.sort_by(|a, b| {
            (a.to.clone(), a.to_port.name()).cmp(&(b.to.clone(), b.to_port.name()))
        });
        net.add_node(Node {
            id: ste_id(StateId(qi as u32)),
            kind: NodeKind::State {
                symbol_set: state.class,
            },
            enable: shell.enable,
            report: shell.report,
            report_id: None,
            connections,
        });
    }
    for (k, info) in nca.counters().iter().enumerate() {
        let shell = &module_shell[k];
        let kind = match modules[k] {
            ModuleKind::Counter => NodeKind::Counter {
                min: info.min,
                max: info.max,
            },
            ModuleKind::BitVector => {
                let n = info.max.expect("bit vectors require bounded repetition");
                NodeKind::BitVector {
                    size: n,
                    lo: info.min,
                    hi: n,
                }
            }
        };
        let mut connections: Vec<Connection> = shell.connections.iter().cloned().collect();
        connections.sort_by(|a, b| {
            (a.to.clone(), a.to_port.name()).cmp(&(b.to.clone(), b.to_port.name()))
        });
        net.add_node(Node {
            id: module_id(CounterId(k as u32)),
            kind,
            enable: shell.enable,
            report: shell.report,
            report_id: None,
            connections,
        });
    }
    net
}

/// Adds the `STE.main → module.{fst|lst|body}` input connection.
fn module_port_in(
    connections: &mut HashSet<Connection>,
    _state: StateId,
    c: CounterId,
    modules: &[ModuleKind],
    is_last: bool,
) {
    let to_port = match modules[c.index()] {
        ModuleKind::BitVector => Port::Body,
        ModuleKind::Counter => {
            if is_last {
                Port::Lst
            } else {
                Port::Fst
            }
        }
    };
    connections.insert(Connection {
        from_port: Port::Main,
        to: module_id(c),
        to_port,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compile, CompileOptions};
    use recama_mnrl::NodeKind as NK;
    use recama_syntax::parse;

    /// Fig. 6: a(bc){m,n}d with a counter module.
    #[test]
    fn figure_6_wiring() {
        let parsed = parse("^a(bc){3,7}d").unwrap();
        let out = compile(&parsed.for_stream(), &CompileOptions::default());
        let net = &out.network;
        assert!(net.validate().is_empty(), "{:?}", net.validate());
        assert_eq!(out.modules, vec![ModuleKind::Counter]);
        // Find the module and the STEs by class.
        let module = net
            .nodes()
            .iter()
            .find(|n| matches!(n.kind, NK::Counter { .. }))
            .expect("counter module");
        assert_eq!(
            module.kind,
            NK::Counter {
                min: 3,
                max: Some(7)
            }
        );
        // a drives pre; b is fst (from a's entry and the loop); c is lst.
        let find_ste = |byte: u8| {
            net.nodes()
                .iter()
                .find(|n| match &n.kind {
                    NK::State { symbol_set } => symbol_set.len() == 1 && symbol_set.contains(byte),
                    _ => false,
                })
                .unwrap_or_else(|| panic!("STE for {}", byte as char))
        };
        let a = find_ste(b'a');
        let b = find_ste(b'b');
        let c = find_ste(b'c');
        let d = find_ste(b'd');
        assert!(a
            .connections
            .iter()
            .any(|x| x.to == module.id && x.to_port == Port::Pre));
        assert!(a
            .connections
            .iter()
            .any(|x| x.to == b.id && x.to_port == Port::Main));
        assert!(b
            .connections
            .iter()
            .any(|x| x.to == module.id && x.to_port == Port::Fst));
        assert!(c
            .connections
            .iter()
            .any(|x| x.to == module.id && x.to_port == Port::Lst));
        // Module outputs: en_fst → b, en_out → d.
        assert!(module
            .connections
            .iter()
            .any(|x| x.from_port == Port::EnFst && x.to == b.id));
        assert!(module
            .connections
            .iter()
            .any(|x| x.from_port == Port::EnOut && x.to == d.id));
        // No direct c→b loop connection (the module owns the loop).
        assert!(!c.connections.iter().any(|x| x.to == b.id));
        // d reports (end of the pattern).
        assert!(d.report);
    }

    /// Fig. 7: [ab]*a[ab]{m,n}b with a bit-vector module.
    #[test]
    fn figure_7_wiring() {
        let parsed = parse("^[ab]*a[ab]{3,5}b").unwrap();
        let out = compile(&parsed.for_stream(), &CompileOptions::default());
        let net = &out.network;
        assert!(net.validate().is_empty(), "{:?}", net.validate());
        assert_eq!(out.modules, vec![ModuleKind::BitVector]);
        let bv = net
            .nodes()
            .iter()
            .find(|n| matches!(n.kind, NK::BitVector { .. }))
            .expect("bit vector module");
        assert_eq!(
            bv.kind,
            NK::BitVector {
                size: 5,
                lo: 3,
                hi: 5
            }
        );
        // The [ab] body STE feeds `body`, en_body loops back to it.
        let body = net
            .nodes()
            .iter()
            .find(|n| {
                n.connections
                    .iter()
                    .any(|c| c.to == bv.id && c.to_port == Port::Body)
            })
            .expect("body STE");
        assert!(bv
            .connections
            .iter()
            .any(|c| c.from_port == Port::EnBody && c.to == body.id));
        assert!(bv.connections.iter().any(|c| c.from_port == Port::EnOut));
    }

    #[test]
    fn report_on_module_when_pattern_ends_in_counting() {
        // Σ*a{10}: acceptance is `x = 10`, carried by the module.
        let parsed = parse("a{10}").unwrap();
        let out = compile(&parsed.for_stream(), &CompileOptions::default());
        let module = out
            .network
            .nodes()
            .iter()
            .find(|n| !matches!(n.kind, NK::State { .. }))
            .expect("module");
        assert!(module.report);
        // No STE reports.
        assert!(out
            .network
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, NK::State { .. }))
            .all(|n| !n.report));
    }

    #[test]
    fn start_anchored_module_enable() {
        // ^a{5}b: the repetition starts the pattern, so the module is
        // start-enabled (virtual pre at time 0).
        let parsed = parse("^a{5}b").unwrap();
        let out = compile(&parsed.for_stream(), &CompileOptions::default());
        let module = out
            .network
            .nodes()
            .iter()
            .find(|n| !matches!(n.kind, NK::State { .. }))
            .expect("module");
        assert_eq!(module.enable, Enable::OnStartAndActivateIn);
    }

    #[test]
    fn pure_nfa_emits_states_only() {
        let parsed = parse("^ab*c").unwrap();
        let out = compile(&parsed.for_stream(), &CompileOptions::default());
        assert_eq!(out.network.counts_by_type(), (3, 0, 0));
        let c_ste = out
            .network
            .nodes()
            .iter()
            .find(|n| n.report)
            .expect("reporting STE");
        match &c_ste.kind {
            NK::State { symbol_set } => assert!(symbol_set.contains(b'c')),
            _ => panic!("report should sit on the c STE"),
        }
    }
}
