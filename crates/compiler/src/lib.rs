//! # recama-compiler
//!
//! The regex-to-hardware compiler of *Software-Hardware Codesign for
//! Efficient In-Memory Regular Pattern Matching* (PLDI 2022), §4.2: it
//! parses/simplifies a pattern, runs the counter-ambiguity analysis, picks
//! a hardware realization for every counting occurrence — **counter
//! module** (counter-unambiguous), **bit-vector module** (counter-ambiguous
//! `σ{m,n}`), or **partial unfolding** (everything else) — and emits an
//! MNRL network that `recama-hw` can place and simulate.
//!
//! ## Example
//!
//! ```
//! use recama_compiler::{compile, CompileOptions, ModuleKind};
//!
//! let parsed = recama_syntax::parse(r"^foo[^\n]{100}bar").unwrap();
//! let out = compile(&parsed.for_stream(), &CompileOptions::default());
//! assert_eq!(out.modules, vec![ModuleKind::Counter]);
//! println!("{}", out.network.to_json());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod codegen;
mod pipeline;

pub use codegen::emit;
pub use pipeline::{
    compile, compile_ruleset, merge_rule_networks, CompileOptions, CompileOutput, CompileReport,
    ModuleKind, RulesetOutput, BITVECTOR_DEFAULT_CAPACITY, COUNTER_MAX_BOUND,
};
