//! The regex-to-hardware compilation pipeline (§4.2 of the paper):
//!
//! 1. rewrite/simplify (upper bounds < 2 unfolded, classes merged);
//! 2. unfold counting occurrences up to the configured threshold (the knob
//!    swept in Fig. 9/Fig. 10);
//! 3. run the counter-ambiguity analysis;
//! 4. pick a module per surviving occurrence: **counter** for
//!    (block-)unambiguous occurrences, **bit vector** for ambiguous
//!    single-class bounded `σ{m,n}`, **partial unfolding** for everything
//!    else — then iterate, because unfolding exposes fresh occurrences;
//! 5. emit the MNRL network.

use crate::codegen;
use recama_analysis::{analyze_nca, AnalysisStats, ExactConfig, NcaAnalysis, StopPolicy};
use recama_mnrl::MnrlNetwork;
use recama_nca::{unfold, unfold_one, Nca, UnfoldPolicy};
use recama_syntax::{normalize_for_nca, Regex, RepeatId};
use std::collections::HashSet;

/// Largest value the 17-bit hardware counter module can hold (Table 2).
pub const COUNTER_MAX_BOUND: u32 = (1 << 17) - 1;

/// Default physical bit-vector module length (Table 2: 2000-bit vector).
pub const BITVECTOR_DEFAULT_CAPACITY: u32 = 2000;

/// Compiler configuration.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Which counting occurrences to unfold eagerly (the Fig. 9 threshold).
    /// `None` (the default) unfolds nothing beyond the `< 2` rewrites.
    pub unfold: UnfoldPolicy,
    /// Largest repetition bound a bit-vector module supports.
    pub bitvector_capacity: u32,
    /// Token-pair budget per analysis exploration.
    pub analysis_budget: u64,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            unfold: UnfoldPolicy::None,
            bitvector_capacity: BITVECTOR_DEFAULT_CAPACITY,
            analysis_budget: 2_000_000,
        }
    }
}

/// Hardware realization chosen for one surviving counting occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModuleKind {
    /// Counter module (Fig. 6): one `O(log n)`-bit register.
    Counter,
    /// Bit-vector module (Fig. 7): `n` bits with set-first/shift/disjunct.
    BitVector,
}

/// Result of compiling one regex.
#[derive(Debug)]
pub struct CompileOutput {
    /// The emitted network.
    pub network: MnrlNetwork,
    /// The final normalized regex the network implements.
    pub normalized: Regex,
    /// The final NCA (reference model for simulation cross-checks).
    pub nca: Nca,
    /// Module selection per final counter (indexed like `nca.counters()`).
    pub modules: Vec<ModuleKind>,
    /// Analysis result of the final automaton.
    pub analysis: NcaAnalysis,
    /// Pipeline telemetry.
    pub report: CompileReport,
}

/// Pipeline telemetry.
#[derive(Debug, Clone, Default)]
pub struct CompileReport {
    /// Number of analyze→decide→unfold iterations.
    pub iterations: u32,
    /// Counting occurrences removed by (threshold or fallback) unfolding.
    pub unfolded_occurrences: u32,
    /// Aggregated analysis statistics across iterations.
    pub analysis_stats: AnalysisStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decision {
    Counter,
    BitVector,
    Unfold,
}

/// Compiles a regex to an MNRL network.
///
/// The caller chooses the matching discipline first (e.g.
/// [`recama_syntax::Parsed::for_stream`] for the streaming `Σ*r` form the
/// accelerators execute).
///
/// # Examples
///
/// ```
/// use recama_compiler::{compile, CompileOptions, ModuleKind};
/// let parsed = recama_syntax::parse("a(bc){10,20}d").unwrap();
/// let out = compile(&parsed.for_stream(), &CompileOptions::default());
/// // Counter-unambiguous: implemented with one counter module.
/// assert_eq!(out.modules, vec![ModuleKind::Counter]);
/// assert!(out.network.validate().is_empty());
/// ```
pub fn compile(regex: &Regex, options: &CompileOptions) -> CompileOutput {
    let mut report = CompileReport::default();
    // Step 2: eager threshold unfolding.
    let pre_unfold_occs = regex.repeats().len() as u32;
    let mut current = unfold(regex, options.unfold);
    report.unfolded_occurrences += pre_unfold_occs - current.repeats().len() as u32;

    let max_iterations = 12;
    loop {
        report.iterations += 1;
        let normalized = normalize_for_nca(&current);
        let nca = recama_analysis::glushkov_build(&normalized);
        if nca.counters().is_empty() {
            let analysis = analyze_nca(&nca, &exact_cfg(options));
            report.analysis_stats += analysis.stats;
            let network = codegen::emit(&nca, &[], "regex");
            return CompileOutput {
                network,
                normalized,
                nca,
                modules: Vec::new(),
                analysis,
                report,
            };
        }
        let analysis = analyze_nca(&nca, &exact_cfg(options));
        report.analysis_stats += analysis.stats;

        let infos = normalized.repeats();
        debug_assert_eq!(infos.len(), nca.counters().len());
        let mut decisions: Vec<Decision> = infos
            .iter()
            .enumerate()
            .map(|(k, info)| {
                let bound = info.max.unwrap_or(info.min);
                let block_unambiguous = analysis.complete && !analysis.block_ambiguous_counters[k];
                if block_unambiguous && bound <= COUNTER_MAX_BOUND {
                    Decision::Counter
                } else if info.single_class_body.is_some()
                    && info.max.is_some()
                    && bound <= options.bitvector_capacity
                {
                    Decision::BitVector
                } else {
                    Decision::Unfold
                }
            })
            .collect();
        resolve_nesting(&infos, &mut decisions);

        let to_unfold: HashSet<RepeatId> = infos
            .iter()
            .zip(&decisions)
            .filter(|(_, d)| **d == Decision::Unfold)
            .map(|(i, _)| i.id)
            .collect();

        if to_unfold.is_empty() {
            let modules = decisions
                .iter()
                .map(|d| match d {
                    Decision::Counter => ModuleKind::Counter,
                    Decision::BitVector => ModuleKind::BitVector,
                    Decision::Unfold => unreachable!("unfold set is empty"),
                })
                .collect::<Vec<_>>();
            let network = codegen::emit(&nca, &modules, "regex");
            return CompileOutput {
                network,
                normalized,
                nca,
                modules,
                analysis,
                report,
            };
        }
        report.unfolded_occurrences += to_unfold.len() as u32;
        current = unfold_by_ids(&normalized, &to_unfold);
        if report.iterations >= max_iterations {
            // Safety valve: unfold everything that is left.
            current = unfold(&current, UnfoldPolicy::All);
        }
    }
}

fn exact_cfg(options: &CompileOptions) -> ExactConfig {
    ExactConfig {
        max_pairs: options.analysis_budget,
        witness: false,
        stop: StopPolicy::FullClassification,
    }
}

/// Resolves nested module conflicts: a counter/bit-vector module cannot
/// contain another module in its body (ports connect STEs), so for every
/// module-decided ancestor/descendant pair the lighter one (smaller
/// unfolding cost `bound × body_leaves`) is demoted to unfolding.
fn resolve_nesting(infos: &[recama_syntax::RepeatInfo], decisions: &mut [Decision]) {
    let weight = |i: usize| -> u64 {
        let info = &infos[i];
        u64::from(info.max.unwrap_or(info.min)) * info.body_leaves.max(1) as u64
    };
    let mut stack: Vec<usize> = Vec::new();
    for i in 0..infos.len() {
        while let Some(&top) = stack.last() {
            if infos[top].depth >= infos[i].depth {
                stack.pop();
            } else {
                break;
            }
        }
        if decisions[i] != Decision::Unfold {
            if let Some(&anc) = stack
                .iter()
                .rev()
                .find(|&&a| decisions[a] != Decision::Unfold)
            {
                if weight(i) > weight(anc) {
                    decisions[anc] = Decision::Unfold;
                } else {
                    decisions[i] = Decision::Unfold;
                }
            }
        }
        stack.push(i);
    }
}

/// Unfolds exactly the counting occurrences in `ids` (numbering per
/// [`Regex::repeats`] of `regex`); language-preserving.
fn unfold_by_ids(regex: &Regex, ids: &HashSet<RepeatId>) -> Regex {
    fn walk(r: &Regex, next: &mut usize, ids: &HashSet<RepeatId>) -> Regex {
        match r {
            Regex::Empty | Regex::Void | Regex::Class(_) => r.clone(),
            Regex::Concat(parts) => {
                Regex::concat(parts.iter().map(|p| walk(p, next, ids)).collect())
            }
            Regex::Alt(parts) => Regex::alt(parts.iter().map(|p| walk(p, next, ids)).collect()),
            Regex::Star(inner) => Regex::star(walk(inner, next, ids)),
            Regex::Repeat { inner, min, max } => {
                if Regex::is_plain_iteration(*min, *max) {
                    return Regex::Repeat {
                        inner: Box::new(walk(inner, next, ids)),
                        min: *min,
                        max: *max,
                    };
                }
                let id = RepeatId(*next);
                *next += 1;
                let body = walk(inner, next, ids);
                if ids.contains(&id) {
                    unfold_one(body, *min, *max)
                } else {
                    Regex::Repeat {
                        inner: Box::new(body),
                        min: *min,
                        max: *max,
                    }
                }
            }
        }
    }
    let mut next = 0;
    walk(regex, &mut next, ids)
}

/// Compiles a whole ruleset into one merged network (rule `i` gets node-id
/// prefix `r{i}_`). Patterns that fail to parse are skipped and reported.
pub struct RulesetOutput {
    /// Merged network for the entire ruleset.
    pub network: MnrlNetwork,
    /// Per-rule outputs (same order as the accepted patterns).
    pub rules: Vec<CompileOutput>,
    /// Original pattern index of each accepted rule (parallel to
    /// `rules`); reporting nodes of rule `k` carry `report_id = k`.
    pub rule_sources: Vec<usize>,
    /// (index, error message) of rejected patterns.
    pub rejected: Vec<(usize, String)>,
}

impl RulesetOutput {
    /// Merges the networks of an accepted-rule subset into one per-shard
    /// machine image — the compile output a banked deployment loads into
    /// a single bank. Node ids keep their `r{original_index}_` prefixes
    /// and reporting nodes keep `report_id = member` (numbering the full
    /// accepted set), so per-shard hardware reports attribute globally
    /// without remapping.
    ///
    /// `members` indexes [`RulesetOutput::rules`] (the accepted rules),
    /// like the shard plans produced by the `recama-hw` sharding layer.
    pub fn shard_network(&self, members: &[usize], name: &str) -> MnrlNetwork {
        merge_rule_networks(
            name,
            members
                .iter()
                .map(|&k| (self.rule_sources[k], k as u32, &self.rules[k].network)),
        )
    }

    /// Per-shard machine images for a whole partition (one call per
    /// shard of `shards`, named `shard{i}`).
    pub fn shard_networks(&self, shards: &[Vec<usize>]) -> Vec<MnrlNetwork> {
        shards
            .iter()
            .enumerate()
            .map(|(i, members)| self.shard_network(members, &format!("shard{i}")))
            .collect()
    }
}

/// Merges rule networks into one machine image: each `(prefix_id,
/// report_id, network)` entry contributes its nodes under the id prefix
/// `r{prefix_id}_` with reporting nodes stamped `report_id`. The single
/// merge loop behind [`RulesetOutput::shard_network`] and the `recama`
/// pattern-set builders (which pass the same id for both roles).
pub fn merge_rule_networks<'a>(
    name: &str,
    parts: impl IntoIterator<Item = (usize, u32, &'a MnrlNetwork)>,
) -> MnrlNetwork {
    let mut network = MnrlNetwork::new(name);
    for (prefix_id, report_id, part) in parts {
        network.merge_as_rule(part, &format!("r{prefix_id}_"), report_id);
    }
    network
}

/// Compiles every pattern of a ruleset in streaming form (`Σ*r`) and merges
/// the networks — the machine image whose size Fig. 9 plots. Every
/// reporting node of rule `k` (numbering the *accepted* rules) is stamped
/// with `report_id = k`, so simulator reports attribute to rules without
/// node-id parsing.
pub fn compile_ruleset(patterns: &[String], options: &CompileOptions) -> RulesetOutput {
    let mut rules = Vec::new();
    let mut rule_sources = Vec::new();
    let mut rejected = Vec::new();
    for (i, p) in patterns.iter().enumerate() {
        match recama_syntax::parse(p) {
            Ok(parsed) => {
                rules.push(compile(&parsed.for_stream(), options));
                rule_sources.push(i);
            }
            Err(e) => rejected.push((i, e.to_string())),
        }
    }
    let network = merge_rule_networks(
        "ruleset",
        rule_sources
            .iter()
            .zip(&rules)
            .enumerate()
            .map(|(k, (&src, out))| (src, k as u32, &out.network)),
    );
    RulesetOutput {
        network,
        rules,
        rule_sources,
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recama_syntax::parse;

    fn stream(p: &str) -> Regex {
        parse(p).unwrap().for_stream()
    }

    #[test]
    fn unambiguous_gets_counter() {
        let out = compile(&stream("^a(bc){5,9}d"), &CompileOptions::default());
        assert_eq!(out.modules, vec![ModuleKind::Counter]);
        let (states, counters, bvs) = out.network.counts_by_type();
        assert_eq!(counters, 1);
        assert_eq!(bvs, 0);
        // a, b, c, d STEs only — no unfolding.
        assert_eq!(states, 4);
        assert!(
            out.network.validate().is_empty(),
            "{:?}",
            out.network.validate()
        );
    }

    #[test]
    fn ambiguous_single_class_gets_bitvector() {
        let out = compile(&stream("a{50}"), &CompileOptions::default());
        // Streaming form Σ*a{50} is ambiguous with a single-class body.
        assert_eq!(out.modules, vec![ModuleKind::BitVector]);
        let (states, counters, bvs) = out.network.counts_by_type();
        assert_eq!((counters, bvs), (0, 1));
        // Σ self-loop STE + one a STE.
        assert_eq!(states, 2);
        assert!(
            out.network.validate().is_empty(),
            "{:?}",
            out.network.validate()
        );
    }

    #[test]
    fn ambiguous_multi_class_body_unfolds() {
        // Σ*(ab){3}: ambiguous, body not a single class → unfolded.
        let out = compile(&stream("(ab){3}"), &CompileOptions::default());
        assert!(out.modules.is_empty());
        let (states, counters, bvs) = out.network.counts_by_type();
        assert_eq!((counters, bvs), (0, 0));
        assert_eq!(states, 1 + 6); // Σ + ababab
        assert!(out.report.unfolded_occurrences >= 1);
    }

    #[test]
    fn threshold_unfolds_small_bounds() {
        let out = compile(
            &stream("^x[ab]{3}y[cd]{100}z"),
            &CompileOptions {
                unfold: UnfoldPolicy::UpTo(10),
                ..Default::default()
            },
        );
        // [ab]{3} unfolded by threshold; [cd]{100} counter (anchored, no Σ*).
        assert_eq!(out.modules, vec![ModuleKind::Counter]);
        let (states, _, _) = out.network.counts_by_type();
        // x + three [ab] copies + y + one [cd] body STE + z.
        assert_eq!(states, 7);
    }

    #[test]
    fn unfold_all_produces_pure_nfa() {
        let out = compile(
            &stream("a{20}b{4,7}"),
            &CompileOptions {
                unfold: UnfoldPolicy::All,
                ..Default::default()
            },
        );
        assert!(out.modules.is_empty());
        assert!(out.nca.counters().is_empty());
        let (states, counters, bvs) = out.network.counts_by_type();
        assert_eq!((counters, bvs), (0, 0));
        assert_eq!(states, 1 + 20 + 7);
    }

    #[test]
    fn nested_counting_resolves_to_inner_module() {
        // ^((ab){50}c){2}: outer weight 2×2=4... inner weight 50×2=100 —
        // inner kept as module, outer unfolded (2 copies).
        let out = compile(&stream("^((ab){50}c){2}"), &CompileOptions::default());
        assert!(!out.modules.is_empty());
        assert!(out.report.unfolded_occurrences >= 1);
        // No state carries two counters in the final automaton.
        for s in out.nca.states() {
            assert!(s.counters.len() <= 1, "multi-counter state survived");
        }
        assert!(out.network.validate().is_empty());
    }

    #[test]
    fn ruleset_merging_counts_nodes() {
        let patterns: Vec<String> = vec!["^a{30}".into(), "bad(".into(), "^[xy]{5}z".into()];
        let out = compile_ruleset(&patterns, &CompileOptions::default());
        assert_eq!(out.rules.len(), 2);
        assert_eq!(out.rejected.len(), 1);
        assert_eq!(out.rejected[0].0, 1);
        assert!(out.network.node_count() > 0);
        assert!(out.network.validate().is_empty());
    }

    #[test]
    fn shard_networks_partition_the_merged_image() {
        let patterns: Vec<String> = vec![
            "^a{30}".into(),
            "bad(".into(), // rejected: accepted rule k=1 is the next one
            "^[xy]{5}z".into(),
            "k\\d{3}".into(),
        ];
        let out = compile_ruleset(&patterns, &CompileOptions::default());
        assert_eq!(out.rules.len(), 3);
        let shards = out.shard_networks(&[vec![0, 1], vec![2]]);
        assert_eq!(shards.len(), 2);
        // Every shard validates on its own and node counts add up to the
        // full merged image.
        let total: usize = shards.iter().map(|n| n.node_count()).sum();
        assert_eq!(total, out.network.node_count());
        for shard in &shards {
            assert!(shard.validate().is_empty(), "{:?}", shard.validate());
        }
        // Report ids stay global: shard 1 holds accepted rule 2 only.
        assert_eq!(shards[0].report_ids(), vec![0, 1]);
        assert_eq!(shards[1].report_ids(), vec![2]);
    }

    #[test]
    fn fig9_monotonicity_nodes_grow_with_threshold() {
        let patterns: Vec<String> = vec!["^a[bc]{200}d".into(), "^e{64}f".into()];
        let mut last = 0usize;
        for k in [0u32, 10, 100, 1000] {
            let policy = if k == 0 {
                UnfoldPolicy::None
            } else {
                UnfoldPolicy::UpTo(k)
            };
            let out = compile_ruleset(
                &patterns,
                &CompileOptions {
                    unfold: policy,
                    ..Default::default()
                },
            );
            let n = out.network.node_count();
            assert!(
                n >= last,
                "node count must not shrink: {last} -> {n} at k={k}"
            );
            last = n;
        }
        assert!(last >= 264, "full unfolding must dominate: {last}");
    }
}
