//! The `recama` command-line tool: analyze, compile, and simulate regexes
//! with counting on the augmented in-memory accelerator model.
//!
//! ```text
//! recama analyze <pattern> [--method exact|approx|hybrid|hybrid-witness]
//! recama compile <pattern> [--threshold N | --unfold-all] [--out FILE]
//! recama run     <pattern> (--text STRING | --file FILE) [--threshold N | --unfold-all]
//! ```

use recama::analysis::{check, CheckConfig, Method, Verdict};
use recama::compiler::{compile, CompileOptions, ModuleKind};
use recama::hw::{run as hw_run, AreaGranularity};
use recama::nca::UnfoldPolicy;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "analyze" => cmd_analyze(rest),
            "compile" => cmd_compile(rest),
            "run" => cmd_run(rest),
            "help" | "--help" | "-h" => {
                print_usage();
                ExitCode::SUCCESS
            }
            other => {
                eprintln!("unknown command `{other}`");
                print_usage();
                ExitCode::FAILURE
            }
        },
        None => {
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "recama — in-memory regular pattern matching with counters (PLDI'22 reproduction)

USAGE:
  recama analyze <pattern> [--method exact|approx|hybrid|hybrid-witness]
  recama compile <pattern> [--threshold N | --unfold-all] [--out FILE]
  recama run     <pattern> (--text STRING | --file FILE) [--threshold N | --unfold-all]"
    );
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_options(args: &[String]) -> CompileOptions {
    let mut options = CompileOptions::default();
    if args.iter().any(|a| a == "--unfold-all") {
        options.unfold = UnfoldPolicy::All;
    } else if let Some(k) = flag_value(args, "--threshold") {
        match k.parse::<u32>() {
            Ok(k) => options.unfold = UnfoldPolicy::UpTo(k),
            Err(_) => eprintln!("ignoring bad --threshold {k:?}"),
        }
    }
    options
}

fn cmd_analyze(args: &[String]) -> ExitCode {
    let Some(pattern) = args.first() else {
        eprintln!("analyze: missing pattern");
        return ExitCode::FAILURE;
    };
    let method = match flag_value(args, "--method").unwrap_or("hybrid") {
        "exact" => Method::Exact,
        "approx" => Method::Approximate,
        "hybrid" => Method::Hybrid,
        "hybrid-witness" => Method::HybridWitness,
        other => {
            eprintln!("unknown method {other:?}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = match recama::syntax::parse(pattern) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = check(&parsed.for_stream(), method, &CheckConfig::default());
    println!("pattern:    {pattern}");
    println!("stream re:  {}", parsed.for_stream());
    println!(
        "verdict:    {}",
        match result.ambiguous {
            Some(true) => "counter-AMBIGUOUS",
            Some(false) => "counter-unambiguous",
            None => "unknown (inconclusive / budget exhausted)",
        }
    );
    for occ in &result.occurrences {
        let bounds = match occ.max {
            Some(n) if n == occ.min => format!("{{{}}}", occ.min),
            Some(n) => format!("{{{},{}}}", occ.min, n),
            None => format!("{{{},}}", occ.min),
        };
        let verdict = match occ.verdict {
            Verdict::Unambiguous => "unambiguous",
            Verdict::Ambiguous => "AMBIGUOUS",
            Verdict::Unknown => "unknown",
        };
        println!("  occurrence {} {bounds}: {verdict}", occ.id);
    }
    if let Some(w) = &result.witness {
        println!("witness:    {:?}", String::from_utf8_lossy(w));
    }
    println!(
        "stats:      {} token pairs, {} edges, {:?}",
        result.stats.pairs_created, result.stats.edges_traversed, result.stats.duration
    );
    ExitCode::SUCCESS
}

fn cmd_compile(args: &[String]) -> ExitCode {
    let Some(pattern) = args.first() else {
        eprintln!("compile: missing pattern");
        return ExitCode::FAILURE;
    };
    let options = parse_options(args);
    let parsed = match recama::syntax::parse(pattern) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = compile(&parsed.for_stream(), &options);
    let (states, counters, bitvectors) = out.network.counts_by_type();
    eprintln!(
        "compiled: {} STEs, {} counter modules, {} bit-vector modules ({} occurrences unfolded)",
        states, counters, bitvectors, out.report.unfolded_occurrences
    );
    for (k, m) in out.modules.iter().enumerate() {
        let info = out.nca.counters()[k];
        eprintln!(
            "  counter {k}: {} for bounds {{{},{}}}",
            match m {
                ModuleKind::Counter => "counter",
                ModuleKind::BitVector => "bit-vector",
            },
            info.min,
            info.max.map_or("∞".into(), |n| n.to_string())
        );
    }
    let json = out.network.to_json();
    match flag_value(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}

fn cmd_run(args: &[String]) -> ExitCode {
    let Some(pattern) = args.first() else {
        eprintln!("run: missing pattern");
        return ExitCode::FAILURE;
    };
    let input: Vec<u8> = if let Some(text) = flag_value(args, "--text") {
        text.as_bytes().to_vec()
    } else if let Some(path) = flag_value(args, "--file") {
        match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!("run: need --text or --file");
        return ExitCode::FAILURE;
    };
    let options = parse_options(args);
    let parsed = match recama::syntax::parse(pattern) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = compile(&parsed.for_stream(), &options);
    let report = hw_run(&out.network, &input, AreaGranularity::WholeModule);
    println!("pattern:      {pattern}");
    println!("input bytes:  {}", input.len());
    println!("matches end:  {:?}", report.match_ends);
    println!(
        "placement:    {} PEs, {} CAM columns, {} counters, {} bit-vector segments",
        report.placement.pe_count,
        report.placement.total_columns,
        report.placement.counter_count,
        report.placement.bitvector_segments
    );
    println!("energy:       {:.6} nJ/byte", report.energy.nj_per_byte());
    println!(
        "area:         {:.6} mm² (waste {:.6} mm²)",
        report.area.total_mm2(),
        report.area.waste_um2 / 1e6
    );
    ExitCode::SUCCESS
}
