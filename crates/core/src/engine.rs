//! [`Engine`]: the one builder-based facade over compile, scan, stream,
//! and flow serving.
//!
//! The paper's pipeline is a single conceptual object — regexes in, a
//! CAMA-mapped multi-pattern machine out — and this module gives it a
//! single API shape, mirroring the design that scaled for software
//! matchers (Hyperscan's `hs_compile_multi` + scratch/stream handles):
//! one compile-time builder, one compiled artifact, cheap per-use
//! handles.
//!
//! * [`Engine::builder`] collects rules (with optional per-rule ids), a
//!   [`ShardPolicy`], [`CompileOptions`], a worker count, and a
//!   [`ServiceConfig`];
//! * [`EngineBuilder::build`] compiles everything into an [`Engine`] —
//!   or a structured [`CompileError`] naming the failing rule's index,
//!   source text, and pipeline phase;
//! * the `Engine` then hands out the per-use handles:
//!   [`scan`](Engine::scan) / [`scan_spans`](Engine::scan_spans) for
//!   block mode, [`stream`](Engine::stream) for one resumable flow,
//!   [`scheduler`](Engine::scheduler) for batch many-flow scanning, and
//!   [`service`](Engine::service) for long-lived serving with
//!   backpressure and idle-flow eviction.
//!
//! The older entry points (`PatternSet::compile_many`,
//! `ShardedPatternSet::compile_many_with`, `compile_filtered`) are thin
//! deprecated wrappers over this builder.

use crate::prefilter::PrefilterMode;
#[cfg(feature = "fault-inject")]
use crate::service::FaultPlan;
#[allow(deprecated)]
use crate::service::FlowService;
use crate::service::ServiceHandle;
use crate::set::{SetMatch, SetSpan, ShardedPatternSet, ShardedSetStream};
use crate::FlowScheduler;
use recama_compiler::{CompileOptions, CompileOutput};
use recama_hw::{ShardPlan, ShardPolicy};
use recama_mnrl::MnrlNetwork;
use recama_nca::ScanMode;
use recama_syntax::ParseError;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// The pipeline phase in which compiling a rule failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompilePhase {
    /// Parsing / fragment support (`syntax`): the only phase that can
    /// currently fail — mapping and sharding are total.
    Parse,
    /// Module selection and MNRL mapping (`compiler`).
    Map,
    /// Bank-aware shard planning (`hw`).
    Shard,
}

impl fmt::Display for CompilePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CompilePhase::Parse => "parse",
            CompilePhase::Map => "map",
            CompilePhase::Shard => "shard",
        })
    }
}

/// A structured ruleset-compile failure: which rule (by input index),
/// its source text, the pipeline [`CompilePhase`] that rejected it, and
/// the underlying error.
///
/// ```
/// use recama::{CompilePhase, Engine};
///
/// let err = Engine::builder()
///     .patterns(["ok", "bad(", "ok2"])
///     .build()
///     .unwrap_err();
/// assert_eq!(err.index, 1);
/// assert_eq!(err.pattern, "bad(");
/// assert_eq!(err.phase, CompilePhase::Parse);
/// ```
#[derive(Debug, Clone)]
pub struct CompileError {
    /// Index of the offending rule in the order it was added.
    pub index: usize,
    /// The rule's source text.
    pub pattern: String,
    /// The pipeline phase that rejected it.
    pub phase: CompilePhase,
    /// The underlying parse/support error.
    pub error: ParseError,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pattern #{} (`{}`) failed in {} phase: {}",
            self.index, self.pattern, self.phase, self.error
        )
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// A rule a lossy ([`EngineBuilder::lossy`]) build skipped, queryable
/// via [`Engine::skipped`]: real rulesets always contain
/// out-of-fragment rules (Table 1's unsupported rows), and deployments
/// need to report *which* rules are not being enforced.
#[derive(Debug, Clone)]
pub struct SkippedRule {
    /// Index of the rule in the order it was added to the builder.
    pub index: usize,
    /// The rule's id (explicit from [`EngineBuilder::rule`], or the
    /// add-order index).
    pub id: u64,
    /// The rule's source text.
    pub pattern: String,
    /// Why it was skipped.
    pub error: ParseError,
}

/// Configuration of the long-lived [`FlowService`] an [`Engine`] serves
/// flows with — the knobs of the backpressured serving loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Per-flow input budget in bytes — the admission rule of
    /// [`FlowService::try_push`]: a chunk is accepted if the flow
    /// currently buffers **nothing** (so chunks larger than the whole
    /// budget still make progress), or if `buffered + chunk.len()`
    /// stays within this budget; otherwise `Poll::Pending`. A flow
    /// therefore never buffers more than `flow_budget` bytes beyond a
    /// single oversized first chunk.
    pub flow_budget: usize,
    /// Evict (close) flows that have seen no push *attempt* for this
    /// long — a backpressured producer whose `try_push` keeps returning
    /// `Pending` still counts as activity. `None` disables eviction.
    /// Eviction still scans every buffered byte and resolves
    /// `$`-anchored finishing matches, exactly like an explicit
    /// [`FlowService::close`].
    pub idle_timeout: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            flow_budget: 1 << 20, // 1 MiB per flow
            idle_timeout: None,
        }
    }
}

/// What the service does when a worker panics mid-scan — the fault
/// policy of [`ServeConfig::fault_policy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultPolicy {
    /// Isolate the fault: the panic **quarantines only the offending
    /// flow** (its engines are freed, its epoch pin released, its
    /// already-merged reports stay pollable, and
    /// [`push_checked`](ServiceHandle::push_checked) /
    /// [`poll_checked`](ServiceHandle::poll_checked) on it return a
    /// [`ServeError::Quarantined`](crate::ServeError::Quarantined)
    /// carrying the panic message), while every other flow keeps
    /// flowing. The panicked worker is respawned under
    /// [`restart_budget`](ServeConfig::restart_budget) with exponential
    /// [`restart_backoff`](ServeConfig::restart_backoff); only when the
    /// budget is exhausted does the service fall back to fail-stop
    /// poisoning. The default.
    #[default]
    Isolate,
    /// Legacy fail-stop: the first worker panic poisons the whole
    /// service — every blocking call on every flow then panics with the
    /// payload summary. This was the only behavior before the
    /// quarantine layer existed and remains available for callers that
    /// prefer to die loudly; the deprecated scope-based [`FlowService`]
    /// always runs fail-stop (its [`run`](FlowService::run) rethrows
    /// the worker's payload).
    FailStop,
}

/// High-watermark overload shedding for an owned [`ServiceHandle`] —
/// the policy behind [`ServeConfig::overload`].
///
/// When either watermark is reached the service is *overloaded*:
/// [`try_open_flow`](ServiceHandle::try_open_flow) sheds new opens
/// (returning [`ServeError::Overloaded`](crate::ServeError::Overloaded)
/// and counting
/// [`shed_opens`](crate::FaultMetrics::shed_opens)) instead of
/// admitting more traffic into an already-drowning queue. The default
/// policy disables both watermarks — nothing sheds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OverloadPolicy {
    /// Readiness-queue depth (pending `(flow, shard)` scan units) at or
    /// above which new opens are shed. `None` (default) disables the
    /// watermark.
    pub max_queue_depth: Option<usize>,
    /// Buffered-but-unscanned bytes (the service-wide
    /// [`pending_bytes`](crate::ServiceMetrics::pending_bytes)) at or
    /// above which new opens are shed. `None` (default) disables the
    /// watermark.
    pub max_pending_bytes: Option<u64>,
    /// Evict the least-recently-pushed drained open flow whenever an
    /// open is shed, so sustained overload reclaims capacity instead of
    /// only refusing work. Evictions are counted in
    /// [`budget_evictions`](crate::ServiceMetrics::budget_evictions).
    /// Default `false`.
    pub evict_on_shed: bool,
}

/// Configuration of an owned [`ServiceHandle`] (see [`Engine::serve`]):
/// the [`ServiceConfig`] knobs plus the bounded-flow-table,
/// sweep-cadence, fault-tolerance, and overload-shedding controls the
/// long-lived serving shape needs.
///
/// `ServiceConfig` predates this struct and is kept (frozen) for the
/// deprecated scope-based [`FlowService`]; `ServeConfig` is its
/// superset, and [`From<ServiceConfig>`] maps the old knobs over with
/// the new ones at their defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Per-flow input budget in bytes — the admission rule of
    /// [`ServiceHandle::try_push`]: a chunk is accepted if the flow
    /// currently buffers **nothing** (so chunks larger than the whole
    /// budget still make progress), or if `buffered + chunk.len()`
    /// stays within this budget; otherwise `Poll::Pending`.
    pub flow_budget: usize,
    /// Evict (close) flows that have seen no push *attempt* for this
    /// long — a backpressured producer whose `try_push` keeps returning
    /// `Pending` still counts as activity. `None` disables idle
    /// eviction. Eviction still scans every buffered byte and resolves
    /// `$`-anchored finishing matches, exactly like an explicit close.
    pub idle_timeout: Option<Duration>,
    /// Cadence of the idle-eviction sweep. `None` (the default) follows
    /// `idle_timeout`, the historical behavior of the scope-based
    /// service where the sweep interval was hard-coded to the workers'
    /// park timeout; set it explicitly to sweep more or less often than
    /// flows time out.
    pub sweep_interval: Option<Duration>,
    /// Flow-table budget: opening a flow beyond this many live flows
    /// first evicts the least-recently-pushed *drained* open flow
    /// (recorded in [`ServiceMetrics::budget_evictions`]). Sized toward
    /// the ~10⁶-concurrent-flow serving target by default. If nothing
    /// is evictable the table overshoots and the overshoot is counted
    /// in [`ServiceMetrics::backpressure`].
    ///
    /// [`ServiceMetrics::budget_evictions`]: crate::ServiceMetrics::budget_evictions
    /// [`ServiceMetrics::backpressure`]: crate::ServiceMetrics::backpressure
    pub max_flows: usize,
    /// Global buffered-byte budget across all flows: `try_push` returns
    /// `Poll::Pending` (and counts backpressure) once accepting the
    /// chunk would push the service's total buffered bytes past this.
    pub max_buffered_bytes: u64,
    /// What a worker panic mid-scan does to the service: quarantine the
    /// offending flow and respawn the worker
    /// ([`FaultPolicy::Isolate`], the default), or poison the whole
    /// service ([`FaultPolicy::FailStop`], the legacy behavior).
    pub fault_policy: FaultPolicy,
    /// Under [`FaultPolicy::Isolate`], how many worker respawns the
    /// service tolerates in total before it stops trusting itself and
    /// falls back to fail-stop poisoning (counted in
    /// [`fail_stops`](crate::FaultMetrics::fail_stops)). Default `8`.
    /// `0` means the first panic fail-stops (quarantining its flow
    /// first).
    pub restart_budget: u32,
    /// Base delay before a panicked worker is respawned; it doubles on
    /// every consecutive restart of the same worker seat (capped at
    /// 2¹⁶×), so a crash-looping workload degrades into a slow trickle
    /// instead of a hot spin. Default `1ms`; `Duration::ZERO` respawns
    /// immediately.
    pub restart_backoff: Duration,
    /// High-watermark overload shedding (see [`OverloadPolicy`]).
    /// Default: both watermarks disabled — nothing sheds.
    pub overload: OverloadPolicy,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            flow_budget: 1 << 20, // 1 MiB per flow
            idle_timeout: None,
            sweep_interval: None,
            max_flows: 1 << 20, // ~10^6 concurrent flows
            max_buffered_bytes: 1 << 30,
            fault_policy: FaultPolicy::Isolate,
            restart_budget: 8,
            restart_backoff: Duration::from_millis(1),
            overload: OverloadPolicy::default(),
        }
    }
}

impl From<ServiceConfig> for ServeConfig {
    fn from(config: ServiceConfig) -> ServeConfig {
        ServeConfig {
            flow_budget: config.flow_budget,
            idle_timeout: config.idle_timeout,
            ..ServeConfig::default()
        }
    }
}

/// Builder for an [`Engine`] — the single place every compile-time knob
/// lives. Created by [`Engine::builder`].
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    rules: Vec<(u64, String)>,
    options: CompileOptions,
    policy: ShardPolicy,
    workers: usize,
    service: ServiceConfig,
    serve: Option<ServeConfig>,
    lossy: bool,
    scan_mode: ScanMode,
    prefilter: Option<PrefilterMode>,
    #[cfg(feature = "fault-inject")]
    faults: FaultPlan,
}

impl Default for EngineBuilder {
    fn default() -> EngineBuilder {
        EngineBuilder {
            rules: Vec::new(),
            options: CompileOptions::default(),
            policy: ShardPolicy::default(),
            workers: 1,
            service: ServiceConfig::default(),
            serve: None,
            lossy: false,
            scan_mode: ScanMode::default(),
            prefilter: None,
            #[cfg(feature = "fault-inject")]
            faults: FaultPlan::default(),
        }
    }
}

/// The prefilter default when [`EngineBuilder::prefilter`] was never
/// called: [`PrefilterMode::On`] unless `RECAMA_PREFILTER` disables it.
fn env_prefilter_mode() -> PrefilterMode {
    match std::env::var("RECAMA_PREFILTER") {
        Ok(v) if matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false") => {
            PrefilterMode::Off
        }
        _ => PrefilterMode::On,
    }
}

impl EngineBuilder {
    /// Adds one pattern; its rule id defaults to its add-order index.
    pub fn pattern(mut self, pattern: impl AsRef<str>) -> EngineBuilder {
        let id = self.rules.len() as u64;
        self.rules.push((id, pattern.as_ref().to_string()));
        self
    }

    /// Adds one pattern with an explicit rule id (e.g. a Snort SID).
    /// Ids are opaque to the engine — matches report the rule *index*,
    /// and [`Engine::rule_id`] translates.
    pub fn rule(mut self, id: u64, pattern: impl AsRef<str>) -> EngineBuilder {
        self.rules.push((id, pattern.as_ref().to_string()));
        self
    }

    /// Adds many patterns, ids defaulting to their add-order indices.
    pub fn patterns<I>(mut self, patterns: I) -> EngineBuilder
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        for p in patterns {
            self = self.pattern(p);
        }
        self
    }

    /// Sets the [`CompileOptions`] (unfolding threshold, bit-vector
    /// capacity, analysis budget).
    pub fn options(mut self, options: CompileOptions) -> EngineBuilder {
        self.options = options;
        self
    }

    /// Sets the [`ShardPolicy`] partitioning rules into bank-sized
    /// shards. Default: one CAMA bank per shard.
    /// [`ShardPolicy::Single`] collapses to the unsharded (`N = 1`)
    /// machine image.
    pub fn shard_policy(mut self, policy: ShardPolicy) -> EngineBuilder {
        self.policy = policy;
        self
    }

    /// Sets the worker-thread count [`Engine::scheduler`] and
    /// [`Engine::service`] scan with (at least one).
    pub fn workers(mut self, workers: usize) -> EngineBuilder {
        self.workers = workers.max(1);
        self
    }

    /// Sets the [`ServiceConfig`] for [`Engine::service`].
    pub fn service_config(mut self, config: ServiceConfig) -> EngineBuilder {
        self.service = config;
        self
    }

    /// Sets the [`ServeConfig`] new owned handles ([`Engine::serve`],
    /// [`Engine::into_service`]) start with. When unset, they derive it
    /// from the [`ServiceConfig`] via `From`.
    pub fn serve_config(mut self, config: ServeConfig) -> EngineBuilder {
        self.serve = Some(config);
        self
    }

    /// Sets the [`ScanMode`] every scan, stream, scheduler, and service
    /// handle of the built engine walks bytes with. The default,
    /// [`ScanMode::Hybrid`] with
    /// [`DEFAULT_STATE_BUDGET`](recama_nca::DEFAULT_STATE_BUDGET)
    /// cached DFA states per engine, overlays a lazy DFA on the pure
    /// (counter-free) part of the frontier and falls back to exact NCA
    /// stepping only while counters are live. [`ScanMode::Nca`] forces
    /// the exact per-byte engine everywhere — the paper-faithful
    /// baseline and the reference the hybrid is differentially tested
    /// against.
    pub fn scan_mode(mut self, mode: ScanMode) -> EngineBuilder {
        self.scan_mode = mode;
        self
    }

    /// Sets the [`PrefilterMode`]. The default, [`PrefilterMode::On`],
    /// extracts a required literal per rule at compile time and builds
    /// one Aho-Corasick filter per shard; scans, streams, schedulers,
    /// and service handles then skip any `(flow, shard)` unit whose
    /// filter has seen no candidate — with output byte-identical to
    /// [`PrefilterMode::Off`], which disables the filter entirely (the
    /// escape hatch, and the measuring stick for the filter's effect).
    ///
    /// When this knob is never called, the default also honors the
    /// `RECAMA_PREFILTER` environment variable (`off`/`0`/`false`
    /// disable the filter) — the no-recompile operational escape hatch,
    /// which CI uses to run the whole suite with the filter disabled.
    /// An explicit call always wins over the environment.
    pub fn prefilter(mut self, mode: PrefilterMode) -> EngineBuilder {
        self.prefilter = Some(mode);
        self
    }

    /// Sets the deterministic [`FaultPlan`] every [`ServiceHandle`]
    /// served from the built engine injects into its scan loop —
    /// panics and artificial delays at the k-th scan of a chosen
    /// `(flow, shard)`, for chaos-testing the fault-tolerance layer.
    /// Only compiled in under the `fault-inject` cargo feature; release
    /// builds carry no injection hook at all.
    #[cfg(feature = "fault-inject")]
    pub fn fault_plan(mut self, plan: FaultPlan) -> EngineBuilder {
        self.faults = plan;
        self
    }

    /// Makes the build lossy: rules that fail to compile are skipped
    /// (recorded queryably in [`Engine::skipped`]) instead of failing
    /// the build — the tolerant mode real rulesets need.
    pub fn lossy(mut self, lossy: bool) -> EngineBuilder {
        self.lossy = lossy;
        self
    }

    /// Compiles every added rule into an [`Engine`].
    ///
    /// # Errors
    ///
    /// On a strict (default) build, the first failing rule aborts the
    /// build with a [`CompileError`] carrying its index, source text,
    /// and phase. A [`lossy`](EngineBuilder::lossy) build never fails:
    /// failing rules land in [`Engine::skipped`].
    pub fn build(self) -> Result<Engine, CompileError> {
        // Retained (rules cleared) so ServiceHandle::reload_rules can
        // recompile replacement rules with the same knobs.
        let mut template = self.clone();
        template.rules.clear();
        let mut accepted = Vec::with_capacity(self.rules.len());
        let mut ids = Vec::with_capacity(self.rules.len());
        let mut indices = Vec::with_capacity(self.rules.len());
        let mut skipped = Vec::new();
        for (index, (id, source)) in self.rules.into_iter().enumerate() {
            match recama_syntax::parse(&source) {
                Ok(parsed) => {
                    accepted.push((source, parsed));
                    ids.push(id);
                    indices.push(index);
                }
                Err(error) if self.lossy => skipped.push(SkippedRule {
                    index,
                    id,
                    pattern: source,
                    error,
                }),
                Err(error) => {
                    return Err(CompileError {
                        index,
                        pattern: source,
                        phase: CompilePhase::Parse,
                        error,
                    })
                }
            }
        }
        let set = ShardedPatternSet::build(
            accepted,
            &self.options,
            self.policy,
            self.scan_mode,
            self.prefilter.unwrap_or_else(env_prefilter_mode),
        );
        Ok(Engine {
            set: Arc::new(set),
            ids: ids.into(),
            indices,
            skipped,
            workers: self.workers,
            service: self.service,
            serve: self.serve,
            #[cfg(feature = "fault-inject")]
            faults: self.faults,
            template,
        })
    }
}

/// A compiled ruleset behind one facade: block scans, span location,
/// resumable streams, batch many-flow scheduling, and long-lived flow
/// serving — all from a single [`builder`](Engine::builder)-built
/// artifact.
///
/// ```
/// use recama::Engine;
///
/// let engine = Engine::builder()
///     .patterns(["ab{2,3}c", "xyz", "k\\d{4}"])
///     .build()
///     .unwrap();
///
/// // Block mode: (rule index, end offset) reports, stream order.
/// let hits: Vec<_> = engine
///     .scan(b"zabbc..xyz..k1234")
///     .iter()
///     .map(|m| (m.pattern, m.end))
///     .collect();
/// assert_eq!(hits, vec![(0, 5), (1, 10), (2, 17)]);
///
/// // Streaming: matches may straddle chunk boundaries.
/// let mut stream = engine.stream();
/// assert!(stream.feed(b"..ab").next().is_none());
/// assert_eq!(stream.feed(b"bc").next().unwrap().end, 6);
/// ```
#[derive(Debug)]
pub struct Engine {
    /// Shared so owned [`ServiceHandle`]s can keep the machine image
    /// alive past the `Engine` (the epoch unit of hot reload).
    set: Arc<ShardedPatternSet>,
    /// Rule ids by compiled index (shared with serving epochs, which
    /// translate match reports to stable rule ids).
    ids: Arc<[u64]>,
    /// Builder add-order index by compiled index (they differ when a
    /// lossy build skipped rules).
    indices: Vec<usize>,
    skipped: Vec<SkippedRule>,
    workers: usize,
    service: ServiceConfig,
    serve: Option<ServeConfig>,
    /// The deterministic fault-injection plan every served handle
    /// inherits (chaos testing only — absent from normal builds).
    #[cfg(feature = "fault-inject")]
    faults: FaultPlan,
    /// The builder (rules cleared) this engine came from, retained for
    /// [`ServiceHandle::reload_rules`].
    template: EngineBuilder,
}

impl Engine {
    /// Starts a builder with default options (default [`ShardPolicy`]
    /// — one CAMA bank per shard, one worker, strict compile).
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Compiles `patterns` with every default — the one-liner for the
    /// common case.
    ///
    /// # Errors
    ///
    /// Same as [`EngineBuilder::build`].
    pub fn new<I>(patterns: I) -> Result<Engine, CompileError>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        Engine::builder().patterns(patterns).build()
    }

    // ---- compiled artifact ------------------------------------------

    /// Number of compiled rules (skipped rules not counted).
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the engine has no compiled rules.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// The source text of compiled rule `i` (the index reported in
    /// [`SetMatch::pattern`]).
    pub fn pattern(&self, i: usize) -> &str {
        self.set.pattern(i)
    }

    /// The id of compiled rule `i` (explicit via
    /// [`EngineBuilder::rule`], or its builder add-order index).
    pub fn rule_id(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// The builder add-order index of compiled rule `i`. Differs from
    /// `i` only when a lossy build skipped earlier rules.
    pub fn source_index(&self, i: usize) -> usize {
        self.indices[i]
    }

    /// Rules a [`lossy`](EngineBuilder::lossy) build skipped, in add
    /// order. Empty on strict builds.
    pub fn skipped(&self) -> &[SkippedRule] {
        &self.skipped
    }

    /// Per-rule compiler outputs (module decisions, analyses, NCAs),
    /// indexed like the compiled rules.
    pub fn outputs(&self) -> &[CompileOutput] {
        self.set.outputs()
    }

    /// Number of bank-sized shards the ruleset compiled into (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.set.shard_count()
    }

    /// The shard plan (which rule lives in which shard).
    pub fn plan(&self) -> &ShardPlan {
        self.set.plan()
    }

    /// The merged extended-MNRL machine image of shard `shard`;
    /// reporting nodes carry global rule indices.
    pub fn network(&self, shard: usize) -> &MnrlNetwork {
        self.set.network(shard)
    }

    /// All per-shard machine images.
    pub fn networks(&self) -> &[MnrlNetwork] {
        self.set.networks()
    }

    /// A hardware simulator for shard `shard`'s machine image.
    pub fn hardware(&self, shard: usize) -> recama_hw::HwSimulator<'_> {
        self.set.hardware(shard)
    }

    /// The worker-thread count [`scheduler`](Engine::scheduler) and
    /// [`service`](Engine::service) scan with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The [`ScanMode`] this engine's scans and streams walk bytes with
    /// (set via [`EngineBuilder::scan_mode`]; defaults to the hybrid
    /// lazy-DFA overlay).
    pub fn scan_mode(&self) -> ScanMode {
        self.set.scan_mode()
    }

    /// The [`PrefilterMode`] this engine was built with (set via
    /// [`EngineBuilder::prefilter`]; defaults to
    /// [`PrefilterMode::On`]).
    pub fn prefilter(&self) -> PrefilterMode {
        self.set.prefilter_mode()
    }

    /// The [`ServiceConfig`] new [`service`](Engine::service) handles
    /// start with.
    pub fn service_config(&self) -> ServiceConfig {
        self.service
    }

    /// The underlying sharded set — the escape hatch to every lower
    /// layer (per-shard automata, spans, per-shard hardware).
    pub fn set(&self) -> &ShardedPatternSet {
        &self.set
    }

    /// Unwraps the engine into its underlying [`ShardedPatternSet`]
    /// (what the deprecated `compile_many` wrappers return).
    ///
    /// # Panics
    ///
    /// Panics if an owned [`ServiceHandle`] (from [`Engine::serve`]) is
    /// still sharing the set as a live serving epoch.
    pub fn into_set(self) -> ShardedPatternSet {
        Arc::try_unwrap(self.set).unwrap_or_else(|_| {
            panic!("Engine::into_set while a ServiceHandle still serves this engine's set")
        })
    }

    // ---- block mode -------------------------------------------------

    /// All matches in `haystack`, in stream order (ascending end,
    /// ascending rule index within one end). Shards scan in parallel on
    /// scoped threads for large inputs; reports are byte-identical for
    /// any shard plan.
    pub fn scan(&self, haystack: &[u8]) -> Vec<SetMatch> {
        self.set.find_ends(haystack)
    }

    /// Located match spans (`[start, end)` per rule): for every match
    /// end, the rule's reversed automaton runs backward to the earliest
    /// start (leftmost-longest flavor).
    pub fn scan_spans(&self, haystack: &[u8]) -> Vec<SetSpan> {
        self.set.find_spans(haystack)
    }

    /// Whether any rule matches in `haystack`.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        self.set.is_match(haystack)
    }

    // ---- per-use handles --------------------------------------------

    /// A resumable streaming matcher for ONE flow: feed chunks, drain
    /// reports, [`finish`](ShardedSetStream::finish) to resolve
    /// trailing-`$` anchors at end-of-stream.
    pub fn stream(&self) -> ShardedSetStream<'_> {
        self.set.stream()
    }

    /// A batch many-flow scheduler (`push`/`run`/`poll` cycles) over
    /// this engine, using the configured
    /// [`workers`](EngineBuilder::workers).
    pub fn scheduler(&self) -> FlowScheduler<'_> {
        FlowScheduler::new(&self.set, self.workers)
    }

    /// Like [`scheduler`](Engine::scheduler) with an explicit worker
    /// count — for sweeps over the parallelism knob.
    pub fn scheduler_with(&self, workers: usize) -> FlowScheduler<'_> {
        FlowScheduler::new(&self.set, workers)
    }

    /// A long-lived flow-serving handle over this engine: workers park
    /// on the readiness condvar, [`try_push`](FlowService::try_push)
    /// applies backpressure at the configured per-flow budget, and idle
    /// flows are evicted. Drive it inside [`FlowService::run`].
    #[deprecated(note = "use Engine::serve — the owned ServiceHandle needs no enclosing scope")]
    #[allow(deprecated)]
    pub fn service(&self) -> FlowService<'_> {
        FlowService::new(self, self.workers, self.service)
    }

    /// Like [`service`](Engine::service) with an explicit
    /// [`ServiceConfig`] and worker count.
    #[deprecated(
        note = "use Engine::serve_with — the owned ServiceHandle needs no enclosing scope"
    )]
    #[allow(deprecated)]
    pub fn service_with(&self, workers: usize, config: ServiceConfig) -> FlowService<'_> {
        FlowService::new(self, workers.max(1), config)
    }

    /// Spawns an owned, `'static` flow-serving handle over this engine:
    /// worker threads start (condvar-parked) immediately, live for the
    /// handle's whole life, and are joined on
    /// [`shutdown`](ServiceHandle::shutdown) / `Drop` — no enclosing
    /// scope required, so the service embeds directly in a server's
    /// state. The engine stays usable (and reusable) afterwards; the
    /// handle shares its machine image as serving epoch 0 and swaps in
    /// later engines via [`reload`](ServiceHandle::reload).
    pub fn serve(&self) -> ServiceHandle {
        self.serve_with(self.workers, self.serve_config())
    }

    /// Like [`serve`](Engine::serve) with an explicit worker count and
    /// [`ServeConfig`].
    pub fn serve_with(&self, workers: usize, config: ServeConfig) -> ServiceHandle {
        ServiceHandle::spawn(self, workers.max(1), config)
    }

    /// Consumes the engine into an owned [`ServiceHandle`] configured
    /// from the builder ([`EngineBuilder::workers`],
    /// [`EngineBuilder::serve_config`] /
    /// [`EngineBuilder::service_config`]).
    pub fn into_service(self) -> ServiceHandle {
        self.serve()
    }

    /// The [`ServeConfig`] new owned handles start with: the explicit
    /// [`EngineBuilder::serve_config`] if one was set, otherwise
    /// derived from the [`ServiceConfig`].
    pub fn serve_config(&self) -> ServeConfig {
        self.serve
            .unwrap_or_else(|| ServeConfig::from(self.service))
    }

    /// The shared machine image (the epoch unit of hot reload).
    pub(crate) fn set_arc(&self) -> Arc<ShardedPatternSet> {
        Arc::clone(&self.set)
    }

    /// The shared rule-id table (compiled index → stable rule id).
    pub(crate) fn ids_arc(&self) -> Arc<[u64]> {
        Arc::clone(&self.ids)
    }

    /// The retained builder (rules cleared) for
    /// [`ServiceHandle::reload_rules`].
    pub(crate) fn template(&self) -> &EngineBuilder {
        &self.template
    }

    /// The fault-injection plan served handles inherit (chaos testing).
    #[cfg(feature = "fault-inject")]
    pub(crate) fn fault_plan_clone(&self) -> FaultPlan {
        self.faults.clone()
    }
}
