//! # recama
//!
//! **RE**gexes with **C**ounters on an in-memory **A**utomata **MA**chine —
//! a full-system Rust reproduction of *Software-Hardware Codesign for
//! Efficient In-Memory Regular Pattern Matching* (PLDI 2022).
//!
//! The paper's pipeline, end to end:
//!
//! 1. parse a POSIX/PCRE-style pattern with counting (`r{m,n}`)
//!    — [`syntax`];
//! 2. build a nondeterministic counter automaton via the Glushkov
//!    construction with counters — [`nca`];
//! 3. statically analyze **counter-(un)ambiguity** (exact, approximate,
//!    hybrid) — [`analysis`];
//! 4. compile to an extended-MNRL network, choosing **counter modules**
//!    for unambiguous occurrences, **bit-vector modules** for ambiguous
//!    `σ{m,n}`, and partial unfolding otherwise — [`compiler`] / [`mnrl`];
//! 5. place and simulate on the augmented CAMA in-memory accelerator and
//!    price the run with the TSMC 28 nm SPICE scalars — [`hw`];
//! 6. reproduce the paper's ruleset statistics with synthetic workloads
//!    — [`workloads`].
//!
//! ## Quick start
//!
//! ```
//! use recama::Pattern;
//!
//! let pattern = Pattern::compile(r"ab{10,20}c").unwrap();
//! assert!(pattern.is_match(b"....abbbbbbbbbbbc..."));
//! assert_eq!(pattern.find_ends(b"xxabbbbbbbbbbc"), vec![14]);
//! // One counter module instead of 20 unfolded STEs:
//! assert_eq!(pattern.network().counts_by_type().1, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use recama_analysis as analysis;
pub use recama_compiler as compiler;
pub use recama_hw as hw;
pub use recama_mnrl as mnrl;
pub use recama_nca as nca;
pub use recama_syntax as syntax;
pub use recama_workloads as workloads;

mod engine;
mod prefilter;
pub mod sched;
mod service;
mod set;

pub use engine::{
    CompileError, CompilePhase, Engine, EngineBuilder, FaultPolicy, OverloadPolicy, ServeConfig,
    ServiceConfig, SkippedRule,
};
pub use prefilter::{PrefilterMetrics, PrefilterMode};
pub use recama_nca::{HybridStats, ScanMode, DEFAULT_STATE_BUDGET};
pub use sched::{FlowMatch, FlowScheduler};
#[cfg(feature = "fault-inject")]
pub use service::FaultPlan;
#[allow(deprecated)]
pub use service::FlowService;
pub use service::{
    FaultMetrics, FlowId, RuleMatch, ServeError, ServiceEvent, ServiceHandle, ServiceMetrics,
};
#[allow(deprecated)]
pub use set::SetCompileError;
pub use set::{PatternSet, SetMatch, SetSpan, SetStream, ShardedPatternSet, ShardedSetStream};

use recama_compiler::{compile, CompileOptions, CompileOutput};
// The nca `Engine` trait is imported anonymously: only its methods are
// needed, and the bare name belongs to the crate-level `Engine` facade.
use recama_nca::Engine as _;
use recama_nca::{CompilePlan, CompiledEngine, Nca, StateId};
use recama_syntax::{ParseError, Parsed};
use std::sync::OnceLock;

/// A compiled pattern: the full software–hardware pipeline applied to one
/// regex, ready for matching (software twin) and for hardware simulation.
///
/// Matching uses *search* semantics like the in-memory accelerators: the
/// pattern is compiled in its streaming form `Σ*·r` (unless `^`-anchored)
/// and a match is reported at every byte position where a match of `r`
/// ends.
#[derive(Debug)]
pub struct Pattern {
    parsed: Parsed,
    compiled: CompileOutput,
    /// Reversed automaton for span location, built on first use (repeated
    /// `find_spans` calls must not re-run the Glushkov construction).
    reversed: OnceLock<Nca>,
}

impl Pattern {
    /// Compiles `pattern` with default options.
    ///
    /// # Errors
    ///
    /// Returns the parser's [`ParseError`] for malformed patterns or
    /// constructs outside the supported regular fragment (backreferences,
    /// lookaround, …).
    pub fn compile(pattern: &str) -> Result<Pattern, ParseError> {
        Pattern::compile_with(pattern, &CompileOptions::default())
    }

    /// Compiles with explicit [`CompileOptions`] (unfolding threshold,
    /// bit-vector capacity, analysis budget).
    ///
    /// # Errors
    ///
    /// Same as [`Pattern::compile`].
    pub fn compile_with(pattern: &str, options: &CompileOptions) -> Result<Pattern, ParseError> {
        let parsed = recama_syntax::parse(pattern)?;
        let compiled = compile(&parsed.for_stream(), options);
        Ok(Pattern {
            parsed,
            compiled,
            reversed: OnceLock::new(),
        })
    }

    /// The parse result (AST + anchors).
    pub fn parsed(&self) -> &Parsed {
        &self.parsed
    }

    /// The compiled MNRL network.
    pub fn network(&self) -> &recama_mnrl::MnrlNetwork {
        &self.compiled.network
    }

    /// The full compiler output (final NCA, module decisions, analysis).
    pub fn compiled(&self) -> &CompileOutput {
        &self.compiled
    }

    /// End positions (1-based byte offsets) of matches in `haystack`,
    /// using the analysis-informed software engine. A trailing `$` anchor
    /// keeps only matches ending at the end of the haystack.
    pub fn find_ends(&self, haystack: &[u8]) -> Vec<usize> {
        let mut engine = self.engine();
        engine
            .match_ends(haystack)
            .into_iter()
            .filter(|&e| e > 0 && (!self.parsed.anchored_end || e == haystack.len()))
            .collect()
    }

    /// Whether `haystack` contains a match.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        !self.find_ends(haystack).is_empty()
    }

    /// The software twin engine (counter registers + bit vectors, §3.2.1),
    /// with storage modes chosen from the static analysis.
    pub fn engine(&self) -> CompiledEngine<'_> {
        let analysis = &self.compiled.analysis;
        let plan = CompilePlan::with_unambiguous_states(&self.compiled.nca, |q: StateId| {
            analysis.state_unambiguous(q)
        });
        CompiledEngine::new(&self.compiled.nca, plan)
    }

    /// A hardware simulator for this pattern's network.
    pub fn hardware(&self) -> recama_hw::HwSimulator<'_> {
        recama_hw::HwSimulator::new(&self.compiled.network)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_end_to_end() {
        let p = Pattern::compile("a{3,5}b").unwrap();
        assert!(p.is_match(b"xxaaaabyy"));
        assert!(!p.is_match(b"aab"));
        assert_eq!(p.find_ends(b"aaab.aaaaab"), vec![4, 11]);
    }

    #[test]
    fn anchored_patterns_respect_anchor() {
        let p = Pattern::compile("^ab{2}").unwrap();
        assert!(p.is_match(b"abb..."));
        assert!(!p.is_match(b"xabb"));
    }

    #[test]
    fn software_engine_matches_hardware() {
        let p = Pattern::compile("x[ab]{2,6}y").unwrap();
        let input = b"zzxabababyzz_xay_xaby";
        let mut hw = p.hardware();
        assert_eq!(p.find_ends(input), hw.match_ends(input));
    }

    #[test]
    fn unsupported_patterns_error() {
        let err = Pattern::compile(r"(a)\1").unwrap_err();
        assert!(err.is_unsupported());
    }

    #[test]
    fn module_choice_is_visible() {
        use recama_compiler::ModuleKind;
        let unambiguous = Pattern::compile("^head[0-9]{500}tail").unwrap();
        assert_eq!(unambiguous.compiled().modules, vec![ModuleKind::Counter]);
        let ambiguous = Pattern::compile("k.{500}").unwrap();
        assert_eq!(ambiguous.compiled().modules, vec![ModuleKind::BitVector]);
    }
}

/// A located match: byte span `[start, end)` in the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatchSpan {
    /// Start offset (inclusive).
    pub start: usize,
    /// End offset (exclusive).
    pub end: usize,
}

impl Pattern {
    /// Locates full match spans: for every reported match end, the reversed
    /// automaton runs backward from the end to find the *earliest* start
    /// (leftmost-longest flavor). Automata processors natively report only
    /// ends; this is the software post-processing step deployments use.
    pub fn find_spans(&self, haystack: &[u8]) -> Vec<MatchSpan> {
        let ends = self.find_ends(haystack);
        if ends.is_empty() {
            return Vec::new();
        }
        let reversed = self.reversed_nca();
        let mut engine = recama_nca::TokenSetEngine::new(reversed);
        ends.into_iter()
            .map(|end| MatchSpan {
                start: earliest_start(&mut engine, haystack, end),
                end,
            })
            .collect()
    }

    /// The reversed automaton, constructed lazily on first span query and
    /// cached for the pattern's lifetime.
    fn reversed_nca(&self) -> &Nca {
        self.reversed
            .get_or_init(|| Nca::from_regex(&self.parsed.regex.reverse()))
    }
}

/// Runs `engine` — an engine over a *reversed* automaton — backward over
/// `haystack[..end]` and returns the earliest start of a match ending at
/// `end` (leftmost-longest flavor): accepting after `k` reversed bytes
/// means a match starts at `end - k`, and the largest `k` wins. Shared by
/// [`Pattern::find_spans`] and [`ShardedPatternSet::find_spans`].
pub(crate) fn earliest_start(
    engine: &mut recama_nca::TokenSetEngine<'_>,
    haystack: &[u8],
    end: usize,
) -> usize {
    engine.reset();
    let mut start = end; // empty-match fallback
    for (steps, &b) in haystack[..end].iter().rev().enumerate() {
        engine.step(b);
        if engine.is_accepting() {
            start = end - (steps + 1);
        }
    }
    start
}

#[cfg(test)]
mod span_tests {
    use super::*;

    #[test]
    fn spans_locate_starts() {
        let p = Pattern::compile("ab{2,3}c").unwrap();
        let spans = p.find_spans(b"zzabbc..abbbc");
        assert_eq!(
            spans,
            vec![
                MatchSpan { start: 2, end: 6 },
                MatchSpan { start: 8, end: 13 }
            ]
        );
    }

    #[test]
    fn spans_prefer_earliest_start() {
        // aa{1,3}: the longest extent backward from the end is taken.
        let p = Pattern::compile("a{2,4}").unwrap();
        let spans = p.find_spans(b"xaaax");
        assert_eq!(spans.len(), 2); // ends at 3 (aa) and 4 (aaa)
        assert_eq!(spans[0], MatchSpan { start: 1, end: 3 });
        assert_eq!(spans[1], MatchSpan { start: 1, end: 4 });
    }

    #[test]
    fn span_contents_rematch() {
        let p = Pattern::compile("k[ab]{2,5}z").unwrap();
        let hay = b"..kabz..kababz..";
        for span in p.find_spans(hay) {
            let slice = &hay[span.start..span.end];
            assert!(
                recama_syntax::naive::matches(&p.parsed().regex, slice),
                "span {:?} does not rematch: {:?}",
                span,
                String::from_utf8_lossy(slice)
            );
        }
    }
}
