//! Literal prefiltering (multi-pattern matching): compile-time required-
//! literal extraction plus per-shard Aho-Corasick filters that let the
//! serving layers skip scanning cold `(flow, shard)` units entirely.
//!
//! Production IDS engines never run the full automaton over benign
//! bytes: Suricata routes every rule through a prefilter/MPM stage, and
//! the hardware literature (Wu-Manber, Aho-Corasick codesign) scales
//! literal filtering to malware-grade rulesets. This module is that
//! stage for recama:
//!
//! * **Extraction** ([`extract`]) is a conservative analysis over the
//!   parsed [`Regex`]: a rule contributes a literal only if *every*
//!   match must contain it, with a bounded **lead** — an upper bound on
//!   the number of bytes from the start of a match to the end of the
//!   literal occurrence. Rules with no usable literal (alternations,
//!   classes, unbounded repetition before every literal, nullable
//!   rules) are marked **always-on**.
//! * **Filtering** ([`ShardPrefilter`]) builds one flat goto-table
//!   Aho-Corasick automaton per shard over the set's shared byte-class
//!   alphabet, streaming-resumable (a [`PrefilterState`] node survives
//!   chunk boundaries, so a literal split across chunks is still
//!   found). A shard containing any always-on rule gets no filter.
//! * **Skipping** is *sticky-cold → sticky-hot*: a `(flow, shard)` unit
//!   is **cold** until the filter sees any literal end in the flow's
//!   bytes. While cold, no match of the shard's rules can end anywhere
//!   (every match needs a literal that has not occurred), so the chunk
//!   is skipped — it still advances the filter state and the flow
//!   offsets. On the first candidate the unit turns hot **forever** and
//!   the engine teleports to `chunk_start + 1 − lead_window` via
//!   [`ShardStream::restart_at`](recama_nca::ShardStream::restart_at),
//!   replaying at most `lead_window` tail bytes: any true match ending
//!   at or after the candidate chunk starts inside the replayed window
//!   (its literal ends after the chunk start, and the lead bound caps
//!   how far back it begins), and a fresh `Σ*` frontier finds all such
//!   matches identically — so filtered output is **byte-identical** to
//!   unfiltered, pinned by `tests/prefilter_differential.rs`.

use recama_syntax::{ByteAlphabet, Parsed, Regex};

/// Whether compiled sets consult the literal prefilter; set at build
/// time via [`EngineBuilder::prefilter`](crate::EngineBuilder::prefilter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrefilterMode {
    /// Extract literals and skip cold `(flow, shard)` units (the
    /// default). Output is byte-identical to [`PrefilterMode::Off`].
    #[default]
    On,
    /// Never consult the filter: every unit scans every byte. The
    /// escape hatch for measuring the filter's effect (and the mode CI
    /// exercises to pin the identity).
    Off,
}

/// Prefilter counters, reported beside
/// [`HybridStats`](crate::HybridStats) by
/// [`ServiceMetrics`](crate::ServiceMetrics) and
/// [`FlowScheduler::prefilter_stats`](crate::FlowScheduler::prefilter_stats)
/// (`None` under [`PrefilterMode::Off`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefilterMetrics {
    /// Per shard: `(flow, shard)` chunk scans skipped because the unit
    /// was cold.
    pub skipped_units: Vec<u64>,
    /// Per shard: bytes those skipped scans would have walked.
    pub skipped_bytes: Vec<u64>,
    /// Cold units woken by a literal candidate (each wake is the unit's
    /// single cold→hot transition; hot units scan everything).
    pub candidate_hits: u64,
    /// Rules with no usable required literal; a shard containing one
    /// always scans.
    pub always_on_rules: usize,
}

impl PrefilterMetrics {
    /// Sum of [`skipped_units`](PrefilterMetrics::skipped_units) across
    /// shards.
    pub fn total_skipped_units(&self) -> u64 {
        self.skipped_units.iter().sum()
    }

    /// Sum of [`skipped_bytes`](PrefilterMetrics::skipped_bytes) across
    /// shards.
    pub fn total_skipped_bytes(&self) -> u64 {
        self.skipped_bytes.iter().sum()
    }
}

/// Auto-resizing per-shard counter vector — the one accumulation
/// primitive shared by the scheduler's and the service's metrics paths
/// (scan counts, scan bytes, and both prefilter counters all use it).
#[derive(Debug, Default, Clone)]
pub(crate) struct PerShard(Vec<u64>);

impl PerShard {
    pub(crate) fn add(&mut self, shard: usize, n: u64) {
        if self.0.len() <= shard {
            self.0.resize(shard + 1, 0);
        }
        self.0[shard] += n;
    }

    /// The counters, padded with zeros to at least `shards` entries.
    pub(crate) fn snapshot(&self, shards: usize) -> Vec<u64> {
        let mut v = self.0.clone();
        if v.len() < shards {
            v.resize(shards, 0);
        }
        v
    }
}

/// Mutable prefilter counters for one serving layer (scheduler or
/// service); snapshotted into [`PrefilterMetrics`].
#[derive(Debug, Default)]
pub(crate) struct PrefilterCounters {
    pub(crate) skipped_units: PerShard,
    pub(crate) skipped_bytes: PerShard,
    pub(crate) candidate_hits: u64,
}

impl PrefilterCounters {
    pub(crate) fn snapshot(&self, shards: usize, always_on_rules: usize) -> PrefilterMetrics {
        PrefilterMetrics {
            skipped_units: self.skipped_units.snapshot(shards),
            skipped_bytes: self.skipped_bytes.snapshot(shards),
            candidate_hits: self.candidate_hits,
            always_on_rules,
        }
    }
}

/// A required literal extracted from one rule: every match of the rule
/// contains `lit` as a contiguous substring, and the literal's last
/// byte is at most `lead` bytes after the start of the match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Extraction {
    pub(crate) lit: Vec<u8>,
    pub(crate) lead: u64,
}

/// Leads beyond this make a literal unusable (the wake-up replay window
/// — and the per-flow tail buffer — would grow without bound).
const MAX_LEAD: u64 = 256;

/// Bounded singleton repeats up to this count are expanded into the
/// literal run (`ab{2,3}c` contributes `abb`).
const REPEAT_EXPAND_CAP: u32 = 64;

/// Extracts a required literal with bounded lead from a parsed rule, or
/// `None` if the rule must be always-on. Conservative in both
/// directions that matter: a returned literal really is contained in
/// every match (so skipping cold units loses nothing), and its lead
/// really bounds the match start (so the wake-up replay window
/// suffices).
pub(crate) fn extract(parsed: &Parsed) -> Option<Extraction> {
    let r = &parsed.regex;
    // A nullable rule matches the empty string at every position: no
    // literal is required. A void rule never matches; always-on is a
    // harmless (and simplest) classification.
    if r.nullable() || r.is_void() {
        return None;
    }
    let mut w = Walk {
        prefix: Some(0), // a match starts 0 bytes before its own start
        ..Walk::default()
    };
    w.walk(r);
    w.flush();
    w.best
}

/// Upper bound on the number of bytes a match of `r` can span (`None`
/// if unbounded).
fn max_len(r: &Regex) -> Option<u64> {
    match r {
        Regex::Empty | Regex::Void => Some(0),
        Regex::Class(_) => Some(1),
        Regex::Concat(parts) => parts.iter().try_fold(0u64, |a, p| Some(a + max_len(p)?)),
        Regex::Alt(parts) => parts.iter().try_fold(0u64, |a, p| Some(a.max(max_len(p)?))),
        Regex::Star(inner) => match max_len(inner) {
            Some(0) => Some(0),
            _ => None,
        },
        Regex::Repeat { inner, max, .. } => match (max, max_len(inner)) {
            (_, Some(0)) => Some(0),
            (Some(m), Some(l)) => Some(u64::from(*m) * l),
            _ => None,
        },
    }
}

/// The left-to-right extraction walk: accumulates the current literal
/// run of contiguous single-byte atoms while tracking `prefix`, an
/// upper bound on the bytes from the match start to the current point
/// (`None` once unbounded — a later literal's lead cannot be bounded).
#[derive(Default)]
struct Walk {
    prefix: Option<u64>,
    run: Vec<u8>,
    /// `prefix` when the current run began.
    run_start: Option<u64>,
    best: Option<Extraction>,
}

impl Walk {
    fn walk(&mut self, r: &Regex) {
        match r {
            Regex::Empty | Regex::Void => {}
            Regex::Class(c) => {
                if c.len() == 1 {
                    self.push_byte(c.min_byte().expect("nonempty class"));
                } else {
                    self.flush();
                    self.advance(Some(1));
                }
            }
            Regex::Concat(parts) => {
                for p in parts {
                    self.walk(p);
                }
            }
            // Alternations are opaque: no arm's literal is required by
            // the others, and intersecting arm literals is not worth the
            // complexity for the rulesets at hand.
            Regex::Alt(parts) => {
                self.flush();
                self.advance(parts.iter().try_fold(0u64, |a, p| Some(a.max(max_len(p)?))));
            }
            Regex::Star(inner) => {
                self.flush();
                self.advance(match max_len(inner) {
                    Some(0) => Some(0),
                    _ => None,
                });
            }
            Regex::Repeat { inner, min, max } => self.repeat(inner, *min, *max),
        }
    }

    fn repeat(&mut self, inner: &Regex, min: u32, max: Option<u32>) {
        let singleton = match inner {
            Regex::Class(c) if c.len() == 1 => c.min_byte(),
            _ => None,
        };
        match singleton {
            // σ{m,n} with a single byte: the first m copies are
            // contiguous with whatever literal run precedes them.
            Some(b) if (1..=REPEAT_EXPAND_CAP).contains(&min) => {
                for _ in 0..min {
                    self.push_byte(b);
                }
                if max != Some(min) {
                    // The boundary after the m-th copy is variable.
                    self.flush();
                    self.advance(max.map(|mx| u64::from(mx - min)));
                }
            }
            // A non-singleton body occurring at least once: its first
            // iteration is required and contiguous, so recurse into it;
            // further iterations only stretch the prefix.
            None if min >= 1 => {
                self.walk(inner);
                if max != Some(1) {
                    self.flush();
                    self.advance(max.and_then(|mx| Some(u64::from(mx - 1) * max_len(inner)?)));
                }
            }
            // min == 0 (nothing required) or an over-cap singleton run.
            _ => {
                self.flush();
                self.advance(max.and_then(|mx| Some(u64::from(mx) * max_len(inner)?)));
            }
        }
    }

    fn push_byte(&mut self, b: u8) {
        if self.run.is_empty() {
            self.run_start = self.prefix;
        }
        self.run.push(b);
        self.prefix = self.prefix.map(|p| p + 1);
    }

    /// Adds `bytes` (an upper bound, `None` = unbounded) to the prefix.
    fn advance(&mut self, bytes: Option<u64>) {
        self.prefix = match (self.prefix, bytes) {
            (Some(p), Some(b)) => Some(p + b),
            _ => None,
        };
    }

    /// Ends the current literal run and keeps it if it beats the best
    /// candidate so far (longer wins; shorter lead breaks ties).
    fn flush(&mut self) {
        if !self.run.is_empty() {
            if let Some(start) = self.run_start {
                let lead = start + self.run.len() as u64;
                if lead <= MAX_LEAD {
                    let better = match &self.best {
                        None => true,
                        Some(best) => {
                            self.run.len() > best.lit.len()
                                || (self.run.len() == best.lit.len() && lead < best.lead)
                        }
                    };
                    if better {
                        self.best = Some(Extraction {
                            lit: std::mem::take(&mut self.run),
                            lead,
                        });
                    }
                }
            }
            self.run.clear();
        }
        self.run_start = None;
    }
}

/// A flat goto-table Aho-Corasick automaton over the set's shared
/// byte-class alphabet (`goto[node × stride + class]`), fully
/// determinized at build time (failure links are folded into the table,
/// so advancing is one lookup per byte). Matching over classes instead
/// of raw bytes can only *over*-report (two bytes sharing a class are
/// indistinguishable), which wakes a unit early but never skips a real
/// candidate — and singleton predicates get singleton classes from the
/// set's alphabet anyway, so in practice the filter is exact.
#[derive(Debug)]
pub(crate) struct ShardPrefilter {
    table: Vec<u32>,
    out: Vec<bool>,
    stride: usize,
    /// Max lead among this shard's literals: the wake-up replay window.
    window: u64,
}

impl ShardPrefilter {
    fn build(lits: &[&Extraction], alphabet: &ByteAlphabet) -> ShardPrefilter {
        const NONE: u32 = u32::MAX;
        let stride = alphabet.len().max(1);
        let mut table: Vec<u32> = vec![NONE; stride];
        let mut out = vec![false];
        let mut window = 0u64;
        for ex in lits {
            window = window.max(ex.lead);
            let mut node = 0usize;
            for &b in &ex.lit {
                let c = alphabet.class_of(b);
                let next = table[node * stride + c];
                node = if next == NONE {
                    let fresh = out.len();
                    table[node * stride + c] = fresh as u32;
                    table.extend(std::iter::repeat_n(NONE, stride));
                    out.push(false);
                    fresh
                } else {
                    next as usize
                };
            }
            out[node] = true;
        }
        // BFS determinization: missing root edges self-loop, missing
        // deeper edges inherit the failure node's (already determinized)
        // edge, and outputs propagate along failure links.
        let mut fail = vec![0u32; out.len()];
        let mut queue = std::collections::VecDeque::new();
        for slot in table.iter_mut().take(stride) {
            if *slot == NONE {
                *slot = 0;
            } else {
                queue.push_back(*slot as usize);
            }
        }
        while let Some(u) = queue.pop_front() {
            let f = fail[u] as usize;
            out[u] = out[u] || out[f];
            for c in 0..stride {
                let v = table[u * stride + c];
                if v == NONE {
                    table[u * stride + c] = table[f * stride + c];
                } else {
                    fail[v as usize] = table[f * stride + c];
                    queue.push_back(v as usize);
                }
            }
        }
        ShardPrefilter {
            table,
            out,
            stride,
            window,
        }
    }

    /// The wake-up replay window: no match ending at or after a cold
    /// unit's first candidate starts more than this many bytes before
    /// the candidate chunk's first literal end.
    pub(crate) fn window(&self) -> u64 {
        self.window
    }

    /// Advances `node` over `chunk`, returning `true` as soon as any
    /// literal ends. On a hit the node is **not** advanced further —
    /// the unit turns hot and never consults the filter again.
    pub(crate) fn advance(&self, node: &mut u32, alphabet: &ByteAlphabet, chunk: &[u8]) -> bool {
        let mut n = *node as usize;
        for &b in chunk {
            n = self.table[n * self.stride + alphabet.class_of(b)] as usize;
            if self.out[n] {
                *node = n as u32;
                return true;
            }
        }
        *node = n as u32;
        false
    }

    /// Whether any literal occurs in `haystack` (block-mode gate: a
    /// one-shot scan of a haystack with no candidate cannot match).
    pub(crate) fn contains(&self, alphabet: &ByteAlphabet, haystack: &[u8]) -> bool {
        let mut node = 0u32;
        self.advance(&mut node, alphabet, haystack)
    }
}

/// The compiled prefilter of a whole set: one optional
/// [`ShardPrefilter`] per shard (`None` ⇒ the shard contains an
/// always-on rule and must scan everything), sharing the set's
/// byte-class alphabet.
#[derive(Debug)]
pub(crate) struct SetPrefilter {
    alphabet: ByteAlphabet,
    shards: Vec<Option<ShardPrefilter>>,
    always_on_rules: usize,
    /// Max window over all shard filters: how many trailing bytes a
    /// flow's tail buffer must retain for wake-up replay.
    max_window: u64,
}

impl SetPrefilter {
    /// Builds the per-shard filters from the rules' parse trees and the
    /// shard plan. `alphabet` is the set's shared byte-class alphabet.
    pub(crate) fn build(
        parsed: &[Parsed],
        shards: &[Vec<usize>],
        alphabet: ByteAlphabet,
    ) -> SetPrefilter {
        let extractions: Vec<Option<Extraction>> = parsed.iter().map(extract).collect();
        let always_on_rules = extractions.iter().filter(|e| e.is_none()).count();
        let shard_filters: Vec<Option<ShardPrefilter>> = shards
            .iter()
            .map(|members| {
                let lits: Option<Vec<&Extraction>> =
                    members.iter().map(|&g| extractions[g].as_ref()).collect();
                lits.map(|lits| ShardPrefilter::build(&lits, &alphabet))
            })
            .collect();
        let max_window = shard_filters
            .iter()
            .flatten()
            .map(ShardPrefilter::window)
            .max()
            .unwrap_or(0);
        SetPrefilter {
            alphabet,
            shards: shard_filters,
            always_on_rules,
            max_window,
        }
    }

    /// Shard `i`'s filter (`None` ⇒ always-on).
    pub(crate) fn shard(&self, i: usize) -> Option<&ShardPrefilter> {
        self.shards.get(i).and_then(Option::as_ref)
    }

    /// The shared byte-class alphabet the filters index with.
    pub(crate) fn alphabet(&self) -> &ByteAlphabet {
        &self.alphabet
    }

    /// Rules with no usable literal.
    pub(crate) fn always_on_rules(&self) -> usize {
        self.always_on_rules
    }

    /// Decides what a cold-capable `(flow, shard)` unit does with a
    /// chunk starting at absolute offset `chunk_start` (≥ `base`, the
    /// position the unit's engine counts from — 0 for schedulers and
    /// streams, the epoch base for the service). Hot units and
    /// filterless shards always scan.
    pub(crate) fn chunk_action(
        &self,
        shard: usize,
        state: &mut PrefilterState,
        chunk: &[u8],
        chunk_start: u64,
        base: u64,
    ) -> ChunkAction {
        if state.hot {
            return ChunkAction::Scan;
        }
        let Some(filter) = self.shard(shard) else {
            state.hot = true;
            return ChunkAction::Scan;
        };
        if filter.advance(&mut state.node, &self.alphabet, chunk) {
            state.hot = true;
            // The first literal end in the flow is at or after
            // chunk_start + 1, so every match ending from here on
            // starts at or after chunk_start + 1 − window.
            let replay_start = (chunk_start + 1).saturating_sub(filter.window()).max(base);
            ChunkAction::Wake { replay_start }
        } else {
            ChunkAction::Skip
        }
    }

    /// Appends `chunk` to a flow's tail buffer, keeping only the last
    /// `max_window` bytes (all any wake-up can replay).
    pub(crate) fn extend_tail(&self, tail: &mut Vec<u8>, chunk: &[u8]) {
        let w = self.max_window as usize;
        if w == 0 {
            return;
        }
        if chunk.len() >= w {
            tail.clear();
            tail.extend_from_slice(&chunk[chunk.len() - w..]);
        } else {
            let keep = (w - chunk.len()).min(tail.len());
            tail.drain(..tail.len() - keep);
            tail.extend_from_slice(chunk);
        }
    }
}

/// The streaming filter state of one `(flow, shard)` unit: the AC node
/// (literals straddling chunk boundaries resume here) and the sticky
/// hot flag.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct PrefilterState {
    pub(crate) node: u32,
    pub(crate) hot: bool,
}

impl PrefilterState {
    /// Back to cold at the start of a (new) stream — used when a flow
    /// opens, reopens, or migrates to a new engine epoch.
    pub(crate) fn reset(&mut self) {
        *self = PrefilterState::default();
    }
}

/// What a unit does with one buffered chunk (see
/// [`SetPrefilter::chunk_action`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChunkAction {
    /// Scan normally (hot unit, filterless shard, or prefilter off).
    Scan,
    /// Cold and no candidate: advance the unit's position past the
    /// chunk without scanning (the engine stays fresh).
    Skip,
    /// Cold unit saw its first candidate: restart the engine at
    /// `replay_start`, replay the tail bytes `[replay_start,
    /// chunk_start)`, then scan the chunk. The unit is hot from now on.
    Wake {
        /// Absolute offset the engine restarts at.
        replay_start: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use recama_syntax::parse;

    fn ex(pattern: &str) -> Option<Extraction> {
        extract(&parse(pattern).unwrap())
    }

    #[test]
    fn extraction_finds_required_literals() {
        let e = ex("ab{2,3}c").unwrap();
        assert_eq!((e.lit.as_slice(), e.lead), (&b"abb"[..], 3));
        let e = ex("xyz").unwrap();
        assert_eq!((e.lit.as_slice(), e.lead), (&b"xyz"[..], 3));
        let e = ex("k[0-9]{2,4}m").unwrap();
        assert_eq!((e.lit.as_slice(), e.lead), (&b"k"[..], 1));
        let e = ex("foo\\d+bar").unwrap();
        assert_eq!(e.lit, b"foo", "literal after \\d+ has unbounded lead");
        let e = ex("ab{3}cd").unwrap();
        assert_eq!((e.lit.as_slice(), e.lead), (&b"abbbcd"[..], 6));
        let e = ex("(abc){2,4}").unwrap();
        assert_eq!((e.lit.as_slice(), e.lead), (&b"abc"[..], 3));
    }

    #[test]
    fn extraction_marks_always_on() {
        assert_eq!(ex("[ab]{3}"), None, "classes defeat extraction");
        assert_eq!(ex("a*"), None, "nullable");
        assert_eq!(ex("(ab|cd)"), None, "alternation is opaque");
        assert_eq!(ex(".*"), None);
        // A literal *after* unbounded repetition is required but its
        // lead is unbounded; with nothing before, the rule is always-on.
        assert_eq!(ex(".*xyz"), None);
        // ... but a bounded-lead literal before it is still usable.
        let e = ex("ab.*xyz").unwrap();
        assert_eq!((e.lit.as_slice(), e.lead), (&b"ab"[..], 2));
    }

    #[test]
    fn anchors_do_not_change_extraction() {
        let e = ex("^xyz$").unwrap();
        assert_eq!((e.lit.as_slice(), e.lead), (&b"xyz"[..], 3));
    }

    #[test]
    fn ac_filter_finds_literals_across_chunks() {
        let a = parse("abbc").unwrap();
        let b = parse("xyz").unwrap();
        let parsed = vec![a, b];
        let mut classes = recama_syntax::ByteClassSet::new();
        for p in &parsed {
            // Singleton predicates, as the NCA alphabet would see them.
            for byte in p.regex.to_string().bytes() {
                classes.add(&recama_syntax::ByteClass::singleton(byte));
            }
        }
        let pf = SetPrefilter::build(&parsed, &[vec![0, 1]], classes.freeze());
        let f = pf.shard(0).expect("both rules have literals");
        let al = pf.alphabet();
        assert!(f.contains(al, b"..abbc.."));
        assert!(f.contains(al, b"xyz"));
        assert!(!f.contains(al, b"ab bc xy z"));
        // Streaming: "xy|z" split across an advance boundary.
        let mut node = 0u32;
        assert!(!f.advance(&mut node, al, b"..xy"));
        assert!(f.advance(&mut node, al, b"z.."));
    }

    #[test]
    fn chunk_action_wakes_with_bounded_replay() {
        let parsed = vec![parse("ab{2,3}c").unwrap()];
        let mut classes = recama_syntax::ByteClassSet::new();
        for byte in [b'a', b'b', b'c'] {
            classes.add(&recama_syntax::ByteClass::singleton(byte));
        }
        let pf = SetPrefilter::build(&parsed, &[vec![0]], classes.freeze());
        let mut st = PrefilterState::default();
        assert_eq!(
            pf.chunk_action(0, &mut st, b"....", 0, 0),
            ChunkAction::Skip
        );
        assert!(!st.hot);
        // "ab" then "b" across the boundary: the literal "abb" ends in
        // the second chunk, with lead 3 ⇒ replay from 6 + 1 − 3 = 4.
        assert_eq!(
            pf.chunk_action(0, &mut st, b"..ab", 4, 0),
            ChunkAction::Skip
        );
        assert_eq!(
            pf.chunk_action(0, &mut st, b"bc", 8, 0),
            ChunkAction::Wake { replay_start: 6 }
        );
        assert!(st.hot);
        // Hot units scan unconditionally.
        assert_eq!(
            pf.chunk_action(0, &mut st, b"....", 10, 0),
            ChunkAction::Scan
        );
    }

    #[test]
    fn tail_buffer_keeps_the_window() {
        let parsed = vec![parse("ab{2,3}c").unwrap()]; // window 3
        let mut classes = recama_syntax::ByteClassSet::new();
        classes.add(&recama_syntax::ByteClass::singleton(b'a'));
        let pf = SetPrefilter::build(&parsed, &[vec![0]], classes.freeze());
        let mut tail = Vec::new();
        pf.extend_tail(&mut tail, b"xy");
        assert_eq!(tail, b"xy");
        pf.extend_tail(&mut tail, b"z");
        assert_eq!(tail, b"xyz");
        pf.extend_tail(&mut tail, b"w");
        assert_eq!(tail, b"yzw");
        pf.extend_tail(&mut tail, b"longchunk");
        assert_eq!(tail, b"unk");
    }
}
