//! [`FlowScheduler`]: a many-flow scanning service over a sharded
//! pattern set.
//!
//! The paper evaluates CAMA as an IDS-class engine (Snort/Suricata
//! rulesets), and the workload such an engine serves is not one byte
//! stream but **thousands of concurrent flows**, each delivering bytes in
//! interleaved chunks — the shape of Suricata's flow-worker pipeline.
//! What matters at deployment scale is aggregate multi-flow throughput,
//! so the scheduling layer must keep every core busy with whatever flow
//! has bytes pending instead of binding workers to flows.
//!
//! The scheduler owns `N flows × K shards` resumable engine states
//! ([`ShardStream`]), fed through three moves:
//!
//! * [`push`](FlowScheduler::push) buffers a `(flow, chunk)` pair and
//!   marks the flow's shard units *ready* (epoll-style readiness: a unit
//!   is ready when its shard has unconsumed bytes and no worker holds its
//!   engine);
//! * [`run`](FlowScheduler::run) drains the readiness queue on a fixed
//!   pool of scoped worker threads. The work unit is a **(flow, shard)**
//!   pair, so two workers can advance *different shards of the same
//!   flow* concurrently — that is why the per-shard states are split out
//!   of [`ShardedSetStream`](crate::ShardedSetStream) individually;
//! * [`poll`](FlowScheduler::poll) drains a flow's ordered report queue;
//!   [`drain_global`](FlowScheduler::drain_global) drains the global
//!   sink of `(flow, match)` events.
//!
//! Per-flow reports are **byte-identical** (same reports, same order) to
//! feeding that flow's chunks through its own independent
//! [`ShardedSetStream`](crate::ShardedSetStream): shard report buffers
//! are merged by `(end, pattern)` up to the *watermark* — the least
//! position any shard of the flow has consumed — so ordering never
//! depends on which worker ran first. Like the streams, the scheduler
//! applies no trailing-`$` filter mid-flow (a flow has no end until it
//! is [`close`](FlowScheduler::close)d); once a closed flow drains,
//! [`finishing`](FlowScheduler::finishing) resolves which `$`-anchored
//! candidates actually landed on the final byte, mirroring
//! [`ShardedSetStream::finish`](crate::ShardedSetStream::finish).

use crate::prefilter::{ChunkAction, PrefilterCounters, PrefilterMetrics, PrefilterState};
use crate::set::DollarTracker;
use crate::{SetMatch, ShardedPatternSet};
use recama_nca::{HybridStats, MultiReport, ScanMode, ShardStream};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// A match attributed to a flow — the global-sink event type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowMatch {
    /// The flow the match occurred on.
    pub flow: u64,
    /// Index of the matching pattern in the set.
    pub pattern: usize,
    /// 1-based end offset, absolute within the flow's byte stream.
    pub end: usize,
}

impl FlowMatch {
    /// The match without its flow attribution.
    pub fn set_match(&self) -> SetMatch {
        SetMatch {
            pattern: self.pattern,
            end: self.end,
        }
    }
}

/// A buffered input chunk: `bytes` starts at absolute stream offset
/// `start` within its flow. Chunks are `Arc`-shared so workers can scan
/// them outside the scheduler lock while slower shards still reference
/// them.
#[derive(Clone)]
pub(crate) struct Segment {
    pub(crate) start: u64,
    pub(crate) bytes: Arc<[u8]>,
}

impl Segment {
    pub(crate) fn end(&self) -> u64 {
        self.start + self.bytes.len() as u64
    }
}

/// One checkout-able (flow, shard) engine unit.
struct ShardSlot<'a> {
    /// `None` while a worker holds the engine.
    stream: Option<ShardStream<'a>>,
    /// Reports not yet merged into the flow queue: global pattern ids,
    /// absolute ends, sorted by `(end, pattern)`.
    pending: VecDeque<MultiReport>,
    /// Bytes of the flow this shard has consumed (as of last check-in).
    pos: u64,
    /// Whether the unit is in the ready queue *or* checked out — either
    /// way it must not be enqueued again.
    busy: bool,
    /// Literal-prefilter state: the unit is skipped while cold (see
    /// [`crate::PrefilterMode`]). Cold units are never queued, so their
    /// engine is always present and fresh.
    pre: PrefilterState,
}

/// Per-flow state: buffered input, one [`ShardSlot`] per shard, and the
/// merged in-order report queue. Shared between the batch-mode
/// [`FlowScheduler`] and the long-lived
/// [`FlowService`](crate::FlowService).
pub(crate) struct Flow<'a> {
    segments: VecDeque<Segment>,
    /// Total bytes pushed (absolute length of the flow so far).
    total: u64,
    pub(crate) closed: bool,
    /// Empty once a closed flow has fully drained (engines freed).
    shards: Vec<ShardSlot<'a>>,
    reports: VecDeque<SetMatch>,
    /// Last `$`-anchored candidates, so closing the flow can resolve
    /// which of them land on the final byte (the stream `finish`
    /// contract, per flow).
    dollar: DollarTracker<'a>,
    /// The resolved finishing set of a finished flow, until drained by
    /// [`FlowScheduler::finishing`].
    finishing: Vec<SetMatch>,
    /// Last `window` bytes of the flow, kept while any shard is cold so
    /// a prefilter wake-up can replay the bytes a match may have
    /// started in.
    tail: Vec<u8>,
}

impl<'a> Flow<'a> {
    fn new(set: &'a ShardedPatternSet) -> Flow<'a> {
        Flow {
            segments: VecDeque::new(),
            total: 0,
            closed: false,
            shards: set
                .shard_streams()
                .into_iter()
                .map(|stream| ShardSlot {
                    stream: Some(stream),
                    pending: VecDeque::new(),
                    pos: 0,
                    busy: false,
                    pre: PrefilterState::default(),
                })
                .collect(),
            reports: VecDeque::new(),
            dollar: DollarTracker::new(set.anchored_end()),
            finishing: Vec::new(),
            tail: Vec::new(),
        }
    }

    /// Bytes pushed but not yet consumed by every shard — the quantity
    /// the [`FlowService`](crate::FlowService) input budget bounds.
    pub(crate) fn buffered(&self) -> u64 {
        self.total - self.watermark()
    }

    /// The least position any shard has consumed — reports with ends at
    /// or below it are final and safe to merge in order.
    fn watermark(&self) -> u64 {
        self.shards
            .iter()
            .map(|slot| slot.pos)
            .min()
            .unwrap_or(self.total)
    }

    /// Merges shard-pending reports up to the watermark into the flow
    /// queue (ordered by `(end, pattern)`, the stream order) and the
    /// global sink, then drops input segments every shard has consumed.
    fn merge_ready_reports(&mut self, flow_id: u64, sink: &mut Vec<FlowMatch>) {
        let watermark = self.watermark();
        loop {
            let mut best: Option<(usize, (u64, u32))> = None;
            for (si, slot) in self.shards.iter().enumerate() {
                if let Some(r) = slot.pending.front() {
                    if r.end <= watermark && best.is_none_or(|(_, key)| (r.end, r.pattern) < key) {
                        best = Some((si, (r.end, r.pattern)));
                    }
                }
            }
            let Some((si, _)) = best else { break };
            let r = self.shards[si].pending.pop_front().expect("best exists");
            self.dollar.observe(r.pattern as usize, r.end);
            self.reports.push_back(SetMatch {
                pattern: r.pattern as usize,
                end: r.end as usize,
            });
            sink.push(FlowMatch {
                flow: flow_id,
                pattern: r.pattern as usize,
                end: r.end as usize,
            });
        }
        while self
            .segments
            .front()
            .is_some_and(|seg| seg.end() <= watermark)
        {
            self.segments.pop_front();
        }
    }

    /// Frees the engines of a closed, fully-consumed flow and resolves
    /// its `$`-anchored finishing set. The report queue stays pollable;
    /// a later [`FlowScheduler::push`] with the same id starts a fresh
    /// stream at position 0.
    fn try_finish(&mut self) {
        if self.shards.is_empty() {
            return; // already finished
        }
        let drained = self
            .shards
            .iter()
            .all(|slot| slot.stream.is_some() && !slot.busy && slot.pos == self.total);
        if self.closed && drained {
            debug_assert!(self.shards.iter().all(|slot| slot.pending.is_empty()));
            self.shards.clear();
            self.segments.clear();
            self.finishing.extend(self.dollar.finish(self.total));
        }
    }

    /// Whether the flow is closed and its engines have been freed.
    pub(crate) fn finished(&self) -> bool {
        self.closed && self.shards.is_empty()
    }
}

/// Everything the scheduler (or service) lock protects: the flow table,
/// the readiness queue, and the global sink. The scheduling moves —
/// open/buffer on push, checkout/check-in around an unlocked scan —
/// live here so the batch-mode [`FlowScheduler`] and the long-lived
/// [`FlowService`](crate::FlowService) share one implementation.
pub(crate) struct Shared<'a> {
    pub(crate) flows: HashMap<u64, Flow<'a>>,
    /// Readiness queue of `(flow, shard)` units with unconsumed bytes.
    pub(crate) ready: VecDeque<(u64, usize)>,
    /// Units currently checked out by workers.
    pub(crate) in_flight: usize,
    /// Global sink: every merged match, attributed to its flow.
    sink: Vec<FlowMatch>,
    /// Prefilter skip/wake counters across all flows.
    pre_counters: PrefilterCounters,
}

/// A `(flow, shard)` unit checked out of the readiness queue: the
/// shard's engine plus the input segments it still has to consume,
/// detached from the lock so the scan runs unlocked.
pub(crate) struct CheckedOut<'a> {
    flow: u64,
    shard: usize,
    stream: ShardStream<'a>,
    segments: Vec<Segment>,
}

impl CheckedOut<'_> {
    /// Scans every unconsumed byte of the checked-out segments,
    /// returning the shard's reports (global pattern ids, absolute
    /// ends). Runs WITHOUT the lock held.
    pub(crate) fn scan(&mut self) -> Vec<MultiReport> {
        let mut reports = Vec::new();
        for seg in &self.segments {
            let skip = (self.stream.position() - seg.start) as usize;
            self.stream.feed_into(&seg.bytes[skip..], &mut reports);
        }
        reports
    }
}

impl<'a> Shared<'a> {
    pub(crate) fn new() -> Shared<'a> {
        Shared {
            flows: HashMap::new(),
            ready: VecDeque::new(),
            in_flight: 0,
            sink: Vec::new(),
            pre_counters: PrefilterCounters::default(),
        }
    }

    /// Opens (or reopens) `flow` for pushing and returns it. Reopening a
    /// finished flow starts a fresh incarnation whose undrained reports
    /// and finishing set survive. Fails if the flow is closed but not
    /// yet drained — close is a promise that no more bytes come.
    pub(crate) fn open_flow(
        &mut self,
        set: &'a ShardedPatternSet,
        flow: u64,
    ) -> Result<&mut Flow<'a>, PushToClosed> {
        let f = self.flows.entry(flow).or_insert_with(|| Flow::new(set));
        if f.finished() {
            let kept_reports = std::mem::take(&mut f.reports);
            let kept_finishing = std::mem::take(&mut f.finishing);
            *f = Flow::new(set);
            f.reports = kept_reports;
            f.finishing = kept_finishing;
        }
        if f.closed {
            return Err(PushToClosed);
        }
        Ok(f)
    }

    /// Buffers `chunk` for an open `flow` and marks its idle shard units
    /// ready — except units the literal prefilter proves cold, whose
    /// position advances past the chunk without a scan. Returns the
    /// flow's new total length. A zero-length chunk schedules no work.
    pub(crate) fn buffer_chunk(
        &mut self,
        set: &'a ShardedPatternSet,
        flow: u64,
        chunk: &[u8],
    ) -> u64 {
        let f = self.flows.get_mut(&flow).expect("buffer_chunk: open flow");
        if chunk.is_empty() {
            return f.total;
        }
        let chunk_start = f.total;
        f.segments.push_back(Segment {
            start: chunk_start,
            bytes: Arc::from(chunk),
        });
        f.total += chunk.len() as u64;
        let Some(pf) = set.prefilter() else {
            for (si, slot) in f.shards.iter_mut().enumerate() {
                if !slot.busy {
                    slot.busy = true;
                    self.ready.push_back((flow, si));
                }
            }
            return f.total;
        };
        // Filter verdict per shard; the filter state advances over the
        // chunk even when the scan is skipped.
        let actions: Vec<ChunkAction> = f
            .shards
            .iter_mut()
            .enumerate()
            .map(|(si, slot)| pf.chunk_action(si, &mut slot.pre, chunk, chunk_start, 0))
            .collect();
        // A woken unit replays up to a window of bytes before the chunk;
        // if those already fell off the segment queue, re-cover them
        // with a synthetic segment sliced from the tail buffer (keeping
        // the queue contiguous for `CheckedOut::scan`'s skip math).
        let min_replay = actions
            .iter()
            .filter_map(|a| match a {
                ChunkAction::Wake { replay_start } => Some(*replay_start),
                _ => None,
            })
            .min();
        if let Some(min_replay) = min_replay {
            let front_start = f.segments.front().map_or(f.total, |s| s.start);
            if min_replay < front_start {
                let tail_start = chunk_start - f.tail.len() as u64;
                debug_assert!(min_replay >= tail_start, "tail covers every replay window");
                let a = (min_replay - tail_start) as usize;
                let b = (front_start - tail_start) as usize;
                f.segments.push_front(Segment {
                    start: min_replay,
                    bytes: Arc::from(&f.tail[a..b]),
                });
            }
        }
        let mut skipped = false;
        for (si, (slot, action)) in f.shards.iter_mut().zip(&actions).enumerate() {
            match action {
                ChunkAction::Scan => {
                    if !slot.busy {
                        slot.busy = true;
                        self.ready.push_back((flow, si));
                    }
                }
                ChunkAction::Skip => {
                    // Cold units are never queued, so the engine is home.
                    debug_assert!(!slot.busy, "cold units are never busy");
                    slot.pos = f.total;
                    slot.stream
                        .as_mut()
                        .expect("cold units hold their engine")
                        .restart_at(f.total);
                    self.pre_counters.skipped_units.add(si, 1);
                    self.pre_counters.skipped_bytes.add(si, chunk.len() as u64);
                    skipped = true;
                }
                ChunkAction::Wake { replay_start } => {
                    debug_assert!(!slot.busy, "cold units are never busy");
                    slot.pos = *replay_start;
                    slot.stream
                        .as_mut()
                        .expect("cold units hold their engine")
                        .restart_at(*replay_start);
                    self.pre_counters.candidate_hits += 1;
                    slot.busy = true;
                    self.ready.push_back((flow, si));
                }
            }
        }
        pf.extend_tail(&mut f.tail, chunk);
        if skipped {
            // Skips advance the watermark without a check-in: merge (and
            // drop fully-consumed segments) promptly.
            f.merge_ready_reports(flow, &mut self.sink);
        }
        f.total
    }

    /// Pops a ready `(flow, shard)` unit and checks its engine out,
    /// along with the segments it has yet to consume.
    pub(crate) fn checkout(&mut self) -> Option<CheckedOut<'a>> {
        let (flow, si) = self.ready.pop_front()?;
        let f = self
            .flows
            .get_mut(&flow)
            .expect("ready unit belongs to a live flow");
        let slot = &mut f.shards[si];
        debug_assert!(slot.busy, "queued units are marked busy");
        let stream = slot.stream.take().expect("ready slot holds its engine");
        let from = stream.position();
        let segments: Vec<Segment> = f
            .segments
            .iter()
            .filter(|seg| seg.end() > from)
            .cloned()
            .collect();
        self.in_flight += 1;
        Some(CheckedOut {
            flow,
            shard: si,
            stream,
            segments,
        })
    }

    /// Checks a scanned unit back in: publishes its reports, requeues it
    /// if more bytes arrived while it was out, merges what became final,
    /// and settles `in_flight`.
    pub(crate) fn check_in(&mut self, unit: CheckedOut<'a>, reports: Vec<MultiReport>) {
        let CheckedOut {
            flow,
            shard: si,
            stream,
            ..
        } = unit;
        let Some(f) = self.flows.get_mut(&flow) else {
            // A sibling unit's panic dropped this flow while the unit
            // was out scanning (see `InFlightGuard`): drop the late
            // reports, settle the count.
            self.in_flight -= 1;
            return;
        };
        let slot = &mut f.shards[si];
        slot.pos = stream.position();
        slot.stream = Some(stream);
        slot.pending.extend(reports);
        if slot.pos < f.total {
            self.ready.push_back((flow, si)); // more bytes arrived meanwhile
        } else {
            slot.busy = false;
        }
        f.merge_ready_reports(flow, &mut self.sink);
        f.try_finish();
        self.in_flight -= 1;
    }

    /// Marks `flow` closed and finishes it if already drained. Closing
    /// an unknown id is a no-op.
    pub(crate) fn close_flow(&mut self, flow: u64) {
        if let Some(f) = self.flows.get_mut(&flow) {
            f.closed = true;
            f.merge_ready_reports(flow, &mut self.sink);
            f.try_finish();
        }
    }

    /// Drains `flow`'s ordered report queue, forgetting a fully-drained
    /// finished flow.
    pub(crate) fn poll_flow(&mut self, flow: u64) -> Vec<SetMatch> {
        let Some(f) = self.flows.get_mut(&flow) else {
            return Vec::new();
        };
        let out: Vec<SetMatch> = f.reports.drain(..).collect();
        if f.finished() && f.finishing.is_empty() {
            self.flows.remove(&flow);
        }
        out
    }

    /// Drains `flow`'s finishing set, forgetting a fully-drained
    /// finished flow.
    pub(crate) fn finishing_flow(&mut self, flow: u64) -> Vec<SetMatch> {
        let Some(f) = self.flows.get_mut(&flow) else {
            return Vec::new();
        };
        let out = std::mem::take(&mut f.finishing);
        if f.finished() && f.reports.is_empty() {
            self.flows.remove(&flow);
        }
        out
    }

    /// Drains the global sink.
    pub(crate) fn drain_sink(&mut self) -> Vec<FlowMatch> {
        std::mem::take(&mut self.sink)
    }

    /// Bytes pushed to `flow` so far (`None` for unknown flows).
    pub(crate) fn flow_len(&self, flow: u64) -> Option<u64> {
        self.flows.get(&flow).map(|f| f.total)
    }

    /// Total bytes buffered but not yet consumed by every shard.
    pub(crate) fn pending_bytes(&self) -> u64 {
        self.flows.values().map(Flow::buffered).sum()
    }
}

/// Rejected push: the flow is closed and has not finished draining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PushToClosed;

/// A scanning service over a [`ShardedPatternSet`] for many concurrent
/// flows. See the [module docs](self) for the architecture.
///
/// # Examples
///
/// ```
/// use recama::Engine;
///
/// let engine = Engine::builder().patterns(["ab{2}c", "xyz"]).build().unwrap();
/// let sched = engine.scheduler_with(2);
///
/// // Interleaved chunks from two flows; matches straddle the chunks.
/// sched.push(7, b"..ab");
/// sched.push(9, b"xy");
/// sched.run();
/// sched.push(9, b"z");
/// sched.push(7, b"bc!");
/// sched.run();
///
/// let hits: Vec<_> = sched.poll(7).iter().map(|m| (m.pattern, m.end)).collect();
/// assert_eq!(hits, vec![(0, 6)]); // "abbc" ends at flow-7 offset 6
/// let hits: Vec<_> = sched.poll(9).iter().map(|m| (m.pattern, m.end)).collect();
/// assert_eq!(hits, vec![(1, 3)]); // "xyz" ends at flow-9 offset 3
/// // The global sink saw both, attributed to their flows.
/// assert_eq!(sched.drain_global().len(), 2);
/// ```
pub struct FlowScheduler<'a> {
    set: &'a ShardedPatternSet,
    workers: usize,
    shared: Mutex<Shared<'a>>,
    /// Signalled when the ready queue grows or `in_flight` drops —
    /// idle workers wait here instead of spinning.
    wake: Condvar,
}

impl<'a> FlowScheduler<'a> {
    /// A scheduler over `set` with a pool of `workers` threads (at least
    /// one) for [`run`](FlowScheduler::run).
    pub fn new(set: &'a ShardedPatternSet, workers: usize) -> FlowScheduler<'a> {
        FlowScheduler {
            set,
            workers: workers.max(1),
            shared: Mutex::new(Shared::new()),
            wake: Condvar::new(),
        }
    }

    /// The compiled set this scheduler scans with.
    pub fn set(&self) -> &'a ShardedPatternSet {
        self.set
    }

    /// The worker-pool size [`run`](FlowScheduler::run) uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Buffers `chunk` for `flow`, opening the flow on first use. A
    /// zero-length chunk opens the flow but schedules no work. Pushing to
    /// a [`close`](FlowScheduler::close)d-and-drained id reopens it as a
    /// **fresh** flow (new engine states, positions restarting at 0);
    /// undrained reports of the previous incarnation stay pollable.
    pub fn push(&self, flow: u64, chunk: &[u8]) {
        let mut shared = self.shared.lock().expect("scheduler lock");
        if shared.open_flow(self.set, flow).is_err() {
            panic!("push to closed flow {flow}: run() + poll() it first, or use a new id");
        }
        shared.buffer_chunk(self.set, flow, chunk);
        self.wake.notify_all();
    }

    /// Marks `flow` closed: already-buffered bytes are still scanned by
    /// the next [`run`](FlowScheduler::run), after which the flow's
    /// engine states are freed. Its reports stay pollable; the id can be
    /// reused afterwards (see [`push`](FlowScheduler::push)). Closing an
    /// unknown id is a no-op.
    ///
    /// # Panics
    ///
    /// [`push`](FlowScheduler::push)ing to a closed flow that has not
    /// drained yet panics — close is a promise that no more bytes come.
    pub fn close(&self, flow: u64) {
        self.shared.lock().expect("scheduler lock").close_flow(flow);
    }

    /// Scans everything buffered so far on the worker pool, returning
    /// once every flow's shards have consumed every pushed byte. Workers
    /// pull `(flow, shard)` units off the readiness queue, scan outside
    /// the lock, and check the engine back in; a unit that received more
    /// bytes while checked out goes straight back on the queue.
    ///
    /// Engine states persist across calls — `push`/`run`/`poll` cycles
    /// can repeat forever, which is the serving loop.
    pub fn run(&self) {
        if self.workers == 1 {
            self.worker_loop();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..self.workers {
                    scope.spawn(|| self.worker_loop());
                }
            });
        }
    }

    fn worker_loop(&self) {
        loop {
            // Check a ready unit out (or conclude the batch is done).
            let mut shared = self.shared.lock().expect("scheduler lock");
            let mut unit = loop {
                if let Some(unit) = shared.checkout() {
                    break unit;
                }
                if shared.in_flight == 0 {
                    return; // nothing ready, nothing pending: batch done
                }
                shared = self.wake.wait(shared).expect("scheduler lock");
            };
            drop(shared);

            // If the scan panics while the unit is checked out, siblings
            // waiting on `wake` would otherwise sleep forever (in_flight
            // never drops) and thread::scope would never join — turning
            // an engine panic into a deadlock. The guard settles the
            // count on unwind so every worker exits and the panic
            // propagates out of run().
            let guard = InFlightGuard {
                sched: self,
                flow: unit.flow,
            };

            // Scan outside the lock; other workers may be advancing other
            // shards of the same flow right now.
            let reports = unit.scan();

            // Check the unit back in and publish what became final.
            let mut shared = self.shared.lock().expect("scheduler lock");
            shared.check_in(unit, reports);
            std::mem::forget(guard); // settled by check_in under the lock
            self.wake.notify_all();
        }
    }

    /// Drains `flow`'s ordered report queue (stream order: ascending end,
    /// ascending pattern within an end). A finished flow whose reports
    /// and finishing set have all been drained is forgotten, freeing its
    /// table entry.
    pub fn poll(&self, flow: u64) -> Vec<SetMatch> {
        self.shared.lock().expect("scheduler lock").poll_flow(flow)
    }

    /// Drains `flow`'s **finishing set**: the `$`-anchored matches that
    /// end exactly at the flow's final byte, resolved when the
    /// [`close`](FlowScheduler::close)d flow finished draining — the
    /// per-flow analogue of [`ShardedSetStream::finish`]. Empty for
    /// open or still-draining flows ([`poll`](FlowScheduler::poll)
    /// reports every `$` candidate mid-flow, because the end is unknown
    /// until close; the non-`$` polled reports plus this set are
    /// together what a one-shot `find_ends` over the whole flow
    /// returns). Finishing matches do not appear in the global sink.
    ///
    /// [`ShardedSetStream::finish`]: crate::ShardedSetStream::finish
    pub fn finishing(&self, flow: u64) -> Vec<SetMatch> {
        self.shared
            .lock()
            .expect("scheduler lock")
            .finishing_flow(flow)
    }

    /// Drains the global sink: every merged match of every flow, in the
    /// order the scheduler finalized them.
    ///
    /// # Ordering contract
    ///
    /// Pinned by `tests/service_reload.rs` (and shared by every
    /// `drain_global` in the crate — [`FlowService`](crate::FlowService)
    /// and [`ServiceHandle`](crate::ServiceHandle) have the same
    /// contract):
    ///
    /// * **within one flow**, events appear in stream order — ascending
    ///   end offset, ascending pattern index within one end — exactly
    ///   the order [`poll`](FlowScheduler::poll) returns them;
    /// * **across flows**, events interleave in merge-completion order,
    ///   which follows worker scheduling and is *not* deterministic;
    /// * each event is delivered **exactly once**: the sink is emptied
    ///   by the call, and an event is never in both an earlier and a
    ///   later drain.
    pub fn drain_global(&self) -> Vec<FlowMatch> {
        self.shared.lock().expect("scheduler lock").drain_sink()
    }

    /// Number of flows currently tracked (open, or closed with undrained
    /// reports).
    pub fn flow_count(&self) -> usize {
        self.shared.lock().expect("scheduler lock").flows.len()
    }

    /// Bytes pushed to `flow` so far (`None` for unknown flows). After a
    /// close + reopen this restarts from the new incarnation's bytes.
    pub fn flow_len(&self, flow: u64) -> Option<u64> {
        self.shared.lock().expect("scheduler lock").flow_len(flow)
    }

    /// Total bytes buffered but not yet consumed by every shard — the
    /// scan debt the next [`run`](FlowScheduler::run) clears.
    pub fn pending_bytes(&self) -> u64 {
        self.shared.lock().expect("scheduler lock").pending_bytes()
    }

    /// Aggregated hybrid-overlay statistics across every live flow's
    /// shard engines, or `None` when the set scans in
    /// [`ScanMode::Nca`]. Engines currently checked out by workers and
    /// engines of finished flows (freed at close + drain) are not
    /// counted — sample between [`run`](FlowScheduler::run)s, before
    /// closing, for complete numbers.
    pub fn hybrid_stats(&self) -> Option<HybridStats> {
        if matches!(self.set.scan_mode(), ScanMode::Nca) {
            return None;
        }
        let shared = self.shared.lock().expect("scheduler lock");
        let mut total = HybridStats::default();
        for flow in shared.flows.values() {
            for slot in &flow.shards {
                if let Some(stats) = slot.stream.as_ref().and_then(ShardStream::hybrid_stats) {
                    total.merge(&stats);
                }
            }
        }
        Some(total)
    }

    /// Aggregated literal-prefilter counters — skipped `(flow, shard)`
    /// chunk scans per shard, skipped bytes, cold→hot wake-ups — or
    /// `None` when the set was built with
    /// [`PrefilterMode::Off`](crate::PrefilterMode::Off). Counters
    /// accumulate across [`push`](FlowScheduler::push)es for the
    /// scheduler's lifetime.
    pub fn prefilter_stats(&self) -> Option<PrefilterMetrics> {
        let pf = self.set.prefilter()?;
        let shared = self.shared.lock().expect("scheduler lock");
        Some(
            shared
                .pre_counters
                .snapshot(self.set.shard_count(), pf.always_on_rules()),
        )
    }
}

/// Unwind protection for a checked-out `(flow, shard)` unit: if the
/// owning worker panics during its unlocked scan, dropping this
/// quarantines the broken flow — removes it from the table and purges
/// its queued units, since its engine is lost and it could never drain
/// — then settles `in_flight` and wakes the siblings so they can
/// observe the drained queue and exit (letting `thread::scope` join
/// and propagate the panic). Every *other* flow's state survives, so a
/// caller that catches the panic out of [`FlowScheduler::run`] can
/// keep scheduling the rest. The normal check-in path settles the
/// count under the lock and `mem::forget`s the guard.
struct InFlightGuard<'s, 'a> {
    sched: &'s FlowScheduler<'a>,
    flow: u64,
}

impl Drop for InFlightGuard<'_, '_> {
    fn drop(&mut self) {
        // Never panic in drop: a poisoned lock (panic while merging
        // under the lock) is taken anyway just to fix the count.
        let mut shared = self
            .sched
            .shared
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let flow = self.flow;
        shared.flows.remove(&flow);
        shared.ready.retain(|&(rid, _)| rid != flow);
        shared.in_flight -= 1;
        self.sched.wake.notify_all();
    }
}

impl fmt::Debug for FlowScheduler<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shared = self.shared.lock().expect("scheduler lock");
        write!(
            f,
            "FlowScheduler({} flows, {} shards, {} workers, {} ready)",
            shared.flows.len(),
            self.set.shard_count(),
            self.workers,
            shared.ready.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use recama_hw::ShardPolicy;

    fn sharded(patterns: &[&str], shards: usize) -> ShardedPatternSet {
        Engine::builder()
            .patterns(patterns)
            .shard_policy(ShardPolicy::Fixed(shards))
            .build()
            .unwrap()
            .into_set()
    }

    /// Per-flow scheduler output must equal an independent stream fed the
    /// same chunks.
    fn expected_stream(set: &ShardedPatternSet, chunks: &[&[u8]]) -> Vec<SetMatch> {
        let mut stream = set.stream();
        let mut out = Vec::new();
        for chunk in chunks {
            out.extend(stream.feed(chunk));
        }
        out
    }

    #[test]
    fn interleaved_flows_match_independent_streams() {
        let set = sharded(&["ab{2,4}c", "x{3}", "q[rs]{2}t"], 3);
        let flow_a: Vec<&[u8]> = vec![b"zab", b"bbc_x", b"xx"];
        let flow_b: Vec<&[u8]> = vec![b"qrst", b"", b"_abbc"];
        for workers in [1, 2, 5] {
            let sched = FlowScheduler::new(&set, workers);
            // Interleave pushes; run mid-way and at the end.
            sched.push(1, flow_a[0]);
            sched.push(2, flow_b[0]);
            sched.run();
            sched.push(2, flow_b[1]);
            sched.push(1, flow_a[1]);
            sched.push(2, flow_b[2]);
            sched.push(1, flow_a[2]);
            sched.run();
            assert_eq!(sched.poll(1), expected_stream(&set, &flow_a));
            assert_eq!(sched.poll(2), expected_stream(&set, &flow_b));
            assert_eq!(sched.pending_bytes(), 0);
        }
    }

    #[test]
    fn global_sink_attributes_every_match() {
        let set = sharded(&["kk", "zz"], 2);
        let sched = FlowScheduler::new(&set, 2);
        sched.push(10, b"akka");
        sched.push(20, b"zz");
        sched.run();
        let mut global = sched.drain_global();
        global.sort();
        assert_eq!(
            global,
            vec![
                FlowMatch {
                    flow: 10,
                    pattern: 0,
                    end: 3
                },
                FlowMatch {
                    flow: 20,
                    pattern: 1,
                    end: 2
                },
            ]
        );
        assert_eq!(global[0].set_match(), SetMatch { pattern: 0, end: 3 });
        // The sink drains once.
        assert!(sched.drain_global().is_empty());
        // Per-flow queues are independent of the sink.
        assert_eq!(sched.poll(10).len(), 1);
        assert_eq!(sched.poll(20).len(), 1);
    }

    #[test]
    fn close_frees_engines_and_id_reuse_starts_fresh() {
        let set = sharded(&["ab"], 1);
        let sched = FlowScheduler::new(&set, 1);
        sched.push(5, b"..ab");
        sched.close(5); // close with bytes still pending
        sched.run();
        assert_eq!(sched.poll(5), vec![SetMatch { pattern: 0, end: 4 }]);
        // Finished + drained: the flow entry is gone.
        assert_eq!(sched.flow_count(), 0);
        // Same id again: a fresh stream, positions restart at 1.
        sched.push(5, b"ab");
        sched.run();
        assert_eq!(sched.poll(5), vec![SetMatch { pattern: 0, end: 2 }]);
        assert_eq!(sched.flow_len(5), Some(2));
    }

    #[test]
    fn close_then_reopen_before_poll_keeps_old_reports() {
        let set = sharded(&["ab"], 1);
        let sched = FlowScheduler::new(&set, 1);
        sched.push(5, b"ab");
        sched.close(5);
        sched.run();
        // Reopen before polling: the undrained report survives, and the
        // new incarnation's reports queue up behind it.
        sched.push(5, b"xab");
        sched.run();
        assert_eq!(
            sched.poll(5),
            vec![
                SetMatch { pattern: 0, end: 2 },
                SetMatch { pattern: 0, end: 3 },
            ]
        );
    }

    #[test]
    fn finishing_resolves_dollar_anchors_at_flow_end() {
        let set = sharded(&["ab$", "ab", "cd$"], 2);
        let sched = FlowScheduler::new(&set, 2);
        sched.push(1, b"ab.c");
        sched.push(1, b"d");
        sched.close(1);
        sched.run();
        // Mid-flow, every candidate end is reported (stream contract)...
        assert_eq!(
            sched.poll(1),
            vec![
                SetMatch { pattern: 0, end: 2 },
                SetMatch { pattern: 1, end: 2 },
                SetMatch { pattern: 2, end: 5 },
            ]
        );
        // ...and the finishing set keeps only the $-match on the final
        // byte — exactly what the flow's own stream would finish with.
        let mut stream = set.stream();
        stream.feed(b"ab.c").count();
        stream.feed(b"d").count();
        assert_eq!(sched.finishing(1), stream.finish());
        assert_eq!(sched.finishing(1), vec![], "finishing drains once");
        assert_eq!(sched.flow_count(), 0, "fully drained flows are forgotten");

        // A flow whose $-candidate is NOT on the final byte finishes empty.
        sched.push(2, b"ab.");
        sched.close(2);
        sched.run();
        assert_eq!(sched.poll(2).len(), 2);
        assert!(sched.finishing(2).is_empty());
    }

    #[test]
    fn zero_length_chunks_open_flows_but_schedule_nothing() {
        let set = sharded(&["ab"], 1);
        let sched = FlowScheduler::new(&set, 2);
        sched.push(1, b"");
        assert_eq!(sched.flow_count(), 1);
        assert_eq!(sched.pending_bytes(), 0);
        sched.run(); // no ready units: returns immediately
        assert!(sched.poll(1).is_empty());
        // Empty chunks interleaved with real ones change nothing.
        sched.push(1, b"a");
        sched.push(1, b"");
        sched.push(1, b"b");
        sched.run();
        assert_eq!(sched.poll(1), vec![SetMatch { pattern: 0, end: 2 }]);
    }

    #[test]
    fn empty_set_and_unknown_flows_are_harmless() {
        let set = Engine::new(Vec::<String>::new()).unwrap().into_set();
        let sched = FlowScheduler::new(&set, 2);
        sched.push(1, b"anything");
        sched.run();
        assert!(sched.poll(1).is_empty());
        assert!(sched.poll(999).is_empty()); // never-opened flow
        sched.close(999); // no-op
        assert!(sched.drain_global().is_empty());
        assert!(format!("{sched:?}").contains("2 workers"));
    }

    #[test]
    fn scheduler_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlowScheduler<'static>>();
        assert_send_sync::<FlowMatch>();
    }
}
