//! [`ServiceHandle`]: the owned, long-lived, backpressured many-flow
//! serving loop over an [`Engine`](crate::Engine) — with epoch-based
//! hot rule reload, a generational flow table, and a metrics snapshot.
//!
//! [`FlowScheduler`](crate::FlowScheduler) is a *batch* API: `run()`
//! scans what is buffered and returns when the queue drains. A serving
//! deployment wants the opposite lifecycle — workers that stay parked
//! on the readiness condvar between bursts, producers that are pushed
//! back when a flow buffers faster than it scans, and flows that go
//! quiet getting evicted instead of leaking engine state. This module
//! provides that lifecycle as an **owned** handle:
//!
//! * [`Engine::serve`](crate::Engine::serve) returns a `'static`
//!   [`ServiceHandle`] that owns its worker threads: they spawn on
//!   construction, park on the readiness condvar while idle, and are
//!   joined on [`shutdown`](ServiceHandle::shutdown) / `Drop` — no
//!   enclosing scope required, so the service embeds directly in a
//!   server's state;
//! * flows are addressed by generational [`FlowId`]s from
//!   [`open_flow`](ServiceHandle::open_flow): slot reuse bumps the
//!   generation, so a stale id held after its flow drained can never
//!   observe (or pollute) the slot's next tenant;
//! * [`reload`](ServiceHandle::reload) /
//!   [`reload_rules`](ServiceHandle::reload_rules) install a new
//!   compiled engine behind an **epoch** counter, without restarting
//!   the service: new flows start on the new epoch, existing flows
//!   migrate at their next chunk boundary once drained, in-flight
//!   scans drain against the engine they started on, and an old
//!   epoch's machine image is freed when its last flow lets go of it.
//!   Reports carry **stable rule ids** ([`RuleMatch::rule`]) so
//!   consumers are insulated from the reshuffled pattern indices of a
//!   reloaded set;
//! * the flow table is bounded: idle flows are evicted on a
//!   configurable sweep cadence, and opening a flow past
//!   [`max_flows`](crate::ServeConfig::max_flows) evicts the
//!   least-recently-pushed drained flow first;
//! * [`metrics`](ServiceHandle::metrics) snapshots the service
//!   ([`ServiceMetrics`]): per-shard scan time and volume, queue
//!   depth, eviction / backpressure / reload counters, per-epoch flow
//!   counts, the hybrid lazy-DFA hit-rate roll-up, and the
//!   literal-prefilter block (per-shard skipped units/bytes, candidate
//!   wake-ups, always-on rule count).
//!
//! Report semantics are identical to the scheduler's (and therefore
//! byte-identical to one independent
//! [`ShardedSetStream`](crate::ShardedSetStream) per flow): the service
//! reuses the same segment buffering, readiness queue, and
//! watermark-ordered merge, under its own worker lifecycle. Across a
//! reload, a migrated flow's stream is **cut at the migration
//! boundary**: bytes before the boundary were scanned by the old
//! engine, bytes after it by the new engine starting fresh — exactly a
//! fresh per-flow stream over the post-boundary suffix, which
//! `tests/service_reload.rs` pins differentially.
//!
//! The scope-based [`FlowService`] (from the deprecated
//! [`Engine::service`](crate::Engine::service)) survives as a thin
//! wrapper over the same core: it spawns its handle's workers paused
//! and only unparks them inside [`FlowService::run`].

use crate::engine::{CompileError, Engine, EngineBuilder, FaultPolicy, ServeConfig, ServiceConfig};
use crate::prefilter::{
    ChunkAction, PerShard, PrefilterCounters, PrefilterMetrics, PrefilterState,
};
use crate::sched::Segment;
use crate::{FlowMatch, SetMatch, ShardedPatternSet};
use recama_nca::{HybridStats, MultiReport, ScanMode, ShardStreamState};
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::task::Poll;
use std::thread::JoinHandle;
use std::time::Instant;

// ---- public value types ---------------------------------------------

/// A generational flow handle from [`ServiceHandle::open_flow`].
///
/// The service stores flows in a slab; a `FlowId` is the slot index
/// plus the slot's **generation** at open time. Freeing a flow bumps
/// the generation, so a stale id held after its flow fully drained can
/// never read (or write) the slot's next tenant — lookups with a stale
/// id simply miss (ABA-safe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId {
    index: u32,
    generation: u32,
}

impl FlowId {
    /// The slab slot index (recycled across flows).
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The slot generation this id was opened at.
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}v{}", self.index, self.generation)
    }
}

/// One match from the owned service: the **stable rule id** (explicit
/// from [`EngineBuilder::rule`](crate::EngineBuilder::rule), or the
/// add-order index) and the absolute end offset in the flow.
///
/// Rule ids — not compiled pattern indices — survive
/// [`ServiceHandle::reload`]: a rule kept across a reload reports the
/// same id even though the recompiled set may place it at a different
/// index (or shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleMatch {
    /// Stable rule id.
    pub rule: u64,
    /// End offset (1-based byte position in the flow).
    pub end: u64,
}

/// A [`RuleMatch`] attributed to its flow, from the global sink
/// ([`ServiceHandle::drain_global`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServiceEvent {
    /// The flow the match belongs to.
    pub flow: FlowId,
    /// Stable rule id.
    pub rule: u64,
    /// End offset (1-based byte position in the flow).
    pub end: u64,
}

/// A point-in-time snapshot of the service, from
/// [`ServiceHandle::metrics`]. Counters are cumulative since the
/// handle spawned; gauges reflect the moment of the snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceMetrics {
    /// The current serving epoch (0 until the first reload).
    pub epoch: u64,
    /// Number of [`reload`](ServiceHandle::reload)s installed.
    pub reloads: u64,
    /// Flows currently tracked (open, or closed with undrained
    /// reports).
    pub flows: usize,
    /// Tracked flows per live epoch, ascending by epoch — old epochs
    /// disappear from this list when their last flow releases the
    /// retired machine image.
    pub epoch_flows: Vec<(u64, usize)>,
    /// Bytes buffered but not yet consumed by every shard.
    pub pending_bytes: u64,
    /// Current readiness-queue depth (`(flow, shard)` units awaiting a
    /// worker).
    pub queue_depth: usize,
    /// High-water mark of the readiness queue since spawn.
    pub queue_depth_peak: usize,
    /// Units currently checked out by workers.
    pub in_flight: usize,
    /// Cumulative unlocked scan time per shard, in nanoseconds.
    pub shard_scan_ns: Vec<u64>,
    /// Cumulative bytes scanned per shard.
    pub shard_scan_bytes: Vec<u64>,
    /// Flows closed by the idle sweep.
    pub idle_evictions: u64,
    /// Flows closed to stay under
    /// [`max_flows`](crate::ServeConfig::max_flows).
    pub budget_evictions: u64,
    /// Pushes rejected (`Poll::Pending`) by the per-flow or global byte
    /// budget, plus flow-table overshoots with nothing evictable.
    pub backpressure: u64,
    /// Aggregate hybrid lazy-DFA counters (retired engines plus the
    /// live flow table), when the current epoch scans in
    /// [`ScanMode::Hybrid`]; `None` in pure-NCA mode. The interesting
    /// roll-up is [`HybridStats::dfa_hit_rate`].
    pub hybrid: Option<HybridStats>,
    /// Literal-prefilter counters — per-shard skipped `(flow, shard)`
    /// chunk scans and bytes, cold→hot wake-ups, always-on rules — when
    /// the current epoch was built with
    /// [`PrefilterMode::On`](crate::PrefilterMode::On); `None` under
    /// [`PrefilterMode::Off`](crate::PrefilterMode::Off). The
    /// interesting roll-ups are
    /// [`PrefilterMetrics::total_skipped_bytes`] against
    /// [`shard_scan_bytes`](ServiceMetrics::shard_scan_bytes).
    pub prefilter: Option<PrefilterMetrics>,
    /// Fault-tolerance counters: quarantined flows, worker restarts,
    /// shed opens, fail-stop transitions. All zero on clean traffic.
    pub faults: FaultMetrics,
}

impl ServiceMetrics {
    /// Total evicted flows (idle + budget).
    pub fn total_evictions(&self) -> u64 {
        self.idle_evictions + self.budget_evictions
    }
}

/// Cumulative fault-tolerance counters, in [`ServiceMetrics::faults`].
/// On clean traffic every field stays 0 — CI's perf-smoke summary
/// warns otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultMetrics {
    /// Flows quarantined after a panic inside one of their scans
    /// (under [`FaultPolicy::Isolate`](crate::FaultPolicy::Isolate)).
    pub quarantined_flows: u64,
    /// Worker threads respawned after a panic, within
    /// [`restart_budget`](crate::ServeConfig::restart_budget).
    pub worker_restarts: u64,
    /// [`try_open_flow`](ServiceHandle::try_open_flow) calls shed by
    /// the [`overload`](crate::ServeConfig::overload) policy.
    pub shed_opens: u64,
    /// Transitions into fail-stop poisoning: every panic under
    /// explicit [`FaultPolicy::FailStop`](crate::FaultPolicy::FailStop)
    /// (first counted), or an exhausted restart budget.
    pub fail_stops: u64,
}

/// Why a checked [`ServiceHandle`] call could not proceed.
///
/// The original calls ([`push`](ServiceHandle::push),
/// [`poll`](ServiceHandle::poll), [`open_flow`](ServiceHandle::open_flow))
/// keep their panicking/silent signatures for compatibility; the
/// `_checked` variants surface the same conditions as values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The flow is quarantined: a scan over its bytes panicked, its
    /// engines were freed, and it accepts no more input. Carries a
    /// summary of the panic payload. Reports merged before the fault
    /// stay available via [`poll`](ServiceHandle::poll) /
    /// [`poll_checked`](ServiceHandle::poll_checked);
    /// [`close`](ServiceHandle::close) acknowledges the quarantine and
    /// reclaims the slot.
    Quarantined {
        /// Summary of the panic payload that quarantined the flow.
        message: String,
    },
    /// The whole service fail-stopped (explicit
    /// [`FaultPolicy::FailStop`](crate::FaultPolicy::FailStop), or the
    /// restart budget ran out). Carries the first panic's payload
    /// summary — also available as
    /// [`panic_message`](ServiceHandle::panic_message).
    Poisoned {
        /// Summary of the first worker panic payload.
        message: String,
    },
    /// The [`overload`](crate::ServeConfig::overload) high-watermark
    /// policy shed this open.
    Overloaded,
    /// The flow id is closed, stale, or unknown.
    Closed,
    /// The service has no consuming workers (paused or shut down).
    Stopped,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Quarantined { message } => {
                write!(f, "flow quarantined after a scan panic: {message}")
            }
            ServeError::Poisoned { message } => {
                write!(f, "service poisoned by a worker panic: {message}")
            }
            ServeError::Overloaded => write!(f, "open shed by the overload policy"),
            ServeError::Closed => write!(f, "flow is closed, stale, or unknown"),
            ServeError::Stopped => write!(f, "service has no consuming workers"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A deterministic fault-injection plan for chaos testing, compiled in
/// under the `fault-inject` cargo feature and installed with
/// [`EngineBuilder::fault_plan`](crate::EngineBuilder::fault_plan)
/// before the engine is served.
///
/// Faults address the **k-th scan** (1-based) of a given shard of a
/// given flow, flows numbered in open order (0-based, across reopens).
/// With a [`barrier`](ServiceHandle::barrier) between pushes, every
/// non-empty push triggers exactly one scan per shard, so the scan
/// number equals the chunk number — `tests/service_faults.rs` leans on
/// that to place faults deterministically.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<InjectedFault>,
}

#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone)]
struct InjectedFault {
    flow_seq: u64,
    shard: usize,
    scan: u64,
    action: FaultAction,
}

#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone)]
enum FaultAction {
    Panic(String),
    Delay(std::time::Duration),
}

#[cfg(feature = "fault-inject")]
impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Panics with `message` at the `scan`-th scan (1-based) of
    /// `shard` of the `flow_seq`-th opened flow (0-based).
    pub fn panic_at(
        mut self,
        flow_seq: u64,
        shard: usize,
        scan: u64,
        message: impl Into<String>,
    ) -> FaultPlan {
        self.faults.push(InjectedFault {
            flow_seq,
            shard,
            scan,
            action: FaultAction::Panic(message.into()),
        });
        self
    }

    /// Sleeps for `delay` before the `scan`-th scan (1-based) of
    /// `shard` of the `flow_seq`-th opened flow (0-based), then scans
    /// normally — for racing slow scans against reloads and closes.
    pub fn delay_at(
        mut self,
        flow_seq: u64,
        shard: usize,
        scan: u64,
        delay: std::time::Duration,
    ) -> FaultPlan {
        self.faults.push(InjectedFault {
            flow_seq,
            shard,
            scan,
            action: FaultAction::Delay(delay),
        });
        self
    }

    /// Fires the matching fault, if any: sleeps through delays, panics
    /// with the configured message. Runs on the worker thread, outside
    /// the service lock, inside its panic protection.
    pub(crate) fn trigger(&self, flow_seq: u64, shard: usize, scan: u64) {
        for fault in &self.faults {
            if fault.flow_seq == flow_seq && fault.shard == shard && fault.scan == scan {
                match &fault.action {
                    FaultAction::Delay(delay) => std::thread::sleep(*delay),
                    FaultAction::Panic(message) => panic!("{message}"),
                }
            }
        }
    }
}

// ---- internal state -------------------------------------------------

/// A merged match as stored per flow: stable rule id for the new API,
/// epoch-local pattern index for the deprecated pattern-indexed
/// wrapper, absolute end.
#[derive(Debug, Clone, Copy)]
struct StoredMatch {
    rule: u64,
    pattern: u32,
    end: u64,
}

impl StoredMatch {
    fn rule_match(self) -> RuleMatch {
        RuleMatch {
            rule: self.rule,
            end: self.end,
        }
    }

    fn set_match(self) -> SetMatch {
        SetMatch {
            pattern: self.pattern as usize,
            end: self.end as usize,
        }
    }
}

/// A merged match in the global sink, carrying both addressings.
#[derive(Debug, Clone, Copy)]
struct SinkEvent {
    flow: FlowId,
    raw: Option<u64>,
    rule: u64,
    pattern: u32,
    end: u64,
}

/// One engine installed behind the epoch counter. The `Arc`ed machine
/// image is shared with the [`Engine`] that was reloaded (and any other
/// handle serving it); the *service's* share is dropped when the entry
/// leaves `ServeState::epochs`.
struct EpochEngine {
    epoch: u64,
    set: Arc<ShardedPatternSet>,
    ids: Arc<[u64]>,
    /// Flows still pinned to this epoch (their shard engines came from
    /// this set). A non-current epoch with zero flows is retired.
    flows: usize,
}

/// One checkout-able (flow, shard) engine unit — the owned counterpart
/// of the scheduler's `ShardSlot`, holding a detached
/// [`ShardStreamState`] instead of a borrowed stream.
struct OwnedShardSlot {
    /// `None` while a worker holds the engine.
    state: Option<ShardStreamState>,
    /// Reports not yet merged: epoch-local pattern ids, **absolute**
    /// ends, sorted by `(end, pattern)`.
    pending: VecDeque<MultiReport>,
    /// Absolute bytes of the flow this shard has consumed (as of last
    /// check-in). Starts at the flow's migration `base` after a reload.
    pos: u64,
    /// Whether the unit is in the ready queue *or* checked out.
    busy: bool,
    /// Literal-prefilter state: the unit is skipped while cold (see
    /// [`crate::PrefilterMode`]). Cold units are never queued, so their
    /// engine is always parked. Resets at epoch migration.
    pre: PrefilterState,
    /// Scans checked out for this unit so far — the fault-injection
    /// address. Resets when the flow migrates to a new epoch.
    #[cfg(feature = "fault-inject")]
    scans: u64,
}

/// Per-flow state in the slab: buffered input, one [`OwnedShardSlot`]
/// per shard of the flow's epoch, and the merged in-order report queue.
struct OwnedFlow {
    /// The raw u64 id, when the flow came in through the deprecated
    /// u64-addressed API.
    raw: Option<u64>,
    /// The epoch whose engines this flow's shard slots hold.
    epoch: u64,
    /// Set once the flow's engines were freed and its epoch pin
    /// released (so slot-free does not release twice).
    epoch_released: bool,
    /// Absolute offset where the current epoch's engines started: 0
    /// for a flow that never migrated, the flow length at migration
    /// otherwise. Engine-relative positions + `base` = absolute.
    base: u64,
    segments: VecDeque<Segment>,
    /// Total bytes pushed (absolute length of the flow so far).
    total: u64,
    closed: bool,
    /// Empty once a closed flow has fully drained (engines freed).
    shards: Vec<OwnedShardSlot>,
    reports: VecDeque<StoredMatch>,
    /// Last `$`-anchored candidate per (epoch-local) pattern, so
    /// closing the flow can resolve which land on the final byte.
    /// Cleared at migration: old candidates cannot end at the final
    /// byte once more bytes arrive.
    dollar: HashMap<u32, u64>,
    /// The resolved finishing set of a finished flow, until drained.
    finishing: Vec<StoredMatch>,
    /// Last `window` bytes of the flow since the epoch base, kept while
    /// any shard is cold so a prefilter wake-up can replay the bytes a
    /// match may have started in. Cleared at migration (fresh engines
    /// start cold at the new base).
    tail: Vec<u8>,
    /// The panic payload summary that quarantined this flow, when a
    /// scan over its bytes panicked under
    /// [`FaultPolicy::Isolate`](crate::FaultPolicy::Isolate). A
    /// quarantined flow is closed, engine-free, and kept addressable
    /// (so pushes/polls can report the condition) until explicitly
    /// closed.
    quarantined: Option<String>,
    /// Open-order sequence number — the fault-injection address.
    #[cfg(feature = "fault-inject")]
    seq: u64,
    /// Last push attempt (or scan progress), for idle eviction.
    last_activity: Instant,
    /// Monotone LRU stamp, for flow-table budget eviction.
    last_touch: u64,
}

impl OwnedFlow {
    /// Bytes pushed but not yet consumed by every shard.
    fn buffered(&self) -> u64 {
        self.total - self.watermark()
    }

    /// The least absolute position any shard has consumed — reports
    /// with ends at or below it are final and safe to merge in order.
    fn watermark(&self) -> u64 {
        self.shards
            .iter()
            .map(|slot| slot.pos)
            .min()
            .unwrap_or(self.total)
    }

    /// Whether every shard engine is parked and caught up — the only
    /// state in which the flow can migrate to a new epoch or finish.
    fn drained(&self) -> bool {
        self.shards
            .iter()
            .all(|slot| slot.state.is_some() && !slot.busy && slot.pos == self.total)
    }

    /// Whether the flow is closed and its engines have been freed.
    fn finished(&self) -> bool {
        self.closed && self.shards.is_empty()
    }
}

/// One slab slot: the generation counts how many tenants the slot has
/// had, making recycled [`FlowId`]s detectably stale.
struct Slot {
    generation: u32,
    flow: Option<Box<OwnedFlow>>,
}

/// Cumulative service counters (the mutable half of
/// [`ServiceMetrics`]).
#[derive(Default)]
struct MetricsAcc {
    reloads: u64,
    idle_evictions: u64,
    budget_evictions: u64,
    backpressure: u64,
    queue_peak: usize,
    shard_scan_ns: PerShard,
    shard_scan_bytes: PerShard,
    prefilter: PrefilterCounters,
    quarantined: u64,
    worker_restarts: u64,
    shed_opens: u64,
    fail_stops: u64,
}

/// Everything the service lock protects.
struct ServeState {
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Deprecated u64-addressed flows: raw id → current incarnation.
    /// Entries always point at occupied slots (removed at slot free).
    raw: HashMap<u64, FlowId>,
    /// Open (not yet closed/evicted) flows — the quantity
    /// [`ServeConfig::max_flows`](crate::ServeConfig::max_flows)
    /// bounds.
    open_count: usize,
    /// Installed engines, ascending by epoch; the last entry is the
    /// current one. Non-current entries retire when `flows` hits 0.
    epochs: Vec<EpochEngine>,
    current_epoch: u64,
    /// Readiness queue of `(flow, shard)` units with unconsumed bytes.
    ready: VecDeque<(FlowId, usize)>,
    /// Units currently checked out by workers.
    in_flight: usize,
    /// Maintained sum of every flow's `buffered()` — O(1)
    /// `pending_bytes` under a million-flow table.
    buffered_total: u64,
    /// Global sink: every merged match, attributed to its flow.
    sink: Vec<SinkEvent>,
    /// Workers park unconditionally while set (the wrapper's
    /// outside-`run` state): no checkouts, no sweeps.
    paused: bool,
    /// Set while a [`FlowService::run`] scope is live.
    wrapper_running: bool,
    /// Workers drain and exit instead of parking.
    shutdown: bool,
    /// Set when a worker panicked mid-scan: its `(flow, shard)` engine
    /// unit is lost, so that flow can never drain — blocking producers
    /// must panic out instead of waiting forever.
    poisoned: bool,
    /// The panicking worker's payload, so [`FlowService::run`] can
    /// rethrow it like the scoped implementation did.
    panic_payload: Option<Box<dyn Any + Send>>,
    /// Human-readable summary of the first fail-stop panic payload;
    /// survives `take_panic` (which consumes the payload itself).
    panic_message: Option<String>,
    /// Worker restarts consumed from
    /// [`ServeConfig::restart_budget`](crate::ServeConfig::restart_budget),
    /// shared across the pool.
    restarts: u32,
    /// Flows opened so far — assigns `OwnedFlow::seq` fault-injection
    /// addresses.
    #[cfg(feature = "fault-inject")]
    opened: u64,
    /// When the next idle sweep is due.
    next_sweep: Option<Instant>,
    /// Evicted flows (with their raw id, if any) until drained by
    /// [`ServiceHandle::evictions`].
    evicted: Vec<(FlowId, Option<u64>)>,
    /// Monotone counter behind `OwnedFlow::last_touch`.
    touch: u64,
    metrics: MetricsAcc,
    /// Hybrid counters of engines that no longer exist (finished or
    /// migrated flows), so the roll-up survives flow churn.
    hybrid_retired: HybridStats,
}

impl ServeState {
    fn new(engine: &Engine, paused: bool) -> ServeState {
        ServeState {
            slots: Vec::new(),
            free: Vec::new(),
            raw: HashMap::new(),
            open_count: 0,
            epochs: vec![EpochEngine {
                epoch: 0,
                set: engine.set_arc(),
                ids: engine.ids_arc(),
                flows: 0,
            }],
            current_epoch: 0,
            ready: VecDeque::new(),
            in_flight: 0,
            buffered_total: 0,
            sink: Vec::new(),
            paused,
            wrapper_running: false,
            shutdown: false,
            poisoned: false,
            panic_payload: None,
            panic_message: None,
            restarts: 0,
            #[cfg(feature = "fault-inject")]
            opened: 0,
            next_sweep: None,
            evicted: Vec::new(),
            touch: 0,
            metrics: MetricsAcc::default(),
            hybrid_retired: HybridStats::default(),
        }
    }

    // ---- epoch bookkeeping ------------------------------------------

    fn current(&self) -> &EpochEngine {
        self.epochs.last().expect("the current epoch is installed")
    }

    fn epoch_entry(&self, epoch: u64) -> &EpochEngine {
        self.epochs
            .iter()
            .find(|e| e.epoch == epoch)
            .expect("pinned epochs stay installed")
    }

    fn bind_epoch(&mut self, epoch: u64) {
        self.epochs
            .iter_mut()
            .find(|e| e.epoch == epoch)
            .expect("pinned epochs stay installed")
            .flows += 1;
    }

    /// Drops a flow's pin on `epoch`; a retired (non-current) epoch
    /// with no remaining flows is removed, freeing its machine image —
    /// the last step of a hot reload.
    fn release_epoch(&mut self, epoch: u64) {
        let e = self
            .epochs
            .iter_mut()
            .find(|e| e.epoch == epoch)
            .expect("pinned epochs stay installed");
        e.flows -= 1;
        let current = self.current_epoch;
        self.epochs.retain(|e| e.epoch == current || e.flows > 0);
    }

    // ---- slab -------------------------------------------------------

    fn flow(&self, id: FlowId) -> Option<&OwnedFlow> {
        let slot = self.slots.get(id.index as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.flow.as_deref()
    }

    fn flow_mut(&mut self, id: FlowId) -> Option<&mut OwnedFlow> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.flow.as_deref_mut()
    }

    fn occupied(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Opens a fresh flow on the current epoch, evicting the LRU
    /// drained flow first when the table is at its budget.
    fn open(&mut self, raw: Option<u64>, cfg: &ServeConfig) -> FlowId {
        if self.open_count >= cfg.max_flows && !self.evict_lru() {
            // Nothing evictable: the table overshoots, visibly.
            self.metrics.backpressure += 1;
        }
        let epoch = self.current_epoch;
        let states = self.current().set.shard_stream_states();
        self.bind_epoch(epoch);
        self.touch += 1;
        #[cfg(feature = "fault-inject")]
        let seq = {
            let seq = self.opened;
            self.opened += 1;
            seq
        };
        let flow = Box::new(OwnedFlow {
            raw,
            epoch,
            epoch_released: false,
            base: 0,
            segments: VecDeque::new(),
            total: 0,
            closed: false,
            shards: states
                .into_iter()
                .map(|state| OwnedShardSlot {
                    state: Some(state),
                    pending: VecDeque::new(),
                    pos: 0,
                    busy: false,
                    pre: PrefilterState::default(),
                    #[cfg(feature = "fault-inject")]
                    scans: 0,
                })
                .collect(),
            reports: VecDeque::new(),
            dollar: HashMap::new(),
            finishing: Vec::new(),
            tail: Vec::new(),
            quarantined: None,
            #[cfg(feature = "fault-inject")]
            seq,
            last_activity: Instant::now(),
            last_touch: self.touch,
        });
        let index = match self.free.pop() {
            Some(index) => {
                self.slots[index as usize].flow = Some(flow);
                index
            }
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    flow: Some(flow),
                });
                (self.slots.len() - 1) as u32
            }
        };
        let id = FlowId {
            index,
            generation: self.slots[index as usize].generation,
        };
        self.open_count += 1;
        if let Some(raw) = raw {
            self.raw.insert(raw, id);
        }
        id
    }

    /// Frees a fully-drained finished flow's slot, bumping the
    /// generation so outstanding [`FlowId`]s go stale.
    fn free_slot(&mut self, id: FlowId) {
        let slot = &mut self.slots[id.index as usize];
        debug_assert_eq!(slot.generation, id.generation);
        let flow = slot.flow.take().expect("freeing an occupied slot");
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.index);
        if let Some(raw) = flow.raw {
            if self.raw.get(&raw) == Some(&id) {
                self.raw.remove(&raw);
            }
        }
        if !flow.closed {
            self.open_count -= 1;
        }
        if !flow.epoch_released {
            // Flows whose `try_finish` never ran (zero-shard sets)
            // release their epoch pin here.
            self.release_epoch(flow.epoch);
        }
    }

    /// Frees the slot once the flow is finished with both report
    /// queues drained — mirrors the scheduler forgetting such flows.
    /// Quarantined flows are exempt: they stay addressable (so pushes
    /// and polls keep reporting the condition) until explicitly
    /// closed.
    fn free_if_drained(&mut self, id: FlowId) {
        if self.flow(id).is_some_and(|f| {
            f.quarantined.is_none()
                && f.finished()
                && f.reports.is_empty()
                && f.finishing.is_empty()
        }) {
            self.free_slot(id);
        }
    }

    // ---- fault handling ---------------------------------------------

    /// Poisons the whole service — the fail-stop path (explicit
    /// [`FaultPolicy::FailStop`], or an exhausted restart budget):
    /// every blocking call panics from now on. Records the transition
    /// and the first panic's payload + summary.
    fn fail_stop(&mut self, payload: Box<dyn Any + Send>) {
        if !self.poisoned {
            self.metrics.fail_stops += 1;
        }
        self.poisoned = true;
        if self.panic_payload.is_none() {
            self.panic_message = Some(payload_summary(payload.as_ref()));
            self.panic_payload = Some(payload);
        }
    }

    /// Quarantines `id` after a panic inside one of its scans (the
    /// [`FaultPolicy::Isolate`] path): its queued units leave the
    /// readiness queue, its remaining engines are freed (hybrid
    /// counters retired), its buffered bytes leave the global gauge,
    /// and its epoch pin is released — so every *other* flow keeps
    /// flowing and a blocked `barrier` still drains. Reports merged
    /// before the fault stay pollable.
    fn quarantine(&mut self, id: FlowId, summary: &str) {
        let Some(f) = self.flow(id) else { return };
        if f.quarantined.is_some() {
            return; // a sibling shard already quarantined this flow
        }
        self.metrics.quarantined += 1;
        self.ready.retain(|&(rid, _)| rid != id);
        let f = self.flow_mut(id).expect("quarantining a live flow");
        let before = f.buffered();
        let was_open = !f.closed;
        f.closed = true;
        f.quarantined = Some(summary.to_string());
        let mut retired = HybridStats::default();
        for slot in &f.shards {
            if let Some(stats) = slot.state.as_ref().and_then(ShardStreamState::hybrid_stats) {
                retired.merge(&stats);
            }
        }
        f.shards.clear();
        f.segments.clear();
        f.dollar.clear();
        f.tail = Vec::new();
        let epoch = f.epoch;
        let release = !f.epoch_released;
        f.epoch_released = true;
        self.buffered_total -= before;
        if was_open {
            self.open_count -= 1;
        }
        self.hybrid_retired.merge(&retired);
        if release {
            self.release_epoch(epoch);
        }
    }

    /// Whether the [`overload`](crate::ServeConfig::overload)
    /// high-watermark policy sheds new opens right now.
    fn overloaded(&self, cfg: &ServeConfig) -> bool {
        let o = &cfg.overload;
        o.max_queue_depth.is_some_and(|hw| self.ready.len() >= hw)
            || o.max_pending_bytes
                .is_some_and(|hw| self.buffered_total >= hw)
    }

    /// The panic summary for poisoned-path messages.
    fn panic_summary(&self) -> &str {
        self.panic_message
            .as_deref()
            .unwrap_or("payload unavailable")
    }

    // ---- the scheduling moves ---------------------------------------

    /// Admission + buffering for an already-resolved open flow.
    /// Returns `Pending` for dead/closed ids and over-budget pushes.
    fn try_push_at(&mut self, id: FlowId, chunk: &[u8], cfg: &ServeConfig) -> Poll<u64> {
        self.touch += 1;
        let touch = self.touch;
        let buffered_total = self.buffered_total;
        let refresh_activity = cfg.idle_timeout.is_some();
        let Some(f) = self.flow_mut(id) else {
            return Poll::Pending; // stale id
        };
        if f.closed {
            return Poll::Pending;
        }
        // A rejected attempt still proves the producer is alive:
        // refresh activity either way, so a flow pinned at its budget
        // by slow consumers is not mistaken for an idle one and evicted
        // mid-stream. (The LRU stamp refreshes for the same reason.)
        if refresh_activity {
            f.last_activity = Instant::now();
        }
        f.last_touch = touch;
        let buffered = f.buffered();
        // Empty chunks buffer nothing and are accepted unconditionally;
        // a chunk is otherwise accepted when the flow buffers nothing
        // (so chunks larger than the whole budget still make progress)
        // or fits in the per-flow and global byte budgets.
        if !chunk.is_empty()
            && buffered > 0
            && (buffered as usize).saturating_add(chunk.len()) > cfg.flow_budget
        {
            self.metrics.backpressure += 1;
            return Poll::Pending;
        }
        if !chunk.is_empty()
            && buffered_total > 0
            && buffered_total.saturating_add(chunk.len() as u64) > cfg.max_buffered_bytes
        {
            self.metrics.backpressure += 1;
            return Poll::Pending;
        }
        if !chunk.is_empty() {
            self.maybe_migrate(id);
        }
        Poll::Ready(self.buffer_chunk(id, chunk))
    }

    /// Migrates a drained flow onto the current epoch at this chunk
    /// boundary: fresh engines starting at `base = total`, old engines
    /// (and their epoch pin) released. Called only for a non-empty
    /// accepted push, so clearing the `$` candidates is safe — more
    /// bytes are coming, and the old candidates cannot end at the
    /// final byte.
    fn maybe_migrate(&mut self, id: FlowId) {
        let current = self.current_epoch;
        {
            let Some(f) = self.flow(id) else { return };
            if f.epoch == current || f.closed || !f.drained() {
                return;
            }
        }
        let states = self.current().set.shard_stream_states();
        let f = self.slots[id.index as usize]
            .flow
            .as_deref_mut()
            .expect("migrating a live flow");
        let mut retired = HybridStats::default();
        for slot in &f.shards {
            if let Some(stats) = slot.state.as_ref().and_then(ShardStreamState::hybrid_stats) {
                retired.merge(&stats);
            }
        }
        let old_epoch = f.epoch;
        let base = f.total;
        f.base = base;
        f.segments.clear(); // drained ⇒ already empty
        f.dollar.clear();
        // Fresh engines start cold at the new base: a literal
        // straddling the migration boundary is cut like any match
        // there, so the filter state restarts with the engines.
        f.tail.clear();
        f.shards = states
            .into_iter()
            .map(|state| OwnedShardSlot {
                state: Some(state),
                pending: VecDeque::new(),
                pos: base,
                busy: false,
                pre: PrefilterState::default(),
                #[cfg(feature = "fault-inject")]
                scans: 0,
            })
            .collect();
        f.epoch = current;
        f.epoch_released = false;
        self.hybrid_retired.merge(&retired);
        self.release_epoch(old_epoch);
        self.bind_epoch(current);
    }

    /// Buffers `chunk` for an open flow and marks its idle shard units
    /// ready — except units the literal prefilter proves cold, whose
    /// position advances past the chunk without a scan. Returns the
    /// flow's new total length.
    fn buffer_chunk(&mut self, id: FlowId, chunk: &[u8]) -> u64 {
        let epoch = self.slots[id.index as usize]
            .flow
            .as_deref()
            .expect("buffer_chunk: open flow")
            .epoch;
        let set = Arc::clone(&self.epoch_entry(epoch).set);
        let f = self.slots[id.index as usize]
            .flow
            .as_deref_mut()
            .expect("buffer_chunk: open flow");
        if chunk.is_empty() {
            return f.total;
        }
        let before = f.buffered();
        let chunk_start = f.total;
        f.segments.push_back(Segment {
            start: chunk_start,
            bytes: Arc::from(chunk),
        });
        f.total += chunk.len() as u64;
        let mut skipped = false;
        match set.prefilter() {
            None => {
                for (si, slot) in f.shards.iter_mut().enumerate() {
                    if !slot.busy {
                        slot.busy = true;
                        self.ready.push_back((id, si));
                    }
                }
            }
            Some(pf) => {
                let base = f.base;
                let paused = self.paused;
                // Filter verdict per shard; the filter state advances
                // over the chunk even when the scan is skipped.
                let actions: Vec<ChunkAction> = f
                    .shards
                    .iter_mut()
                    .enumerate()
                    .map(|(si, slot)| pf.chunk_action(si, &mut slot.pre, chunk, chunk_start, base))
                    .collect();
                // Each cold idle unit's engine is teleported somewhere
                // this push decides (`None` ⇒ leave it alone):
                //
                // * no candidate, workers live → past the chunk (the
                //   skip — its whole point);
                // * no candidate, workers parked → *back* to the wake
                //   window. A parked skip would silently consume bytes
                //   the budget/backpressure contract says are still
                //   buffered, so the unit is enqueued like any other —
                //   restarted early enough that every future wake-up's
                //   replay point lies at or after where this engine
                //   starts, because once the unit is busy a wake cannot
                //   teleport it (the engine may be checked out);
                // * first candidate → back to this wake's replay point.
                //
                // Busy units are left alone everywhere: cold busy
                // engines start at or before any replay point (the
                // invariant above), so they scan the window natively.
                // Rewinding a cold engine is always sound: it has no
                // report ending in — and, being report-free, no match
                // state worth more than — the region it re-scans.
                let targets: Vec<Option<u64>> = actions
                    .iter()
                    .enumerate()
                    .zip(&f.shards)
                    .map(|((si, action), slot)| match action {
                        _ if slot.busy => None,
                        ChunkAction::Scan => None,
                        ChunkAction::Skip if paused => Some(
                            (chunk_start + 1)
                                .saturating_sub(
                                    pf.shard(si).expect("cold shards have filters").window(),
                                )
                                .max(base),
                        ),
                        ChunkAction::Skip => Some(f.total),
                        ChunkAction::Wake { replay_start } => Some(*replay_start),
                    })
                    .collect();
                // A teleport below the oldest buffered segment re-covers
                // the gap with a synthetic segment sliced from the tail
                // buffer, keeping the queue contiguous for
                // `ServeUnit::scan`'s skip math.
                if let Some(min_target) = targets.iter().flatten().min().copied() {
                    let front_start = f.segments.front().map_or(f.total, |s| s.start);
                    if min_target < front_start {
                        let tail_start = chunk_start - f.tail.len() as u64;
                        debug_assert!(min_target >= tail_start, "tail covers the replay window");
                        let a = (min_target - tail_start) as usize;
                        let b = (front_start - tail_start) as usize;
                        f.segments.push_front(Segment {
                            start: min_target,
                            bytes: Arc::from(&f.tail[a..b]),
                        });
                    }
                }
                for (si, ((slot, action), target)) in
                    f.shards.iter_mut().zip(&actions).zip(&targets).enumerate()
                {
                    if let Some(target) = *target {
                        slot.pos = target;
                        let state = slot.state.take().expect("idle slots hold their engine");
                        let mut stream = set.resume_shard_stream(state);
                        stream.restart_at(target - base);
                        slot.state = Some(stream.into_state());
                    }
                    match action {
                        ChunkAction::Skip if target == &Some(f.total) => {
                            self.metrics.prefilter.skipped_units.add(si, 1);
                            self.metrics
                                .prefilter
                                .skipped_bytes
                                .add(si, chunk.len() as u64);
                            skipped = true;
                        }
                        ChunkAction::Wake { .. } => {
                            self.metrics.prefilter.candidate_hits += 1;
                            if !slot.busy {
                                slot.busy = true;
                                self.ready.push_back((id, si));
                            }
                        }
                        _ => {
                            if !slot.busy {
                                slot.busy = true;
                                self.ready.push_back((id, si));
                            }
                        }
                    }
                }
                pf.extend_tail(&mut f.tail, chunk);
            }
        }
        let after = f.buffered();
        let total = f.total;
        self.buffered_total += after - before;
        self.metrics.queue_peak = self.metrics.queue_peak.max(self.ready.len());
        if skipped {
            // Skips advance the watermark without a check-in: merge
            // (and drop fully-consumed segments) promptly.
            self.merge_ready(id);
        }
        total
    }

    /// Pops a ready `(flow, shard)` unit and checks its engine out,
    /// along with the segments it has yet to consume and the `Arc`ed
    /// machine image of the flow's epoch (so the scan runs unlocked
    /// and survives a concurrent reload).
    fn checkout(&mut self) -> Option<ServeUnit> {
        let (id, si) = self.ready.pop_front()?;
        let (epoch, base) = {
            let f = self.flow(id).expect("ready unit belongs to a live flow");
            (f.epoch, f.base)
        };
        let set = Arc::clone(&self.epoch_entry(epoch).set);
        let f = self.slots[id.index as usize]
            .flow
            .as_deref_mut()
            .expect("ready unit belongs to a live flow");
        #[cfg(feature = "fault-inject")]
        let seq = f.seq;
        let slot = &mut f.shards[si];
        debug_assert!(slot.busy, "queued units are marked busy");
        #[cfg(feature = "fault-inject")]
        let scan_no = {
            slot.scans += 1;
            slot.scans
        };
        let state = slot.state.take().expect("ready slot holds its engine");
        let from = slot.pos;
        let segments: Vec<Segment> = f
            .segments
            .iter()
            .filter(|seg| seg.end() > from)
            .cloned()
            .collect();
        self.in_flight += 1;
        Some(ServeUnit {
            id,
            shard: si,
            base,
            set,
            state,
            segments,
            #[cfg(feature = "fault-inject")]
            seq,
            #[cfg(feature = "fault-inject")]
            scan_no,
        })
    }

    /// Checks a scanned unit back in: publishes its reports (already
    /// absolute), requeues it if more bytes arrived while it was out,
    /// merges what became final, and settles `in_flight`.
    fn check_in(
        &mut self,
        id: FlowId,
        si: usize,
        state: ShardStreamState,
        reports: Vec<MultiReport>,
    ) {
        // A sibling shard's panic may have quarantined the flow — and
        // an acknowledging `close` may even have freed its slot —
        // while this unit was out scanning. Retire the late engine's
        // hybrid counters, drop its now-unmergeable reports, settle.
        if self.flow(id).is_none_or(|f| f.shards.is_empty()) {
            if let Some(stats) = state.hybrid_stats() {
                self.hybrid_retired.merge(&stats);
            }
            self.in_flight -= 1;
            return;
        }
        let f = self.slots[id.index as usize]
            .flow
            .as_deref_mut()
            .expect("flows persist while checked out");
        let before = f.buffered();
        let base = f.base;
        let total = f.total;
        let slot = &mut f.shards[si];
        slot.pos = base + state.position();
        slot.state = Some(state);
        slot.pending.extend(reports);
        if slot.pos < total {
            self.ready.push_back((id, si)); // more bytes arrived meanwhile
        } else {
            slot.busy = false;
        }
        // Scan progress counts as activity: a flow whose backlog is
        // still draining is not idle.
        f.last_activity = Instant::now();
        let after = f.buffered();
        self.buffered_total -= before - after;
        self.merge_ready(id);
        self.try_finish(id);
        self.in_flight -= 1;
    }

    /// Merges shard-pending reports up to the watermark into the flow
    /// queue (ordered by `(end, pattern)`, the stream order) and the
    /// global sink, then drops input segments every shard has consumed.
    fn merge_ready(&mut self, id: FlowId) {
        let Some(f) = self.flow(id) else { return };
        if f.shards.is_empty() {
            // Already finished (engines freed, epoch pin released —
            // the epoch may since have been retired by a reload) or a
            // zero-shard set: nothing pending to merge. A second
            // `close` on a finished flow lands here.
            return;
        }
        let raw = f.raw;
        let (set, ids) = {
            let e = self.epoch_entry(f.epoch);
            (Arc::clone(&e.set), Arc::clone(&e.ids))
        };
        let anchored = set.anchored_end();
        let mut events: Vec<SinkEvent> = Vec::new();
        let f = self
            .flow_mut(id)
            .expect("merge_ready: flow is still live here");
        let watermark = f.watermark();
        loop {
            let mut best: Option<(usize, (u64, u32))> = None;
            for (si, slot) in f.shards.iter().enumerate() {
                if let Some(r) = slot.pending.front() {
                    if r.end <= watermark && best.is_none_or(|(_, key)| (r.end, r.pattern) < key) {
                        best = Some((si, (r.end, r.pattern)));
                    }
                }
            }
            let Some((si, _)) = best else { break };
            let r = f.shards[si].pending.pop_front().expect("best exists");
            if anchored[r.pattern as usize] {
                f.dollar.insert(r.pattern, r.end);
            }
            let rule = ids[r.pattern as usize];
            f.reports.push_back(StoredMatch {
                rule,
                pattern: r.pattern,
                end: r.end,
            });
            events.push(SinkEvent {
                flow: id,
                raw,
                rule,
                pattern: r.pattern,
                end: r.end,
            });
        }
        while f.segments.front().is_some_and(|seg| seg.end() <= watermark) {
            f.segments.pop_front();
        }
        self.sink.extend(events);
    }

    /// Frees the engines of a closed, fully-consumed flow, resolves its
    /// `$`-anchored finishing set (as stable rule ids), retires its
    /// hybrid counters, and releases its epoch pin.
    fn try_finish(&mut self, id: FlowId) {
        let Some(f) = self.flow(id) else { return };
        if f.shards.is_empty() {
            return; // already finished, or a zero-shard set
        }
        if !(f.closed && f.drained()) {
            return;
        }
        let epoch = f.epoch;
        let ids = Arc::clone(&self.epoch_entry(epoch).ids);
        let f = self
            .flow_mut(id)
            .expect("try_finish: flow is still live here");
        debug_assert!(f.shards.iter().all(|slot| slot.pending.is_empty()));
        let mut retired = HybridStats::default();
        for slot in &f.shards {
            if let Some(stats) = slot.state.as_ref().and_then(ShardStreamState::hybrid_stats) {
                retired.merge(&stats);
            }
        }
        f.shards.clear();
        f.segments.clear();
        let total = f.total;
        let mut finals: Vec<u32> = f
            .dollar
            .iter()
            .filter_map(|(&pattern, &end)| (end == total).then_some(pattern))
            .collect();
        finals.sort_unstable();
        f.finishing
            .extend(finals.into_iter().map(|pattern| StoredMatch {
                rule: ids[pattern as usize],
                pattern,
                end: total,
            }));
        f.epoch_released = true;
        self.hybrid_retired.merge(&retired);
        self.release_epoch(epoch);
    }

    /// Marks a flow closed and finishes it if already drained. Closing
    /// a quarantined flow acknowledges the quarantine: the slot is
    /// reclaimed (undrained reports included).
    fn close_flow(&mut self, id: FlowId) {
        let Some(f) = self.flow_mut(id) else { return };
        if f.quarantined.is_some() {
            self.free_slot(id);
            return;
        }
        if !f.closed {
            f.closed = true;
            self.open_count -= 1;
        }
        self.merge_ready(id);
        self.try_finish(id);
    }

    // ---- the deprecated raw-u64 addressing --------------------------

    /// Resolves a raw id to the flow a push should land on: the live
    /// incarnation, a fresh reopened one if the old finished draining
    /// (carrying its undrained reports, like the scheduler), or `None`
    /// while the flow is closed but not yet drained.
    fn raw_push_target(&mut self, raw: u64, cfg: &ServeConfig) -> Option<FlowId> {
        match self.raw.get(&raw).copied() {
            Some(id) => {
                let f = self.flow(id).expect("raw mappings point at live slots");
                if f.finished() {
                    Some(self.reopen_raw(raw, id, cfg))
                } else if f.closed {
                    None
                } else {
                    Some(id)
                }
            }
            None => Some(self.open(Some(raw), cfg)),
        }
    }

    /// Starts a fresh incarnation of a finished raw flow in a **new
    /// slot** (the generation moves on — ABA safety), carrying the old
    /// incarnation's undrained reports and finishing set forward.
    fn reopen_raw(&mut self, raw: u64, old: FlowId, cfg: &ServeConfig) -> FlowId {
        let f = self
            .flow_mut(old)
            .expect("reopening a finished flow in place");
        let reports = std::mem::take(&mut f.reports);
        let finishing = std::mem::take(&mut f.finishing);
        self.free_slot(old);
        let id = self.open(Some(raw), cfg);
        let f = self.flow_mut(id).expect("just opened");
        f.reports = reports;
        f.finishing = finishing;
        id
    }

    fn raw_lookup(&self, raw: u64) -> Option<FlowId> {
        self.raw.get(&raw).copied()
    }

    // ---- eviction ---------------------------------------------------

    /// Closes every open, drained flow whose last push attempt is older
    /// than the idle timeout. Due-gated at the sweep cadence; skipped
    /// while paused (the wrapper evicts only inside `run`). Returns
    /// whether any flow was evicted (the caller frees space).
    fn evict_idle(&mut self, cfg: &ServeConfig) -> bool {
        let Some(timeout) = cfg.idle_timeout else {
            return false;
        };
        if self.paused {
            return false;
        }
        let now = Instant::now();
        match self.next_sweep {
            Some(due) if now < due => return false,
            _ => self.next_sweep = Some(now + cfg.sweep_interval.unwrap_or(timeout)),
        }
        // Only fully-drained open flows are idle: a flow with buffered
        // bytes is still being scanned (and check-in refreshes its
        // activity anyway), and a backpressured producer refreshes
        // activity on every rejected attempt — so eviction never splits
        // a live stream in two.
        let expired: Vec<FlowId> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let f = slot.flow.as_deref()?;
                (!f.closed && f.buffered() == 0 && now.duration_since(f.last_activity) >= timeout)
                    .then_some(FlowId {
                        index: i as u32,
                        generation: slot.generation,
                    })
            })
            .collect();
        let any = !expired.is_empty();
        for id in expired {
            let raw = self.flow(id).and_then(|f| f.raw);
            self.close_flow(id);
            self.evicted.push((id, raw));
            self.metrics.idle_evictions += 1;
        }
        any
    }

    /// Evicts the least-recently-pushed open drained flow to make room
    /// in the flow table. Returns `false` when nothing is evictable.
    fn evict_lru(&mut self) -> bool {
        let mut lru: Option<(u64, FlowId)> = None;
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(f) = slot.flow.as_deref() else {
                continue;
            };
            if f.closed || f.buffered() != 0 {
                continue;
            }
            if lru.is_none_or(|(touch, _)| f.last_touch < touch) {
                lru = Some((
                    f.last_touch,
                    FlowId {
                        index: i as u32,
                        generation: slot.generation,
                    },
                ));
            }
        }
        let Some((_, id)) = lru else { return false };
        let raw = self.flow(id).and_then(|f| f.raw);
        self.close_flow(id);
        self.evicted.push((id, raw));
        self.metrics.budget_evictions += 1;
        true
    }

    // ---- metrics ----------------------------------------------------

    fn record_scan(&mut self, shard: usize, ns: u64, bytes: u64) {
        self.metrics.shard_scan_ns.add(shard, ns);
        self.metrics.shard_scan_bytes.add(shard, bytes);
    }

    fn snapshot(&self) -> ServiceMetrics {
        let mut hybrid = self.hybrid_retired;
        for slot in &self.slots {
            let Some(f) = slot.flow.as_deref() else {
                continue;
            };
            for shard in &f.shards {
                if let Some(stats) = shard
                    .state
                    .as_ref()
                    .and_then(ShardStreamState::hybrid_stats)
                {
                    hybrid.merge(&stats);
                }
            }
        }
        let hybrid = match self.current().set.scan_mode() {
            ScanMode::Hybrid { .. } => Some(hybrid),
            ScanMode::Nca => None,
        };
        let shards = self.current().set.shard_count();
        let prefilter = self.current().set.prefilter().map(|pf| {
            self.metrics
                .prefilter
                .snapshot(shards, pf.always_on_rules())
        });
        ServiceMetrics {
            epoch: self.current_epoch,
            reloads: self.metrics.reloads,
            flows: self.occupied(),
            epoch_flows: self.epochs.iter().map(|e| (e.epoch, e.flows)).collect(),
            pending_bytes: self.buffered_total,
            queue_depth: self.ready.len(),
            queue_depth_peak: self.metrics.queue_peak,
            in_flight: self.in_flight,
            shard_scan_ns: self.metrics.shard_scan_ns.snapshot(shards),
            shard_scan_bytes: self.metrics.shard_scan_bytes.snapshot(shards),
            idle_evictions: self.metrics.idle_evictions,
            budget_evictions: self.metrics.budget_evictions,
            backpressure: self.metrics.backpressure,
            hybrid,
            prefilter,
            faults: FaultMetrics {
                quarantined_flows: self.metrics.quarantined,
                worker_restarts: self.metrics.worker_restarts,
                shed_opens: self.metrics.shed_opens,
                fail_stops: self.metrics.fail_stops,
            },
        }
    }
}

/// A human-readable summary of a panic payload: `&str` and `String`
/// payloads verbatim, anything else opaquely.
fn payload_summary(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A `(flow, shard)` unit checked out of the readiness queue: the
/// shard's detached engine state, the `Arc`ed machine image of the
/// flow's epoch, and the input segments it still has to consume —
/// fully owned, so the scan runs unlocked and survives a concurrent
/// reload (in-flight units always drain against the engine they
/// started on).
struct ServeUnit {
    id: FlowId,
    shard: usize,
    /// Absolute offset where this epoch's engines started in the flow.
    base: u64,
    set: Arc<ShardedPatternSet>,
    state: ShardStreamState,
    segments: Vec<Segment>,
    /// The flow's open-order sequence number (fault-injection address).
    #[cfg(feature = "fault-inject")]
    seq: u64,
    /// Which scan of this `(flow, shard)` unit this checkout is
    /// (1-based; fault-injection address).
    #[cfg(feature = "fault-inject")]
    scan_no: u64,
}

impl ServeUnit {
    /// Scans every unconsumed byte of the checked-out segments,
    /// returning the shard's parked state and its reports rebased to
    /// **absolute** flow offsets. Runs WITHOUT the lock held.
    fn scan(self) -> (ShardStreamState, Vec<MultiReport>, u64) {
        let ServeUnit {
            base,
            set,
            state,
            segments,
            ..
        } = self;
        let mut stream = set.resume_shard_stream(state);
        let mut reports = Vec::new();
        let mut bytes = 0u64;
        for seg in &segments {
            let skip = ((base + stream.position()) - seg.start) as usize;
            bytes += (seg.bytes.len() - skip) as u64;
            stream.feed_into(&seg.bytes[skip..], &mut reports);
        }
        let state = stream.into_state();
        for r in &mut reports {
            r.end += base;
        }
        (state, reports, bytes)
    }
}

/// The shared synchronization core: the state mutex plus the two
/// condvars. `Arc`ed between the handle and its worker threads.
struct ServiceCore {
    config: ServeConfig,
    state: Mutex<ServeState>,
    /// Parked workers wait here; signalled on push, close, reload,
    /// shutdown, and check-in.
    wake: Condvar,
    /// Producers blocked in `push` (and `barrier`, and the wrapper's
    /// end-of-run drain) wait here; signalled when a worker checks a
    /// unit in (bytes were consumed — space freed) or evicts.
    space: Condvar,
    /// Deterministic fault-injection plan, from
    /// [`EngineBuilder::fault_plan`](crate::EngineBuilder::fault_plan).
    #[cfg(feature = "fault-inject")]
    fault_plan: FaultPlan,
}

impl ServiceCore {
    /// Locks the state, recovering from mutex poisoning: every mutation
    /// sequence under the lock is panic-free (producer-side asserts
    /// fire before any mutation, worker panics are caught outside the
    /// lock), so a poisoned mutex still guards consistent state.
    fn lock(&self) -> MutexGuard<'_, ServeState> {
        self.state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    fn wait_space<'g>(&self, guard: MutexGuard<'g, ServeState>) -> MutexGuard<'g, ServeState> {
        self.space
            .wait(guard)
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// One supervised pass of the worker loop: sweep, check out, scan
/// unlocked, check in; park when idle, return on shutdown. A panic
/// inside a scan is caught here: under [`FaultPolicy::Isolate`] the
/// offending flow is quarantined and the panic rethrown into
/// [`supervised_worker`] (which respawns the loop under the restart
/// budget); under [`FaultPolicy::FailStop`] the service is poisoned
/// and the loop keeps running, preserving the legacy contract.
fn worker_loop(core: &ServiceCore) {
    let cfg = core.config;
    let mut st = core.lock();
    loop {
        // Idle sweeps are due-gated at the sweep cadence and run on
        // EVERY loop iteration, so sustained load (workers that always
        // find ready work) cannot starve eviction.
        if st.evict_idle(&cfg) {
            core.space.notify_all();
        }
        if !st.paused {
            if let Some(unit) = st.checkout() {
                let (id, shard) = (unit.id, unit.shard);
                drop(st);
                let started = Instant::now();
                // Panic protection: the unlocked scan runs caught, so
                // a panic loses only the unit's engine — never the
                // lock's consistency. What happens next is the fault
                // policy's call: Isolate quarantines the one flow and
                // lets the supervisor respawn this worker; FailStop
                // poisons the whole service (blocked producers panic
                // out of their waits instead of re-blocking on a
                // backlog that will never clear, and the wrapper
                // rethrows the payload out of `FlowService::run`).
                #[cfg(feature = "fault-inject")]
                let probe = (unit.seq, unit.shard, unit.scan_no);
                let scanned = catch_unwind(AssertUnwindSafe(|| {
                    #[cfg(feature = "fault-inject")]
                    core.fault_plan.trigger(probe.0, probe.1, probe.2);
                    unit.scan()
                }));
                let ns = started.elapsed().as_nanos() as u64;
                let mut relocked = core.lock();
                match scanned {
                    Ok((state, reports, bytes)) => {
                        relocked.record_scan(shard, ns, bytes);
                        relocked.check_in(id, shard, state, reports);
                    }
                    Err(payload) => {
                        relocked.in_flight -= 1;
                        match cfg.fault_policy {
                            FaultPolicy::Isolate => {
                                let summary = payload_summary(payload.as_ref());
                                relocked.quarantine(id, &summary);
                                drop(relocked);
                                core.wake.notify_all();
                                core.space.notify_all();
                                // Rethrow into the supervisor, which
                                // respawns the loop under the restart
                                // budget (or fail-stops past it).
                                std::panic::resume_unwind(payload);
                            }
                            FaultPolicy::FailStop => relocked.fail_stop(payload),
                        }
                    }
                }
                core.wake.notify_all();
                core.space.notify_all();
                st = relocked;
                continue;
            }
        }
        if st.shutdown && st.in_flight == 0 && (st.paused || st.ready.is_empty()) {
            return;
        }
        st = match cfg.idle_timeout {
            // Periodic wake so the due-gated sweep keeps running while
            // the service sits fully idle.
            Some(timeout) => {
                let cadence = cfg.sweep_interval.unwrap_or(timeout);
                match core.wake.wait_timeout(st, cadence) {
                    Ok((guard, _)) => guard,
                    Err(poison) => poison.into_inner().0,
                }
            }
            None => core
                .wake
                .wait(st)
                .unwrap_or_else(|poison| poison.into_inner()),
        };
    }
}

/// The worker thread body: reruns [`worker_loop`] across panics.
///
/// Under [`FaultPolicy::Isolate`], a panicked pass (which already
/// quarantined the offending flow before rethrowing) respawns the loop
/// while the pool-wide [`restart_budget`](ServeConfig::restart_budget)
/// lasts, sleeping an exponential backoff first — starting at
/// [`restart_backoff`](ServeConfig::restart_backoff) and doubling per
/// restart this thread has absorbed (saturating; exponent capped).
/// Once the budget is spent — or under [`FaultPolicy::FailStop`],
/// where `worker_loop` only rethrows non-scan panics — the payload
/// fail-stops the whole service and the thread exits.
fn supervised_worker(core: &ServiceCore) {
    let cfg = core.config;
    let mut consecutive: u32 = 0;
    loop {
        let payload = match catch_unwind(AssertUnwindSafe(|| worker_loop(core))) {
            Ok(()) => return, // clean shutdown
            Err(payload) => payload,
        };
        let backoff = {
            let mut st = core.lock();
            if cfg.fault_policy == FaultPolicy::FailStop
                || st.restarts >= cfg.restart_budget
                || st.shutdown
            {
                st.fail_stop(payload);
                drop(st);
                core.wake.notify_all();
                core.space.notify_all();
                return;
            }
            st.restarts += 1;
            st.metrics.worker_restarts += 1;
            consecutive += 1;
            cfg.restart_backoff
                .saturating_mul(1u32 << (consecutive - 1).min(16))
        };
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
    }
}

// ---- the owned handle -----------------------------------------------

/// An owned, `'static` many-flow scanning service; create one with
/// [`Engine::serve`](crate::Engine::serve). See the module docs for the
/// lifecycle.
///
/// The handle owns its worker threads: they spawn on construction,
/// park on the readiness condvar while idle, and are joined on
/// [`shutdown`](ServiceHandle::shutdown) / `Drop`. It is `Send + Sync`,
/// so one handle embeds in a server's shared state and takes pushes
/// from many producer threads.
///
/// ```
/// use recama::Engine;
///
/// let engine = Engine::builder()
///     .patterns(["ab{2}c", "xyz"])
///     .workers(2)
///     .build()
///     .unwrap();
///
/// let svc = engine.serve(); // workers spawn now, parked
/// let flow = svc.open_flow();
/// svc.push(flow, b"..ab"); // blocking push (waits if over budget)
/// svc.push(flow, b"bc!"); // match straddles the chunks
/// svc.barrier(); // every pushed byte scanned
/// let hits = svc.poll(flow);
/// assert_eq!(hits.len(), 1);
/// assert_eq!((hits[0].rule, hits[0].end), (0, 6));
/// svc.close(flow);
/// svc.shutdown(); // joins the workers (Drop would too)
/// ```
pub struct ServiceHandle {
    core: Arc<ServiceCore>,
    threads: Vec<JoinHandle<()>>,
    workers: usize,
    /// The engine's builder (rules cleared), so
    /// [`reload_rules`](ServiceHandle::reload_rules) recompiles with
    /// the same knobs.
    template: EngineBuilder,
}

impl ServiceHandle {
    pub(crate) fn spawn(engine: &Engine, workers: usize, config: ServeConfig) -> ServiceHandle {
        ServiceHandle::spawn_inner(engine, workers, config, false)
    }

    /// Spawns with the workers paused — the wrapper's outside-`run`
    /// state: pushes buffer, nothing consumes.
    fn spawn_paused(engine: &Engine, workers: usize, config: ServeConfig) -> ServiceHandle {
        ServiceHandle::spawn_inner(engine, workers, config, true)
    }

    fn spawn_inner(
        engine: &Engine,
        workers: usize,
        config: ServeConfig,
        paused: bool,
    ) -> ServiceHandle {
        let workers = workers.max(1);
        let core = Arc::new(ServiceCore {
            config,
            state: Mutex::new(ServeState::new(engine, paused)),
            wake: Condvar::new(),
            space: Condvar::new(),
            #[cfg(feature = "fault-inject")]
            fault_plan: engine.fault_plan_clone(),
        });
        let threads = (0..workers)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("recama-serve-{i}"))
                    .spawn(move || supervised_worker(&core))
                    .expect("spawn service worker thread")
            })
            .collect();
        ServiceHandle {
            core,
            threads,
            workers,
            template: engine.template().clone(),
        }
    }

    // ---- lifecycle --------------------------------------------------

    /// The worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The backpressure/eviction configuration.
    pub fn config(&self) -> ServeConfig {
        self.core.config
    }

    /// The current serving epoch (0 until the first
    /// [`reload`](ServiceHandle::reload)).
    pub fn epoch(&self) -> u64 {
        self.core.lock().current_epoch
    }

    /// Whether the service fail-stopped: a worker panic was not (or
    /// could not be) absorbed — explicit
    /// [`FaultPolicy::FailStop`](crate::FaultPolicy::FailStop), or an
    /// exhausted [`restart_budget`](crate::ServeConfig::restart_budget)
    /// — so the service can no longer drain and every blocking call
    /// panics.
    pub fn is_poisoned(&self) -> bool {
        self.core.lock().poisoned
    }

    /// A summary of the first worker panic payload, once the service
    /// fail-stopped; `None` while healthy. (A quarantined flow's panic
    /// message travels on [`ServeError::Quarantined`] instead — see
    /// [`push_checked`](ServiceHandle::push_checked) /
    /// [`poll_checked`](ServiceHandle::poll_checked).)
    pub fn panic_message(&self) -> Option<String> {
        self.core.lock().panic_message.clone()
    }

    /// Whether `flow` is quarantined: a scan over its bytes panicked
    /// under [`FaultPolicy::Isolate`](crate::FaultPolicy::Isolate), so
    /// its engines were freed and it accepts no more input. Reports
    /// merged before the fault stay pollable;
    /// [`close`](ServiceHandle::close) acknowledges the quarantine and
    /// reclaims the slot.
    pub fn is_quarantined(&self, flow: FlowId) -> bool {
        self.core
            .lock()
            .flow(flow)
            .is_some_and(|f| f.quarantined.is_some())
    }

    /// Shuts the service down: parked workers exit (after draining the
    /// readiness queue) and are joined. Equivalent to dropping the
    /// handle, but explicit about where the join happens.
    pub fn shutdown(mut self) {
        self.shutdown_join();
    }

    fn shutdown_join(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        {
            let mut st = self.core.lock();
            st.shutdown = true;
        }
        self.core.wake.notify_all();
        self.core.space.notify_all();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }

    /// The panicking worker's payload, if any — taken once. Used by
    /// the wrapper to rethrow out of [`FlowService::run`].
    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.core.lock().panic_payload.take()
    }

    // ---- hot reload -------------------------------------------------

    /// Installs `engine` as the new serving epoch, **without**
    /// restarting the service, and returns the new epoch number.
    ///
    /// Semantics of the swap:
    ///
    /// * flows opened after the reload start on the new engine;
    /// * an existing flow migrates at its **next accepted non-empty
    ///   push** once drained: bytes before that chunk boundary were
    ///   scanned by the old engine, bytes after it by the new engine
    ///   starting fresh (the stream is *cut* at the boundary — exactly
    ///   a fresh stream over the post-boundary suffix);
    /// * `(flow, shard)` units already checked out keep scanning
    ///   against the engine they started on — the reload never blocks
    ///   on them, and they never see a half-installed set;
    /// * a retired epoch's machine image is freed when its last
    ///   pinned flow finishes or migrates;
    /// * reports carry stable rule ids ([`RuleMatch::rule`]), so a
    ///   rule kept across the reload keeps its identity even though
    ///   the recompiled set reshuffles pattern indices.
    ///
    /// ```
    /// use recama::Engine;
    ///
    /// let v1 = Engine::builder().rule(7, "ab{2}c").build().unwrap();
    /// let v2 = Engine::builder().rule(7, "ab{2}c").rule(9, "xyz").build().unwrap();
    ///
    /// let svc = v1.serve();
    /// let flow = svc.open_flow();
    /// svc.push(flow, b".abbc"); // scanned by v1
    /// svc.barrier(); // drain the flow: migration needs a drained boundary
    /// assert_eq!(svc.reload(&v2), 1);
    /// svc.push(flow, b".xyz"); // flow migrates here; scanned by v2
    /// svc.close(flow);
    /// svc.barrier();
    /// let rules: Vec<u64> = svc.poll(flow).iter().map(|m| m.rule).collect();
    /// assert_eq!(rules, vec![7, 9]);
    /// ```
    pub fn reload(&self, engine: &Engine) -> u64 {
        let mut st = self.core.lock();
        let epoch = st.current_epoch + 1;
        st.epochs.push(EpochEngine {
            epoch,
            set: engine.set_arc(),
            ids: engine.ids_arc(),
            flows: 0,
        });
        st.current_epoch = epoch;
        st.metrics.reloads += 1;
        st.epochs.retain(|e| e.epoch == epoch || e.flows > 0);
        drop(st);
        self.core.wake.notify_all();
        epoch
    }

    /// Compiles `rules` with the original engine's builder knobs
    /// (options, shard policy, scan mode — rules replaced) and installs
    /// the result via [`reload`](ServiceHandle::reload). Ids default to
    /// add-order indices; to reload with explicit stable ids, build the
    /// [`Engine`] yourself (with
    /// [`EngineBuilder::rule`](crate::EngineBuilder::rule)) and call
    /// [`reload`](ServiceHandle::reload).
    ///
    /// # Errors
    ///
    /// Returns the [`CompileError`] of the first failing rule; the
    /// running service is untouched on error.
    pub fn reload_rules<I>(&self, rules: I) -> Result<u64, CompileError>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let engine = self.template.clone().patterns(rules).build()?;
        Ok(self.reload(&engine))
    }

    // ---- producing --------------------------------------------------

    /// Opens a fresh flow on the current epoch and returns its
    /// generational [`FlowId`]. When the flow table is at
    /// [`max_flows`](crate::ServeConfig::max_flows), the
    /// least-recently-pushed drained flow is evicted first.
    pub fn open_flow(&self) -> FlowId {
        let mut st = self.core.lock();
        let id = st.open(None, &self.core.config);
        drop(st);
        self.core.space.notify_all(); // a budget eviction may have freed a blocked producer's flow
        id
    }

    /// Like [`open_flow`](ServiceHandle::open_flow), but sheds the
    /// open — [`ServeError::Overloaded`] — while the service is past
    /// the [`overload`](crate::ServeConfig::overload) high watermark
    /// (queue depth or pending bytes), instead of admitting a flow the
    /// backlog cannot serve. With
    /// [`evict_on_shed`](crate::OverloadPolicy::evict_on_shed) set, a
    /// shed open also evicts the least-recently-pushed drained flow,
    /// so the table self-heals under sustained overload. Poisoning
    /// surfaces as [`ServeError::Poisoned`].
    pub fn try_open_flow(&self) -> Result<FlowId, ServeError> {
        let mut st = self.core.lock();
        if st.poisoned {
            return Err(ServeError::Poisoned {
                message: st.panic_summary().to_string(),
            });
        }
        if st.overloaded(&self.core.config) {
            st.metrics.shed_opens += 1;
            let evicted = self.core.config.overload.evict_on_shed && st.evict_lru();
            drop(st);
            if evicted {
                self.core.space.notify_all();
            }
            return Err(ServeError::Overloaded);
        }
        let id = st.open(None, &self.core.config);
        drop(st);
        self.core.space.notify_all();
        Ok(id)
    }

    /// Attempts to buffer `chunk` for `flow`. Returns
    /// `Poll::Ready(total)` — the flow's new byte length — on
    /// acceptance, or `Poll::Pending` when accepting the chunk would
    /// break the per-flow or global byte budget, or when the id is
    /// closed or stale (a [`FlowId`] is never reopened; open a new
    /// flow). On `Pending`, retry after the workers have consumed — or
    /// use the blocking [`push`](ServiceHandle::push).
    ///
    /// A chunk is always accepted when the flow buffers nothing, so a
    /// chunk larger than the whole budget still makes progress.
    ///
    /// # Panics
    ///
    /// Panics if the service is poisoned (a worker panicked mid-scan).
    pub fn try_push(&self, flow: FlowId, chunk: &[u8]) -> Poll<u64> {
        let mut st = self.core.lock();
        if st.poisoned {
            panic!(
                "ServiceHandle is poisoned: a worker panicked mid-scan ({}), \
                 so pending flows can never drain",
                st.panic_summary()
            );
        }
        let result = st.try_push_at(flow, chunk, &self.core.config);
        drop(st);
        if result.is_ready() {
            self.core.wake.notify_all();
        }
        result
    }

    /// Buffers `chunk` for `flow`, blocking while the budgets are
    /// exceeded until the workers free space. Returns the flow's new
    /// byte length.
    ///
    /// # Panics
    ///
    /// Panics if the service is poisoned, if `flow` is quarantined,
    /// closed, or stale (it would block forever — open a new flow
    /// instead), or if the service is shutting down. Prefer
    /// [`push_checked`](ServiceHandle::push_checked) to handle those
    /// conditions as values.
    pub fn push(&self, flow: FlowId, chunk: &[u8]) -> u64 {
        let mut st = self.core.lock();
        loop {
            if let Poll::Ready(total) = st.try_push_at(flow, chunk, &self.core.config) {
                drop(st);
                self.core.wake.notify_all();
                return total;
            }
            if st.poisoned {
                panic!(
                    "ServiceHandle is poisoned: a worker panicked mid-scan ({}), \
                     so this flow can never drain",
                    st.panic_summary()
                );
            }
            if let Some(message) = st.flow(flow).and_then(|f| f.quarantined.clone()) {
                panic!(
                    "ServiceHandle::push to a quarantined flow (a scan over its bytes \
                     panicked: {message}): it accepts no more input — \
                     use push_checked to handle this as a value"
                );
            }
            assert!(
                st.flow(flow).is_some_and(|f| !f.closed),
                "ServiceHandle::push to a closed or stale FlowId would block forever: \
                 FlowIds are never reopened — open a new flow with open_flow()"
            );
            assert!(
                !st.paused && !st.shutdown,
                "ServiceHandle::push would block forever with no workers consuming"
            );
            st = self.core.wait_space(st);
        }
    }

    /// Like [`push`](ServiceHandle::push), but surfaces every
    /// cannot-proceed condition as a [`ServeError`] instead of
    /// panicking: [`Quarantined`](ServeError::Quarantined) (with the
    /// panic summary) for a quarantined flow,
    /// [`Poisoned`](ServeError::Poisoned) for a fail-stopped service,
    /// [`Closed`](ServeError::Closed) for a closed/stale id, and
    /// [`Stopped`](ServeError::Stopped) when no workers are consuming.
    /// Still blocks, like `push`, while the byte budgets are the only
    /// obstacle.
    pub fn push_checked(&self, flow: FlowId, chunk: &[u8]) -> Result<u64, ServeError> {
        let mut st = self.core.lock();
        loop {
            if let Some(message) = st.flow(flow).and_then(|f| f.quarantined.clone()) {
                return Err(ServeError::Quarantined { message });
            }
            if st.poisoned {
                return Err(ServeError::Poisoned {
                    message: st.panic_summary().to_string(),
                });
            }
            if let Poll::Ready(total) = st.try_push_at(flow, chunk, &self.core.config) {
                drop(st);
                self.core.wake.notify_all();
                return Ok(total);
            }
            if st.flow(flow).is_none_or(|f| f.closed) {
                return Err(ServeError::Closed);
            }
            if st.paused || st.shutdown {
                return Err(ServeError::Stopped);
            }
            st = self.core.wait_space(st);
        }
    }

    /// Marks `flow` closed: buffered bytes are still scanned, after
    /// which the flow's engines are freed and its `$`-anchored
    /// [`finishing`](ServiceHandle::finishing) set resolves. Reports
    /// stay pollable until drained; the slot is then recycled (the id
    /// goes stale). Closing an unknown or stale id is a no-op.
    pub fn close(&self, flow: FlowId) {
        let mut st = self.core.lock();
        st.close_flow(flow);
        drop(st);
        self.core.wake.notify_all();
    }

    /// Blocks until every pushed byte has been consumed by every shard
    /// — a producer-side flush point before polling for a batch of
    /// results.
    ///
    /// # Panics
    ///
    /// Panics if the service is poisoned, or if it has no consuming
    /// workers (paused or shut down) while work is pending.
    pub fn barrier(&self) {
        let mut st = self.core.lock();
        while st.buffered_total > 0 || st.in_flight > 0 {
            if st.poisoned {
                panic!(
                    "ServiceHandle is poisoned: a worker panicked mid-scan ({}), \
                     so the backlog can never drain",
                    st.panic_summary()
                );
            }
            assert!(
                !st.paused && !st.shutdown,
                "ServiceHandle::barrier would block forever with no workers consuming"
            );
            st = self.core.wait_space(st);
        }
    }

    // ---- consuming --------------------------------------------------

    /// Drains `flow`'s ordered report queue (stream order: ascending
    /// end; within one end, the compiled pattern order of the flow's
    /// epoch) — whatever has been merged so far; see
    /// [`barrier`](ServiceHandle::barrier) for a flush point. Stale ids
    /// return nothing. Once a finished flow is fully drained its slot
    /// is recycled and the id goes stale.
    pub fn poll(&self, flow: FlowId) -> Vec<RuleMatch> {
        let mut st = self.core.lock();
        let Some(f) = st.flow_mut(flow) else {
            return Vec::new();
        };
        let out = f.reports.drain(..).map(StoredMatch::rule_match).collect();
        st.free_if_drained(flow);
        out
    }

    /// Like [`poll`](ServiceHandle::poll), but distinguishes the empty
    /// cases: a stale/unknown id returns
    /// [`Closed`](ServeError::Closed), and a quarantined flow with
    /// nothing left to drain returns
    /// [`Quarantined`](ServeError::Quarantined) with the panic summary
    /// — instead of an indistinguishable empty vec.
    pub fn poll_checked(&self, flow: FlowId) -> Result<Vec<RuleMatch>, ServeError> {
        let mut st = self.core.lock();
        let Some(f) = st.flow_mut(flow) else {
            return Err(ServeError::Closed);
        };
        if f.reports.is_empty() {
            if let Some(message) = f.quarantined.clone() {
                return Err(ServeError::Quarantined { message });
            }
        }
        let out = f.reports.drain(..).map(StoredMatch::rule_match).collect();
        st.free_if_drained(flow);
        Ok(out)
    }

    /// Drains `flow`'s finishing set: the `$`-anchored matches ending
    /// exactly at the flow's final byte, resolved when the closed (or
    /// evicted) flow finished draining.
    pub fn finishing(&self, flow: FlowId) -> Vec<RuleMatch> {
        let mut st = self.core.lock();
        let Some(f) = st.flow_mut(flow) else {
            return Vec::new();
        };
        let out = std::mem::take(&mut f.finishing)
            .into_iter()
            .map(StoredMatch::rule_match)
            .collect();
        st.free_if_drained(flow);
        out
    }

    /// Drains the global sink: every merged match of every flow, in
    /// merge-completion order.
    ///
    /// # Ordering contract
    ///
    /// Within one flow, events appear in stream order (ascending end;
    /// within one end, the epoch's compiled pattern order) — the same
    /// order [`poll`](ServiceHandle::poll) yields. **Across** flows the
    /// interleaving follows merge completion and is nondeterministic
    /// under concurrency. Every merged match appears exactly once. This
    /// is the same contract as
    /// [`FlowScheduler::drain_global`](crate::FlowScheduler::drain_global),
    /// pinned by `tests/service_reload.rs`.
    pub fn drain_global(&self) -> Vec<ServiceEvent> {
        self.core
            .lock()
            .sink
            .drain(..)
            .map(|ev| ServiceEvent {
                flow: ev.flow,
                rule: ev.rule,
                end: ev.end,
            })
            .collect()
    }

    /// Drains the ids of flows evicted (idle sweep or flow-table
    /// budget) since the last call. Evicted flows behave exactly like
    /// explicitly [`close`](ServiceHandle::close)d ones.
    pub fn evictions(&self) -> Vec<FlowId> {
        std::mem::take(&mut self.core.lock().evicted)
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    // ---- observability ----------------------------------------------

    /// A point-in-time [`ServiceMetrics`] snapshot.
    ///
    /// ```
    /// use recama::{Engine, PrefilterMode};
    ///
    /// let engine = Engine::builder()
    ///     .patterns(["needle[0-9]z"])
    ///     .prefilter(PrefilterMode::On) // the default
    ///     .build()
    ///     .unwrap();
    /// let svc = engine.serve();
    /// let flow = svc.open_flow();
    /// svc.push(flow, b"......."); // no literal: skipped, not scanned
    /// svc.push(flow, b"needle7z"); // literal: wakes the shard
    /// svc.barrier();
    ///
    /// let m = svc.metrics();
    /// let pf = m.prefilter.expect("built with the filter on");
    /// assert_eq!(pf.total_skipped_units(), 1);
    /// assert_eq!(pf.total_skipped_bytes(), 7);
    /// assert_eq!(pf.candidate_hits, 1);
    /// assert_eq!(pf.always_on_rules, 0);
    /// assert_eq!(svc.poll(flow).len(), 1);
    /// svc.shutdown();
    /// ```
    pub fn metrics(&self) -> ServiceMetrics {
        self.core.lock().snapshot()
    }

    /// Number of flows currently tracked (open, or closed with
    /// undrained reports).
    pub fn flow_count(&self) -> usize {
        self.core.lock().occupied()
    }

    /// Bytes pushed to `flow` so far (`None` for stale/unknown ids).
    pub fn flow_len(&self, flow: FlowId) -> Option<u64> {
        self.core.lock().flow(flow).map(|f| f.total)
    }

    /// Total bytes buffered but not yet consumed by every shard. O(1).
    pub fn pending_bytes(&self) -> u64 {
        self.core.lock().buffered_total
    }

    /// Whether `flow` still addresses a live (tracked) flow — `false`
    /// once the slot was recycled (the ABA guard).
    pub fn is_live(&self, flow: FlowId) -> bool {
        self.core.lock().flow(flow).is_some()
    }

    // ---- deprecated raw-u64 addressing ------------------------------

    /// Like [`try_push`](ServiceHandle::try_push), addressing flows by
    /// caller-chosen `u64` ids with the scheduler's reopen semantics
    /// (pushing a finished id starts a fresh incarnation carrying
    /// undrained reports).
    #[deprecated(note = "address flows with the generational FlowId from open_flow")]
    pub fn try_push_raw(&self, flow: u64, chunk: &[u8]) -> Poll<u64> {
        let mut st = self.core.lock();
        if st.poisoned {
            panic!(
                "ServiceHandle is poisoned: a worker panicked mid-scan ({}), \
                 so pending flows can never drain",
                st.panic_summary()
            );
        }
        let result = match st.raw_push_target(flow, &self.core.config) {
            Some(id) => st.try_push_at(id, chunk, &self.core.config),
            None => Poll::Pending, // closed, not yet drained
        };
        drop(st);
        if result.is_ready() {
            self.core.wake.notify_all();
        }
        result
    }

    /// Like [`close`](ServiceHandle::close) for a raw `u64` id.
    #[deprecated(note = "address flows with the generational FlowId from open_flow")]
    pub fn close_raw(&self, flow: u64) {
        let mut st = self.core.lock();
        if let Some(id) = st.raw_lookup(flow) {
            st.close_flow(id);
        }
        drop(st);
        self.core.wake.notify_all();
    }

    /// Like [`poll`](ServiceHandle::poll) for a raw `u64` id, in the
    /// legacy pattern-indexed [`SetMatch`] form.
    #[deprecated(note = "address flows with the generational FlowId from open_flow")]
    pub fn poll_raw(&self, flow: u64) -> Vec<SetMatch> {
        let mut st = self.core.lock();
        let Some(id) = st.raw_lookup(flow) else {
            return Vec::new();
        };
        let Some(f) = st.flow_mut(id) else {
            return Vec::new();
        };
        let out = f.reports.drain(..).map(StoredMatch::set_match).collect();
        st.free_if_drained(id);
        out
    }

    /// Like [`finishing`](ServiceHandle::finishing) for a raw `u64` id,
    /// in the legacy pattern-indexed [`SetMatch`] form.
    #[deprecated(note = "address flows with the generational FlowId from open_flow")]
    pub fn finishing_raw(&self, flow: u64) -> Vec<SetMatch> {
        let mut st = self.core.lock();
        let Some(id) = st.raw_lookup(flow) else {
            return Vec::new();
        };
        let Some(f) = st.flow_mut(id) else {
            return Vec::new();
        };
        let out = std::mem::take(&mut f.finishing)
            .into_iter()
            .map(StoredMatch::set_match)
            .collect();
        st.free_if_drained(id);
        out
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.shutdown_join();
    }
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.core.lock();
        write!(
            f,
            "ServiceHandle(epoch {}, {} flows, {} shards, {} workers, budget = {} B)",
            st.current_epoch,
            st.occupied(),
            st.current().set.shard_count(),
            self.workers,
            self.core.config.flow_budget
        )
    }
}

// ---- the deprecated scope-based wrapper -----------------------------

/// A scope-based many-flow scanning service; create one with the
/// deprecated [`Engine::service`](crate::Engine::service) and drive it
/// inside [`run`](FlowService::run).
///
/// Since the introduction of the owned [`ServiceHandle`]
/// ([`Engine::serve`](crate::Engine::serve)) this is a thin wrapper
/// over the same core: the handle spawns with its workers **paused**,
/// and [`run`](FlowService::run) unparks them for the closure's
/// duration — preserving the original semantics (pushes outside `run`
/// buffer without being consumed; state persists across runs).
///
/// ```
/// # #![allow(deprecated)]
/// use recama::Engine;
/// use std::task::Poll;
///
/// let engine = Engine::builder()
///     .patterns(["ab{2}c", "xyz"])
///     .workers(2)
///     .build()
///     .unwrap();
///
/// let hits = engine.service().run(|svc| {
///     svc.push(7, b"..ab"); // blocking push (waits if over budget)
///     svc.push(7, b"bc!");  // match straddles the chunks
///     assert!(matches!(svc.try_push(9, b"xyz"), Poll::Ready(3)));
///     svc.barrier();        // every pushed byte scanned
///     (svc.poll(7), svc.poll(9))
/// });
/// assert_eq!(hits.0[0].end, 6);
/// assert_eq!(hits.1[0].end, 3);
/// ```
#[deprecated(note = "use Engine::serve — the owned ServiceHandle needs no enclosing scope")]
pub struct FlowService<'a> {
    handle: ServiceHandle,
    config: ServiceConfig,
    /// The wrapper still presents the historical borrowed-from-engine
    /// shape, though the core owns everything.
    _scope: PhantomData<&'a Engine>,
}

#[allow(deprecated)]
impl<'a> FlowService<'a> {
    pub(crate) fn new(
        engine: &'a Engine,
        workers: usize,
        config: ServiceConfig,
    ) -> FlowService<'a> {
        // The wrapper's contract predates per-flow quarantine: a
        // worker panic poisons the service and `run()` rethrows the
        // payload. Pin the legacy fail-stop policy regardless of the
        // default.
        let mut serve = ServeConfig::from(config);
        serve.fault_policy = FaultPolicy::FailStop;
        FlowService {
            handle: ServiceHandle::spawn_paused(engine, workers, serve),
            config,
            _scope: PhantomData,
        }
    }

    /// The worker-pool size [`run`](FlowService::run) activates.
    pub fn workers(&self) -> usize {
        self.handle.workers()
    }

    /// The backpressure/eviction configuration.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    // ---- the serving scope ------------------------------------------

    /// Serves flows for the duration of `producer`: unparks the worker
    /// pool, runs the closure with the service handle, then pauses the
    /// workers once it returns — after they have drained every buffered
    /// byte. Returns the closure's value.
    ///
    /// The service handle is `Sync`, so the closure may fan pushes out
    /// to its own scoped producer threads. `run` is not reentrant, but
    /// the service can be run again after it returns (flow state,
    /// undrained reports, and evictions persist across runs).
    pub fn run<R>(&self, producer: impl FnOnce(&Self) -> R) -> R {
        let core = &self.handle.core;
        {
            let mut st = core.lock();
            assert!(!st.wrapper_running, "FlowService::run is not reentrant");
            assert!(
                !st.poisoned,
                "FlowService is poisoned: a worker panicked mid-scan and its engine unit is lost"
            );
            st.wrapper_running = true;
            st.paused = false;
        }
        core.wake.notify_all();
        // Pause again (after the drain) even if the producer panics, so
        // the unwound service is observably not-running.
        let guard = RunGuard { core };
        let result = producer(self);
        drop(guard);
        // A worker panic poisons the service; rethrow it here like the
        // scoped implementation's thread::scope join did.
        if let Some(payload) = self.handle.take_panic() {
            std::panic::resume_unwind(payload);
        }
        result
    }

    // ---- producing --------------------------------------------------

    /// Attempts to buffer `chunk` for `flow`, opening the flow on first
    /// use. Returns `Poll::Ready(total)` — the flow's new byte length —
    /// on acceptance, or [`Poll::Pending`] when accepting the chunk
    /// would push the flow's buffered bytes past the configured
    /// [`flow_budget`](crate::ServiceConfig::flow_budget) (or when the
    /// flow is closed/evicted and not yet drained; once drained, the
    /// next push reopens it fresh). On `Pending`, retry after the
    /// workers have consumed — or use the blocking
    /// [`push`](FlowService::push).
    ///
    /// A chunk is always accepted when the flow buffers nothing, so a
    /// chunk larger than the whole budget still makes progress.
    pub fn try_push(&self, flow: u64, chunk: &[u8]) -> Poll<u64> {
        let core = &self.handle.core;
        let mut st = core.lock();
        if st.poisoned {
            panic!(
                "FlowService is poisoned: a worker panicked mid-scan ({}), \
                 so pending flows can never drain",
                st.panic_summary()
            );
        }
        let result = match st.raw_push_target(flow, &core.config) {
            Some(id) => st.try_push_at(id, chunk, &core.config),
            None => Poll::Pending, // closed, not yet drained
        };
        drop(st);
        if result.is_ready() {
            core.wake.notify_all();
        }
        result
    }

    /// Buffers `chunk` for `flow`, blocking while the flow is over its
    /// input budget until the workers free space. Returns the flow's
    /// new byte length.
    ///
    /// # Panics
    ///
    /// Panics if it would block with no workers running (outside
    /// [`run`](FlowService::run)) — nothing would ever free the space.
    pub fn push(&self, flow: u64, chunk: &[u8]) -> u64 {
        let core = &self.handle.core;
        let mut st = core.lock();
        loop {
            let attempt = match st.raw_push_target(flow, &core.config) {
                Some(id) => st.try_push_at(id, chunk, &core.config),
                None => Poll::Pending,
            };
            if let Poll::Ready(total) = attempt {
                drop(st);
                core.wake.notify_all();
                return total;
            }
            if st.poisoned {
                panic!(
                    "FlowService is poisoned: a worker panicked mid-scan ({}), \
                     so this flow can never drain",
                    st.panic_summary()
                );
            }
            assert!(
                st.wrapper_running && !st.paused,
                "FlowService::push would block forever with no workers running: \
                 drive the service inside FlowService::run()"
            );
            st = core.wait_space(st);
        }
    }

    /// Marks `flow` closed: buffered bytes are still scanned, after
    /// which the flow's engines are freed and its `$`-anchored
    /// [`finishing`](FlowService::finishing) set resolves. Reports stay
    /// pollable; pushing the id again after it drains reopens it fresh.
    /// Closing an unknown id is a no-op.
    pub fn close(&self, flow: u64) {
        let core = &self.handle.core;
        let mut st = core.lock();
        if let Some(id) = st.raw_lookup(flow) {
            st.close_flow(id);
        }
        drop(st);
        core.wake.notify_all();
    }

    /// Blocks until every pushed byte has been consumed by every shard
    /// — a producer-side flush point before polling for a batch of
    /// results. (Without it, `poll` simply returns whatever is merged
    /// so far.)
    ///
    /// # Panics
    ///
    /// Panics if called with work pending and no workers running.
    pub fn barrier(&self) {
        let core = &self.handle.core;
        let mut st = core.lock();
        while st.buffered_total > 0 || st.in_flight > 0 {
            if st.poisoned {
                panic!(
                    "FlowService is poisoned: a worker panicked mid-scan ({}), \
                     so the backlog can never drain",
                    st.panic_summary()
                );
            }
            assert!(
                st.wrapper_running && !st.paused,
                "FlowService::barrier would block forever with no workers running: \
                 drive the service inside FlowService::run()"
            );
            st = core.wait_space(st);
        }
    }

    // ---- consuming --------------------------------------------------

    /// Drains `flow`'s ordered report queue (stream order: ascending
    /// end, ascending rule within an end) — whatever has been merged so
    /// far; see [`barrier`](FlowService::barrier) for a flush point.
    pub fn poll(&self, flow: u64) -> Vec<SetMatch> {
        self.handle.poll_raw(flow)
    }

    /// Drains `flow`'s finishing set: the `$`-anchored matches ending
    /// exactly at the flow's final byte, resolved when the closed (or
    /// evicted) flow finished draining.
    pub fn finishing(&self, flow: u64) -> Vec<SetMatch> {
        self.handle.finishing_raw(flow)
    }

    /// Drains the global sink: every merged match of every flow, in
    /// merge order (see
    /// [`ServiceHandle::drain_global`] for the ordering contract).
    pub fn drain_global(&self) -> Vec<FlowMatch> {
        self.handle
            .core
            .lock()
            .sink
            .drain(..)
            .map(|ev| FlowMatch {
                flow: ev.raw.unwrap_or(ev.flow.index as u64),
                pattern: ev.pattern as usize,
                end: ev.end as usize,
            })
            .collect()
    }

    /// Drains the ids of flows the idle sweep has evicted since the
    /// last call. Evicted flows behave exactly like explicitly
    /// [`close`](FlowService::close)d ones.
    pub fn evictions(&self) -> Vec<u64> {
        std::mem::take(&mut self.handle.core.lock().evicted)
            .into_iter()
            .map(|(id, raw)| raw.unwrap_or(id.index as u64))
            .collect()
    }

    /// Number of flows currently tracked (open, or closed with
    /// undrained reports).
    pub fn flow_count(&self) -> usize {
        self.handle.flow_count()
    }

    /// Bytes pushed to `flow` so far (`None` for unknown flows).
    pub fn flow_len(&self, flow: u64) -> Option<u64> {
        let st = self.handle.core.lock();
        let id = st.raw_lookup(flow)?;
        st.flow(id).map(|f| f.total)
    }

    /// Total bytes buffered but not yet consumed by every shard.
    pub fn pending_bytes(&self) -> u64 {
        self.handle.pending_bytes()
    }
}

#[allow(deprecated)]
impl std::fmt::Debug for FlowService<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.handle.core.lock();
        write!(
            f,
            "FlowService({} flows, {} shards, {} workers, running = {}, budget = {} B)",
            st.occupied(),
            st.current().set.shard_count(),
            self.handle.workers,
            st.wrapper_running,
            self.config.flow_budget
        )
    }
}

/// Pauses the workers again when the producer closure ends (normally
/// or by panic) — after waiting for the buffered work to drain, so a
/// completed `run` leaves nothing half-scanned (the behavior of the
/// old scoped join).
struct RunGuard<'s> {
    core: &'s ServiceCore,
}

impl Drop for RunGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.core.lock();
        while !st.poisoned && (st.in_flight > 0 || !st.ready.is_empty()) {
            st = self.core.wait_space(st);
        }
        st.paused = true;
        st.wrapper_running = false;
    }
}
