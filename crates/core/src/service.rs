//! [`FlowService`]: the long-lived, backpressured many-flow serving
//! loop over an [`Engine`](crate::Engine).
//!
//! [`FlowScheduler`](crate::FlowScheduler) is a *batch* API: `run()`
//! scans what is buffered and returns when the queue drains. A serving
//! deployment wants the opposite lifecycle — workers that stay parked
//! on the readiness condvar between bursts, producers that are pushed
//! back when a flow buffers faster than it scans, and flows that go
//! quiet getting evicted instead of leaking engine state. That is what
//! this module adds, as API rather than bolt-on:
//!
//! * [`FlowService::run`] spawns the worker pool on a scoped thread
//!   pool and hands the service back to a producer closure; workers
//!   **park** on the condvar when idle and only exit when the closure
//!   returns (and the remaining buffered work has drained);
//! * [`FlowService::try_push`] applies **backpressure**: it returns
//!   [`Poll::Pending`] while the flow already buffers more unconsumed
//!   bytes than the configured
//!   [`flow_budget`](crate::ServiceConfig::flow_budget)
//!   ([`FlowService::push`] is the blocking variant that waits for the
//!   workers to free space);
//! * flows that receive no push for
//!   [`idle_timeout`](crate::ServiceConfig::idle_timeout) are
//!   **evicted**: closed exactly like [`FlowService::close`], with
//!   their buffered bytes still scanned, `$`-anchored finishing
//!   matches resolved, and their ids queryable via
//!   [`FlowService::evictions`].
//!
//! Report semantics are identical to the scheduler's (and therefore
//! byte-identical to one independent
//! [`ShardedSetStream`](crate::ShardedSetStream) per flow): the service
//! reuses the same flow table, readiness queue, and watermark-ordered
//! merge — [`sched`](crate::sched)'s `Shared` — under its own worker
//! lifecycle.

use crate::engine::ServiceConfig;
use crate::sched::Shared;
use crate::{FlowMatch, SetMatch, ShardedPatternSet};
use std::collections::HashMap;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::task::Poll;
use std::time::Instant;

/// Everything the service lock protects: the scheduler core plus the
/// service-lifecycle state.
struct State<'a> {
    core: Shared<'a>,
    /// Set while a [`FlowService::run`] scope is live (workers exist).
    running: bool,
    /// Set when the producer closure returns: workers drain the queue
    /// and exit instead of parking.
    shutdown: bool,
    /// Set when a worker panicked mid-scan: its `(flow, shard)` engine
    /// unit is lost, so that flow can never drain — blocking producers
    /// must panic out instead of waiting forever.
    poisoned: bool,
    /// Last push per open flow, for idle eviction.
    activity: HashMap<u64, Instant>,
    /// When the next idle sweep is due (sweeps run at `idle_timeout`
    /// cadence even while every worker stays busy).
    next_sweep: Option<Instant>,
    /// Flows evicted by the idle sweep, until drained by
    /// [`FlowService::evictions`].
    evicted: Vec<u64>,
}

/// A long-lived many-flow scanning service; create one with
/// [`Engine::service`](crate::Engine::service) and drive it inside
/// [`run`](FlowService::run). See the module docs for the lifecycle.
///
/// ```
/// use recama::Engine;
/// use std::task::Poll;
///
/// let engine = Engine::builder()
///     .patterns(["ab{2}c", "xyz"])
///     .workers(2)
///     .build()
///     .unwrap();
///
/// let hits = engine.service().run(|svc| {
///     svc.push(7, b"..ab"); // blocking push (waits if over budget)
///     svc.push(7, b"bc!");  // match straddles the chunks
///     assert!(matches!(svc.try_push(9, b"xyz"), Poll::Ready(3)));
///     svc.barrier();        // every pushed byte scanned
///     (svc.poll(7), svc.poll(9))
/// });
/// assert_eq!(hits.0[0].end, 6);
/// assert_eq!(hits.1[0].end, 3);
/// ```
pub struct FlowService<'a> {
    set: &'a ShardedPatternSet,
    workers: usize,
    config: ServiceConfig,
    shared: Mutex<State<'a>>,
    /// Parked workers wait here; signalled on push, close, shutdown,
    /// and check-in.
    wake: Condvar,
    /// Producers blocked in [`FlowService::push`] (and
    /// [`barrier`](FlowService::barrier)) wait here; signalled when a
    /// worker checks a unit in (bytes were consumed — space freed).
    space: Condvar,
}

impl<'a> FlowService<'a> {
    pub(crate) fn new(
        set: &'a ShardedPatternSet,
        workers: usize,
        config: ServiceConfig,
    ) -> FlowService<'a> {
        FlowService {
            set,
            workers: workers.max(1),
            config,
            shared: Mutex::new(State {
                core: Shared::new(),
                running: false,
                shutdown: false,
                poisoned: false,
                activity: HashMap::new(),
                next_sweep: None,
                evicted: Vec::new(),
            }),
            wake: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// The worker-pool size [`run`](FlowService::run) spawns.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The backpressure/eviction configuration.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    // ---- the serving scope ------------------------------------------

    /// Serves flows for the duration of `producer`: spawns the worker
    /// pool, runs the closure with the service handle, then shuts the
    /// workers down once it returns — after they have drained every
    /// buffered byte. Returns the closure's value.
    ///
    /// The service handle is `Sync`, so the closure may fan pushes out
    /// to its own scoped producer threads. `run` is not reentrant, but
    /// the service can be run again after it returns (flow state,
    /// undrained reports, and evictions persist across runs).
    pub fn run<R>(&self, producer: impl FnOnce(&Self) -> R) -> R {
        {
            let mut st = self.lock();
            assert!(!st.running, "FlowService::run is not reentrant");
            assert!(
                !st.poisoned,
                "FlowService is poisoned: a worker panicked mid-scan and its engine unit is lost"
            );
            st.running = true;
            st.shutdown = false;
        }
        // Reset the lifecycle flags even if the producer (or a worker)
        // panics, so the unwound service is observably not-running.
        let _reset = ResetGuard { svc: self };
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| self.worker_loop());
            }
            // If the producer panics, the guard still flips `shutdown`
            // so the parked workers exit and the scope can join —
            // otherwise the panic would deadlock instead of propagating.
            let stop = StopGuard { svc: self };
            let result = producer(self);
            drop(stop);
            result
        })
    }

    fn worker_loop(&self) {
        let mut st = self.lock();
        loop {
            // Idle sweeps are due-gated at the `idle_timeout` cadence and
            // run on EVERY loop iteration, so sustained load (workers
            // that always find ready work) cannot starve eviction.
            self.evict_idle(&mut st);
            if let Some(mut unit) = st.core.checkout() {
                let flow = unit.flow();
                drop(st);
                // Panic protection, as in the scheduler: settle
                // `in_flight` on unwind — and poison the service, since
                // the unit's engine is lost and its flow can never
                // drain — so siblings and blocked producers panic out
                // instead of deadlocking, letting the scope join.
                let guard = InFlightGuard { svc: self };
                let reports = unit.scan();
                let mut relocked = self.lock();
                relocked.core.check_in(unit, reports);
                std::mem::forget(guard); // settled by check_in
                                         // Scan progress counts as activity: a flow whose
                                         // backlog is still draining is not idle, and its
                                         // (possibly blocked) producer gets a full idle window
                                         // from the drain, not from its last accepted push.
                if self.config.idle_timeout.is_some() {
                    relocked.activity.insert(flow, Instant::now());
                }
                self.wake.notify_all();
                self.space.notify_all();
                st = relocked;
                continue;
            }
            if st.shutdown && st.core.in_flight == 0 && st.core.ready.is_empty() {
                return;
            }
            st = match self.config.idle_timeout {
                // Periodic wake so the due-gated sweep keeps running
                // while the service sits fully idle.
                Some(timeout) => {
                    let (guard, _) = self
                        .wake
                        .wait_timeout(st, timeout)
                        .expect("service lock poisoned");
                    guard
                }
                None => self.wake.wait(st).expect("service lock poisoned"),
            };
        }
    }

    /// Closes every open flow whose last push is older than the idle
    /// timeout. Runs under the lock; due-gated so the sweep costs one
    /// `Instant::now()` comparison per worker loop iteration.
    fn evict_idle(&self, st: &mut MutexGuard<'_, State<'a>>) {
        let Some(timeout) = self.config.idle_timeout else {
            return;
        };
        let now = Instant::now();
        match st.next_sweep {
            Some(due) if now < due => return,
            _ => st.next_sweep = Some(now + timeout),
        }
        let expired: Vec<u64> = st
            .activity
            .iter()
            .filter(|&(_, &at)| now.duration_since(at) >= timeout)
            .map(|(&flow, _)| flow)
            .collect();
        for flow in expired {
            // Only fully-drained open flows are idle: a flow with
            // buffered bytes is still being scanned (and check_in
            // refreshes its activity anyway), and a backpressured
            // producer refreshes activity on every rejected attempt —
            // so eviction never splits a live stream in two.
            match st.core.flows.get(&flow) {
                Some(f) if !f.closed && f.buffered() == 0 => {
                    st.activity.remove(&flow);
                    st.core.close_flow(flow);
                    st.evicted.push(flow);
                    // The drained idle flow finishes immediately; its
                    // engines are freed and a blocked producer may
                    // reopen it.
                    self.space.notify_all();
                }
                Some(f) if !f.closed => {} // backlog draining: not idle
                _ => {
                    st.activity.remove(&flow); // forgotten or already closed
                }
            }
        }
    }

    // ---- producing --------------------------------------------------

    /// Attempts to buffer `chunk` for `flow`, opening the flow on first
    /// use. Returns `Poll::Ready(total)` — the flow's new byte length —
    /// on acceptance, or [`Poll::Pending`] when accepting the chunk
    /// would push the flow's buffered bytes past the configured
    /// [`flow_budget`](crate::ServiceConfig::flow_budget) (or when the
    /// flow is closed/evicted and not yet drained; once drained, the
    /// next push reopens it fresh). On `Pending`, retry after the
    /// workers have consumed — or use the blocking
    /// [`push`](FlowService::push).
    ///
    /// A chunk is always accepted when the flow buffers nothing, so a
    /// chunk larger than the whole budget still makes progress.
    pub fn try_push(&self, flow: u64, chunk: &[u8]) -> Poll<u64> {
        let mut st = self.lock();
        assert!(
            !st.poisoned,
            "FlowService is poisoned: a worker panicked mid-scan, so pending flows can never drain"
        );
        let result = self.try_push_locked(&mut st, flow, chunk);
        if result.is_ready() {
            self.wake.notify_all();
        }
        result
    }

    fn try_push_locked(
        &self,
        st: &mut MutexGuard<'_, State<'a>>,
        flow: u64,
        chunk: &[u8],
    ) -> Poll<u64> {
        let Ok(f) = st.core.open_flow(self.set, flow) else {
            return Poll::Pending; // closed, not yet drained
        };
        let buffered = f.buffered() as usize;
        // A rejected attempt still proves the producer is alive: refresh
        // activity either way, so a flow pinned at its budget by slow
        // consumers is not mistaken for an idle one and evicted
        // mid-stream (which would silently split it in two). Skipped
        // entirely when eviction is off — nothing ever reads the map.
        if self.config.idle_timeout.is_some() {
            st.activity.insert(flow, Instant::now());
        }
        // Empty chunks buffer nothing and are accepted unconditionally.
        if !chunk.is_empty()
            && buffered > 0
            && buffered.saturating_add(chunk.len()) > self.config.flow_budget
        {
            return Poll::Pending;
        }
        let total = st.core.buffer_chunk(flow, chunk);
        Poll::Ready(total)
    }

    /// Buffers `chunk` for `flow`, blocking while the flow is over its
    /// input budget until the workers free space. Returns the flow's
    /// new byte length.
    ///
    /// # Panics
    ///
    /// Panics if it would block with no workers running (outside
    /// [`run`](FlowService::run)) — nothing would ever free the space.
    pub fn push(&self, flow: u64, chunk: &[u8]) -> u64 {
        let mut st = self.lock();
        loop {
            if let Poll::Ready(total) = self.try_push_locked(&mut st, flow, chunk) {
                self.wake.notify_all();
                return total;
            }
            assert!(
                !st.poisoned,
                "FlowService is poisoned: a worker panicked mid-scan, so this flow can never drain"
            );
            assert!(
                st.running,
                "FlowService::push would block forever with no workers running: \
                 drive the service inside FlowService::run()"
            );
            st = self.space.wait(st).expect("service lock poisoned");
        }
    }

    /// Marks `flow` closed: buffered bytes are still scanned, after
    /// which the flow's engines are freed and its `$`-anchored
    /// [`finishing`](FlowService::finishing) set resolves. Reports stay
    /// pollable; pushing the id again after it drains reopens it fresh.
    /// Closing an unknown id is a no-op.
    pub fn close(&self, flow: u64) {
        let mut st = self.lock();
        st.activity.remove(&flow);
        st.core.close_flow(flow);
        self.wake.notify_all();
    }

    /// Blocks until every pushed byte has been consumed by every shard
    /// — a producer-side flush point before polling for a batch of
    /// results. (Without it, `poll` simply returns whatever is merged
    /// so far.)
    ///
    /// # Panics
    ///
    /// Panics if called with work pending and no workers running.
    pub fn barrier(&self) {
        let mut st = self.lock();
        while st.core.pending_bytes() > 0 || st.core.in_flight > 0 {
            assert!(
                !st.poisoned,
                "FlowService is poisoned: a worker panicked mid-scan, so the backlog can never drain"
            );
            assert!(
                st.running,
                "FlowService::barrier would block forever with no workers running: \
                 drive the service inside FlowService::run()"
            );
            st = self.space.wait(st).expect("service lock poisoned");
        }
    }

    // ---- consuming --------------------------------------------------

    /// Drains `flow`'s ordered report queue (stream order: ascending
    /// end, ascending rule within an end) — whatever has been merged so
    /// far; see [`barrier`](FlowService::barrier) for a flush point.
    pub fn poll(&self, flow: u64) -> Vec<SetMatch> {
        self.lock().core.poll_flow(flow)
    }

    /// Drains `flow`'s finishing set: the `$`-anchored matches ending
    /// exactly at the flow's final byte, resolved when the closed (or
    /// evicted) flow finished draining.
    pub fn finishing(&self, flow: u64) -> Vec<SetMatch> {
        self.lock().core.finishing_flow(flow)
    }

    /// Drains the global sink: every merged match of every flow, in
    /// merge order.
    pub fn drain_global(&self) -> Vec<FlowMatch> {
        self.lock().core.drain_sink()
    }

    /// Drains the ids of flows the idle sweep has evicted since the
    /// last call. Evicted flows behave exactly like explicitly
    /// [`close`](FlowService::close)d ones.
    pub fn evictions(&self) -> Vec<u64> {
        std::mem::take(&mut self.lock().evicted)
    }

    /// Number of flows currently tracked (open, or closed with
    /// undrained reports).
    pub fn flow_count(&self) -> usize {
        self.lock().core.flows.len()
    }

    /// Bytes pushed to `flow` so far (`None` for unknown flows).
    pub fn flow_len(&self, flow: u64) -> Option<u64> {
        self.lock().core.flow_len(flow)
    }

    /// Total bytes buffered but not yet consumed by every shard.
    pub fn pending_bytes(&self) -> u64 {
        self.lock().core.pending_bytes()
    }

    fn lock(&self) -> MutexGuard<'_, State<'a>> {
        self.shared.lock().expect("service lock poisoned")
    }
}

impl std::fmt::Debug for FlowService<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock();
        write!(
            f,
            "FlowService({} flows, {} shards, {} workers, running = {}, budget = {} B)",
            st.core.flows.len(),
            self.set.shard_count(),
            self.workers,
            st.running,
            self.config.flow_budget
        )
    }
}

/// Flips `shutdown` when the producer closure ends (normally or by
/// panic) so parked workers drain and exit, letting the scope join.
struct StopGuard<'s, 'a> {
    svc: &'s FlowService<'a>,
}

impl Drop for StopGuard<'_, '_> {
    fn drop(&mut self) {
        let mut st = self
            .svc
            .shared
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        st.shutdown = true;
        self.svc.wake.notify_all();
        self.svc.space.notify_all();
    }
}

/// Clears the lifecycle flags once the scope has joined (normally or
/// while unwinding a propagated panic).
struct ResetGuard<'s, 'a> {
    svc: &'s FlowService<'a>,
}

impl Drop for ResetGuard<'_, '_> {
    fn drop(&mut self) {
        let mut st = self
            .svc
            .shared
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        st.running = false;
        st.shutdown = false;
    }
}

/// Unwind protection for a checked-out unit (see the scheduler's
/// equivalent): if the unlocked scan panics, the unit's engine is lost
/// and its flow can never drain, so the drop settles `in_flight`,
/// marks the service **poisoned**, and wakes both condvars — blocked
/// producers then panic out of their waits (instead of re-blocking on
/// a backlog that will never clear) and the scope joins, propagating
/// the original panic out of [`FlowService::run`].
struct InFlightGuard<'s, 'a> {
    svc: &'s FlowService<'a>,
}

impl Drop for InFlightGuard<'_, '_> {
    fn drop(&mut self) {
        let mut st = self
            .svc
            .shared
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        st.core.in_flight -= 1;
        st.poisoned = true;
        self.svc.wake.notify_all();
        self.svc.space.notify_all();
    }
}
