//! [`PatternSet`]: a whole ruleset compiled into one shared machine image
//! and one software engine.
//!
//! The paper's evaluation operates on rulesets (Snort, Suricata,
//! Protomata, SpamAssassin, ClamAV — Table 1), and deployments of this
//! class of matcher always compile the full set into a single automaton
//! scanned once per input stream. `PatternSet` is that subsystem:
//!
//! * each pattern runs the ordinary per-pattern pipeline (parse →
//!   analysis → module selection), so the counter/bit-vector decisions of
//!   §4.2 are reused unchanged;
//! * the per-pattern MNRL networks merge into **one** network whose
//!   reporting nodes carry per-pattern report ids;
//! * the per-pattern NCAs merge into **one** shared automaton executed by
//!   the batched [`MultiEngine`](recama_nca::MultiEngine) (shared
//!   byte-class alphabet, dense state frontiers);
//! * [`PatternSet::stream`] processes traffic in chunks without
//!   re-scanning — the ingestion shape of a production deployment.

use crate::Pattern;
use recama_compiler::{compile, CompileOptions, CompileOutput};
use recama_mnrl::MnrlNetwork;
use recama_nca::{CompilePlan, MultiEngine, MultiNca, StateId};
use recama_syntax::ParseError;
use std::fmt;

/// A match reported by a [`PatternSet`]: pattern `pattern` (index into
/// the compiled set) matched ending at 1-based byte offset `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetMatch {
    /// Index of the matching pattern in the set.
    pub pattern: usize,
    /// 1-based end offset of the match.
    pub end: usize,
}

/// Error from [`PatternSet::compile_many`]: pattern `index` failed.
#[derive(Debug)]
pub struct SetCompileError {
    /// Index of the offending pattern in the input list.
    pub index: usize,
    /// The underlying parse/support error.
    pub error: ParseError,
}

impl fmt::Display for SetCompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern #{}: {}", self.index, self.error)
    }
}

impl std::error::Error for SetCompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// A compiled ruleset: one merged extended-MNRL network and one shared
/// software engine for the entire set.
///
/// Mirrors [`Pattern`]'s API at set granularity: [`compile_many`] /
/// [`find_ends`] / [`stream`] / [`network`] / [`hardware`].
///
/// [`compile_many`]: PatternSet::compile_many
/// [`find_ends`]: PatternSet::find_ends
/// [`stream`]: PatternSet::stream
/// [`network`]: PatternSet::network
/// [`hardware`]: PatternSet::hardware
///
/// # Examples
///
/// ```
/// use recama::PatternSet;
///
/// let set = PatternSet::compile_many(&["ab{2,3}c", "xyz", "k\\d{4}"]).unwrap();
/// let matches = set.find_ends(b"zabbc..xyz..k1234");
/// let hits: Vec<(usize, usize)> = matches.iter().map(|m| (m.pattern, m.end)).collect();
/// assert_eq!(hits, vec![(0, 5), (1, 10), (2, 17)]);
/// // One merged network with per-pattern report ids:
/// assert_eq!(set.network().report_ids(), vec![0, 1, 2]);
/// ```
#[derive(Debug)]
pub struct PatternSet {
    sources: Vec<String>,
    outputs: Vec<CompileOutput>,
    anchored_end: Vec<bool>,
    network: MnrlNetwork,
    multi: MultiNca,
}

impl PatternSet {
    /// Compiles all `patterns` with default options.
    ///
    /// # Errors
    ///
    /// Fails on the first pattern that does not parse (or is outside the
    /// supported fragment), identifying its index. Use
    /// [`PatternSet::compile_filtered`] to skip bad patterns instead.
    pub fn compile_many<S: AsRef<str>>(patterns: &[S]) -> Result<PatternSet, SetCompileError> {
        PatternSet::compile_many_with(patterns, &CompileOptions::default())
    }

    /// Compiles all `patterns` with explicit [`CompileOptions`].
    ///
    /// # Errors
    ///
    /// Same as [`PatternSet::compile_many`].
    pub fn compile_many_with<S: AsRef<str>>(
        patterns: &[S],
        options: &CompileOptions,
    ) -> Result<PatternSet, SetCompileError> {
        let mut accepted = Vec::with_capacity(patterns.len());
        for (index, p) in patterns.iter().enumerate() {
            match recama_syntax::parse(p.as_ref()) {
                Ok(parsed) => accepted.push((p.as_ref().to_string(), parsed)),
                Err(error) => return Err(SetCompileError { index, error }),
            }
        }
        Ok(PatternSet::build(accepted, options))
    }

    /// Compiles the parseable subset of `patterns`, returning the set and
    /// the rejected `(index, error)` pairs — the tolerant entry point for
    /// real rulesets, which always contain out-of-fragment rules
    /// (Table 1's unsupported rows).
    pub fn compile_filtered<S: AsRef<str>>(
        patterns: &[S],
        options: &CompileOptions,
    ) -> (PatternSet, Vec<(usize, ParseError)>) {
        let mut accepted = Vec::with_capacity(patterns.len());
        let mut rejected = Vec::new();
        for (index, p) in patterns.iter().enumerate() {
            match recama_syntax::parse(p.as_ref()) {
                Ok(parsed) => accepted.push((p.as_ref().to_string(), parsed)),
                Err(error) => rejected.push((index, error)),
            }
        }
        (PatternSet::build(accepted, options), rejected)
    }

    fn build(
        accepted: Vec<(String, recama_syntax::Parsed)>,
        options: &CompileOptions,
    ) -> PatternSet {
        let mut sources = Vec::with_capacity(accepted.len());
        let mut outputs = Vec::with_capacity(accepted.len());
        let mut anchored_end = Vec::with_capacity(accepted.len());
        let mut network = MnrlNetwork::new("pattern-set");
        for (i, (source, parsed)) in accepted.into_iter().enumerate() {
            let out = compile(&parsed.for_stream(), options);
            network.merge_as_rule(&out.network, &format!("r{i}_"), i as u32);
            sources.push(source);
            anchored_end.push(parsed.anchored_end);
            outputs.push(out);
        }
        let parts: Vec<(&recama_nca::Nca, CompilePlan)> = outputs
            .iter()
            .map(|out| {
                let analysis = &out.analysis;
                let plan = CompilePlan::with_unambiguous_states(&out.nca, |q: StateId| {
                    analysis.state_unambiguous(q)
                });
                (&out.nca, plan)
            })
            .collect();
        let multi = MultiNca::merge(&parts);
        PatternSet {
            sources,
            outputs,
            anchored_end,
            network,
            multi,
        }
    }

    /// Number of compiled patterns.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// The source text of pattern `i`.
    pub fn pattern(&self, i: usize) -> &str {
        &self.sources[i]
    }

    /// Per-pattern compiler outputs (module decisions, analyses, NCAs),
    /// indexed like the patterns.
    pub fn outputs(&self) -> &[CompileOutput] {
        &self.outputs
    }

    /// The merged extended-MNRL network for the whole set. Reporting
    /// nodes of pattern `i` carry `report_id = i`.
    pub fn network(&self) -> &MnrlNetwork {
        &self.network
    }

    /// The merged shared automaton (one `q0`, shared byte-class
    /// alphabet, per-pattern state ranges).
    pub fn multi(&self) -> &MultiNca {
        &self.multi
    }

    /// All matches in `haystack`, in stream order (ascending end offset).
    ///
    /// Semantics per pattern match [`Pattern::find_ends`]: search form
    /// `Σ*·r` unless `^`-anchored, one report per (pattern, end), and a
    /// trailing `$` keeps only that pattern's matches ending at the end
    /// of the haystack.
    pub fn find_ends(&self, haystack: &[u8]) -> Vec<SetMatch> {
        let mut engine = self.multi.engine();
        engine
            .match_reports(haystack)
            .into_iter()
            .filter(|r| !self.anchored_end[r.pattern as usize] || r.end == haystack.len() as u64)
            .map(|r| SetMatch {
                pattern: r.pattern as usize,
                end: r.end as usize,
            })
            .collect()
    }

    /// Whether any pattern matches in `haystack`.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        !self.find_ends(haystack).is_empty()
    }

    /// A resumable streaming matcher: feed traffic in chunks and drain
    /// reports incrementally, without re-scanning previous chunks.
    ///
    /// Note that a stream has no "end", so trailing-`$` anchors are not
    /// applied: `$`-anchored patterns report every candidate end offset.
    ///
    /// # Examples
    ///
    /// ```
    /// use recama::PatternSet;
    ///
    /// let set = PatternSet::compile_many(&["ab{2}c"]).unwrap();
    /// let mut stream = set.stream();
    /// // The match straddles the chunk boundary.
    /// assert!(stream.feed(b"..ab").next().is_none());
    /// let hits: Vec<_> = stream.feed(b"bc..").collect();
    /// assert_eq!(hits.len(), 1);
    /// assert_eq!((hits[0].pattern, hits[0].end), (0, 6));
    /// ```
    pub fn stream(&self) -> SetStream<'_> {
        SetStream {
            engine: self.multi.engine(),
            buf: Vec::new(),
        }
    }

    /// A hardware simulator for the merged network; its report vector
    /// attributes events to patterns via the stamped report ids.
    pub fn hardware(&self) -> recama_hw::HwSimulator<'_> {
        recama_hw::HwSimulator::new(&self.network)
    }
}

/// A resumable chunk-at-a-time matcher over a [`PatternSet`]; create one
/// with [`PatternSet::stream`].
pub struct SetStream<'a> {
    engine: MultiEngine<'a>,
    buf: Vec<recama_nca::MultiReport>,
}

impl SetStream<'_> {
    /// Consumes `chunk` and returns the matches it completed, in stream
    /// order. End offsets are 1-based and *absolute* (counted from the
    /// start of the stream, across all chunks fed so far).
    pub fn feed(&mut self, chunk: &[u8]) -> impl Iterator<Item = SetMatch> + '_ {
        self.buf.clear();
        self.engine.feed_into(chunk, &mut self.buf);
        self.buf.iter().map(|r| SetMatch {
            pattern: r.pattern as usize,
            end: r.end as usize,
        })
    }

    /// Total bytes consumed since creation (or the last reset).
    pub fn position(&self) -> u64 {
        self.engine.position()
    }

    /// Restarts the stream at position 0.
    pub fn reset(&mut self) {
        self.engine.reset();
    }
}

impl fmt::Debug for SetStream<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SetStream(position = {})", self.position())
    }
}

/// [`Pattern`]-compatibility helpers on the set.
impl PatternSet {
    /// Compiles each pattern independently (the loop-over-patterns
    /// baseline the shared engine is benchmarked against).
    ///
    /// # Errors
    ///
    /// Fails like [`PatternSet::compile_many`] on the first bad pattern.
    pub fn compile_baseline<S: AsRef<str>>(
        patterns: &[S],
    ) -> Result<Vec<Pattern>, SetCompileError> {
        patterns
            .iter()
            .enumerate()
            .map(|(index, p)| {
                Pattern::compile(p.as_ref()).map_err(|error| SetCompileError { index, error })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrors_per_pattern_find_ends() {
        let patterns = ["ab{2,3}c", "a{3}", "cab", "x[yz]{2}"];
        let set = PatternSet::compile_many(&patterns).unwrap();
        let baseline = PatternSet::compile_baseline(&patterns).unwrap();
        let haystack = b"abbc.aaa.cab.xyz.abbbc";
        let mut expected: Vec<SetMatch> = Vec::new();
        for (pi, p) in baseline.iter().enumerate() {
            for end in p.find_ends(haystack) {
                expected.push(SetMatch { pattern: pi, end });
            }
        }
        expected.sort();
        let mut got = set.find_ends(haystack);
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn compile_many_reports_offending_index() {
        let err = PatternSet::compile_many(&["ok", "bad(", "ok2"]).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.to_string().contains("#1"));
    }

    #[test]
    fn compile_filtered_skips_bad_patterns() {
        let (set, rejected) =
            PatternSet::compile_filtered(&["a{2}", r"(x)\1", "b{3}"], &CompileOptions::default());
        assert_eq!(set.len(), 2);
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].0, 1);
        assert!(set.is_match(b"bbb"));
    }

    #[test]
    fn network_is_merged_and_valid_with_report_ids() {
        let set = PatternSet::compile_many(&["^a{30}", "[xy]{5}z"]).unwrap();
        assert!(
            set.network().validate().is_empty(),
            "{:?}",
            set.network().validate()
        );
        assert_eq!(set.network().report_ids(), vec![0, 1]);
        // Module decisions surface per pattern.
        assert_eq!(set.outputs().len(), 2);
    }

    #[test]
    fn dollar_anchor_filters_set_matches() {
        let set = PatternSet::compile_many(&["ab$", "ab"]).unwrap();
        let got = set.find_ends(b"ab.ab");
        // "ab$" only at the final position; "ab" at both.
        assert_eq!(
            got,
            vec![
                SetMatch { pattern: 1, end: 2 },
                SetMatch { pattern: 0, end: 5 },
                SetMatch { pattern: 1, end: 5 },
            ]
        );
    }

    #[test]
    fn stream_positions_are_absolute() {
        let set = PatternSet::compile_many(&["kk"]).unwrap();
        let mut stream = set.stream();
        assert_eq!(stream.feed(b"....").count(), 0);
        let hits: Vec<SetMatch> = stream.feed(b"kk").collect();
        assert_eq!(hits, vec![SetMatch { pattern: 0, end: 6 }]);
        assert_eq!(stream.position(), 6);
        stream.reset();
        let hits: Vec<SetMatch> = stream.feed(b"kk").collect();
        assert_eq!(hits, vec![SetMatch { pattern: 0, end: 2 }]);
    }

    #[test]
    fn hardware_simulator_attributes_reports() {
        let set = PatternSet::compile_many(&["^ab{2}c", "xyz"]).unwrap();
        let mut hw = set.hardware();
        let ends = hw.match_ends(b"abbc..xyz");
        assert_eq!(ends, vec![4, 9]);
    }

    #[test]
    fn empty_set_is_well_formed() {
        let set = PatternSet::compile_many::<&str>(&[]).unwrap();
        assert!(set.is_empty());
        assert!(set.find_ends(b"anything").is_empty());
        assert!(set.network().validate().is_empty());
    }
}
