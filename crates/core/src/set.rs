//! [`PatternSet`] / [`ShardedPatternSet`]: whole rulesets compiled into
//! shared machine images and software engines.
//!
//! The paper's evaluation operates on rulesets (Snort, Suricata,
//! Protomata, SpamAssassin, ClamAV — Table 1), and deployments of this
//! class of matcher always compile the full set into shared automata
//! scanned once per input stream. Two deployment shapes live here:
//!
//! * [`PatternSet`] — ONE merged network + ONE batched engine, the shape
//!   that fits a single CAMA bank;
//! * [`ShardedPatternSet`] — the banked shape: a
//!   [`ShardPlan`](recama_hw::ShardPlan) partitions the rules into shards
//!   whose sub-networks each fit one bank
//!   ([`ShardPolicy`](recama_hw::ShardPolicy), default = one bank's
//!   capacity), one [`MultiNca`](recama_nca::MultiNca) per shard shares a
//!   single byte-class alphabet computed once over the whole set, and
//!   [`ShardedPatternSet::find_ends`] scans the shards in parallel with
//!   scoped threads, recombining reports with an ordered merge that keeps
//!   the output **byte-identical** to the unsharded scan.
//!
//! `PatternSet` is simply the single-shard (`N = 1`) case of the sharded
//! machinery — same compile front-end, same per-pattern pipeline (parse →
//! analysis → module selection), same report semantics.

use crate::engine::{CompileError, CompilePhase};
use crate::prefilter::{ChunkAction, PrefilterMode, PrefilterState, SetPrefilter};
use crate::{Engine, MatchSpan, Pattern};
use recama_compiler::{compile, CompileOptions, CompileOutput};
use recama_hw::{RuleCost, ShardPlan, ShardPolicy};
use recama_mnrl::MnrlNetwork;
use recama_nca::{
    CompilePlan, MultiNca, MultiReport, Nca, ScanMode, ShardStream, ShardedMulti, StateId,
    TokenSetEngine,
};
use recama_syntax::{ParseError, Parsed};
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// A match reported by a pattern set: pattern `pattern` (index into the
/// compiled set) matched ending at 1-based byte offset `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetMatch {
    /// Index of the matching pattern in the set.
    pub pattern: usize,
    /// 1-based end offset of the match.
    pub end: usize,
}

/// A located match of a pattern set: pattern `pattern` matched the byte
/// span `[start, end)` — the set-level analogue of [`MatchSpan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetSpan {
    /// Index of the matching pattern in the set.
    pub pattern: usize,
    /// Start offset (inclusive), earliest-start (leftmost-longest flavor).
    pub start: usize,
    /// End offset (exclusive).
    pub end: usize,
}

impl SetSpan {
    /// The span as a [`MatchSpan`].
    pub fn span(&self) -> MatchSpan {
        MatchSpan {
            start: self.start,
            end: self.end,
        }
    }
}

/// The old name of the ruleset compile failure type. [`CompileError`]
/// additionally carries the failing rule's source text and the pipeline
/// phase; the `index` and `error` fields this name always had are still
/// there.
#[deprecated(
    since = "0.2.0",
    note = "use recama::CompileError (from Engine::builder)"
)]
pub type SetCompileError = CompileError;

/// A compiled ruleset partitioned into bank-sized shards: one merged
/// extended-MNRL network and one shared software automaton **per shard**,
/// with a single byte-class alphabet shared by every shard.
///
/// Mirrors [`PatternSet`]'s API at set granularity — [`compile_many`] /
/// [`find_ends`] / [`find_spans`] / [`stream`] / [`hardware`] — and its
/// report semantics exactly: for any shard plan (including the trivial
/// one), [`find_ends`] returns the same reports in the same order as the
/// unsharded [`PatternSet::find_ends`].
///
/// [`compile_many`]: ShardedPatternSet::compile_many
/// [`find_ends`]: ShardedPatternSet::find_ends
/// [`find_spans`]: ShardedPatternSet::find_spans
/// [`stream`]: ShardedPatternSet::stream
/// [`hardware`]: ShardedPatternSet::hardware
///
/// New code should reach this type through
/// [`Engine::builder`](crate::Engine::builder) (every compile knob lives
/// there); the `compile_*` constructors here are deprecated wrappers.
///
/// # Examples
///
/// ```
/// use recama::hw::ShardPolicy;
/// use recama::Engine;
///
/// let set = Engine::builder()
///     .patterns(["ab{2,3}c", "xyz", "k\\d{4}"])
///     .shard_policy(ShardPolicy::Fixed(2))
///     .build()
///     .unwrap()
///     .into_set();
/// assert_eq!(set.shard_count(), 2);
/// // Reports are identical to the unsharded PatternSet, in the same order.
/// let matches = set.find_ends(b"zabbc..xyz..k1234");
/// let hits: Vec<(usize, usize)> = matches.iter().map(|m| (m.pattern, m.end)).collect();
/// assert_eq!(hits, vec![(0, 5), (1, 10), (2, 17)]);
/// // Each shard is its own machine image with global report ids.
/// assert_eq!(set.network(0).report_ids(), vec![0, 1]);
/// assert_eq!(set.network(1).report_ids(), vec![2]);
/// ```
#[derive(Debug)]
pub struct ShardedPatternSet {
    sources: Vec<String>,
    parsed: Vec<Parsed>,
    outputs: Vec<CompileOutput>,
    anchored_end: Vec<bool>,
    plan: ShardPlan,
    /// One merged machine image per shard (reporting nodes carry global
    /// pattern ids).
    networks: Vec<MnrlNetwork>,
    multi: ShardedMulti,
    /// How scans and streams walk input bytes (exact NCA vs. hybrid
    /// lazy-DFA overlay).
    scan_mode: ScanMode,
    /// The literal prefilter (`None` under [`PrefilterMode::Off`]):
    /// per-shard Aho-Corasick filters over the shared alphabet that
    /// scans, streams, and the serving layers consult before running
    /// the automata.
    prefilter: Option<SetPrefilter>,
    /// Reversed automata for span location, built per pattern on first
    /// use (repeated `find_spans` calls must not re-run Glushkov).
    reversed: Vec<OnceLock<Nca>>,
}

impl ShardedPatternSet {
    /// Compiles all `patterns` with default options under the default
    /// policy (one CAMA bank per shard).
    ///
    /// # Errors
    ///
    /// Fails on the first pattern that does not parse (or is outside the
    /// supported fragment), identifying its index. Use
    /// [`ShardedPatternSet::compile_filtered`] to skip bad patterns.
    #[deprecated(since = "0.2.0", note = "use Engine::builder().patterns(..).build()")]
    pub fn compile_many<S: AsRef<str>>(patterns: &[S]) -> Result<ShardedPatternSet, CompileError> {
        Engine::builder()
            .patterns(patterns)
            .build()
            .map(Engine::into_set)
    }

    /// Compiles all `patterns` with explicit [`CompileOptions`] and
    /// [`ShardPolicy`].
    ///
    /// # Errors
    ///
    /// Same as [`ShardedPatternSet::compile_many`].
    #[deprecated(
        since = "0.2.0",
        note = "use Engine::builder().patterns(..).options(..).shard_policy(..).build()"
    )]
    pub fn compile_many_with<S: AsRef<str>>(
        patterns: &[S],
        options: &CompileOptions,
        policy: ShardPolicy,
    ) -> Result<ShardedPatternSet, CompileError> {
        Engine::builder()
            .patterns(patterns)
            .options(*options)
            .shard_policy(policy)
            .build()
            .map(Engine::into_set)
    }

    /// Compiles the parseable subset of `patterns`, returning the set and
    /// the rejected `(index, error)` pairs — the tolerant entry point for
    /// real rulesets, which always contain out-of-fragment rules
    /// (Table 1's unsupported rows).
    #[deprecated(
        since = "0.2.0",
        note = "use Engine::builder().lossy(true) and Engine::skipped()"
    )]
    pub fn compile_filtered<S: AsRef<str>>(
        patterns: &[S],
        options: &CompileOptions,
        policy: ShardPolicy,
    ) -> (ShardedPatternSet, Vec<(usize, ParseError)>) {
        let engine = Engine::builder()
            .patterns(patterns)
            .options(*options)
            .shard_policy(policy)
            .lossy(true)
            .build()
            .expect("lossy builds are infallible");
        let rejected = engine
            .skipped()
            .iter()
            .map(|s| (s.index, s.error.clone()))
            .collect();
        (engine.into_set(), rejected)
    }

    pub(crate) fn build(
        accepted: Vec<(String, Parsed)>,
        options: &CompileOptions,
        policy: ShardPolicy,
        scan_mode: ScanMode,
        prefilter_mode: PrefilterMode,
    ) -> ShardedPatternSet {
        let mut sources = Vec::with_capacity(accepted.len());
        let mut parsed_list = Vec::with_capacity(accepted.len());
        let mut outputs = Vec::with_capacity(accepted.len());
        let mut anchored_end = Vec::with_capacity(accepted.len());
        for (source, parsed) in accepted {
            let out = compile(&parsed.for_stream(), options);
            sources.push(source);
            anchored_end.push(parsed.anchored_end);
            parsed_list.push(parsed);
            outputs.push(out);
        }

        // Bank-aware partition, costed with the mapper's own estimates.
        // The trivial policy never looks at costs, so skip the per-rule
        // placements there (PatternSet compiles route through it).
        let plan = if policy == ShardPolicy::Single {
            ShardPlan::single(outputs.len())
        } else {
            let costs: Vec<RuleCost> = outputs
                .iter()
                .map(|out| RuleCost::of_network(&out.network))
                .collect();
            ShardPlan::plan(&costs, policy)
        };

        // One machine image per shard; reporting nodes carry the *global*
        // pattern index, so hardware reports attribute without remapping.
        let networks: Vec<MnrlNetwork> = plan
            .shards()
            .iter()
            .enumerate()
            .map(|(si, members)| {
                let name = if plan.shard_count() == 1 {
                    "pattern-set".to_string()
                } else {
                    format!("pattern-set-shard{si}")
                };
                recama_compiler::merge_rule_networks(
                    &name,
                    members.iter().map(|&g| (g, g as u32, &outputs[g].network)),
                )
            })
            .collect();

        // One shared automaton per shard over a single union alphabet.
        // The optimized plan keeps the analysis-informed SingleValue
        // selection and adds counting-set queues for eligible ambiguous
        // bounded repeats (O(1) increments + O(1) quiescence for the
        // hybrid overlay).
        let parts: Vec<(&Nca, CompilePlan)> = outputs
            .iter()
            .map(|out| {
                let analysis = &out.analysis;
                let plan =
                    CompilePlan::optimized(&out.nca, |q: StateId| analysis.state_unambiguous(q));
                (&out.nca, plan)
            })
            .collect();
        let multi = ShardedMulti::merge(&parts, plan.shards());

        // Required-literal extraction over the raw rule ASTs, one AC
        // filter per shard, over the same alphabet the engines index
        // with (singleton predicates get singleton classes, so the
        // class-indexed filter is exact on extracted literals).
        let prefilter = match prefilter_mode {
            PrefilterMode::On => Some(SetPrefilter::build(
                &parsed_list,
                plan.shards(),
                multi.alphabet().clone(),
            )),
            PrefilterMode::Off => None,
        };

        let reversed = (0..sources.len()).map(|_| OnceLock::new()).collect();
        ShardedPatternSet {
            sources,
            parsed: parsed_list,
            outputs,
            anchored_end,
            plan,
            networks,
            multi,
            scan_mode,
            prefilter,
            reversed,
        }
    }

    /// Number of compiled patterns.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// The source text of pattern `i`.
    pub fn pattern(&self, i: usize) -> &str {
        &self.sources[i]
    }

    /// Per-pattern compiler outputs (module decisions, analyses, NCAs),
    /// indexed like the patterns.
    pub fn outputs(&self) -> &[CompileOutput] {
        &self.outputs
    }

    /// Number of shards (≥ 1; the empty set compiles to one empty shard).
    pub fn shard_count(&self) -> usize {
        self.networks.len()
    }

    /// The shard plan (which pattern lives in which shard).
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Global pattern indices of shard `shard`, ascending.
    pub fn shard_members(&self, shard: usize) -> &[usize] {
        self.plan.members(shard)
    }

    /// The merged extended-MNRL network of shard `shard`. Reporting nodes
    /// of pattern `i` carry `report_id = i` (global numbering).
    pub fn network(&self, shard: usize) -> &MnrlNetwork {
        &self.networks[shard]
    }

    /// All per-shard machine images.
    pub fn networks(&self) -> &[MnrlNetwork] {
        &self.networks
    }

    /// The sharded automata (one merged `MultiNca` per shard, shared
    /// byte-class alphabet).
    pub fn multi(&self) -> &ShardedMulti {
        &self.multi
    }

    /// How this set's scans and streams walk input bytes (set at build
    /// time via [`EngineBuilder::scan_mode`](crate::EngineBuilder)).
    pub fn scan_mode(&self) -> ScanMode {
        self.scan_mode
    }

    /// Whether this set consults the literal prefilter (set at build
    /// time via [`EngineBuilder::prefilter`](crate::EngineBuilder)).
    pub fn prefilter_mode(&self) -> PrefilterMode {
        if self.prefilter.is_some() {
            PrefilterMode::On
        } else {
            PrefilterMode::Off
        }
    }

    /// Number of rules with no usable required literal (their shards
    /// scan every byte). 0 under [`PrefilterMode::Off`].
    pub fn always_on_rules(&self) -> usize {
        self.prefilter
            .as_ref()
            .map_or(0, SetPrefilter::always_on_rules)
    }

    /// The compiled literal prefilter, if the set was built with one.
    pub(crate) fn prefilter(&self) -> Option<&SetPrefilter> {
        self.prefilter.as_ref()
    }

    /// One [`ShardStream`] per shard in this set's [`ScanMode`] — the
    /// unit the flow scheduler checks out.
    pub(crate) fn shard_streams(&self) -> Vec<ShardStream<'_>> {
        self.multi.shard_streams_with(self.scan_mode)
    }

    /// One detached [`ShardStreamState`] per shard — the owned form a
    /// `'static` flow table parks between scans (see
    /// [`ServiceHandle`](crate::ServiceHandle)).
    pub(crate) fn shard_stream_states(&self) -> Vec<recama_nca::ShardStreamState> {
        self.shard_streams()
            .into_iter()
            .map(ShardStream::into_state)
            .collect()
    }

    /// Reattaches a detached per-shard scan state to this set's automata
    /// (the inverse of [`ShardStream::into_state`]).
    pub(crate) fn resume_shard_stream(
        &self,
        state: recama_nca::ShardStreamState,
    ) -> ShardStream<'_> {
        self.multi.resume_shard_stream(state)
    }

    /// All matches in `haystack`, in stream order (ascending end offset,
    /// ascending pattern within one offset) — byte-identical to
    /// [`PatternSet::find_ends`] on the same patterns, for any shard
    /// plan. Large haystacks are scanned one scoped thread per shard;
    /// small ones sequentially (thread spawn would cost more than the
    /// scan).
    ///
    /// Semantics per pattern match [`Pattern::find_ends`]: search form
    /// `Σ*·r` unless `^`-anchored, one report per (pattern, end), and a
    /// trailing `$` keeps only that pattern's matches ending at the end
    /// of the haystack.
    pub fn find_ends(&self, haystack: &[u8]) -> Vec<SetMatch> {
        let n = self.multi.shard_count();
        if n <= 1 {
            return self.scan_shard(0, haystack);
        }
        let per_shard: Vec<Vec<SetMatch>> = if haystack.len() >= PARALLEL_MIN_BYTES {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n)
                    .map(|si| scope.spawn(move || self.scan_shard(si, haystack)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard scan panicked"))
                    .collect()
            })
        } else {
            (0..n).map(|si| self.scan_shard(si, haystack)).collect()
        };
        let mut out = Vec::with_capacity(per_shard.iter().map(|v| v.len()).sum());
        merge_ordered_by(&per_shard, |_, m| m, &mut out);
        out
    }

    /// Scans one shard sequentially, translating local pattern indices to
    /// global ones and applying the `$`-anchor filter. The per-shard
    /// engine emits reports sorted by `(end, local pattern)`; ascending
    /// members make that `(end, global pattern)` order.
    fn scan_shard(&self, shard: usize, haystack: &[u8]) -> Vec<SetMatch> {
        // Block-mode prefilter gate: a match is contained in the
        // haystack, so a haystack without any required literal cannot
        // contain one.
        if let Some(filter) = self.prefilter.as_ref().and_then(|p| p.shard(shard)) {
            let alphabet = self.prefilter.as_ref().expect("checked above").alphabet();
            if !filter.contains(alphabet, haystack) {
                return Vec::new();
            }
        }
        let reports = match self.scan_mode {
            ScanMode::Nca => self.multi.shard(shard).engine().match_reports(haystack),
            ScanMode::Hybrid { state_budget } => self
                .multi
                .shard(shard)
                .hybrid_engine(state_budget)
                .match_reports(haystack),
        };
        reports
            .into_iter()
            .map(|r| SetMatch {
                pattern: self.multi.global_pattern(shard, r.pattern) as usize,
                end: r.end as usize,
            })
            .filter(|m| !self.anchored_end[m.pattern] || m.end == haystack.len())
            .collect()
    }

    /// Whether any pattern matches in `haystack`.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        !self.find_ends(haystack).is_empty()
    }

    /// Locates full match spans per pattern: for every reported match
    /// end, the matching pattern's *reversed* automaton runs backward
    /// from the end to the earliest start (leftmost-longest flavor), as
    /// in [`Pattern::find_spans`]. Reversed automata are built lazily per
    /// pattern and cached for the set's lifetime.
    pub fn find_spans(&self, haystack: &[u8]) -> Vec<SetSpan> {
        let matches = self.find_ends(haystack);
        if matches.is_empty() {
            return Vec::new();
        }
        // One backward engine per distinct pattern, reused across ends.
        let mut engines: HashMap<usize, TokenSetEngine<'_>> = HashMap::new();
        matches
            .into_iter()
            .map(|m| {
                let engine = engines
                    .entry(m.pattern)
                    .or_insert_with(|| TokenSetEngine::new(self.reversed_nca(m.pattern)));
                SetSpan {
                    pattern: m.pattern,
                    start: crate::earliest_start(engine, haystack, m.end),
                    end: m.end,
                }
            })
            .collect()
    }

    /// The reversed automaton of pattern `i`, built on first use.
    fn reversed_nca(&self, i: usize) -> &Nca {
        self.reversed[i].get_or_init(|| Nca::from_regex(&self.parsed[i].regex.reverse()))
    }

    /// A resumable streaming matcher holding one engine state per shard:
    /// feed traffic in chunks and drain reports incrementally, without
    /// re-scanning previous chunks. Large chunks are fanned out to the
    /// shard engines on scoped threads.
    ///
    /// Note that a stream has no "end" until [`finish`] declares one, so
    /// trailing-`$` anchors are not applied during [`feed`]: `$`-anchored
    /// patterns report every candidate end offset (same contract as
    /// [`PatternSet::stream`]). Call [`finish`] at end-of-stream to learn
    /// which `$`-anchored matches actually end on the final byte.
    ///
    /// [`feed`]: ShardedSetStream::feed
    /// [`finish`]: ShardedSetStream::finish
    pub fn stream(&self) -> ShardedSetStream<'_> {
        ShardedSetStream {
            shards: self.shard_streams(),
            bufs: vec![Vec::new(); self.multi.shard_count()],
            merged: Vec::new(),
            dollar: DollarTracker::new(&self.anchored_end),
            prefilter: self.prefilter.as_ref(),
            pre: vec![PrefilterState::default(); self.multi.shard_count()],
            tail: Vec::new(),
        }
    }

    /// Whether pattern `i` carries a trailing-`$` anchor (one-shot scans
    /// keep only its matches ending at the end of the haystack).
    pub(crate) fn anchored_end(&self) -> &[bool] {
        &self.anchored_end
    }

    /// A hardware simulator for shard `shard`'s machine image; its report
    /// vector attributes events to patterns via the stamped (global)
    /// report ids.
    pub fn hardware(&self, shard: usize) -> recama_hw::HwSimulator<'_> {
        recama_hw::HwSimulator::new(&self.networks[shard])
    }
}

/// Merges per-shard report lists into one list sorted by `(end,
/// pattern)` — the order the unsharded engine emits. `translate` maps a
/// shard-local entry to its global report; translated lists must arrive
/// already sorted by `(end, pattern)` (guaranteed by
/// [`MultiEngine`](recama_nca::MultiEngine)'s within-step ordering
/// contract plus ascending shard members).
fn merge_ordered_by<T: Copy>(
    per_shard: &[Vec<T>],
    translate: impl Fn(usize, T) -> SetMatch,
    out: &mut Vec<SetMatch>,
) {
    debug_assert!(
        per_shard.iter().enumerate().all(|(si, reports)| {
            reports.windows(2).all(|w| {
                let (a, b) = (translate(si, w[0]), translate(si, w[1]));
                (a.end, a.pattern) < (b.end, b.pattern)
            })
        }),
        "per-shard reports must arrive sorted by (end, pattern) — \
         see MultiEngine::step_into's ordering contract"
    );
    let total: usize = per_shard.iter().map(|v| v.len()).sum();
    let mut cursors = vec![0usize; per_shard.len()];
    for _ in 0..total {
        let mut best: Option<(usize, SetMatch)> = None;
        for (si, reports) in per_shard.iter().enumerate() {
            if let Some(&r) = reports.get(cursors[si]) {
                let m = translate(si, r);
                if best.is_none_or(|(_, b)| (m.end, m.pattern) < (b.end, b.pattern)) {
                    best = Some((si, m));
                }
            }
        }
        let (si, m) = best.expect("total counted a remaining report");
        out.push(m);
        cursors[si] += 1;
    }
}

/// Tracks the last candidate end per trailing-`$` pattern. Streams (and
/// the flow scheduler) report every candidate end of a `$`-anchored
/// pattern because mid-stream the end is unknown; this records the most
/// recent one so declaring end-of-stream can resolve which candidates
/// actually land on the final byte. State lives across feeds —
/// including zero-byte ones — so a candidate two chunks old still
/// finishes correctly when the stream ends on an empty chunk.
#[derive(Debug)]
pub(crate) struct DollarTracker<'a> {
    /// Trailing-`$` flags per (global) pattern.
    anchored_end: &'a [bool],
    last: HashMap<usize, u64>,
}

impl<'a> DollarTracker<'a> {
    pub(crate) fn new(anchored_end: &'a [bool]) -> DollarTracker<'a> {
        DollarTracker {
            anchored_end,
            last: HashMap::new(),
        }
    }

    /// Records a reported candidate `(pattern, end)`; non-`$` patterns
    /// are ignored.
    pub(crate) fn observe(&mut self, pattern: usize, end: u64) {
        if self.anchored_end[pattern] {
            self.last.insert(pattern, end);
        }
    }

    /// The finishing set for a stream ending at `position`: `$`-anchored
    /// matches whose last candidate ends exactly there, sorted by
    /// pattern — what a one-shot `find_ends` would have kept of them.
    pub(crate) fn finish(&self, position: u64) -> Vec<SetMatch> {
        let mut out: Vec<SetMatch> = self
            .last
            .iter()
            .filter(|&(_, &end)| end == position)
            .map(|(&pattern, &end)| SetMatch {
                pattern,
                end: end as usize,
            })
            .collect();
        out.sort();
        out
    }

    pub(crate) fn clear(&mut self) {
        self.last.clear();
    }
}

/// A resumable chunk-at-a-time matcher over a [`ShardedPatternSet`] (one
/// [`ShardStream`] per shard); create one with
/// [`ShardedPatternSet::stream`]. The stream is `Send`, so per-flow
/// states can move onto worker threads — and its per-shard states are
/// individually detachable ([`ShardedMulti::shard_stream`]), which is
/// what [`FlowScheduler`](crate::sched::FlowScheduler) builds on to let
/// two workers advance different shards of the same flow.
pub struct ShardedSetStream<'a> {
    shards: Vec<ShardStream<'a>>,
    bufs: Vec<Vec<MultiReport>>,
    merged: Vec<SetMatch>,
    dollar: DollarTracker<'a>,
    /// The set's literal prefilter (`None` under
    /// [`PrefilterMode`](crate::PrefilterMode)`::Off`): cold shards
    /// skip the engines entirely until a literal candidate appears.
    prefilter: Option<&'a SetPrefilter>,
    /// Per-shard streaming filter state (AC node + sticky hot flag).
    pre: Vec<PrefilterState>,
    /// Last `window` bytes fed, for cold→hot wake-up replay.
    tail: Vec<u8>,
}

/// Inputs at least this large are fanned out to shard engines on scoped
/// threads; smaller ones are processed sequentially (thread spawn would
/// cost more than the scan).
const PARALLEL_MIN_BYTES: usize = 4096;

impl ShardedSetStream<'_> {
    /// Consumes `chunk` and returns the matches it completed, in stream
    /// order. End offsets are 1-based and *absolute* (counted from the
    /// start of the stream, across all chunks fed so far).
    pub fn feed(&mut self, chunk: &[u8]) -> impl Iterator<Item = SetMatch> + '_ {
        let chunk_start = self.position();
        // Consult the prefilter per shard before any engine runs. Cold
        // shards skip the scan (their engines stay fresh and teleport
        // via restart_at); a first candidate wakes the shard with a
        // bounded tail replay. Empty chunks scan (a no-op) so the
        // filter state never advances past bytes that were never fed.
        let actions: Vec<ChunkAction> = match self.prefilter {
            Some(pf) if !chunk.is_empty() => self
                .pre
                .iter_mut()
                .enumerate()
                .map(|(si, st)| pf.chunk_action(si, st, chunk, chunk_start, 0))
                .collect(),
            _ => vec![ChunkAction::Scan; self.shards.len()],
        };
        let tail = &self.tail;
        let run = |shard: &mut ShardStream<'_>, buf: &mut Vec<MultiReport>, action: ChunkAction| {
            buf.clear();
            match action {
                ChunkAction::Scan => shard.feed_into(chunk, buf),
                ChunkAction::Skip => shard.restart_at(chunk_start + chunk.len() as u64),
                ChunkAction::Wake { replay_start } => {
                    shard.restart_at(replay_start);
                    let need = (chunk_start - replay_start) as usize;
                    if need > 0 {
                        shard.feed_into(&tail[tail.len() - need..], buf);
                    }
                    shard.feed_into(chunk, buf);
                }
            }
        };
        if self.shards.len() > 1 && chunk.len() >= PARALLEL_MIN_BYTES {
            std::thread::scope(|scope| {
                let run = &run;
                for ((shard, buf), action) in self
                    .shards
                    .iter_mut()
                    .zip(self.bufs.iter_mut())
                    .zip(actions.iter().copied())
                {
                    scope.spawn(move || run(shard, buf, action));
                }
            });
        } else {
            for ((shard, buf), action) in self
                .shards
                .iter_mut()
                .zip(self.bufs.iter_mut())
                .zip(actions.iter().copied())
            {
                run(shard, buf, action);
            }
        }
        if let Some(pf) = self.prefilter {
            pf.extend_tail(&mut self.tail, chunk);
        }
        self.merged.clear();
        merge_ordered_by(
            &self.bufs,
            |_, r: MultiReport| SetMatch {
                pattern: r.pattern as usize,
                end: r.end as usize,
            },
            &mut self.merged,
        );
        for m in &self.merged {
            self.dollar.observe(m.pattern, m.end as u64);
        }
        self.merged.iter().copied()
    }

    /// Declares end-of-stream and returns, sorted by pattern, the
    /// `$`-anchored matches that end **exactly at the final byte** — the
    /// ones a one-shot [`ShardedPatternSet::find_ends`] over the whole
    /// stream would keep. (`feed` reports every candidate end of a
    /// `$`-anchored pattern, because mid-stream the end is unknown; the
    /// non-`$` reports of `feed` plus this finishing set are together
    /// byte-identical to the one-shot scan.)
    ///
    /// The finishing set survives trailing empty chunks: a candidate end
    /// on the final byte is reported even if the last `feed` before
    /// `finish` consumed zero bytes.
    pub fn finish(self) -> Vec<SetMatch> {
        self.dollar.finish(self.position())
    }

    /// Number of shard engines this stream advances in lockstep.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total bytes consumed since creation (or the last reset).
    pub fn position(&self) -> u64 {
        self.shards.first().map(|s| s.position()).unwrap_or(0)
    }

    /// Restarts the stream at position 0.
    pub fn reset(&mut self) {
        for shard in &mut self.shards {
            shard.reset();
        }
        for st in &mut self.pre {
            st.reset();
        }
        self.tail.clear();
        self.dollar.clear();
    }
}

impl fmt::Debug for ShardedSetStream<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ShardedSetStream({} shards, position = {})",
            self.shard_count(),
            self.position()
        )
    }
}

/// A compiled ruleset: one merged extended-MNRL network and one shared
/// software engine for the entire set — the single-shard (`N = 1`) case
/// of [`ShardedPatternSet`], which it wraps.
///
/// Mirrors [`Pattern`]'s API at set granularity: [`compile_many`] /
/// [`find_ends`] / [`stream`] / [`network`] / [`hardware`].
///
/// [`compile_many`]: PatternSet::compile_many
/// [`find_ends`]: PatternSet::find_ends
/// [`stream`]: PatternSet::stream
/// [`network`]: PatternSet::network
/// [`hardware`]: PatternSet::hardware
///
/// New code should use [`Engine::builder`](crate::Engine::builder) with
/// [`ShardPolicy::Single`](recama_hw::ShardPolicy::Single); the
/// `compile_*` constructors here are deprecated wrappers.
///
/// # Examples
///
/// ```
/// # #![allow(deprecated)]
/// use recama::PatternSet;
///
/// let set = PatternSet::compile_many(&["ab{2,3}c", "xyz", "k\\d{4}"]).unwrap();
/// let matches = set.find_ends(b"zabbc..xyz..k1234");
/// let hits: Vec<(usize, usize)> = matches.iter().map(|m| (m.pattern, m.end)).collect();
/// assert_eq!(hits, vec![(0, 5), (1, 10), (2, 17)]);
/// // One merged network with per-pattern report ids:
/// assert_eq!(set.network().report_ids(), vec![0, 1, 2]);
/// ```
#[derive(Debug)]
pub struct PatternSet {
    inner: ShardedPatternSet,
}

impl PatternSet {
    /// Compiles all `patterns` with default options.
    ///
    /// # Errors
    ///
    /// Fails on the first pattern that does not parse (or is outside the
    /// supported fragment), identifying its index. Use
    /// [`PatternSet::compile_filtered`] to skip bad patterns instead.
    #[deprecated(
        since = "0.2.0",
        note = "use Engine::builder().patterns(..).shard_policy(ShardPolicy::Single).build()"
    )]
    pub fn compile_many<S: AsRef<str>>(patterns: &[S]) -> Result<PatternSet, CompileError> {
        Engine::builder()
            .patterns(patterns)
            .shard_policy(ShardPolicy::Single)
            .build()
            .map(|e| PatternSet {
                inner: e.into_set(),
            })
    }

    /// Compiles all `patterns` with explicit [`CompileOptions`].
    ///
    /// # Errors
    ///
    /// Same as [`PatternSet::compile_many`].
    #[deprecated(
        since = "0.2.0",
        note = "use Engine::builder().patterns(..).options(..).shard_policy(ShardPolicy::Single).build()"
    )]
    pub fn compile_many_with<S: AsRef<str>>(
        patterns: &[S],
        options: &CompileOptions,
    ) -> Result<PatternSet, CompileError> {
        Engine::builder()
            .patterns(patterns)
            .options(*options)
            .shard_policy(ShardPolicy::Single)
            .build()
            .map(|e| PatternSet {
                inner: e.into_set(),
            })
    }

    /// Compiles the parseable subset of `patterns`, returning the set and
    /// the rejected `(index, error)` pairs — the tolerant entry point for
    /// real rulesets, which always contain out-of-fragment rules
    /// (Table 1's unsupported rows).
    #[deprecated(
        since = "0.2.0",
        note = "use Engine::builder().lossy(true) and Engine::skipped()"
    )]
    pub fn compile_filtered<S: AsRef<str>>(
        patterns: &[S],
        options: &CompileOptions,
    ) -> (PatternSet, Vec<(usize, ParseError)>) {
        let engine = Engine::builder()
            .patterns(patterns)
            .options(*options)
            .shard_policy(ShardPolicy::Single)
            .lossy(true)
            .build()
            .expect("lossy builds are infallible");
        let rejected = engine
            .skipped()
            .iter()
            .map(|s| (s.index, s.error.clone()))
            .collect();
        (
            PatternSet {
                inner: engine.into_set(),
            },
            rejected,
        )
    }

    /// Number of compiled patterns.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The source text of pattern `i`.
    pub fn pattern(&self, i: usize) -> &str {
        self.inner.pattern(i)
    }

    /// Per-pattern compiler outputs (module decisions, analyses, NCAs),
    /// indexed like the patterns.
    pub fn outputs(&self) -> &[CompileOutput] {
        self.inner.outputs()
    }

    /// The merged extended-MNRL network for the whole set. Reporting
    /// nodes of pattern `i` carry `report_id = i`.
    pub fn network(&self) -> &MnrlNetwork {
        self.inner.network(0)
    }

    /// The merged shared automaton (one `q0`, shared byte-class
    /// alphabet, per-pattern state ranges).
    pub fn multi(&self) -> &MultiNca {
        self.inner.multi().shard(0)
    }

    /// The sharded view of this set (a single shard holding every
    /// pattern).
    pub fn sharded(&self) -> &ShardedPatternSet {
        &self.inner
    }

    /// All matches in `haystack`, in stream order (ascending end offset).
    ///
    /// Semantics per pattern match [`Pattern::find_ends`]: search form
    /// `Σ*·r` unless `^`-anchored, one report per (pattern, end), and a
    /// trailing `$` keeps only that pattern's matches ending at the end
    /// of the haystack.
    pub fn find_ends(&self, haystack: &[u8]) -> Vec<SetMatch> {
        self.inner.find_ends(haystack)
    }

    /// Whether any pattern matches in `haystack`.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        self.inner.is_match(haystack)
    }

    /// Locates full match spans per pattern — the set-level analogue of
    /// [`Pattern::find_spans`], reusing cached reversed automata.
    ///
    /// # Examples
    ///
    /// ```
    /// # #![allow(deprecated)]
    /// use recama::{PatternSet, SetSpan};
    ///
    /// let set = PatternSet::compile_many(&["ab{2,3}c", "xyz"]).unwrap();
    /// let spans = set.find_spans(b"zzabbc.xyz");
    /// assert_eq!(
    ///     spans,
    ///     vec![
    ///         SetSpan { pattern: 0, start: 2, end: 6 },
    ///         SetSpan { pattern: 1, start: 7, end: 10 },
    ///     ]
    /// );
    /// ```
    pub fn find_spans(&self, haystack: &[u8]) -> Vec<SetSpan> {
        self.inner.find_spans(haystack)
    }

    /// A resumable streaming matcher: feed traffic in chunks and drain
    /// reports incrementally, without re-scanning previous chunks.
    ///
    /// Note that a stream has no "end", so trailing-`$` anchors are not
    /// applied: `$`-anchored patterns report every candidate end offset.
    ///
    /// # Examples
    ///
    /// ```
    /// # #![allow(deprecated)]
    /// use recama::PatternSet;
    ///
    /// let set = PatternSet::compile_many(&["ab{2}c"]).unwrap();
    /// let mut stream = set.stream();
    /// // The match straddles the chunk boundary.
    /// assert!(stream.feed(b"..ab").next().is_none());
    /// let hits: Vec<_> = stream.feed(b"bc..").collect();
    /// assert_eq!(hits.len(), 1);
    /// assert_eq!((hits[0].pattern, hits[0].end), (0, 6));
    /// ```
    pub fn stream(&self) -> SetStream<'_> {
        SetStream {
            engine: self
                .inner
                .multi()
                .shard_stream_with(0, self.inner.scan_mode()),
            buf: Vec::new(),
            dollar: DollarTracker::new(self.inner.anchored_end()),
            prefilter: self.inner.prefilter(),
            pre: PrefilterState::default(),
            tail: Vec::new(),
        }
    }

    /// A hardware simulator for the merged network; its report vector
    /// attributes events to patterns via the stamped report ids.
    pub fn hardware(&self) -> recama_hw::HwSimulator<'_> {
        self.inner.hardware(0)
    }
}

/// A resumable chunk-at-a-time matcher over a [`PatternSet`]; create one
/// with [`PatternSet::stream`]. The stream is `Send`, so per-flow engine
/// states can move onto worker threads.
pub struct SetStream<'a> {
    engine: ShardStream<'a>,
    buf: Vec<recama_nca::MultiReport>,
    dollar: DollarTracker<'a>,
    /// The set's literal prefilter (`None` under
    /// [`PrefilterMode`](crate::PrefilterMode)`::Off`).
    prefilter: Option<&'a SetPrefilter>,
    /// Streaming filter state of the single shard.
    pre: PrefilterState,
    /// Last `window` bytes fed, for cold→hot wake-up replay.
    tail: Vec<u8>,
}

impl SetStream<'_> {
    /// Consumes `chunk` and returns the matches it completed, in stream
    /// order. End offsets are 1-based and *absolute* (counted from the
    /// start of the stream, across all chunks fed so far).
    pub fn feed(&mut self, chunk: &[u8]) -> impl Iterator<Item = SetMatch> + '_ {
        let chunk_start = self.engine.position();
        let action = match self.prefilter {
            Some(pf) if !chunk.is_empty() => {
                pf.chunk_action(0, &mut self.pre, chunk, chunk_start, 0)
            }
            _ => ChunkAction::Scan,
        };
        self.buf.clear();
        match action {
            ChunkAction::Scan => self.engine.feed_into(chunk, &mut self.buf),
            ChunkAction::Skip => self.engine.restart_at(chunk_start + chunk.len() as u64),
            ChunkAction::Wake { replay_start } => {
                self.engine.restart_at(replay_start);
                let need = (chunk_start - replay_start) as usize;
                if need > 0 {
                    let from = self.tail.len() - need;
                    self.engine.feed_into(&self.tail[from..], &mut self.buf);
                }
                self.engine.feed_into(chunk, &mut self.buf);
            }
        }
        if let Some(pf) = self.prefilter {
            pf.extend_tail(&mut self.tail, chunk);
        }
        for r in &self.buf {
            self.dollar.observe(r.pattern as usize, r.end);
        }
        self.buf.iter().map(|r| SetMatch {
            pattern: r.pattern as usize,
            end: r.end as usize,
        })
    }

    /// Declares end-of-stream and returns the `$`-anchored matches that
    /// end exactly at the final byte — same contract as
    /// [`ShardedSetStream::finish`].
    pub fn finish(self) -> Vec<SetMatch> {
        self.dollar.finish(self.engine.position())
    }

    /// Total bytes consumed since creation (or the last reset).
    pub fn position(&self) -> u64 {
        self.engine.position()
    }

    /// Restarts the stream at position 0.
    pub fn reset(&mut self) {
        self.engine.reset();
        self.pre.reset();
        self.tail.clear();
        self.dollar.clear();
    }
}

impl fmt::Debug for SetStream<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SetStream(position = {})", self.position())
    }
}

/// [`Pattern`]-compatibility helpers on the set.
impl PatternSet {
    /// Compiles each pattern independently (the loop-over-patterns
    /// baseline the shared engine is benchmarked against).
    ///
    /// # Errors
    ///
    /// Fails like [`PatternSet::compile_many`] on the first bad pattern.
    pub fn compile_baseline<S: AsRef<str>>(patterns: &[S]) -> Result<Vec<Pattern>, CompileError> {
        patterns
            .iter()
            .enumerate()
            .map(|(index, p)| {
                Pattern::compile(p.as_ref()).map_err(|error| CompileError {
                    index,
                    pattern: p.as_ref().to_string(),
                    phase: CompilePhase::Parse,
                    error,
                })
            })
            .collect()
    }
}

// The deprecated wrappers stay covered on purpose: their contract is
// byte-identical delegation to the builder.
#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use recama_hw::ShardBudget;

    #[test]
    fn mirrors_per_pattern_find_ends() {
        let patterns = ["ab{2,3}c", "a{3}", "cab", "x[yz]{2}"];
        let set = PatternSet::compile_many(&patterns).unwrap();
        let baseline = PatternSet::compile_baseline(&patterns).unwrap();
        let haystack = b"abbc.aaa.cab.xyz.abbbc";
        let mut expected: Vec<SetMatch> = Vec::new();
        for (pi, p) in baseline.iter().enumerate() {
            for end in p.find_ends(haystack) {
                expected.push(SetMatch { pattern: pi, end });
            }
        }
        expected.sort();
        let mut got = set.find_ends(haystack);
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn compile_many_reports_offending_index() {
        let err = PatternSet::compile_many(&["ok", "bad(", "ok2"]).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.to_string().contains("#1"));
    }

    #[test]
    fn compile_filtered_skips_bad_patterns() {
        let (set, rejected) =
            PatternSet::compile_filtered(&["a{2}", r"(x)\1", "b{3}"], &CompileOptions::default());
        assert_eq!(set.len(), 2);
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].0, 1);
        assert!(set.is_match(b"bbb"));
    }

    #[test]
    fn network_is_merged_and_valid_with_report_ids() {
        let set = PatternSet::compile_many(&["^a{30}", "[xy]{5}z"]).unwrap();
        assert!(
            set.network().validate().is_empty(),
            "{:?}",
            set.network().validate()
        );
        assert_eq!(set.network().report_ids(), vec![0, 1]);
        // Module decisions surface per pattern.
        assert_eq!(set.outputs().len(), 2);
    }

    #[test]
    fn dollar_anchor_filters_set_matches() {
        let set = PatternSet::compile_many(&["ab$", "ab"]).unwrap();
        let got = set.find_ends(b"ab.ab");
        // "ab$" only at the final position; "ab" at both.
        assert_eq!(
            got,
            vec![
                SetMatch { pattern: 1, end: 2 },
                SetMatch { pattern: 0, end: 5 },
                SetMatch { pattern: 1, end: 5 },
            ]
        );
    }

    #[test]
    fn stream_positions_are_absolute() {
        let set = PatternSet::compile_many(&["kk"]).unwrap();
        let mut stream = set.stream();
        assert_eq!(stream.feed(b"....").count(), 0);
        let hits: Vec<SetMatch> = stream.feed(b"kk").collect();
        assert_eq!(hits, vec![SetMatch { pattern: 0, end: 6 }]);
        assert_eq!(stream.position(), 6);
        stream.reset();
        let hits: Vec<SetMatch> = stream.feed(b"kk").collect();
        assert_eq!(hits, vec![SetMatch { pattern: 0, end: 2 }]);
    }

    /// Regression pin: the finishing set must come from state that lives
    /// across `feed` calls, not from the last chunk's report buffer — an
    /// empty final chunk clears that buffer, and a match ending exactly
    /// on the final byte must still be reported by `finish()`.
    #[test]
    fn stream_finish_survives_empty_final_chunk() {
        let patterns = ["ab$", "ab", "cd$"];
        let input: &[u8] = b"ab.cd";
        let single = PatternSet::compile_many(&patterns).unwrap();
        let expected = single.find_ends(input); // the $-filtered one-shot scan

        // Unsharded stream: non-$ feed reports + finish == find_ends.
        let mut stream = single.stream();
        let mut got = Vec::new();
        for chunk in [&b"ab"[..], b".c", b"d", b""] {
            got.extend(
                stream
                    .feed(chunk)
                    .filter(|m| !["ab$", "cd$"].contains(&patterns[m.pattern])),
            );
        }
        let finishing = stream.finish();
        assert_eq!(
            finishing,
            vec![SetMatch { pattern: 2, end: 5 }],
            "the cd$ candidate arrived two feeds before the empty final chunk"
        );
        got.extend(finishing);
        got.sort();
        assert_eq!(got, expected);

        // Sharded stream, same chunking, same contract.
        let sharded = ShardedPatternSet::compile_many_with(
            &patterns,
            &CompileOptions::default(),
            ShardPolicy::Fixed(2),
        )
        .unwrap();
        let mut stream = sharded.stream();
        let mut got = Vec::new();
        for chunk in [&b"ab"[..], b".c", b"d", b""] {
            got.extend(
                stream
                    .feed(chunk)
                    .filter(|m| !["ab$", "cd$"].contains(&patterns[m.pattern])),
            );
        }
        got.extend(stream.finish());
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn stream_finish_is_empty_when_no_dollar_match_ends_the_stream() {
        let set = PatternSet::compile_many(&["ab$", "xy"]).unwrap();
        // Candidate at 2, but the stream continues past it.
        let mut stream = set.stream();
        assert_eq!(stream.feed(b"ab").count(), 1);
        assert_eq!(stream.feed(b"xy").count(), 1);
        assert!(stream.finish().is_empty());
        // A never-fed stream finishes empty too.
        assert!(set.stream().finish().is_empty());
        assert!(set.sharded().stream().finish().is_empty());
    }

    #[test]
    fn hardware_simulator_attributes_reports() {
        let set = PatternSet::compile_many(&["^ab{2}c", "xyz"]).unwrap();
        let mut hw = set.hardware();
        let ends = hw.match_ends(b"abbc..xyz");
        assert_eq!(ends, vec![4, 9]);
    }

    #[test]
    fn empty_set_is_well_formed() {
        let set = PatternSet::compile_many::<&str>(&[]).unwrap();
        assert!(set.is_empty());
        assert!(set.find_ends(b"anything").is_empty());
        assert!(set.network().validate().is_empty());
        // The sharded view compiles to one empty shard.
        assert_eq!(set.sharded().shard_count(), 1);
        let sharded = ShardedPatternSet::compile_many::<&str>(&[]).unwrap();
        assert!(sharded.find_ends(b"anything").is_empty());
        assert_eq!(sharded.stream().feed(b"xy").count(), 0);
    }

    #[test]
    fn sharded_reports_are_byte_identical_to_unsharded() {
        let patterns = ["ab{2,3}c", "a{3}", "cab", "x[yz]{2}", "k\\d{2}"];
        let single = PatternSet::compile_many(&patterns).unwrap();
        let haystack = b"abbc.aaa.cab.xyz.k42.abbbc";
        let expected = single.find_ends(haystack);
        for policy in [
            ShardPolicy::Single,
            ShardPolicy::Fixed(2),
            ShardPolicy::Fixed(3),
            ShardPolicy::Fixed(5),
            ShardPolicy::Banked(ShardBudget {
                columns: 4,
                counters: 8,
                bitvector_bits: 2000,
            }),
        ] {
            let sharded =
                ShardedPatternSet::compile_many_with(&patterns, &CompileOptions::default(), policy)
                    .unwrap();
            // No sort: the order must match too.
            assert_eq!(sharded.find_ends(haystack), expected, "policy {policy:?}");
        }
    }

    #[test]
    fn sharded_networks_carry_global_report_ids() {
        let patterns = ["^a{30}", "[xy]{5}z", "k\\d{2}"];
        let set = ShardedPatternSet::compile_many_with(
            &patterns,
            &CompileOptions::default(),
            ShardPolicy::Fixed(2),
        )
        .unwrap();
        assert_eq!(set.shard_count(), 2);
        let mut all_ids = Vec::new();
        for si in 0..set.shard_count() {
            assert!(set.network(si).validate().is_empty());
            all_ids.extend(set.network(si).report_ids());
        }
        all_ids.sort();
        assert_eq!(all_ids, vec![0, 1, 2]);
    }

    #[test]
    fn sharded_stream_agrees_with_oneshot() {
        let patterns = ["ab{2,4}c", "x{3}", "q[rs]{2}t"];
        let set = ShardedPatternSet::compile_many_with(
            &patterns,
            &CompileOptions::default(),
            ShardPolicy::Fixed(3),
        )
        .unwrap();
        let input = b"zabbbc_xxx_qrst_abbc_xxxx";
        let oneshot = set.find_ends(input);
        for chunk_len in [1usize, 2, 7, input.len()] {
            let mut stream = set.stream();
            let mut got = Vec::new();
            for chunk in input.chunks(chunk_len) {
                got.extend(stream.feed(chunk));
            }
            assert_eq!(got, oneshot, "chunk length {chunk_len}");
            assert_eq!(stream.position(), input.len() as u64);
        }
    }

    #[test]
    fn find_spans_locates_starts_per_pattern() {
        let patterns = ["ab{2,3}c", "xyz"];
        let set = PatternSet::compile_many(&patterns).unwrap();
        let spans = set.find_spans(b"zzabbc..xyz..abbbc");
        assert_eq!(
            spans,
            vec![
                SetSpan {
                    pattern: 0,
                    start: 2,
                    end: 6
                },
                SetSpan {
                    pattern: 1,
                    start: 8,
                    end: 11
                },
                SetSpan {
                    pattern: 0,
                    start: 13,
                    end: 18
                },
            ]
        );
        // Agreement with the per-pattern API.
        for (pi, p) in patterns.iter().enumerate() {
            let pattern = Pattern::compile(p).unwrap();
            let expected: Vec<MatchSpan> = pattern.find_spans(b"zzabbc..xyz..abbbc");
            let got: Vec<MatchSpan> = spans
                .iter()
                .filter(|s| s.pattern == pi)
                .map(|s| s.span())
                .collect();
            assert_eq!(got, expected, "pattern {p}");
        }
    }

    #[test]
    fn streams_are_send_and_debug() {
        fn assert_send<T: Send>() {}
        assert_send::<SetStream<'static>>();
        assert_send::<ShardedSetStream<'static>>();
        assert_send::<SetMatch>();
        assert_send::<SetSpan>();
        assert_send::<ShardedPatternSet>();
        assert_send::<PatternSet>();

        // Engines really do move onto worker threads.
        let set = PatternSet::compile_many(&["kk"]).unwrap();
        let mut stream = set.stream();
        let hits = std::thread::scope(|scope| {
            scope
                .spawn(move || stream.feed(b"..kk").count())
                .join()
                .unwrap()
        });
        assert_eq!(hits, 1);
        assert!(format!("{:?}", set.stream()).contains("position = 0"));
        assert!(format!("{:?}", set.sharded().stream()).contains("1 shards"));
    }
}
