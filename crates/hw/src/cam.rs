//! The CAMA-style two-nibble CAM encoding of character classes.
//!
//! CAMA reduces state-matching memory from the 256×256 SRAM of AP/CA to a
//! 16×256 8-transistor CAM by splitting the 8-bit symbol into two 4-bit
//! nibbles: a column stores a 16-bit membership mask for the high nibble
//! and one for the low nibble and matches when **both** masks hit. A single
//! column can therefore represent exactly the classes that are *products*
//! `H × L` of nibble sets; other classes are decomposed into several
//! columns (the encoding-dependent STE inflation that Impala/CAMA report).

use recama_syntax::ByteClass;

/// One physical CAM column: high-nibble mask × low-nibble mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CamColumn {
    /// Bit `h` set ⇔ symbols with high nibble `h` may match.
    pub hi_mask: u16,
    /// Bit `l` set ⇔ symbols with low nibble `l` may match.
    pub lo_mask: u16,
}

impl CamColumn {
    /// Whether the column matches byte `b`.
    pub fn matches(&self, b: u8) -> bool {
        self.hi_mask & (1 << (b >> 4)) != 0 && self.lo_mask & (1 << (b & 0xf)) != 0
    }

    /// The class of bytes this column matches.
    pub fn to_class(&self) -> ByteClass {
        let mut c = ByteClass::new();
        for b in 0..=255u8 {
            if self.matches(b) {
                c.insert(b);
            }
        }
        c
    }
}

/// Decomposes a class into CAM columns whose union is exactly the class.
///
/// Strategy: group high nibbles by their low-nibble membership pattern; all
/// high nibbles sharing a pattern form one product column. This yields one
/// column for genuine product classes (`.`/ranges aligned to nibbles /
/// singletons) and at most 16 columns in the worst case.
///
/// # Examples
///
/// ```
/// use recama_hw::cam::columns_for_class;
/// use recama_syntax::ByteClass;
///
/// assert_eq!(columns_for_class(&ByteClass::ANY).len(), 1);
/// assert_eq!(columns_for_class(&ByteClass::singleton(b'x')).len(), 1);
/// // [a-z] spans high nibbles 6 (a–o) and 7 (p–z) with different low sets.
/// assert_eq!(columns_for_class(&ByteClass::range(b'a', b'z')).len(), 2);
/// ```
pub fn columns_for_class(class: &ByteClass) -> Vec<CamColumn> {
    // Low-nibble pattern per high nibble.
    let mut lo_patterns = [0u16; 16];
    for b in class.iter() {
        lo_patterns[(b >> 4) as usize] |= 1 << (b & 0xf);
    }
    // Group identical nonzero patterns.
    let mut columns: Vec<CamColumn> = Vec::new();
    for (h, &lo) in lo_patterns.iter().enumerate() {
        if lo == 0 {
            continue;
        }
        match columns.iter_mut().find(|c| c.lo_mask == lo) {
            Some(col) => col.hi_mask |= 1 << h,
            None => columns.push(CamColumn {
                hi_mask: 1 << h,
                lo_mask: lo,
            }),
        }
    }
    columns
}

/// The number of CAM columns a class costs (the mapper's cost function).
pub fn column_cost(class: &ByteClass) -> usize {
    columns_for_class(class).len().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_cover(class: &ByteClass) {
        let cols = columns_for_class(class);
        let mut union = ByteClass::new();
        for col in &cols {
            let cc = col.to_class();
            // Columns never over-match.
            assert!(cc.is_subset(class), "column over-matches");
            union = union.union(&cc);
        }
        assert_eq!(union, *class, "columns must cover the class exactly");
    }

    #[test]
    fn product_classes_cost_one_column() {
        for c in [
            ByteClass::ANY,
            ByteClass::singleton(0),
            ByteClass::singleton(255),
            ByteClass::range(0x20, 0x2f), // one high nibble, all lows
            ByteClass::range(0x00, 0x7f), // high nibbles 0-7 × all lows
        ] {
            assert_eq!(columns_for_class(&c).len(), 1, "{c}");
            exact_cover(&c);
        }
    }

    #[test]
    fn non_product_classes_split() {
        // {0x12, 0x21}: two distinct low patterns.
        let c = ByteClass::from_bytes(&[0x12, 0x21]);
        assert_eq!(columns_for_class(&c).len(), 2);
        exact_cover(&c);
        // [a-z]: 'a'..'o' (hi 6) and 'p'..'z' (hi 7) have different lows.
        let c = ByteClass::range(b'a', b'z');
        assert_eq!(columns_for_class(&c).len(), 2);
        exact_cover(&c);
    }

    #[test]
    fn digits_are_one_column() {
        // '0'..'9' = 0x30..0x39: single high nibble.
        assert_eq!(columns_for_class(&ByteClass::digit()).len(), 1);
        exact_cover(&ByteClass::digit());
    }

    #[test]
    fn complement_classes_cover_exactly() {
        for c in [
            ByteClass::singleton(b'a').complement(),
            ByteClass::digit().complement(),
            ByteClass::word().complement(),
        ] {
            exact_cover(&c);
            assert!(columns_for_class(&c).len() <= 16);
        }
    }

    #[test]
    fn empty_class_costs_one_slot() {
        assert_eq!(columns_for_class(&ByteClass::EMPTY).len(), 0);
        assert_eq!(column_cost(&ByteClass::EMPTY), 1);
    }

    #[test]
    fn worst_case_bounded_by_16() {
        // The "identity diagonal" {0x00, 0x11, …, 0xff} needs 16 columns.
        let diag: ByteClass = (0..16u8).map(|i| i << 4 | i).collect();
        assert_eq!(columns_for_class(&diag).len(), 16);
        exact_cover(&diag);
    }

    #[test]
    fn column_match_agrees_with_class() {
        let c = ByteClass::word();
        let cols = columns_for_class(&c);
        for b in 0..=255u8 {
            let col_match = cols.iter().any(|col| col.matches(b));
            assert_eq!(col_match, c.contains(b), "byte {b:#x}");
        }
    }
}
