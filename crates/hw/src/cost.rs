//! The energy/area model combining Table 2 scalars with placement and
//! simulated activity — what regenerates Fig. 8 and Fig. 10.
//!
//! Energy per input byte:
//!
//! * every mapped CAM column takes part in the search each cycle
//!   (16 780 fJ per 256-column block access, prorated per column);
//! * a counter module costs 288 fJ in each cycle any of its ports is
//!   active;
//! * a bit-vector module costs 3 340 fJ per active cycle, prorated to the
//!   segment length (the Fig. 8 micro-benchmark provisions length-n
//!   vectors).
//!
//! Area comes in two granularities: `WholeModule` (provisioned hardware:
//! whole CAM-block pairs per PE, whole 2000-bit bit-vector modules with an
//! explicit **waste** term for unused bits — the Fig. 10 accounting) and
//! `ProRata` (per-column / per-bit — the Fig. 8 micro-benchmark sweep).

use crate::params::{
    area_per_column_um2, bitvector_area_um2, bitvector_energy_fj, match_energy_per_column_fj,
    BITS_PER_BITVECTOR, BITVECTOR_MODULE, CAM_BLOCK, CAM_BLOCKS_PER_PE, COUNTER_MODULE,
};
use crate::place::{place, Placement};
use crate::sim::HwSimulator;
use recama_mnrl::MnrlNetwork;

/// Area accounting granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AreaGranularity {
    /// Whole provisioned modules (chip floorplan; Fig. 10, incl. waste).
    WholeModule,
    /// Per used column / bit (micro-benchmark sweeps; Fig. 8).
    ProRata,
}

/// Energy breakdown of one simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Input bytes processed.
    pub cycles: u64,
    /// CAM state-matching energy (fJ).
    pub match_fj: f64,
    /// Counter-module energy (fJ).
    pub counter_fj: f64,
    /// Bit-vector-module energy (fJ).
    pub bitvector_fj: f64,
    /// Switch-network energy (fJ); 0 unless the optional switch model is
    /// enabled (see [`crate::switch`]).
    pub switch_fj: f64,
}

impl EnergyReport {
    /// Total energy in femtojoules.
    pub fn total_fj(&self) -> f64 {
        self.match_fj + self.counter_fj + self.bitvector_fj + self.switch_fj
    }

    /// Average energy per input byte in nanojoules — the Fig. 8/Fig. 10
    /// y-axis unit.
    pub fn nj_per_byte(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_fj() / self.cycles as f64 / 1.0e6
        }
    }
}

/// Area breakdown of one placed network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// CAM (state matching) area, µm².
    pub cam_um2: f64,
    /// Counter-module area, µm².
    pub counter_um2: f64,
    /// Bit-vector area actually used by segments, µm².
    pub bitvector_um2: f64,
    /// Bit-vector area provisioned but unused (the Fig. 10 "waste"), µm².
    pub waste_um2: f64,
}

impl AreaReport {
    /// Total area in µm² (including waste).
    pub fn total_um2(&self) -> f64 {
        self.cam_um2 + self.counter_um2 + self.bitvector_um2 + self.waste_um2
    }

    /// Total area in mm² — the Fig. 10 y-axis unit.
    pub fn total_mm2(&self) -> f64 {
        self.total_um2() / 1.0e6
    }
}

/// Computes the energy of a finished simulator run on a placed network.
pub fn energy_report(placement: &Placement, sim: &HwSimulator) -> EnergyReport {
    let cycles = sim.activity().cycles;
    let match_fj = cycles as f64 * placement.total_columns as f64 * match_energy_per_column_fj();
    let mut counter_fj = 0.0;
    let mut bitvector_fj = 0.0;
    for (is_counter, active_cycles, bits) in sim.module_activity() {
        if is_counter {
            counter_fj += active_cycles as f64 * COUNTER_MODULE.energy_fj;
        } else {
            bitvector_fj += active_cycles as f64 * bitvector_energy_fj(bits as usize);
        }
    }
    EnergyReport {
        cycles,
        match_fj,
        counter_fj,
        bitvector_fj,
        switch_fj: 0.0,
    }
}

/// Computes the area of a placed network.
pub fn area_report(placement: &Placement, granularity: AreaGranularity) -> AreaReport {
    match granularity {
        AreaGranularity::WholeModule => {
            let cam_um2 = placement.pe_count as f64 * CAM_BLOCKS_PER_PE as f64 * CAM_BLOCK.area_um2;
            let counter_um2 = placement.counter_count as f64 * COUNTER_MODULE.area_um2;
            let allocated = placement.bitvector_modules as f64 * BITVECTOR_MODULE.area_um2;
            let used_fraction = if placement.bitvector_modules == 0 {
                0.0
            } else {
                placement.bitvector_bits_used as f64
                    / (placement.bitvector_modules as f64 * BITS_PER_BITVECTOR as f64)
            };
            AreaReport {
                cam_um2,
                counter_um2,
                bitvector_um2: allocated * used_fraction,
                waste_um2: allocated * (1.0 - used_fraction),
            }
        }
        AreaGranularity::ProRata => AreaReport {
            cam_um2: placement.total_columns as f64 * area_per_column_um2(),
            counter_um2: placement.counter_count as f64 * COUNTER_MODULE.area_um2,
            bitvector_um2: bitvector_area_um2(placement.bitvector_bits_used as usize),
            waste_um2: 0.0,
        },
    }
}

/// End-to-end: place, simulate `input`, and report cost — the harness the
/// figure generators call.
#[derive(Debug)]
pub struct HwRun {
    /// The placement used.
    pub placement: Placement,
    /// Energy of the run.
    pub energy: EnergyReport,
    /// Area of the placed design.
    pub area: AreaReport,
    /// Report positions (1-based end offsets).
    pub match_ends: Vec<usize>,
}

/// Places `network`, runs `input` through the simulator, and prices the
/// run with `granularity` area accounting.
pub fn run(network: &MnrlNetwork, input: &[u8], granularity: AreaGranularity) -> HwRun {
    run_with(network, input, granularity, None)
}

/// Like [`run`], optionally adding the switch-network energy model.
pub fn run_with(
    network: &MnrlNetwork,
    input: &[u8],
    granularity: AreaGranularity,
    switch: Option<&crate::switch::SwitchParams>,
) -> HwRun {
    let placement = place(network);
    let mut sim = HwSimulator::new(network);
    let match_ends = sim.match_ends(input);
    let mut energy = energy_report(&placement, &sim);
    if let Some(params) = switch {
        energy.switch_fj =
            crate::switch::switch_energy_fj(network, &placement, &sim.activation_counts(), params);
    }
    let area = area_report(&placement, granularity);
    HwRun {
        placement,
        energy,
        area,
        match_ends,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recama_compiler::{compile, CompileOptions};
    use recama_nca::UnfoldPolicy;
    use recama_syntax::parse;

    fn network(pattern: &str, unfold: UnfoldPolicy) -> recama_mnrl::MnrlNetwork {
        let parsed = parse(pattern).unwrap();
        compile(
            &parsed.for_stream(),
            &CompileOptions {
                unfold,
                ..Default::default()
            },
        )
        .network
    }

    #[test]
    fn counter_beats_unfolding_by_orders_of_magnitude() {
        // Fig. 8 left: a{n} (anchored ⇒ counter-unambiguous) vs unfolding.
        let n = 1000;
        let input: Vec<u8> = std::iter::repeat_n(b'a', 4096).collect();
        let counter = run(
            &network(&format!("^a{{{n}}}"), UnfoldPolicy::None),
            &input,
            AreaGranularity::ProRata,
        );
        let unfolded = run(
            &network(&format!("^a{{{n}}}"), UnfoldPolicy::All),
            &input,
            AreaGranularity::ProRata,
        );
        let e_ratio = unfolded.energy.nj_per_byte() / counter.energy.nj_per_byte();
        assert!(e_ratio > 50.0, "energy ratio only {e_ratio:.1}");
        let a_ratio = unfolded.area.total_um2() / counter.area.total_um2();
        assert!(a_ratio > 10.0, "area ratio only {a_ratio:.1}");
    }

    #[test]
    fn bitvector_beats_unfolding() {
        // Fig. 8 right: Σ*a{n} (ambiguous ⇒ bit vector) vs unfolding.
        let n = 1000;
        let input: Vec<u8> = std::iter::repeat_n(b'a', 4096).collect();
        let bv = run(
            &network(&format!("a{{{n}}}"), UnfoldPolicy::None),
            &input,
            AreaGranularity::ProRata,
        );
        let unfolded = run(
            &network(&format!("a{{{n}}}"), UnfoldPolicy::All),
            &input,
            AreaGranularity::ProRata,
        );
        assert!(bv.placement.bitvector_segments == 1);
        let e_ratio = unfolded.energy.nj_per_byte() / bv.energy.nj_per_byte();
        assert!(e_ratio > 10.0, "energy ratio only {e_ratio:.1}");
        assert!(unfolded.area.total_um2() > bv.area.total_um2());
        // Both designs must agree on reports.
        assert_eq!(bv.match_ends, unfolded.match_ends);
    }

    #[test]
    fn energy_components_add_up() {
        let net = network("^a{10}b", UnfoldPolicy::None);
        let r = run(&net, b"aaaaaaaaaab", AreaGranularity::WholeModule);
        let e = r.energy;
        assert!(e.match_fj > 0.0);
        assert!(e.counter_fj > 0.0);
        assert_eq!(e.bitvector_fj, 0.0);
        assert!((e.total_fj() - (e.match_fj + e.counter_fj)).abs() < 1e-9);
        assert!(e.nj_per_byte() > 0.0);
        assert_eq!(r.match_ends, vec![11]);
    }

    #[test]
    fn whole_module_area_includes_waste() {
        let net = network("a{100}", UnfoldPolicy::None); // bit vector of 100 bits
        let r = run(&net, b"aaa", AreaGranularity::WholeModule);
        assert!(r.area.waste_um2 > 0.0);
        let used_share = r.area.bitvector_um2 / (r.area.bitvector_um2 + r.area.waste_um2);
        assert!((used_share - 100.0 / 2000.0).abs() < 1e-9);
        // ProRata has no waste.
        let r2 = run(&net, b"aaa", AreaGranularity::ProRata);
        assert_eq!(r2.area.waste_um2, 0.0);
        assert!(r2.area.total_um2() < r.area.total_um2());
    }

    #[test]
    fn zero_cycles_zero_energy() {
        let net = network("^abc", UnfoldPolicy::None);
        let r = run(&net, b"", AreaGranularity::WholeModule);
        assert_eq!(r.energy.nj_per_byte(), 0.0);
        assert_eq!(r.energy.total_fj(), 0.0);
    }
}
