//! # recama-hw
//!
//! The augmented CAMA in-memory automata accelerator of *Software-Hardware
//! Codesign for Efficient In-Memory Regular Pattern Matching* (PLDI 2022),
//! §4 — as a placement + cycle-level simulation + cost model over the
//! extended MNRL networks emitted by `recama-compiler`:
//!
//! * [`params`] — the Table 2 SPICE scalars (TSMC 28 nm) and the Fig. 5
//!   bank/array/PE hierarchy constants;
//! * [`cam`] — the two-nibble CAM product encoding of character classes;
//! * [`modules`] — functional models of the counter module (Fig. 6) and
//!   the bit-vector module (Fig. 7);
//! * [`place()`] — the mapper (module port groups stay within one PE;
//!   bit-vector segments share physical 2000-bit modules);
//! * [`shard`] — bank-aware ruleset sharding: order-preserving partition
//!   of compiled rules into shards that each fit one bank's capacity;
//! * [`HwSimulator`] — the two-phase cycle simulator (the modified VASim);
//! * [`cost`] — energy/area reports, with the waste accounting of Fig. 10
//!   and the pro-rata accounting of Fig. 8.
//!
//! ## Example
//!
//! ```
//! use recama_compiler::{compile, CompileOptions};
//! use recama_hw::{run, AreaGranularity};
//!
//! let parsed = recama_syntax::parse("ab{10,20}c").unwrap();
//! let out = compile(&parsed.for_stream(), &CompileOptions::default());
//! let report = run(&out.network, b"xxabbbbbbbbbbbc", AreaGranularity::WholeModule);
//! assert_eq!(report.match_ends, vec![15]);
//! println!("{:.3} nJ/B, {:.4} mm2", report.energy.nj_per_byte(), report.area.total_mm2());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cam;
pub mod cost;
pub mod modules;
pub mod params;
pub mod place;
pub mod shard;
mod sim;
pub mod switch;
pub mod throughput;

pub use cost::{
    area_report, energy_report, run, run_with, AreaGranularity, AreaReport, EnergyReport, HwRun,
};
pub use place::{place, EdgeStats, Loc, Placement};
pub use shard::{RuleCost, ShardBudget, ShardPlan, ShardPolicy};
pub use sim::{Activity, HwSimulator};
pub use switch::SwitchParams;
pub use throughput::{throughput, ThroughputReport};
