//! Cycle-accurate functional models of the counter and bit-vector modules
//! (§4.2, Figs. 6–7).
//!
//! Both modules observe, each cycle, whether their input-port STE groups
//! activated, and produce enable outputs consumed in the *next* cycle —
//! matching the two-phase (match, transition) pipeline of the accelerator.
//!
//! Counter rules (Fig. 6, adjusted to the `x := 1`-on-entry convention of
//! the paper's NCA examples):
//!
//! 1. `fst` fires with `pre` active in the previous cycle ⇒ `cnt := 1`
//!    (repetition (re-)initialization);
//! 2. `fst` fires without previous `pre` ⇒ `cnt := cnt + 1` (one complete
//!    body iteration via the `en_fst` loop);
//! 3. `en_out` ⇔ `lst` active ∧ `m ≤ cnt ≤ n` (`cnt ≥ m` when unbounded);
//! 4. `en_fst` ⇔ `lst` active ∧ `cnt < n` (always, when unbounded).
//!
//! Bit-vector rules (Fig. 7 / §3.2.1): on a `body` activation the vector
//! shifts (every token increments); with previous `pre` the first bit is
//! set (a fresh token); without `body` activation the vector resets (all
//! counting tokens died). `en_out` is the disjunction of the `[lo, hi]`
//! window; `en_body` the disjunction of bits that can still shift.

/// Functional model of the 17-bit counter module.
#[derive(Debug, Clone)]
pub struct CounterModule {
    min: u32,
    max: Option<u32>,
    cnt: u32,
    pre_prev: bool,
    /// Energy accounting: cycles in which the module did switching work.
    active_cycles: u64,
}

/// Enable outputs of a module after one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModuleOutputs {
    /// Re-enable the first body STE (`en_fst`) / body STE (`en_body`).
    pub en_loop: bool,
    /// Enable the successor STE / report (`en_out`).
    pub en_out: bool,
}

impl CounterModule {
    /// Creates the module for a `{min,max}` repetition (`max = None` for
    /// the unbounded `{min,}`).
    pub fn new(min: u32, max: Option<u32>, start_enabled: bool) -> CounterModule {
        CounterModule {
            min,
            max,
            cnt: 0,
            pre_prev: start_enabled,
            active_cycles: 0,
        }
    }

    /// Resets to the power-on state (`start_enabled` as at construction is
    /// captured in `pre_prev` by the caller via [`CounterModule::reset`]).
    pub fn reset(&mut self, start_enabled: bool) {
        self.cnt = 0;
        self.pre_prev = start_enabled;
        self.active_cycles = 0;
    }

    /// Advances one cycle. `pre_now`, `fst_now`, `lst_now`: whether the
    /// respective port groups activated in this cycle's match phase.
    pub fn cycle(&mut self, pre_now: bool, fst_now: bool, lst_now: bool) -> ModuleOutputs {
        if fst_now {
            if self.pre_prev {
                self.cnt = 1;
            } else {
                // 17-bit saturating datapath.
                self.cnt = (self.cnt + 1).min((1 << 17) - 1);
            }
        }
        let in_range = match self.max {
            Some(n) => self.min <= self.cnt && self.cnt <= n,
            None => self.cnt >= self.min,
        };
        let can_loop = match self.max {
            Some(n) => self.cnt < n,
            None => true,
        };
        let out = ModuleOutputs {
            en_loop: lst_now && can_loop,
            en_out: lst_now && in_range,
        };
        if pre_now || fst_now || lst_now {
            self.active_cycles += 1;
        }
        self.pre_prev = pre_now;
        out
    }

    /// Current register value (tests/diagnostics).
    pub fn count(&self) -> u32 {
        self.cnt
    }

    /// Cycles with switching activity since the last reset.
    pub fn active_cycles(&self) -> u64 {
        self.active_cycles
    }
}

/// Functional model of a bit-vector segment (`size` value bits, window
/// `[lo, hi]`), possibly one of several segments sharing a physical
/// 2000-bit module.
#[derive(Debug, Clone)]
pub struct BitVectorModule {
    size: u32,
    lo: u32,
    hi: u32,
    /// Bit `v` (1-based) set ⇔ a token with counter value `v` is live.
    bits: Vec<u64>,
    pre_prev: bool,
    active_cycles: u64,
}

impl BitVectorModule {
    /// Creates a segment of `size` bits with disjunction window `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ lo ≤ hi ≤ size`.
    pub fn new(size: u32, lo: u32, hi: u32, start_enabled: bool) -> BitVectorModule {
        assert!(
            1 <= lo && lo <= hi && hi <= size,
            "bad window {lo}..={hi} of {size}"
        );
        BitVectorModule {
            size,
            lo,
            hi,
            bits: vec![0; (size as usize + 2).div_ceil(64)],
            pre_prev: start_enabled,
            active_cycles: 0,
        }
    }

    /// Power-on reset.
    pub fn reset(&mut self, start_enabled: bool) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.pre_prev = start_enabled;
        self.active_cycles = 0;
    }

    fn any_in(&self, lo: u32, hi: u32) -> bool {
        (lo..=hi).any(|v| self.bits[(v / 64) as usize] & (1 << (v % 64)) != 0)
    }

    /// Advances one cycle. `pre_now`: the pre STE group activated;
    /// `body_now`: the body STE activated (input matched σ while enabled).
    pub fn cycle(&mut self, pre_now: bool, body_now: bool) -> ModuleOutputs {
        if body_now {
            // shift: every live token's counter increments; a token at
            // `size` falls off (the `x < n` loop guard fails).
            let mut carry = 0u64;
            for w in self.bits.iter_mut() {
                let new_carry = *w >> 63;
                *w = (*w << 1) | carry;
                carry = new_carry;
            }
            // Clear bits above `size`.
            for v in (self.size + 1)..(self.bits.len() as u32 * 64) {
                self.bits[(v / 64) as usize] &= !(1 << (v % 64));
            }
            if self.pre_prev {
                // setFirst: a fresh token with counter value 1.
                self.bits[0] |= 1 << 1;
            }
            self.active_cycles += 1;
        } else {
            // All counting tokens died (the body predicate failed).
            let had_any = self.bits.iter().any(|&w| w != 0);
            self.bits.iter_mut().for_each(|w| *w = 0);
            if had_any || pre_now {
                self.active_cycles += 1;
            }
        }
        let out = ModuleOutputs {
            en_loop: self.size > 1 && self.any_in(1, self.size - 1),
            en_out: self.any_in(self.lo, self.hi),
        };
        self.pre_prev = pre_now;
        out
    }

    /// Live token values (tests/diagnostics).
    pub fn values(&self) -> Vec<u32> {
        (1..=self.size).filter(|&v| self.any_in(v, v)).collect()
    }

    /// Cycles with switching activity since the last reset.
    pub fn active_cycles(&self) -> u64 {
        self.active_cycles
    }

    /// Number of value bits this segment occupies in a physical module.
    pub fn bits_used(&self) -> u32 {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 4 regex a(bc){1,3}d: trace "abcbcd".
    #[test]
    fn counter_traces_fig4() {
        let mut m = CounterModule::new(1, Some(3), false);
        // cycle 1: 'a' → pre active.
        let o = m.cycle(true, false, false);
        assert_eq!(o, ModuleOutputs::default());
        // cycle 2: 'b' → fst active (entry): cnt = 1.
        let o = m.cycle(false, true, false);
        assert_eq!(m.count(), 1);
        assert!(!o.en_out);
        // cycle 3: 'c' → lst active: in range (1 ≤ 1 ≤ 3) → en_out; 1 < 3 → en_fst.
        let o = m.cycle(false, false, true);
        assert!(o.en_out && o.en_loop);
        // cycle 4: 'b' via en_fst: increment → 2.
        m.cycle(false, true, false);
        assert_eq!(m.count(), 2);
        // cycle 5: 'c': still in range.
        let o = m.cycle(false, false, true);
        assert!(o.en_out && o.en_loop);
    }

    #[test]
    fn counter_exhausts_at_upper_bound() {
        let mut m = CounterModule::new(2, Some(2), false);
        m.cycle(true, false, false); // pre
        m.cycle(false, true, false); // entry: cnt=1
        let o = m.cycle(false, false, true); // lst: 1 < 2 → loop, not in range
        assert!(o.en_loop && !o.en_out);
        m.cycle(false, true, false); // loop: cnt=2
        let o = m.cycle(false, false, true); // lst: in range, no more loop
        assert!(!o.en_loop && o.en_out);
    }

    #[test]
    fn counter_reset_on_reentry() {
        let mut m = CounterModule::new(1, Some(9), false);
        m.cycle(true, false, false);
        m.cycle(false, true, false);
        m.cycle(false, true, false); // (hypothetical immediate loop)
        assert_eq!(m.count(), 2);
        // New entry: pre then fst resets to 1.
        m.cycle(true, false, false);
        m.cycle(false, true, false);
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn counter_unbounded_mode() {
        let mut m = CounterModule::new(3, None, false);
        m.cycle(true, false, false);
        m.cycle(false, true, false); // 1
        for _ in 0..5 {
            let o = m.cycle(false, true, true);
            // en_loop always true for {m,} when lst fires.
            assert!(o.en_loop);
        }
        assert_eq!(m.count(), 6);
        let o = m.cycle(false, false, true);
        assert!(o.en_out); // 6 ≥ 3
    }

    #[test]
    fn counter_start_enabled_initializes_on_first_fst() {
        // ^a{3}…: the module's virtual pre is active at time 0.
        let mut m = CounterModule::new(3, Some(3), true);
        m.cycle(false, true, true); // first 'a': cnt := 1
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn bitvector_shift_and_set_first() {
        let mut bv = BitVectorModule::new(5, 3, 5, false);
        bv.cycle(true, false); // pre active
        bv.cycle(true, true); // body: shift (empty) + setFirst → {1}; pre again
        assert_eq!(bv.values(), vec![1]);
        bv.cycle(false, true); // shift {1}→{2}, setFirst (pre_prev) → {1,2}
        assert_eq!(bv.values(), vec![1, 2]);
        let o = bv.cycle(false, true); // {2,3}
        assert_eq!(bv.values(), vec![2, 3]);
        assert!(o.en_out); // 3 in window [3,5]
        assert!(o.en_loop);
    }

    #[test]
    fn bitvector_token_falls_off_at_size() {
        let mut bv = BitVectorModule::new(3, 1, 3, false);
        bv.cycle(true, false);
        bv.cycle(false, true); // {1}
        bv.cycle(false, true); // {2}
        bv.cycle(false, true); // {3}
        assert_eq!(bv.values(), vec![3]);
        let o = bv.cycle(false, true); // shifts out → {}
        assert!(bv.values().is_empty());
        assert!(!o.en_out && !o.en_loop);
    }

    #[test]
    fn bitvector_resets_when_body_fails() {
        let mut bv = BitVectorModule::new(10, 2, 10, false);
        bv.cycle(true, false);
        bv.cycle(false, true);
        bv.cycle(false, true);
        assert!(!bv.values().is_empty());
        bv.cycle(false, false); // body predicate failed: all tokens die
        assert!(bv.values().is_empty());
    }

    #[test]
    fn bitvector_window_out_only_in_range() {
        let mut bv = BitVectorModule::new(4, 2, 3, false);
        bv.cycle(true, false);
        let o = bv.cycle(false, true); // {1}
        assert!(!o.en_out);
        let o = bv.cycle(false, true); // {2}
        assert!(o.en_out);
        let o = bv.cycle(false, true); // {3}
        assert!(o.en_out);
        let o = bv.cycle(false, true); // {4}: outside window, still loops? 4 = size → no loop
        assert!(!o.en_out);
        assert!(!o.en_loop);
    }

    #[test]
    #[should_panic(expected = "bad window")]
    fn bitvector_rejects_bad_window() {
        let _ = BitVectorModule::new(5, 3, 7, false);
    }

    #[test]
    fn activity_counting() {
        let mut m = CounterModule::new(1, Some(3), false);
        m.cycle(false, false, false);
        assert_eq!(m.active_cycles(), 0);
        m.cycle(true, false, false);
        m.cycle(false, true, false);
        assert_eq!(m.active_cycles(), 2);
        let mut bv = BitVectorModule::new(5, 1, 5, false);
        bv.cycle(false, false);
        assert_eq!(bv.active_cycles(), 0);
        bv.cycle(true, false);
        bv.cycle(false, true);
        assert_eq!(bv.active_cycles(), 2);
    }
}
