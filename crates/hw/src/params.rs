//! Circuit parameters and architectural constants of the augmented CAMA
//! design (Table 2 and Fig. 5 of the paper).
//!
//! The paper obtains the per-component energy/delay/area scalars from SPICE
//! simulation of a TSMC 28 nm implementation; we reproduce the evaluation
//! starting from the same scalars (see DESIGN.md §4, substitutions).
//! Interpretation used throughout: the Table 2 "CAMA Bank" row describes
//! one 256-STE CAM block access — the reading consistent with the per-STE
//! energies visible in Fig. 8 (~65 fJ/STE/byte) and the chip areas of
//! Fig. 10 (single-digit mm² for ~10⁵ STEs).

/// Energy/delay/area triple of one hardware component (from SPICE, 28 nm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentParams {
    /// Dynamic energy per access, femtojoules.
    pub energy_fj: f64,
    /// Critical-path delay, picoseconds.
    pub delay_ps: f64,
    /// Layout area, square micrometers.
    pub area_um2: f64,
}

/// One 256-STE CAM block (Table 2, "CAMA Bank" row): energy per search
/// access, delay of the search, area of the block.
pub const CAM_BLOCK: ComponentParams = ComponentParams {
    energy_fj: 16780.0,
    delay_ps: 325.0,
    area_um2: 3919.0,
};

/// The 17-bit counter module (Table 2).
pub const COUNTER_MODULE: ComponentParams = ComponentParams {
    energy_fj: 288.0,
    delay_ps: 101.0,
    area_um2: 237.0,
};

/// The 2000-bit bit-vector module (Table 2).
pub const BITVECTOR_MODULE: ComponentParams = ComponentParams {
    energy_fj: 3340.0,
    delay_ps: 71.0,
    area_um2: 6382.0,
};

/// Clock frequency of CAMA-T, which the augmented design preserves (§4.3).
pub const CLOCK_GHZ: f64 = 2.14;

/// Clock period in picoseconds (≈ 467 ps).
pub const CYCLE_PS: f64 = 1000.0 / CLOCK_GHZ;

/// STE columns per CAM block.
pub const STES_PER_CAM_BLOCK: usize = 256;

/// CAM blocks per processing element (Fig. 5: "two 256-STE CAM arrays").
pub const CAM_BLOCKS_PER_PE: usize = 2;

/// STE columns per PE.
pub const STES_PER_PE: usize = STES_PER_CAM_BLOCK * CAM_BLOCKS_PER_PE;

/// Counter modules per PE (Fig. 5: "8 counters").
pub const COUNTERS_PER_PE: usize = 8;

/// Physical bit-vector modules per PE (Fig. 5: "may contain a bit vector").
pub const BITVECTORS_PER_PE: usize = 1;

/// Bits per physical bit-vector module; segments of several small
/// repetitions can share one module (§4.3).
pub const BITS_PER_BITVECTOR: usize = 2000;

/// Processing elements per processing array (Fig. 5).
pub const PES_PER_ARRAY: usize = 8;

/// Processing arrays per bank (Fig. 5).
pub const ARRAYS_PER_BANK: usize = 16;

/// STE capacity of a full bank.
pub const STES_PER_BANK: usize = STES_PER_PE * PES_PER_ARRAY * ARRAYS_PER_BANK;

/// Energy charged per mapped STE column per input byte: every mapped
/// column participates in the CAM search each cycle.
pub fn match_energy_per_column_fj() -> f64 {
    CAM_BLOCK.energy_fj / STES_PER_CAM_BLOCK as f64
}

/// Area of one STE column when prorating CAM blocks (micro-benchmarks).
pub fn area_per_column_um2() -> f64 {
    CAM_BLOCK.area_um2 / STES_PER_CAM_BLOCK as f64
}

/// Energy of one bit-vector module access prorated to `bits` allocated
/// bits (the Fig. 8 micro-benchmark sets the vector length to n).
pub fn bitvector_energy_fj(bits: usize) -> f64 {
    BITVECTOR_MODULE.energy_fj * bits as f64 / BITS_PER_BITVECTOR as f64
}

/// Area of `bits` bit-vector bits when prorating (micro-benchmarks).
pub fn bitvector_area_um2(bits: usize) -> f64 {
    BITVECTOR_MODULE.area_um2 * bits as f64 / BITS_PER_BITVECTOR as f64
}

/// Whether all components fit in one cycle at [`CLOCK_GHZ`] — the paper's
/// claim that counters and bit vectors add no performance penalty (§4.3:
/// matching and counter/bit-vector operations complete within one cycle
/// next to the 325 ps CAM access).
pub fn single_cycle_feasible() -> bool {
    // Worst case: CAM search followed by a module update in the same cycle.
    let module_delay = COUNTER_MODULE.delay_ps.max(BITVECTOR_MODULE.delay_ps);
    CAM_BLOCK.delay_ps + module_delay <= CYCLE_PS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_2_values() {
        assert_eq!(CAM_BLOCK.energy_fj, 16780.0);
        assert_eq!(CAM_BLOCK.delay_ps, 325.0);
        assert_eq!(CAM_BLOCK.area_um2, 3919.0);
        assert_eq!(COUNTER_MODULE.energy_fj, 288.0);
        assert_eq!(COUNTER_MODULE.delay_ps, 101.0);
        assert_eq!(COUNTER_MODULE.area_um2, 237.0);
        assert_eq!(BITVECTOR_MODULE.energy_fj, 3340.0);
        assert_eq!(BITVECTOR_MODULE.delay_ps, 71.0);
        assert_eq!(BITVECTOR_MODULE.area_um2, 6382.0);
    }

    #[test]
    fn hierarchy_capacities() {
        assert_eq!(STES_PER_PE, 512);
        assert_eq!(STES_PER_BANK, 65536);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // deliberate checks of Table 2 constants
    fn timing_closure_at_cama_clock() {
        // 2.14 GHz → 467 ps cycle; all module delays fit.
        assert!((CYCLE_PS - 467.29).abs() < 0.1);
        assert!(single_cycle_feasible());
        assert!(COUNTER_MODULE.delay_ps < CYCLE_PS);
        assert!(BITVECTOR_MODULE.delay_ps < CYCLE_PS);
        assert!(CAM_BLOCK.delay_ps < CYCLE_PS);
    }

    #[test]
    fn derived_energies() {
        // ≈ 65.5 fJ per column per byte — the per-STE match energy that
        // makes the Fig. 8 unfolding line land at ~10⁻¹ nJ/B for n = 1500.
        let per_col = match_energy_per_column_fj();
        assert!((per_col - 65.55).abs() < 0.1, "{per_col}");
        assert!((bitvector_energy_fj(2000) - 3340.0).abs() < 1e-9);
        assert!((bitvector_energy_fj(1000) - 1670.0).abs() < 1e-9);
    }
}
