//! Mapping MNRL networks onto the bank/array/PE hierarchy (Fig. 5).
//!
//! The mapper honors the fixed port-group constraint of the augmented
//! design: a counter/bit-vector module and the STEs wired to its input
//! ports must live in the same PE (ports are hardwired to STE groups of
//! the PE). Modules therefore form *atomic clusters* with their port STEs;
//! clusters and free STEs are packed first-fit in network order — which
//! keeps each rule's chain mostly contiguous, mirroring the efficient
//! mapping algorithm the paper describes — and switch usage is classified
//! by the hierarchy level every connection has to cross.

use crate::cam::column_cost;
use crate::params::{
    ARRAYS_PER_BANK, BITS_PER_BITVECTOR, COUNTERS_PER_PE, PES_PER_ARRAY, STES_PER_PE,
};
use recama_mnrl::{MnrlNetwork, NodeKind, Port};
use std::collections::HashMap;

/// Physical location of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loc {
    /// Bank index.
    pub bank: u32,
    /// Array within the bank.
    pub array: u32,
    /// PE within the array.
    pub pe: u32,
}

impl Loc {
    fn from_pe_index(i: usize) -> Loc {
        let pes_per_bank = PES_PER_ARRAY * ARRAYS_PER_BANK;
        Loc {
            bank: (i / pes_per_bank) as u32,
            array: ((i % pes_per_bank) / PES_PER_ARRAY) as u32,
            pe: (i % PES_PER_ARRAY) as u32,
        }
    }
}

/// Switch-network usage, by the lowest hierarchy level that carries each
/// connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Connections routed inside one PE (local switch).
    pub intra_pe: usize,
    /// Connections between PEs of one array (global switch).
    pub intra_array: usize,
    /// Connections between arrays of one bank.
    pub intra_bank: usize,
    /// Connections crossing banks.
    pub inter_bank: usize,
}

/// Result of placing a network.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Location per node id.
    pub per_node: HashMap<String, Loc>,
    /// CAM columns per STE node id (encoding-dependent, ≥ 1).
    pub columns_per_ste: HashMap<String, usize>,
    /// Total CAM columns consumed.
    pub total_columns: usize,
    /// Number of PEs provisioned.
    pub pe_count: usize,
    /// Number of arrays provisioned.
    pub array_count: usize,
    /// Number of banks provisioned.
    pub bank_count: usize,
    /// Counter modules placed.
    pub counter_count: usize,
    /// Bit-vector segments placed.
    pub bitvector_segments: usize,
    /// Total bit-vector bits used by segments.
    pub bitvector_bits_used: u64,
    /// PEs whose physical 2000-bit module is provisioned.
    pub bitvector_modules: usize,
    /// Switch usage.
    pub edges: EdgeStats,
}

impl Placement {
    /// Unused bits across provisioned physical bit-vector modules — the
    /// "waste" bars of Fig. 10.
    pub fn bitvector_bits_wasted(&self) -> u64 {
        (self.bitvector_modules as u64) * (BITS_PER_BITVECTOR as u64) - self.bitvector_bits_used
    }
}

#[derive(Default, Clone)]
struct PeLoad {
    columns: usize,
    counters: usize,
    bv_bits: u64,
}

impl PeLoad {
    fn fits(&self, add: &PeLoad) -> bool {
        self.columns + add.columns <= STES_PER_PE
            && self.counters + add.counters <= COUNTERS_PER_PE
            && self.bv_bits + add.bv_bits <= BITS_PER_BITVECTOR as u64
    }
    fn add(&mut self, other: &PeLoad) {
        self.columns += other.columns;
        self.counters += other.counters;
        self.bv_bits += other.bv_bits;
    }
}

/// Places `network` onto the hierarchy.
///
/// # Panics
///
/// Panics if a single module cluster exceeds one PE's capacity (more port
/// STEs than a PE can hold — the compiler never emits such clusters).
pub fn place(network: &MnrlNetwork) -> Placement {
    let nodes = network.nodes();
    let n = nodes.len();
    let index: HashMap<&str, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, node)| (node.id.as_str(), i))
        .collect();

    // Union-find over module port edges: module + its port STEs cluster.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    let union = |parent: &mut Vec<usize>, a: usize, b: usize| {
        let ra = find(parent, a);
        let rb = find(parent, b);
        if ra != rb {
            parent[rb] = ra;
        }
    };
    for (i, node) in nodes.iter().enumerate() {
        for conn in &node.connections {
            let j = index[conn.to.as_str()];
            let is_port_edge =
                matches!(conn.to_port, Port::Pre | Port::Fst | Port::Lst | Port::Body)
                    || matches!(conn.from_port, Port::EnFst | Port::EnOut | Port::EnBody);
            if is_port_edge {
                union(&mut parent, i, j);
            }
        }
    }

    // Cluster loads.
    let node_load = |i: usize| -> PeLoad {
        match &nodes[i].kind {
            NodeKind::State { symbol_set } => PeLoad {
                columns: column_cost(symbol_set),
                counters: 0,
                bv_bits: 0,
            },
            NodeKind::Counter { .. } => PeLoad {
                columns: 0,
                counters: 1,
                bv_bits: 0,
            },
            NodeKind::BitVector { size, .. } => PeLoad {
                columns: 0,
                counters: 0,
                bv_bits: u64::from(*size),
            },
        }
    };
    let mut cluster_members: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        cluster_members.entry(root).or_default().push(i);
    }

    // Pack clusters first-fit in order of their first member.
    let mut cluster_order: Vec<(usize, Vec<usize>)> = cluster_members.into_iter().collect();
    cluster_order.sort_by_key(|(_, members)| members[0]);

    let mut pe_loads: Vec<PeLoad> = vec![PeLoad::default()];
    let mut node_pe: Vec<usize> = vec![0; n];
    for (_, members) in &cluster_order {
        let mut load = PeLoad::default();
        for &m in members {
            load.add(&node_load(m));
        }
        let is_atomic = members.len() > 1
            || matches!(
                nodes[members[0]].kind,
                NodeKind::Counter { .. } | NodeKind::BitVector { .. }
            );
        if is_atomic {
            assert!(
                load.fits(&PeLoad::default()),
                "module cluster exceeds PE capacity: {} columns / {} counters / {} bv bits",
                load.columns,
                load.counters,
                load.bv_bits
            );
            let cur = pe_loads.len() - 1;
            let target = if pe_loads[cur].fits(&load) {
                cur
            } else {
                pe_loads.push(PeLoad::default());
                pe_loads.len() - 1
            };
            pe_loads[target].add(&load);
            for &m in members {
                node_pe[m] = target;
            }
        } else {
            // A lone STE (or an STE with a huge class): place column-wise,
            // spilling to a new PE when full.
            let m = members[0];
            let nload = node_load(m);
            let cur = pe_loads.len() - 1;
            let target = if pe_loads[cur].fits(&nload) {
                cur
            } else {
                pe_loads.push(PeLoad::default());
                pe_loads.len() - 1
            };
            pe_loads[target].add(&nload);
            node_pe[m] = target;
        }
    }

    // Materialize locations and stats.
    let mut per_node = HashMap::new();
    let mut columns_per_ste = HashMap::new();
    let mut total_columns = 0usize;
    let mut counter_count = 0usize;
    let mut bitvector_segments = 0usize;
    let mut bitvector_bits_used = 0u64;
    let mut pes_with_bv: Vec<bool> = vec![false; pe_loads.len()];
    for (i, node) in nodes.iter().enumerate() {
        per_node.insert(node.id.clone(), Loc::from_pe_index(node_pe[i]));
        match &node.kind {
            NodeKind::State { symbol_set } => {
                let cols = column_cost(symbol_set);
                columns_per_ste.insert(node.id.clone(), cols);
                total_columns += cols;
            }
            NodeKind::Counter { .. } => counter_count += 1,
            NodeKind::BitVector { size, .. } => {
                bitvector_segments += 1;
                bitvector_bits_used += u64::from(*size);
                pes_with_bv[node_pe[i]] = true;
            }
        }
    }
    let mut edges = EdgeStats::default();
    for (i, node) in nodes.iter().enumerate() {
        let a = Loc::from_pe_index(node_pe[i]);
        for conn in &node.connections {
            let b = Loc::from_pe_index(node_pe[index[conn.to.as_str()]]);
            if a == b {
                edges.intra_pe += 1;
            } else if (a.bank, a.array) == (b.bank, b.array) {
                edges.intra_array += 1;
            } else if a.bank == b.bank {
                edges.intra_bank += 1;
            } else {
                edges.inter_bank += 1;
            }
        }
    }
    let pe_count = pe_loads.len();
    Placement {
        per_node,
        columns_per_ste,
        total_columns,
        pe_count,
        array_count: pe_count.div_ceil(PES_PER_ARRAY),
        bank_count: pe_count.div_ceil(PES_PER_ARRAY * ARRAYS_PER_BANK),
        counter_count,
        bitvector_segments,
        bitvector_bits_used,
        bitvector_modules: pes_with_bv.iter().filter(|&&b| b).count(),
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recama_compiler::{compile, CompileOptions};
    use recama_syntax::parse;

    fn network_for(pattern: &str) -> MnrlNetwork {
        let parsed = parse(pattern).unwrap();
        compile(&parsed.for_stream(), &CompileOptions::default()).network
    }

    #[test]
    fn small_rule_fits_one_pe() {
        let net = network_for("^a(bc){3,7}d");
        let p = place(&net);
        assert_eq!(p.pe_count, 1);
        assert_eq!(p.counter_count, 1);
        assert_eq!(
            p.edges.intra_array + p.edges.intra_bank + p.edges.inter_bank,
            0
        );
        assert!(p.edges.intra_pe > 0);
    }

    #[test]
    fn module_stays_with_port_stes() {
        let net = network_for("^x[ab]{3,5}y");
        let p = place(&net);
        let module_loc = net
            .nodes()
            .iter()
            .find(|n| !matches!(n.kind, NodeKind::State { .. }))
            .map(|n| p.per_node[&n.id])
            .expect("module");
        // All port-connected STEs share the module's PE.
        for node in net.nodes() {
            for conn in &node.connections {
                if matches!(conn.to_port, Port::Pre | Port::Fst | Port::Lst | Port::Body) {
                    assert_eq!(p.per_node[&node.id], module_loc);
                }
            }
        }
    }

    #[test]
    fn large_unfolded_rule_spills_pes() {
        use recama_nca::UnfoldPolicy;
        let parsed = parse("^a{1500}").unwrap();
        let out = compile(
            &parsed.for_stream(),
            &CompileOptions {
                unfold: UnfoldPolicy::All,
                ..Default::default()
            },
        );
        let p = place(&out.network);
        assert!(p.total_columns >= 1500);
        assert_eq!(p.pe_count, 1500usize.div_ceil(STES_PER_PE));
        assert!(p.edges.intra_array > 0, "chain must cross PEs");
    }

    #[test]
    fn bitvector_waste_accounting() {
        let net = network_for("a{64}"); // Σ*a{64} → bit vector of 64 bits
        let p = place(&net);
        assert_eq!(p.bitvector_segments, 1);
        assert_eq!(p.bitvector_bits_used, 64);
        assert_eq!(p.bitvector_modules, 1);
        assert_eq!(p.bitvector_bits_wasted(), 2000 - 64);
    }

    #[test]
    fn segments_share_physical_module() {
        // Two small bit vectors in one PE share the 2000-bit module.
        let patterns: Vec<String> = vec!["a{40}".into(), "b{60}".into()];
        let ruleset = recama_compiler::compile_ruleset(&patterns, &CompileOptions::default());
        let p = place(&ruleset.network);
        assert_eq!(p.bitvector_segments, 2);
        assert_eq!(p.bitvector_bits_used, 100);
        assert_eq!(p.bitvector_modules, 1, "segments should share one module");
        assert_eq!(p.bitvector_bits_wasted(), 1900);
    }

    #[test]
    fn column_costs_respect_encoding() {
        let net = network_for("^[a-z]x");
        let p = place(&net);
        // [a-z] costs 2 columns under the nibble encoding; 'x' costs 1.
        assert_eq!(p.total_columns, 3);
    }

    #[test]
    fn hierarchy_rollup() {
        let loc = Loc::from_pe_index(0);
        assert_eq!(
            loc,
            Loc {
                bank: 0,
                array: 0,
                pe: 0
            }
        );
        let loc = Loc::from_pe_index(PES_PER_ARRAY);
        assert_eq!(
            loc,
            Loc {
                bank: 0,
                array: 1,
                pe: 0
            }
        );
        let loc = Loc::from_pe_index(PES_PER_ARRAY * ARRAYS_PER_BANK);
        assert_eq!(
            loc,
            Loc {
                bank: 1,
                array: 0,
                pe: 0
            }
        );
    }
}
