//! Bank-aware sharding of compiled rulesets.
//!
//! At full ruleset scale (Table 1: 5839 Snort rules) one merged machine
//! image exceeds the STE/counter/bit-vector capacity of a single CAMA
//! bank (Fig. 5), so a deployment partitions the set into *shards* whose
//! sub-networks each fit one bank — and the software twin mirrors the
//! partition with one engine per shard on its own thread.
//!
//! * [`RuleCost`] measures a rule's footprint with the same estimates the
//!   mapper ([`crate::place()`]) uses: CAM columns under the two-nibble
//!   encoding, counter modules, bit-vector bits;
//! * [`ShardBudget`] is the capacity of one bank (or any coarser unit) in
//!   those terms, derived from the [`crate::params`] hierarchy constants;
//! * [`ShardPlan::plan`] partitions rules under a [`ShardPolicy`]. Plans
//!   are *order-preserving* (every shard is a contiguous, ascending index
//!   range), so merged per-shard reports can be recombined with a k-way
//!   ordered merge and stay byte-identical to the unsharded scan.

use crate::params::{
    ARRAYS_PER_BANK, BITS_PER_BITVECTOR, BITVECTORS_PER_PE, COUNTERS_PER_PE, PES_PER_ARRAY,
    STES_PER_BANK,
};
use crate::place::{place, Placement};
use recama_mnrl::MnrlNetwork;

/// Resource footprint of one rule (or the running total of one shard),
/// in the units the bank hierarchy is provisioned in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleCost {
    /// CAM columns consumed by the STEs (encoding-dependent, ≥ 1 each).
    pub columns: usize,
    /// Counter modules.
    pub counters: usize,
    /// Bit-vector bits across all segments.
    pub bitvector_bits: u64,
}

impl RuleCost {
    /// The footprint of `network`, measured by the mapper itself.
    pub fn of_network(network: &MnrlNetwork) -> RuleCost {
        RuleCost::of_placement(&place(network))
    }

    /// The footprint recorded by an existing [`Placement`].
    pub fn of_placement(p: &Placement) -> RuleCost {
        RuleCost {
            columns: p.total_columns,
            counters: p.counter_count,
            bitvector_bits: p.bitvector_bits_used,
        }
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &RuleCost) -> RuleCost {
        RuleCost {
            columns: self.columns + other.columns,
            counters: self.counters + other.counters,
            bitvector_bits: self.bitvector_bits + other.bitvector_bits,
        }
    }

    /// Whether the footprint fits within `budget`.
    pub fn fits(&self, budget: &ShardBudget) -> bool {
        self.columns <= budget.columns
            && self.counters <= budget.counters
            && self.bitvector_bits <= budget.bitvector_bits
    }

    /// Scalar balance weight used when splitting into equal-cost shards:
    /// CAM columns dominate both image size and software frontier work,
    /// so a rule weighs at least one column.
    fn weight(&self) -> u64 {
        (self.columns.max(1)) as u64
    }
}

/// Capacity of one shard. [`ShardBudget::bank`] is the headline
/// configuration: one CAMA bank of the Fig. 5 hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardBudget {
    /// CAM columns available (STE capacity).
    pub columns: usize,
    /// Counter modules available.
    pub counters: usize,
    /// Bit-vector bits available across physical modules.
    pub bitvector_bits: u64,
}

impl ShardBudget {
    /// One full CAMA bank: 16 arrays × 8 PEs of 512 STE columns,
    /// 8 counters and one 2000-bit vector module per PE.
    pub fn bank() -> ShardBudget {
        let pes = PES_PER_ARRAY * ARRAYS_PER_BANK;
        ShardBudget {
            columns: STES_PER_BANK,
            counters: COUNTERS_PER_PE * pes,
            bitvector_bits: (BITS_PER_BITVECTOR * BITVECTORS_PER_PE * pes) as u64,
        }
    }

    /// `n` banks treated as one shard unit (n ≥ 1).
    pub fn banks(n: usize) -> ShardBudget {
        let one = ShardBudget::bank();
        let n = n.max(1);
        ShardBudget {
            columns: one.columns * n,
            counters: one.counters * n,
            bitvector_bits: one.bitvector_bits * n as u64,
        }
    }

    /// A budget nothing exceeds (the single-shard degenerate case).
    pub fn unbounded() -> ShardBudget {
        ShardBudget {
            columns: usize::MAX,
            counters: usize::MAX,
            bitvector_bits: u64::MAX,
        }
    }
}

/// How to partition a ruleset into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Everything in one shard — the single-image behavior.
    Single,
    /// Greedy order-preserving packing under a per-shard capacity: a new
    /// shard opens whenever the next rule would overflow the budget. A
    /// rule that alone exceeds the budget gets a shard of its own (it
    /// spills across banks, which the placement then reports).
    Banked(ShardBudget),
    /// Exactly `n` contiguous shards of roughly equal cost — the software
    /// parallelism knob (one engine per core), ignoring bank capacity.
    /// Produces `min(n, rules)` shards, at least one.
    Fixed(usize),
}

impl Default for ShardPolicy {
    /// One CAMA bank per shard.
    fn default() -> ShardPolicy {
        ShardPolicy::Banked(ShardBudget::bank())
    }
}

/// A partition of rule indices into contiguous shards. Always holds at
/// least one shard (possibly empty, for the empty ruleset), and every
/// shard's members are strictly ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Partitions `costs` (one entry per rule, in rule order) under
    /// `policy`.
    pub fn plan(costs: &[RuleCost], policy: ShardPolicy) -> ShardPlan {
        match policy {
            ShardPolicy::Single => ShardPlan::single(costs.len()),
            ShardPolicy::Banked(budget) => ShardPlan::next_fit(costs, &budget),
            ShardPolicy::Fixed(n) => ShardPlan::contiguous(costs, n),
        }
    }

    /// The trivial plan: one shard holding rules `0..rules`.
    pub fn single(rules: usize) -> ShardPlan {
        ShardPlan {
            shards: vec![(0..rules).collect()],
        }
    }

    fn next_fit(costs: &[RuleCost], budget: &ShardBudget) -> ShardPlan {
        let mut shards = Vec::new();
        let mut current = Vec::new();
        let mut load = RuleCost::default();
        for (i, cost) in costs.iter().enumerate() {
            if !current.is_empty() && !load.plus(cost).fits(budget) {
                shards.push(std::mem::take(&mut current));
                load = RuleCost::default();
            }
            current.push(i);
            load = load.plus(cost);
        }
        shards.push(current); // ≥ 1 shard even for the empty set
        ShardPlan { shards }
    }

    fn contiguous(costs: &[RuleCost], n: usize) -> ShardPlan {
        let n = n.max(1);
        if costs.is_empty() {
            return ShardPlan::single(0);
        }
        let total: u128 = costs.iter().map(|c| u128::from(c.weight())).sum();
        let mut shards = Vec::with_capacity(n.min(costs.len()));
        let mut current = Vec::new();
        let mut cum: u128 = 0;
        for (i, cost) in costs.iter().enumerate() {
            current.push(i);
            cum += u128::from(cost.weight());
            let closed = shards.len() as u128;
            let remaining_rules = costs.len() - (i + 1);
            // Close at the ideal cost boundary — or early, when the rules
            // left are exactly enough to make every remaining shard
            // nonempty (guarantees min(n, rules) shards even if all the
            // weight sits at the end).
            let balanced = cum * n as u128 >= total * (closed + 1);
            let forced = remaining_rules < n - shards.len();
            if (balanced || forced) && shards.len() + 1 < n && remaining_rules > 0 {
                shards.push(std::mem::take(&mut current));
            }
        }
        shards.push(current);
        ShardPlan { shards }
    }

    /// Number of shards (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, each a strictly ascending list of rule indices.
    pub fn shards(&self) -> &[Vec<usize>] {
        &self.shards
    }

    /// Rule indices of shard `i`.
    pub fn members(&self, i: usize) -> &[usize] {
        &self.shards[i]
    }

    /// Total number of rules across all shards.
    pub fn rule_count(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Aggregate cost per shard (indexed like the plan), for reporting.
    pub fn shard_costs(&self, costs: &[RuleCost]) -> Vec<RuleCost> {
        self.shards
            .iter()
            .map(|members| {
                members
                    .iter()
                    .fold(RuleCost::default(), |acc, &i| acc.plus(&costs[i]))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recama_compiler::{compile, CompileOptions};
    use recama_syntax::parse;

    fn cost_of(pattern: &str) -> RuleCost {
        let parsed = parse(pattern).unwrap();
        let out = compile(&parsed.for_stream(), &CompileOptions::default());
        RuleCost::of_network(&out.network)
    }

    #[test]
    fn bank_budget_matches_hierarchy() {
        let b = ShardBudget::bank();
        assert_eq!(b.columns, 65536);
        assert_eq!(b.counters, 1024);
        assert_eq!(b.bitvector_bits, 256_000);
        let two = ShardBudget::banks(2);
        assert_eq!(two.columns, 2 * b.columns);
    }

    #[test]
    fn rule_costs_follow_the_mapper() {
        // ^[a-z]x: [a-z] costs 2 columns under the nibble encoding, x costs 1.
        let c = cost_of("^[a-z]x");
        assert_eq!(c.columns, 3);
        assert_eq!((c.counters, c.bitvector_bits), (0, 0));
        // ^a(bc){3,7}d: one counter module.
        let c = cost_of("^a(bc){3,7}d");
        assert_eq!(c.counters, 1);
        // a{64} in streaming form: one 64-bit bit-vector segment.
        let c = cost_of("a{64}");
        assert_eq!(c.bitvector_bits, 64);
    }

    #[test]
    fn small_set_fits_one_bank_shard() {
        let costs: Vec<RuleCost> = ["^abc", "^a{9}b", "k[xy]{3}z"]
            .iter()
            .map(|p| cost_of(p))
            .collect();
        let plan = ShardPlan::plan(&costs, ShardPolicy::default());
        assert_eq!(plan.shard_count(), 1);
        assert_eq!(plan.members(0), &[0, 1, 2]);
    }

    #[test]
    fn tight_budget_splits_contiguously_within_budget() {
        let costs = vec![
            RuleCost {
                columns: 6,
                ..Default::default()
            };
            10
        ];
        let budget = ShardBudget {
            columns: 16,
            counters: 8,
            bitvector_bits: 2000,
        };
        let plan = ShardPlan::plan(&costs, ShardPolicy::Banked(budget));
        assert_eq!(plan.shard_count(), 5); // 2 rules of 6 columns per shard
        assert_eq!(plan.rule_count(), 10);
        let mut next = 0usize;
        for (si, members) in plan.shards().iter().enumerate() {
            assert!(!members.is_empty());
            for &m in members {
                assert_eq!(m, next, "shards must be contiguous and ordered");
                next += 1;
            }
            let load = plan.shard_costs(&costs)[si];
            assert!(load.fits(&budget), "shard {si} overflows: {load:?}");
        }
    }

    #[test]
    fn oversize_rule_gets_its_own_shard() {
        let small = RuleCost {
            columns: 4,
            ..Default::default()
        };
        let huge = RuleCost {
            columns: 1000,
            ..Default::default()
        };
        let budget = ShardBudget {
            columns: 10,
            counters: 8,
            bitvector_bits: 2000,
        };
        let plan = ShardPlan::plan(&[small, huge, small], ShardPolicy::Banked(budget));
        assert_eq!(plan.shards(), &[vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn counter_and_bitvector_capacity_also_bind() {
        let counting = RuleCost {
            columns: 1,
            counters: 3,
            bitvector_bits: 0,
        };
        let budget = ShardBudget {
            columns: 1000,
            counters: 4,
            bitvector_bits: 2000,
        };
        let plan = ShardPlan::plan(&[counting; 4], ShardPolicy::Banked(budget));
        assert_eq!(plan.shard_count(), 4, "counter capacity must bind");
    }

    #[test]
    fn fixed_split_is_balanced_and_bounded() {
        let costs = vec![
            RuleCost {
                columns: 5,
                ..Default::default()
            };
            12
        ];
        let plan = ShardPlan::plan(&costs, ShardPolicy::Fixed(4));
        assert_eq!(plan.shard_count(), 4);
        for members in plan.shards() {
            assert_eq!(members.len(), 3, "equal costs split evenly");
        }
        // More shards than rules: one rule each.
        let plan = ShardPlan::plan(&costs[..2], ShardPolicy::Fixed(8));
        assert_eq!(plan.shard_count(), 2);
    }

    #[test]
    fn fixed_split_honors_count_under_skewed_weights() {
        // All the weight at the end: the balance boundary is never hit
        // before the last rule, so closing must be forced.
        let light = RuleCost {
            columns: 1,
            ..Default::default()
        };
        let heavy = RuleCost {
            columns: 100,
            ..Default::default()
        };
        let plan = ShardPlan::plan(&[light, light, heavy], ShardPolicy::Fixed(3));
        assert_eq!(plan.shards(), &[vec![0], vec![1], vec![2]]);
        // Weight at the front: balance closes early, the tail still
        // spreads over the remaining shards.
        let plan = ShardPlan::plan(&[heavy, light, light], ShardPolicy::Fixed(3));
        assert_eq!(plan.shards(), &[vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn empty_set_has_one_empty_shard() {
        for policy in [
            ShardPolicy::Single,
            ShardPolicy::default(),
            ShardPolicy::Fixed(4),
        ] {
            let plan = ShardPlan::plan(&[], policy);
            assert_eq!(plan.shard_count(), 1);
            assert!(plan.members(0).is_empty());
        }
    }
}
