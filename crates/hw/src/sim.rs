//! Cycle-level functional simulation of the augmented CAMA (the modified
//! VASim of §4.3).
//!
//! Each cycle processes one input byte in the accelerator's two phases:
//!
//! 1. **state matching** — an STE is *active* iff it was enabled by the
//!    previous cycle (or is start-enabled at cycle 0) and the input byte is
//!    in its class;
//! 2. **state transition** — active STEs enable their successors through
//!    the switch network, and drive the counter/bit-vector module ports;
//!    module outputs (`en_fst`/`en_body`/`en_out`) enable further STEs for
//!    the next cycle.
//!
//! Reports fire on active reporting STEs and on reporting modules whose
//! `en_out` condition holds — one report stream per cycle, exactly what the
//! reference NCA engines produce for the same pattern, which the
//! integration tests exploit.

use crate::modules::{BitVectorModule, CounterModule};
use recama_mnrl::{Enable, MnrlNetwork, NodeKind, Port};
use recama_syntax::ByteClass;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InPort {
    Pre,
    Fst,
    Lst,
    Body,
}

struct SteInfo {
    class: ByteClass,
    start: bool,
    report: bool,
    ste_targets: Vec<usize>,
    module_inputs: Vec<(usize, InPort)>,
}

enum ModuleState {
    Counter(CounterModule),
    BitVector(BitVectorModule),
}

struct ModInfo {
    start: bool,
    report: bool,
    loop_targets: Vec<usize>,
    out_targets: Vec<usize>,
}

/// Per-run activity counters for the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Activity {
    /// Input bytes processed.
    pub cycles: u64,
    /// Total STE activations (for switch-activity statistics).
    pub ste_activations: u64,
    /// Reports raised.
    pub reports: u64,
}

/// The augmented-CAMA simulator for one MNRL network.
///
/// # Examples
///
/// ```
/// use recama_compiler::{compile, CompileOptions};
/// use recama_hw::HwSimulator;
///
/// let parsed = recama_syntax::parse("ab{2,3}c").unwrap();
/// let out = compile(&parsed.for_stream(), &CompileOptions::default());
/// let mut hw = HwSimulator::new(&out.network);
/// assert_eq!(hw.match_ends(b"xabbc_abbbc"), vec![5, 11]);
/// ```
pub struct HwSimulator<'a> {
    #[allow(dead_code)]
    network: &'a MnrlNetwork,
    stes: Vec<SteInfo>,
    modules: Vec<ModuleState>,
    mod_info: Vec<ModInfo>,
    enabled: Vec<bool>,
    active: Vec<bool>,
    activity: Activity,
    /// Per-module active-cycle counts are read from the module models.
    bv_sizes: Vec<u32>,
    /// Node ids parallel to `stes` / `modules` (for attribution).
    ste_ids: Vec<String>,
    mod_ids: Vec<String>,
    /// MNRL report codes parallel to `stes` / `modules` (rule ids in
    /// multi-pattern images).
    ste_report_ids: Vec<Option<u32>>,
    mod_report_ids: Vec<Option<u32>>,
    /// Per-STE / per-module-output activation counts (switch model input).
    ste_activations: Vec<u64>,
    mod_output_events: Vec<u64>,
    /// Report node indices of the most recent cycle (STE-index space and
    /// module-index space respectively).
    last_ste_reports: Vec<usize>,
    last_mod_reports: Vec<usize>,
}

impl<'a> HwSimulator<'a> {
    /// Builds a simulator for `network`.
    ///
    /// # Panics
    ///
    /// Panics if the network fails [`MnrlNetwork::validate`].
    pub fn new(network: &'a MnrlNetwork) -> HwSimulator<'a> {
        let problems = network.validate();
        assert!(problems.is_empty(), "invalid network: {problems:?}");

        let mut ste_index: HashMap<&str, usize> = HashMap::new();
        let mut mod_index: HashMap<&str, usize> = HashMap::new();
        let mut ste_ids: Vec<String> = Vec::new();
        let mut mod_ids: Vec<String> = Vec::new();
        let mut ste_report_ids: Vec<Option<u32>> = Vec::new();
        let mut mod_report_ids: Vec<Option<u32>> = Vec::new();
        for node in network.nodes() {
            match node.kind {
                NodeKind::State { .. } => {
                    let i = ste_index.len();
                    ste_index.insert(node.id.as_str(), i);
                    ste_ids.push(node.id.clone());
                    ste_report_ids.push(node.report_id);
                }
                _ => {
                    let i = mod_index.len();
                    mod_index.insert(node.id.as_str(), i);
                    mod_ids.push(node.id.clone());
                    mod_report_ids.push(node.report_id);
                }
            }
        }

        let mut stes: Vec<SteInfo> = Vec::with_capacity(ste_index.len());
        let mut modules: Vec<ModuleState> = Vec::with_capacity(mod_index.len());
        let mut mod_info: Vec<ModInfo> = Vec::with_capacity(mod_index.len());
        let mut bv_sizes = Vec::new();
        for node in network.nodes() {
            match &node.kind {
                NodeKind::State { symbol_set } => {
                    let mut info = SteInfo {
                        class: *symbol_set,
                        start: node.enable == Enable::OnStartAndActivateIn,
                        report: node.report,
                        ste_targets: Vec::new(),
                        module_inputs: Vec::new(),
                    };
                    for conn in &node.connections {
                        match conn.to_port {
                            Port::Main => info.ste_targets.push(ste_index[conn.to.as_str()]),
                            Port::Pre => info
                                .module_inputs
                                .push((mod_index[conn.to.as_str()], InPort::Pre)),
                            Port::Fst => info
                                .module_inputs
                                .push((mod_index[conn.to.as_str()], InPort::Fst)),
                            Port::Lst => info
                                .module_inputs
                                .push((mod_index[conn.to.as_str()], InPort::Lst)),
                            Port::Body => info
                                .module_inputs
                                .push((mod_index[conn.to.as_str()], InPort::Body)),
                            other => panic!("STE output wired to {other}"),
                        }
                    }
                    stes.push(info);
                }
                NodeKind::Counter { min, max } => {
                    let start = node.enable == Enable::OnStartAndActivateIn;
                    modules.push(ModuleState::Counter(CounterModule::new(*min, *max, start)));
                    mod_info.push(Self::collect_mod_info(node, &ste_index));
                }
                NodeKind::BitVector { size, lo, hi } => {
                    let start = node.enable == Enable::OnStartAndActivateIn;
                    modules.push(ModuleState::BitVector(BitVectorModule::new(
                        *size, *lo, *hi, start,
                    )));
                    bv_sizes.push(*size);
                    mod_info.push(Self::collect_mod_info(node, &ste_index));
                }
            }
        }
        let n = stes.len();
        let m = modules.len();
        let mut sim = HwSimulator {
            network,
            stes,
            modules,
            mod_info,
            enabled: vec![false; n],
            active: vec![false; n],
            activity: Activity::default(),
            bv_sizes,
            ste_ids,
            mod_ids,
            ste_report_ids,
            mod_report_ids,
            ste_activations: vec![0; n],
            mod_output_events: vec![0; m],
            last_ste_reports: Vec::new(),
            last_mod_reports: Vec::new(),
        };
        sim.reset();
        sim
    }

    fn collect_mod_info(node: &recama_mnrl::Node, ste_index: &HashMap<&str, usize>) -> ModInfo {
        let mut info = ModInfo {
            start: node.enable == Enable::OnStartAndActivateIn,
            report: node.report,
            loop_targets: Vec::new(),
            out_targets: Vec::new(),
        };
        for conn in &node.connections {
            match conn.from_port {
                Port::EnFst | Port::EnBody => info.loop_targets.push(ste_index[conn.to.as_str()]),
                Port::EnOut => info.out_targets.push(ste_index[conn.to.as_str()]),
                other => panic!("module output on port {other}"),
            }
        }
        info
    }

    /// Returns to the power-on configuration.
    pub fn reset(&mut self) {
        for (i, ste) in self.stes.iter().enumerate() {
            self.enabled[i] = ste.start;
            self.active[i] = false;
        }
        for (m, info) in self.modules.iter_mut().zip(&self.mod_info) {
            match m {
                ModuleState::Counter(c) => c.reset(info.start),
                ModuleState::BitVector(b) => b.reset(info.start),
            }
        }
        self.activity = Activity::default();
        self.ste_activations.iter_mut().for_each(|c| *c = 0);
        self.mod_output_events.iter_mut().for_each(|c| *c = 0);
        self.last_ste_reports.clear();
        self.last_mod_reports.clear();
    }

    /// Processes one byte; returns whether any report fired this cycle.
    pub fn step(&mut self, byte: u8) -> bool {
        self.activity.cycles += 1;
        let n = self.stes.len();
        let m = self.modules.len();

        // Phase 1: state matching.
        self.last_ste_reports.clear();
        self.last_mod_reports.clear();
        let mut report = false;
        for i in 0..n {
            let a = self.enabled[i] && self.stes[i].class.contains(byte);
            self.active[i] = a;
            if a {
                self.activity.ste_activations += 1;
                self.ste_activations[i] += 1;
                if self.stes[i].report {
                    report = true;
                    self.last_ste_reports.push(i);
                }
            }
        }

        // Phase 2: state transition.
        let mut next_enabled = vec![false; n];
        let mut pre_now = vec![false; m];
        let mut fst_now = vec![false; m];
        let mut lst_now = vec![false; m];
        let mut body_now = vec![false; m];
        for i in 0..n {
            if !self.active[i] {
                continue;
            }
            for &t in &self.stes[i].ste_targets {
                next_enabled[t] = true;
            }
            for &(mi, port) in &self.stes[i].module_inputs {
                match port {
                    InPort::Pre => pre_now[mi] = true,
                    InPort::Fst => fst_now[mi] = true,
                    InPort::Lst => lst_now[mi] = true,
                    InPort::Body => body_now[mi] = true,
                }
            }
        }
        for mi in 0..m {
            let outputs = match &mut self.modules[mi] {
                ModuleState::Counter(c) => c.cycle(pre_now[mi], fst_now[mi], lst_now[mi]),
                ModuleState::BitVector(b) => b.cycle(pre_now[mi], body_now[mi]),
            };
            if outputs.en_loop {
                for &t in &self.mod_info[mi].loop_targets {
                    next_enabled[t] = true;
                }
            }
            if outputs.en_out {
                for &t in &self.mod_info[mi].out_targets {
                    next_enabled[t] = true;
                }
                if self.mod_info[mi].report {
                    report = true;
                    self.last_mod_reports.push(mi);
                }
            }
            if outputs.en_out || outputs.en_loop {
                self.mod_output_events[mi] += 1;
            }
        }
        self.enabled = next_enabled;
        if report {
            self.activity.reports += 1;
        }
        report
    }

    /// Runs the whole input; returns the 1-based end positions of reports
    /// (the accelerator's report stream). Note that, unlike the software
    /// engines, hardware cannot report "before the first symbol", so an
    /// empty-string match is not represented.
    pub fn match_ends(&mut self, input: &[u8]) -> Vec<usize> {
        self.reset();
        let mut ends = Vec::new();
        for (i, &b) in input.iter().enumerate() {
            if self.step(b) {
                ends.push(i + 1);
            }
        }
        ends
    }

    /// Activity counters for the current run.
    pub fn activity(&self) -> Activity {
        self.activity
    }

    /// The report node ids that fired in the most recent cycle — the
    /// accelerator's report vector, attributing each report event to its
    /// rule (ruleset networks prefix node ids with `r{i}_`).
    pub fn last_reporters(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .last_ste_reports
            .iter()
            .map(|&i| self.ste_ids[i].as_str())
            .chain(
                self.last_mod_reports
                    .iter()
                    .map(|&i| self.mod_ids[i].as_str()),
            )
            .collect();
        out.sort_unstable();
        out
    }

    /// The MNRL report codes (rule ids) that fired in the most recent
    /// cycle, deduplicated and ascending — the accelerator's report
    /// vector for multi-pattern machine images, whose reporting nodes are
    /// stamped with their rule id at merge time.
    pub fn last_report_ids(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .last_ste_reports
            .iter()
            .filter_map(|&i| self.ste_report_ids[i])
            .chain(
                self.last_mod_reports
                    .iter()
                    .filter_map(|&i| self.mod_report_ids[i]),
            )
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Runs `input` and returns `(rule id, end offset)` report events in
    /// stream order — the per-rule view of the report stream.
    pub fn match_ends_by_rule(&mut self, input: &[u8]) -> Vec<(u32, usize)> {
        self.reset();
        let mut out = Vec::new();
        for (i, &b) in input.iter().enumerate() {
            if self.step(b) {
                out.extend(self.last_report_ids().into_iter().map(|rid| (rid, i + 1)));
            }
        }
        out
    }

    /// Runs `input` and returns, for every cycle with reports, the end
    /// offset and the reporting node ids.
    pub fn match_details(&mut self, input: &[u8]) -> Vec<(usize, Vec<String>)> {
        self.reset();
        let mut out = Vec::new();
        for (i, &b) in input.iter().enumerate() {
            if self.step(b) {
                out.push((
                    i + 1,
                    self.last_reporters()
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                ));
            }
        }
        out
    }

    /// Per-node activation counts (STEs) and output-event counts (modules)
    /// since the last reset, keyed by node id — the input of the
    /// switch-network energy model.
    pub fn activation_counts(&self) -> HashMap<String, u64> {
        let mut out = HashMap::new();
        for (i, id) in self.ste_ids.iter().enumerate() {
            out.insert(id.clone(), self.ste_activations[i]);
        }
        for (i, id) in self.mod_ids.iter().enumerate() {
            out.insert(id.clone(), self.mod_output_events[i]);
        }
        out
    }

    /// Per-module (kind, active cycles, bit width) for the energy model:
    /// counters report width 0; bit vectors their segment size.
    pub fn module_activity(&self) -> Vec<(bool, u64, u32)> {
        let mut bv_i = 0;
        self.modules
            .iter()
            .map(|m| match m {
                ModuleState::Counter(c) => (true, c.active_cycles(), 0),
                ModuleState::BitVector(b) => {
                    let size = self.bv_sizes[bv_i];
                    bv_i += 1;
                    (false, b.active_cycles(), size.max(b.bits_used()))
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recama_compiler::{compile, CompileOptions};
    use recama_nca::{CompiledEngine, Engine};
    use recama_syntax::parse;

    fn check_equivalence(pattern: &str, inputs: &[&[u8]]) {
        let parsed = parse(pattern).unwrap();
        let stream = parsed.for_stream();
        let out = compile(&stream, &CompileOptions::default());
        let mut hw = HwSimulator::new(&out.network);
        let mut sw = CompiledEngine::conservative(&out.nca);
        for input in inputs {
            let hw_ends = hw.match_ends(input);
            let sw_ends: Vec<usize> = sw
                .match_ends(input)
                .into_iter()
                .filter(|&e| e > 0)
                .collect();
            assert_eq!(
                hw_ends,
                sw_ends,
                "{pattern} diverges on {:?}",
                String::from_utf8_lossy(input)
            );
        }
    }

    #[test]
    fn counter_module_path_matches_reference() {
        check_equivalence(
            "^a(bc){2,3}d",
            &[b"abcbcd", b"abcd", b"abcbcbcd", b"abcbcbcbcd", b"abcbc"],
        );
    }

    #[test]
    fn bitvector_path_matches_reference() {
        check_equivalence(
            "a{3,5}",
            &[
                b"aaa",
                b"aaaa",
                b"aaaaaa",
                b"xxaaa",
                b"aaxaaa",
                b"aaaaaaaaaa",
            ],
        );
    }

    #[test]
    fn fig7_shape_matches_reference() {
        check_equivalence(
            "^[ab]*a[ab]{2,4}b",
            &[b"aabb", b"ababab", b"babbab", b"aaaabbbb", b"abbbbb", b"bb"],
        );
    }

    #[test]
    fn unfolded_path_matches_reference() {
        use recama_nca::UnfoldPolicy;
        let parsed = parse("a{3,5}").unwrap();
        let out = compile(
            &parsed.for_stream(),
            &CompileOptions {
                unfold: UnfoldPolicy::All,
                ..Default::default()
            },
        );
        let mut hw = HwSimulator::new(&out.network);
        let mut sw = CompiledEngine::conservative(&out.nca);
        for input in [&b"aaa"[..], b"aaaaa", b"xaaaax", b"aa"] {
            let sw_ends: Vec<usize> = sw
                .match_ends(input)
                .into_iter()
                .filter(|&e| e > 0)
                .collect();
            assert_eq!(hw.match_ends(input), sw_ends);
        }
    }

    #[test]
    fn unbounded_counter_module() {
        check_equivalence("^x[ab]{3,}y", &[b"xabay", b"xaby", b"xababababy", b"xy"]);
    }

    #[test]
    fn multiple_rules_report_independently() {
        let patterns: Vec<String> = vec!["^ab{2}c".into(), "xyz".into()];
        let rs = recama_compiler::compile_ruleset(&patterns, &CompileOptions::default());
        let mut hw = HwSimulator::new(&rs.network);
        let ends = hw.match_ends(b"abbc..xyz");
        assert_eq!(ends, vec![4, 9]);
    }

    #[test]
    fn report_ids_attribute_rules() {
        let patterns: Vec<String> = vec![
            "^ab{2}c".into(),
            "xyz".into(),
            "a{10}".into(),
            "c..x".into(),
        ];
        let rs = recama_compiler::compile_ruleset(&patterns, &CompileOptions::default());
        let mut hw = HwSimulator::new(&rs.network);
        let by_rule = hw.match_ends_by_rule(b"abbc..xyz");
        // Rule 0 at 4 (counter module report); rule 3 spans the boundary
        // (c..x at 7); rule 1 at 9.
        assert_eq!(by_rule, vec![(0, 4), (3, 7), (1, 9)]);
    }

    #[test]
    fn activity_counters_populate() {
        let parsed = parse("^a{3}b").unwrap();
        let out = compile(&parsed.for_stream(), &CompileOptions::default());
        let mut hw = HwSimulator::new(&out.network);
        hw.match_ends(b"aaab");
        let act = hw.activity();
        assert_eq!(act.cycles, 4);
        assert!(act.ste_activations >= 4);
        assert_eq!(act.reports, 1);
        let mods = hw.module_activity();
        assert_eq!(mods.len(), 1);
        assert!(mods[0].1 > 0, "counter must show activity");
    }
}
