//! The reduced-crossbar switch-network model.
//!
//! CAMA routes state-transition signals through a hierarchy of switches
//! (Fig. 5): two *local* switches inside each PE, one *global* switch per
//! processing array, and higher-level wiring between arrays and banks.
//! Table 2 folds switch energy into the bank access figure, so this model
//! is an **optional refinement**: per activated STE, each outgoing
//! connection is charged by the lowest hierarchy level that can route it.
//!
//! Default per-signal energies are expressed as fractions of one CAM block
//! access (16 780 fJ): 0.5% local, 2% intra-array, 4% intra-bank, 8%
//! inter-bank — wire/crossbar energy grows with distance. They are
//! estimates (documented in DESIGN.md §4); the figure-level comparisons do
//! not depend on them, which `cost::tests` checks by re-running Fig. 8
//! comparisons with switches enabled.

use crate::params::CAM_BLOCK;
use crate::place::{Loc, Placement};
use recama_mnrl::MnrlNetwork;
use std::collections::HashMap;

/// Per-signal switch energies (femtojoules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchParams {
    /// Within one PE (local switch).
    pub local_fj: f64,
    /// Between PEs of one array (global switch).
    pub intra_array_fj: f64,
    /// Between arrays of one bank.
    pub intra_bank_fj: f64,
    /// Between banks.
    pub inter_bank_fj: f64,
}

impl Default for SwitchParams {
    fn default() -> Self {
        SwitchParams {
            local_fj: CAM_BLOCK.energy_fj * 0.005,
            intra_array_fj: CAM_BLOCK.energy_fj * 0.02,
            intra_bank_fj: CAM_BLOCK.energy_fj * 0.04,
            inter_bank_fj: CAM_BLOCK.energy_fj * 0.08,
        }
    }
}

impl SwitchParams {
    /// Energy for one signal between the two locations.
    pub fn signal_fj(&self, a: Loc, b: Loc) -> f64 {
        if a == b {
            self.local_fj
        } else if (a.bank, a.array) == (b.bank, b.array) {
            self.intra_array_fj
        } else if a.bank == b.bank {
            self.intra_bank_fj
        } else {
            self.inter_bank_fj
        }
    }
}

/// Per-STE routing cost of one activation: the sum of per-signal energies
/// over the node's outgoing connections, resolved against a placement.
/// Multiply by the observed activation counts for total switch energy.
pub fn per_activation_cost(
    network: &MnrlNetwork,
    placement: &Placement,
    params: &SwitchParams,
) -> HashMap<String, f64> {
    let mut costs = HashMap::new();
    for node in network.nodes() {
        // Modules signal through the same network as STEs.
        let from = placement.per_node[&node.id];
        let mut fj = 0.0;
        for conn in &node.connections {
            let to = placement.per_node[&conn.to];
            fj += params.signal_fj(from, to);
        }
        costs.insert(node.id.clone(), fj);
    }
    costs
}

/// Total switch energy of a run, given per-node activation counts
/// (`HwSimulator::activation_counts`).
pub fn switch_energy_fj(
    network: &MnrlNetwork,
    placement: &Placement,
    activations: &HashMap<String, u64>,
    params: &SwitchParams,
) -> f64 {
    let costs = per_activation_cost(network, placement, params);
    activations
        .iter()
        .map(|(id, &n)| costs.get(id).copied().unwrap_or(0.0) * n as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::place;
    use recama_compiler::{compile, CompileOptions};
    use recama_nca::UnfoldPolicy;

    #[test]
    fn default_params_are_ordered_by_distance() {
        let p = SwitchParams::default();
        assert!(p.local_fj < p.intra_array_fj);
        assert!(p.intra_array_fj < p.intra_bank_fj);
        assert!(p.intra_bank_fj < p.inter_bank_fj);
    }

    #[test]
    fn signal_cost_by_level() {
        let p = SwitchParams::default();
        let a = Loc {
            bank: 0,
            array: 0,
            pe: 0,
        };
        assert_eq!(p.signal_fj(a, a), p.local_fj);
        assert_eq!(
            p.signal_fj(
                a,
                Loc {
                    bank: 0,
                    array: 0,
                    pe: 1
                }
            ),
            p.intra_array_fj
        );
        assert_eq!(
            p.signal_fj(
                a,
                Loc {
                    bank: 0,
                    array: 1,
                    pe: 0
                }
            ),
            p.intra_bank_fj
        );
        assert_eq!(
            p.signal_fj(
                a,
                Loc {
                    bank: 1,
                    array: 0,
                    pe: 0
                }
            ),
            p.inter_bank_fj
        );
    }

    #[test]
    fn small_design_is_all_local() {
        let parsed = recama_syntax::parse("^a(bc){2,4}d").unwrap();
        let out = compile(&parsed.for_stream(), &CompileOptions::default());
        let placement = place(&out.network);
        let costs = per_activation_cost(&out.network, &placement, &SwitchParams::default());
        // Everything fits one PE, so every signal is local.
        let local = SwitchParams::default().local_fj;
        for node in out.network.nodes() {
            let fj = costs[&node.id];
            let conns = node.connections.len() as f64;
            assert!((fj - conns * local).abs() < 1e-9, "{}: {fj}", node.id);
        }
    }

    #[test]
    fn spilled_design_pays_higher_levels() {
        let parsed = recama_syntax::parse("^a{1500}").unwrap();
        let out = compile(
            &parsed.for_stream(),
            &CompileOptions {
                unfold: UnfoldPolicy::All,
                ..Default::default()
            },
        );
        let placement = place(&out.network);
        assert!(placement.pe_count > 1);
        let params = SwitchParams::default();
        let costs = per_activation_cost(&out.network, &placement, &params);
        let max = costs.values().cloned().fold(0.0, f64::max);
        assert!(max >= params.intra_array_fj, "chain must cross PEs: {max}");
    }
}
