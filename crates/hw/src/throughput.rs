//! Throughput model: one input byte per cycle at the CAMA-T clock.
//!
//! The augmented design keeps CAMA-T's 2.14 GHz clock (Table 2 timing
//! closure), so throughput is a constant 2.14 GB/s regardless of the
//! pattern set — the "no performance penalty" claim of §4.3, and the
//! number the paper quotes against CA (1.18×), Grapefruit (9.5×), and
//! CPU/GPU baselines (2–4 orders of magnitude).

use crate::params::CLOCK_GHZ;

/// Time/throughput figures of a simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputReport {
    /// Input bytes processed (one per cycle).
    pub cycles: u64,
    /// Wall-clock seconds the accelerator would need.
    pub seconds: f64,
    /// Sustained throughput in gigabytes per second.
    pub gbytes_per_second: f64,
}

/// Throughput of a run of `cycles` bytes at the accelerator clock.
pub fn throughput(cycles: u64) -> ThroughputReport {
    let seconds = cycles as f64 / (CLOCK_GHZ * 1e9);
    ThroughputReport {
        cycles,
        seconds,
        gbytes_per_second: CLOCK_GHZ,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cama_t_throughput_is_2_14_gbps() {
        let t = throughput(1_000_000);
        assert!((t.gbytes_per_second - 2.14).abs() < 1e-9);
        // 1 MB at 2.14 GB/s ≈ 467 µs.
        assert!((t.seconds - 1.0e6 / 2.14e9).abs() < 1e-12);
        assert_eq!(t.cycles, 1_000_000);
    }

    #[test]
    fn throughput_is_pattern_independent() {
        // Same cycles → same throughput, by construction of the model: the
        // counter/bit-vector ops fit the cycle (params::single_cycle_feasible).
        assert!(crate::params::single_cycle_feasible());
        assert_eq!(
            throughput(10).gbytes_per_second,
            throughput(1 << 30).gbytes_per_second
        );
    }
}
