//! Graphviz DOT export of MNRL networks — tooling for inspecting compiled
//! automata (STEs as boxes, counter modules as diamonds, bit vectors as
//! hexagons; module control edges dashed).

use crate::network::{MnrlNetwork, NodeKind, Port};
use std::fmt::Write as _;

impl MnrlNetwork {
    /// Renders the network in Graphviz DOT syntax.
    ///
    /// # Examples
    ///
    /// ```
    /// use recama_mnrl::{Enable, MnrlNetwork, Node, NodeKind};
    /// use recama_syntax::ByteClass;
    /// let mut net = MnrlNetwork::new("g");
    /// net.add_node(Node {
    ///     id: "s0".into(),
    ///     kind: NodeKind::State { symbol_set: ByteClass::digit() },
    ///     enable: Enable::OnStartAndActivateIn,
    ///     report: true,
    ///     report_id: None,
    ///     connections: vec![],
    /// });
    /// let dot = net.to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("s0"));
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph {:?} {{", self.id);
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [fontname=\"monospace\"];");
        for node in self.nodes() {
            let (shape, label) = match &node.kind {
                NodeKind::State { symbol_set } => (
                    "box",
                    format!("{}\\n[{}]", node.id, escape(&symbol_set.to_string())),
                ),
                NodeKind::Counter { min, max } => (
                    "diamond",
                    format!(
                        "{}\\ncnt{{{},{}}}",
                        node.id,
                        min,
                        max.map_or("inf".to_string(), |n| n.to_string())
                    ),
                ),
                NodeKind::BitVector { size, lo, hi } => {
                    ("hexagon", format!("{}\\nbv[{lo},{hi}]/{size}", node.id))
                }
            };
            let mut attrs = format!("shape={shape}, label=\"{label}\"");
            if node.report {
                attrs.push_str(", peripheries=2");
            }
            if node.enable == crate::network::Enable::OnStartAndActivateIn {
                attrs.push_str(", style=bold");
            }
            let _ = writeln!(out, "  {:?} [{attrs}];", node.id);
        }
        for node in self.nodes() {
            for conn in &node.connections {
                let control = !matches!((conn.from_port, conn.to_port), (Port::Main, Port::Main));
                let style = if control { ", style=dashed" } else { "" };
                let _ = writeln!(
                    out,
                    "  {:?} -> {:?} [label=\"{}>{}\"{style}];",
                    node.id, conn.to, conn.from_port, conn.to_port
                );
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Connection, Enable, Node};
    use recama_syntax::ByteClass;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut net = MnrlNetwork::new("t");
        net.add_node(Node {
            id: "s0".into(),
            kind: NodeKind::State {
                symbol_set: ByteClass::singleton(b'a'),
            },
            enable: Enable::OnStartAndActivateIn,
            report: false,
            report_id: None,
            connections: vec![Connection {
                from_port: Port::Main,
                to: "c0".into(),
                to_port: Port::Fst,
            }],
        });
        net.add_node(Node {
            id: "c0".into(),
            kind: NodeKind::Counter {
                min: 2,
                max: Some(5),
            },
            enable: Enable::OnActivateIn,
            report: true,
            report_id: None,
            connections: vec![],
        });
        let dot = net.to_dot();
        assert!(dot.contains("\"s0\""));
        assert!(dot.contains("\"c0\""));
        assert!(dot.contains("diamond"));
        assert!(dot.contains("style=dashed"), "port edges are dashed");
        assert!(dot.contains("peripheries=2"), "reporting nodes doubled");
        assert!(dot.contains("style=bold"), "start nodes bold");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_escapes_class_labels() {
        let mut net = MnrlNetwork::new("t");
        net.add_node(Node {
            id: "s".into(),
            kind: NodeKind::State {
                symbol_set: ByteClass::singleton(b'"'),
            },
            enable: Enable::OnActivateIn,
            report: false,
            report_id: None,
            connections: vec![],
        });
        let dot = net.to_dot();
        assert!(!dot.contains("[\"]"), "quote must be escaped: {dot}");
    }
}
