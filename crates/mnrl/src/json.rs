//! JSON (de)serialization of [`MnrlNetwork`] in an MNRL-compatible schema.
//!
//! Layout follows MNRL: a network object with an `id` and a `nodes` array;
//! each node has `id`, `type`, `enable`, `report`, an `attributes` object,
//! and `outputDefs` with `activate` lists. Symbol sets are stored twice:
//! human-readable (`symbolSet`, bracket syntax) and lossless
//! (`symbolSet256`, 64 hex chars of the 256-bit membership mask) — the
//! lossless field wins when both are present.

use crate::network::{Connection, Enable, MnrlNetwork, Node, NodeKind, Port};
use recama_syntax::ByteClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error deserializing or re-validating an MNRL document.
#[derive(Debug)]
pub enum MnrlError {
    /// Underlying JSON syntax/shape problem.
    Json(serde_json::Error),
    /// Structurally invalid network content.
    Invalid(String),
}

impl fmt::Display for MnrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MnrlError::Json(e) => write!(f, "invalid MNRL JSON: {e}"),
            MnrlError::Invalid(msg) => write!(f, "invalid MNRL network: {msg}"),
        }
    }
}

impl std::error::Error for MnrlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MnrlError::Json(e) => Some(e),
            MnrlError::Invalid(_) => None,
        }
    }
}

impl From<serde_json::Error> for MnrlError {
    fn from(e: serde_json::Error) -> Self {
        MnrlError::Json(e)
    }
}

#[derive(Serialize, Deserialize)]
struct SerNetwork {
    id: String,
    nodes: Vec<SerNode>,
}

#[derive(Serialize, Deserialize)]
struct SerNode {
    id: String,
    #[serde(rename = "type")]
    node_type: String,
    enable: String,
    report: bool,
    attributes: SerAttributes,
    #[serde(rename = "outputDefs")]
    output_defs: Vec<SerOutputDef>,
}

#[derive(Serialize, Deserialize, Default)]
struct SerAttributes {
    #[serde(rename = "symbolSet", skip_serializing_if = "Option::is_none")]
    symbol_set: Option<String>,
    #[serde(rename = "symbolSet256", skip_serializing_if = "Option::is_none")]
    symbol_set_256: Option<String>,
    #[serde(skip_serializing_if = "Option::is_none")]
    min: Option<u32>,
    #[serde(skip_serializing_if = "Option::is_none")]
    max: Option<u32>,
    #[serde(skip_serializing_if = "Option::is_none")]
    unbounded: Option<bool>,
    #[serde(skip_serializing_if = "Option::is_none")]
    size: Option<u32>,
    #[serde(skip_serializing_if = "Option::is_none")]
    lo: Option<u32>,
    #[serde(skip_serializing_if = "Option::is_none")]
    hi: Option<u32>,
}

#[derive(Serialize, Deserialize)]
struct SerOutputDef {
    #[serde(rename = "portId")]
    port_id: String,
    activate: Vec<SerActivate>,
}

#[derive(Serialize, Deserialize)]
struct SerActivate {
    id: String,
    #[serde(rename = "portId")]
    port_id: String,
}

fn class_to_hex(c: &ByteClass) -> String {
    c.words().iter().map(|w| format!("{w:016x}")).collect()
}

fn class_from_hex(s: &str) -> Result<ByteClass, MnrlError> {
    if s.len() != 64 {
        return Err(MnrlError::Invalid(format!("symbolSet256 must be 64 hex chars, got {}", s.len())));
    }
    let mut words = [0u64; 4];
    for (i, w) in words.iter_mut().enumerate() {
        *w = u64::from_str_radix(&s[i * 16..(i + 1) * 16], 16)
            .map_err(|e| MnrlError::Invalid(format!("bad symbolSet256: {e}")))?;
    }
    let mut c = ByteClass::new();
    for b in 0..=255u8 {
        if words[(b >> 6) as usize] & (1u64 << (b & 63)) != 0 {
            c.insert(b);
        }
    }
    Ok(c)
}

impl MnrlNetwork {
    /// Serializes to pretty-printed MNRL JSON.
    pub fn to_json(&self) -> String {
        let ser = SerNetwork {
            id: self.id.clone(),
            nodes: self.nodes().iter().map(node_to_ser).collect(),
        };
        serde_json::to_string_pretty(&ser).expect("MNRL serialization cannot fail")
    }

    /// Parses MNRL JSON.
    ///
    /// # Errors
    ///
    /// Returns [`MnrlError`] on malformed JSON, unknown node types or
    /// ports, or missing required attributes.
    pub fn from_json(text: &str) -> Result<MnrlNetwork, MnrlError> {
        let ser: SerNetwork = serde_json::from_str(text)?;
        let mut net = MnrlNetwork::new(ser.id);
        for sn in &ser.nodes {
            if net.node(&sn.id).is_some() {
                return Err(MnrlError::Invalid(format!("duplicate node id {:?}", sn.id)));
            }
            net.add_node(node_from_ser(sn)?);
        }
        Ok(net)
    }
}

fn node_to_ser(node: &Node) -> SerNode {
    let mut attributes = SerAttributes::default();
    match &node.kind {
        NodeKind::State { symbol_set } => {
            attributes.symbol_set = Some(symbol_set.to_string());
            attributes.symbol_set_256 = Some(class_to_hex(symbol_set));
        }
        NodeKind::Counter { min, max } => {
            attributes.min = Some(*min);
            attributes.max = *max;
            attributes.unbounded = Some(max.is_none());
        }
        NodeKind::BitVector { size, lo, hi } => {
            attributes.size = Some(*size);
            attributes.lo = Some(*lo);
            attributes.hi = Some(*hi);
        }
    }
    // Group connections by output port, preserving order.
    let mut defs: Vec<SerOutputDef> = Vec::new();
    for conn in &node.connections {
        let port_name = conn.from_port.name().to_string();
        let act = SerActivate { id: conn.to.clone(), port_id: conn.to_port.name().to_string() };
        match defs.iter_mut().find(|d| d.port_id == port_name) {
            Some(def) => def.activate.push(act),
            None => defs.push(SerOutputDef { port_id: port_name, activate: vec![act] }),
        }
    }
    SerNode {
        id: node.id.clone(),
        node_type: node.kind.type_name().to_string(),
        enable: match node.enable {
            Enable::OnActivateIn => "onActivateIn".to_string(),
            Enable::OnStartAndActivateIn => "onStartAndActivateIn".to_string(),
        },
        report: node.report,
        attributes,
        output_defs: defs,
    }
}

fn node_from_ser(sn: &SerNode) -> Result<Node, MnrlError> {
    let kind = match sn.node_type.as_str() {
        "state" => {
            let symbol_set = if let Some(hex) = &sn.attributes.symbol_set_256 {
                class_from_hex(hex)?
            } else if let Some(disp) = &sn.attributes.symbol_set {
                parse_symbol_set(disp)?
            } else {
                return Err(MnrlError::Invalid(format!("state {} lacks a symbol set", sn.id)));
            };
            NodeKind::State { symbol_set }
        }
        "counter" | "upCounter" => {
            let min = sn
                .attributes
                .min
                .ok_or_else(|| MnrlError::Invalid(format!("counter {} lacks min", sn.id)))?;
            let unbounded = sn.attributes.unbounded.unwrap_or(false);
            let max = if unbounded { None } else { sn.attributes.max };
            if !unbounded && max.is_none() {
                return Err(MnrlError::Invalid(format!("counter {} lacks max", sn.id)));
            }
            NodeKind::Counter { min, max }
        }
        "bitVector" => {
            let size = sn
                .attributes
                .size
                .ok_or_else(|| MnrlError::Invalid(format!("bitVector {} lacks size", sn.id)))?;
            let lo = sn
                .attributes
                .lo
                .ok_or_else(|| MnrlError::Invalid(format!("bitVector {} lacks lo", sn.id)))?;
            let hi = sn
                .attributes
                .hi
                .ok_or_else(|| MnrlError::Invalid(format!("bitVector {} lacks hi", sn.id)))?;
            NodeKind::BitVector { size, lo, hi }
        }
        other => return Err(MnrlError::Invalid(format!("unknown node type {other:?}"))),
    };
    let enable = match sn.enable.as_str() {
        "onActivateIn" => Enable::OnActivateIn,
        "onStartAndActivateIn" => Enable::OnStartAndActivateIn,
        other => return Err(MnrlError::Invalid(format!("unknown enable mode {other:?}"))),
    };
    let mut connections = Vec::new();
    for def in &sn.output_defs {
        let from_port = Port::from_name(&def.port_id)
            .ok_or_else(|| MnrlError::Invalid(format!("unknown port {:?}", def.port_id)))?;
        for act in &def.activate {
            let to_port = Port::from_name(&act.port_id)
                .ok_or_else(|| MnrlError::Invalid(format!("unknown port {:?}", act.port_id)))?;
            connections.push(Connection { from_port, to: act.id.clone(), to_port });
        }
    }
    Ok(Node { id: sn.id.clone(), kind, enable, report: sn.report, connections })
}

/// Parses a human-readable symbol set (the subset of regex syntax a single
/// class renders to: `a`, `.`, `\d`, `[a-f]`, `[^x]`, …).
fn parse_symbol_set(s: &str) -> Result<ByteClass, MnrlError> {
    let parsed = recama_syntax::parse(s)
        .map_err(|e| MnrlError::Invalid(format!("bad symbolSet {s:?}: {e}")))?;
    match parsed.regex {
        recama_syntax::Regex::Class(c) => Ok(c),
        _ => Err(MnrlError::Invalid(format!("symbolSet {s:?} is not a single class"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_network() -> MnrlNetwork {
        let mut net = MnrlNetwork::new("demo");
        net.add_node(Node {
            id: "s0".into(),
            kind: NodeKind::State { symbol_set: ByteClass::from_bytes(b"ab") },
            enable: Enable::OnStartAndActivateIn,
            report: false,
            connections: vec![
                Connection { from_port: Port::Main, to: "c0".into(), to_port: Port::Pre },
                Connection { from_port: Port::Main, to: "s1".into(), to_port: Port::Main },
            ],
        });
        net.add_node(Node {
            id: "s1".into(),
            kind: NodeKind::State { symbol_set: ByteClass::singleton(b'x').complement() },
            enable: Enable::OnActivateIn,
            report: false,
            connections: vec![
                Connection { from_port: Port::Main, to: "c0".into(), to_port: Port::Fst },
                Connection { from_port: Port::Main, to: "c0".into(), to_port: Port::Lst },
            ],
        });
        net.add_node(Node {
            id: "c0".into(),
            kind: NodeKind::Counter { min: 3, max: Some(9) },
            enable: Enable::OnActivateIn,
            report: true,
            connections: vec![Connection { from_port: Port::EnFst, to: "s1".into(), to_port: Port::Main }],
        });
        net.add_node(Node {
            id: "bv0".into(),
            kind: NodeKind::BitVector { size: 2000, lo: 5, hi: 11 },
            enable: Enable::OnActivateIn,
            report: false,
            connections: vec![],
        });
        net
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let net = demo_network();
        let json = net.to_json();
        let back = MnrlNetwork::from_json(&json).expect("roundtrip parse");
        assert_eq!(net, back);
    }

    #[test]
    fn json_has_mnrl_shape() {
        let json = demo_network().to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["id"], "demo");
        assert_eq!(v["nodes"][0]["type"], "state");
        assert_eq!(v["nodes"][0]["attributes"]["symbolSet"], "[ab]");
        assert_eq!(v["nodes"][0]["enable"], "onStartAndActivateIn");
        assert_eq!(v["nodes"][2]["type"], "counter");
        assert_eq!(v["nodes"][2]["attributes"]["min"], 3);
        assert_eq!(v["nodes"][3]["type"], "bitVector");
        assert_eq!(v["nodes"][3]["attributes"]["size"], 2000);
        // outputDefs group by port.
        let defs = v["nodes"][0]["outputDefs"].as_array().unwrap();
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0]["portId"], "main");
        assert_eq!(defs[0]["activate"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn lossless_class_roundtrip_beats_display() {
        // A class whose display form would be lossy-ish corner: full range.
        let c = ByteClass::range(0, 255);
        let hex = class_to_hex(&c);
        assert_eq!(class_from_hex(&hex).unwrap(), c);
        let c2 = ByteClass::from_bytes(&[0, 7, 63, 64, 128, 255]);
        assert_eq!(class_from_hex(&class_to_hex(&c2)).unwrap(), c2);
    }

    #[test]
    fn accepts_display_only_symbol_set() {
        let json = r#"{
            "id": "x",
            "nodes": [{
                "id": "s0", "type": "state", "enable": "onActivateIn",
                "report": true,
                "attributes": {"symbolSet": "[a-f]"},
                "outputDefs": []
            }]
        }"#;
        let net = MnrlNetwork::from_json(json).unwrap();
        match &net.node("s0").unwrap().kind {
            NodeKind::State { symbol_set } => {
                assert_eq!(*symbol_set, ByteClass::range(b'a', b'f'))
            }
            _ => panic!("expected state"),
        }
    }

    #[test]
    fn accepts_plain_mnrl_upcounter() {
        let json = r#"{
            "id": "x",
            "nodes": [{
                "id": "c", "type": "upCounter", "enable": "onActivateIn",
                "report": false,
                "attributes": {"min": 2, "max": 5},
                "outputDefs": []
            }]
        }"#;
        let net = MnrlNetwork::from_json(json).unwrap();
        assert_eq!(net.node("c").unwrap().kind, NodeKind::Counter { min: 2, max: Some(5) });
    }

    #[test]
    fn rejects_garbage() {
        assert!(MnrlNetwork::from_json("{").is_err());
        assert!(MnrlNetwork::from_json(r#"{"id":"x","nodes":[{"id":"a","type":"wormhole","enable":"onActivateIn","report":false,"attributes":{},"outputDefs":[]}]}"#).is_err());
        let bad_enable = r#"{"id":"x","nodes":[{"id":"a","type":"state","enable":"sometimes","report":false,"attributes":{"symbolSet":"a"},"outputDefs":[]}]}"#;
        assert!(MnrlNetwork::from_json(bad_enable).is_err());
    }

    #[test]
    fn unbounded_counter_roundtrip() {
        let mut net = MnrlNetwork::new("u");
        net.add_node(Node {
            id: "c".into(),
            kind: NodeKind::Counter { min: 4, max: None },
            enable: Enable::OnActivateIn,
            report: false,
            connections: vec![],
        });
        let back = MnrlNetwork::from_json(&net.to_json()).unwrap();
        assert_eq!(back.node("c").unwrap().kind, NodeKind::Counter { min: 4, max: None });
    }
}
