//! JSON (de)serialization of [`MnrlNetwork`] in an MNRL-compatible schema.
//!
//! Layout follows MNRL: a network object with an `id` and a `nodes` array;
//! each node has `id`, `type`, `enable`, `report`, an `attributes` object,
//! and `outputDefs` with `activate` lists. Symbol sets are stored twice:
//! human-readable (`symbolSet`, bracket syntax) and lossless
//! (`symbolSet256`, 64 hex chars of the 256-bit membership mask) — the
//! lossless field wins when both are present. Reporting nodes may carry a
//! `reportId` attribute (MNRL report codes), which multi-pattern networks
//! use to attribute reports to rules.

use crate::jsonval::Value;
use crate::network::{Connection, Enable, MnrlNetwork, Node, NodeKind, Port};
use recama_syntax::ByteClass;
use std::fmt;

/// Error deserializing or re-validating an MNRL document.
#[derive(Debug)]
pub enum MnrlError {
    /// Underlying JSON syntax/shape problem.
    Json(String),
    /// Structurally invalid network content.
    Invalid(String),
}

impl fmt::Display for MnrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MnrlError::Json(e) => write!(f, "invalid MNRL JSON: {e}"),
            MnrlError::Invalid(msg) => write!(f, "invalid MNRL network: {msg}"),
        }
    }
}

impl std::error::Error for MnrlError {}

fn class_to_hex(c: &ByteClass) -> String {
    c.words().iter().map(|w| format!("{w:016x}")).collect()
}

fn class_from_hex(s: &str) -> Result<ByteClass, MnrlError> {
    if s.len() != 64 {
        return Err(MnrlError::Invalid(format!(
            "symbolSet256 must be 64 hex chars, got {}",
            s.len()
        )));
    }
    let mut words = [0u64; 4];
    for (i, w) in words.iter_mut().enumerate() {
        *w = u64::from_str_radix(&s[i * 16..(i + 1) * 16], 16)
            .map_err(|e| MnrlError::Invalid(format!("bad symbolSet256: {e}")))?;
    }
    let mut c = ByteClass::new();
    for b in 0..=255u8 {
        if words[(b >> 6) as usize] & (1u64 << (b & 63)) != 0 {
            c.insert(b);
        }
    }
    Ok(c)
}

impl MnrlNetwork {
    /// Serializes to pretty-printed MNRL JSON.
    pub fn to_json(&self) -> String {
        let doc = Value::Object(vec![
            ("id".into(), Value::Str(self.id.clone())),
            (
                "nodes".into(),
                Value::Array(self.nodes().iter().map(node_to_value).collect()),
            ),
        ]);
        doc.pretty()
    }

    /// Parses MNRL JSON.
    ///
    /// # Errors
    ///
    /// Returns [`MnrlError`] on malformed JSON, unknown node types or
    /// ports, or missing required attributes.
    pub fn from_json(text: &str) -> Result<MnrlNetwork, MnrlError> {
        let doc = Value::parse(text).map_err(MnrlError::Json)?;
        let id = doc
            .get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| MnrlError::Invalid("network lacks an id".into()))?;
        let nodes = doc
            .get("nodes")
            .and_then(Value::as_array)
            .ok_or_else(|| MnrlError::Invalid("network lacks a nodes array".into()))?;
        let mut net = MnrlNetwork::new(id);
        for sn in nodes {
            let node = node_from_value(sn)?;
            if net.node(&node.id).is_some() {
                return Err(MnrlError::Invalid(format!(
                    "duplicate node id {:?}",
                    node.id
                )));
            }
            net.add_node(node);
        }
        Ok(net)
    }
}

fn node_to_value(node: &Node) -> Value {
    let mut attributes: Vec<(String, Value)> = Vec::new();
    match &node.kind {
        NodeKind::State { symbol_set } => {
            attributes.push(("symbolSet".into(), Value::Str(symbol_set.to_string())));
            attributes.push(("symbolSet256".into(), Value::Str(class_to_hex(symbol_set))));
        }
        NodeKind::Counter { min, max } => {
            attributes.push(("min".into(), Value::Num(f64::from(*min))));
            if let Some(max) = max {
                attributes.push(("max".into(), Value::Num(f64::from(*max))));
            }
            attributes.push(("unbounded".into(), Value::Bool(max.is_none())));
        }
        NodeKind::BitVector { size, lo, hi } => {
            attributes.push(("size".into(), Value::Num(f64::from(*size))));
            attributes.push(("lo".into(), Value::Num(f64::from(*lo))));
            attributes.push(("hi".into(), Value::Num(f64::from(*hi))));
        }
    }
    if let Some(rid) = node.report_id {
        attributes.push(("reportId".into(), Value::Num(f64::from(rid))));
    }
    // Group connections by output port, preserving order.
    let mut defs: Vec<(String, Vec<Value>)> = Vec::new();
    for conn in &node.connections {
        let port_name = conn.from_port.name();
        let act = Value::Object(vec![
            ("id".into(), Value::Str(conn.to.clone())),
            ("portId".into(), Value::Str(conn.to_port.name().into())),
        ]);
        match defs.iter_mut().find(|(p, _)| p == port_name) {
            Some((_, activate)) => activate.push(act),
            None => defs.push((port_name.to_string(), vec![act])),
        }
    }
    let output_defs: Vec<Value> = defs
        .into_iter()
        .map(|(port_id, activate)| {
            Value::Object(vec![
                ("portId".into(), Value::Str(port_id)),
                ("activate".into(), Value::Array(activate)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("id".into(), Value::Str(node.id.clone())),
        ("type".into(), Value::Str(node.kind.type_name().into())),
        (
            "enable".into(),
            Value::Str(
                match node.enable {
                    Enable::OnActivateIn => "onActivateIn",
                    Enable::OnStartAndActivateIn => "onStartAndActivateIn",
                }
                .into(),
            ),
        ),
        ("report".into(), Value::Bool(node.report)),
        ("attributes".into(), Value::Object(attributes)),
        ("outputDefs".into(), Value::Array(output_defs)),
    ])
}

fn attr_u32(sn: &Value, name: &str, node: &str, kind: &str) -> Result<u32, MnrlError> {
    sn["attributes"]
        .get(name)
        .and_then(Value::as_u64)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| MnrlError::Invalid(format!("{kind} {node} lacks {name}")))
}

fn node_from_value(sn: &Value) -> Result<Node, MnrlError> {
    let id = sn
        .get("id")
        .and_then(Value::as_str)
        .ok_or_else(|| MnrlError::Invalid("node lacks an id".into()))?
        .to_string();
    let node_type = sn
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| MnrlError::Invalid(format!("node {id} lacks a type")))?;
    let attributes = &sn["attributes"];
    let kind = match node_type {
        "state" => {
            let symbol_set =
                if let Some(hex) = attributes.get("symbolSet256").and_then(Value::as_str) {
                    class_from_hex(hex)?
                } else if let Some(disp) = attributes.get("symbolSet").and_then(Value::as_str) {
                    parse_symbol_set(disp)?
                } else {
                    return Err(MnrlError::Invalid(format!("state {id} lacks a symbol set")));
                };
            NodeKind::State { symbol_set }
        }
        "counter" | "upCounter" => {
            let min = attr_u32(sn, "min", &id, "counter")?;
            let unbounded = attributes
                .get("unbounded")
                .and_then(Value::as_bool)
                .unwrap_or(false);
            let max = if unbounded {
                None
            } else {
                Some(attr_u32(sn, "max", &id, "counter")?)
            };
            NodeKind::Counter { min, max }
        }
        "bitVector" => NodeKind::BitVector {
            size: attr_u32(sn, "size", &id, "bitVector")?,
            lo: attr_u32(sn, "lo", &id, "bitVector")?,
            hi: attr_u32(sn, "hi", &id, "bitVector")?,
        },
        other => return Err(MnrlError::Invalid(format!("unknown node type {other:?}"))),
    };
    let enable = match sn.get("enable").and_then(Value::as_str) {
        Some("onActivateIn") => Enable::OnActivateIn,
        Some("onStartAndActivateIn") => Enable::OnStartAndActivateIn,
        other => return Err(MnrlError::Invalid(format!("unknown enable mode {other:?}"))),
    };
    let report = sn
        .get("report")
        .and_then(Value::as_bool)
        .ok_or_else(|| MnrlError::Invalid(format!("node {id} lacks report")))?;
    let report_id = attributes
        .get("reportId")
        .and_then(Value::as_u64)
        .and_then(|v| u32::try_from(v).ok());
    let mut connections = Vec::new();
    let defs = sn
        .get("outputDefs")
        .and_then(Value::as_array)
        .ok_or_else(|| MnrlError::Invalid(format!("node {id} lacks outputDefs")))?;
    for def in defs {
        let port_name = def
            .get("portId")
            .and_then(Value::as_str)
            .ok_or_else(|| MnrlError::Invalid(format!("outputDef of {id} lacks portId")))?;
        let from_port = Port::from_name(port_name)
            .ok_or_else(|| MnrlError::Invalid(format!("unknown port {port_name:?}")))?;
        let activate = def
            .get("activate")
            .and_then(Value::as_array)
            .ok_or_else(|| MnrlError::Invalid(format!("outputDef of {id} lacks activate")))?;
        for act in activate {
            let to = act
                .get("id")
                .and_then(Value::as_str)
                .ok_or_else(|| MnrlError::Invalid(format!("activation of {id} lacks id")))?;
            let to_port_name = act
                .get("portId")
                .and_then(Value::as_str)
                .ok_or_else(|| MnrlError::Invalid(format!("activation of {id} lacks portId")))?;
            let to_port = Port::from_name(to_port_name)
                .ok_or_else(|| MnrlError::Invalid(format!("unknown port {to_port_name:?}")))?;
            connections.push(Connection {
                from_port,
                to: to.to_string(),
                to_port,
            });
        }
    }
    Ok(Node {
        id,
        kind,
        enable,
        report,
        report_id,
        connections,
    })
}

/// Parses a human-readable symbol set (the subset of regex syntax a single
/// class renders to: `a`, `.`, `\d`, `[a-f]`, `[^x]`, …).
fn parse_symbol_set(s: &str) -> Result<ByteClass, MnrlError> {
    let parsed = recama_syntax::parse(s)
        .map_err(|e| MnrlError::Invalid(format!("bad symbolSet {s:?}: {e}")))?;
    match parsed.regex {
        recama_syntax::Regex::Class(c) => Ok(c),
        _ => Err(MnrlError::Invalid(format!(
            "symbolSet {s:?} is not a single class"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_network() -> MnrlNetwork {
        let mut net = MnrlNetwork::new("demo");
        net.add_node(Node {
            id: "s0".into(),
            kind: NodeKind::State {
                symbol_set: ByteClass::from_bytes(b"ab"),
            },
            enable: Enable::OnStartAndActivateIn,
            report: false,
            report_id: None,
            connections: vec![
                Connection {
                    from_port: Port::Main,
                    to: "c0".into(),
                    to_port: Port::Pre,
                },
                Connection {
                    from_port: Port::Main,
                    to: "s1".into(),
                    to_port: Port::Main,
                },
            ],
        });
        net.add_node(Node {
            id: "s1".into(),
            kind: NodeKind::State {
                symbol_set: ByteClass::singleton(b'x').complement(),
            },
            enable: Enable::OnActivateIn,
            report: false,
            report_id: None,
            connections: vec![
                Connection {
                    from_port: Port::Main,
                    to: "c0".into(),
                    to_port: Port::Fst,
                },
                Connection {
                    from_port: Port::Main,
                    to: "c0".into(),
                    to_port: Port::Lst,
                },
            ],
        });
        net.add_node(Node {
            id: "c0".into(),
            kind: NodeKind::Counter {
                min: 3,
                max: Some(9),
            },
            enable: Enable::OnActivateIn,
            report: true,
            report_id: Some(17),
            connections: vec![Connection {
                from_port: Port::EnFst,
                to: "s1".into(),
                to_port: Port::Main,
            }],
        });
        net.add_node(Node {
            id: "bv0".into(),
            kind: NodeKind::BitVector {
                size: 2000,
                lo: 5,
                hi: 11,
            },
            enable: Enable::OnActivateIn,
            report: false,
            report_id: None,
            connections: vec![],
        });
        net
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let net = demo_network();
        let json = net.to_json();
        let back = MnrlNetwork::from_json(&json).expect("roundtrip parse");
        assert_eq!(net, back);
    }

    #[test]
    fn json_has_mnrl_shape() {
        let json = demo_network().to_json();
        let v = Value::parse(&json).unwrap();
        assert_eq!(v["id"], "demo");
        assert_eq!(v["nodes"][0]["type"], "state");
        assert_eq!(v["nodes"][0]["attributes"]["symbolSet"], "[ab]");
        assert_eq!(v["nodes"][0]["enable"], "onStartAndActivateIn");
        assert_eq!(v["nodes"][2]["type"], "counter");
        assert_eq!(v["nodes"][2]["attributes"]["min"], 3);
        assert_eq!(v["nodes"][2]["attributes"]["reportId"], 17);
        assert_eq!(v["nodes"][3]["type"], "bitVector");
        assert_eq!(v["nodes"][3]["attributes"]["size"], 2000);
        // outputDefs group by port.
        let defs = v["nodes"][0]["outputDefs"].as_array().unwrap();
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0]["portId"], "main");
        assert_eq!(defs[0]["activate"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn lossless_class_roundtrip_beats_display() {
        // A class whose display form would be lossy-ish corner: full range.
        let c = ByteClass::range(0, 255);
        let hex = class_to_hex(&c);
        assert_eq!(class_from_hex(&hex).unwrap(), c);
        let c2 = ByteClass::from_bytes(&[0, 7, 63, 64, 128, 255]);
        assert_eq!(class_from_hex(&class_to_hex(&c2)).unwrap(), c2);
    }

    #[test]
    fn accepts_display_only_symbol_set() {
        let json = r#"{
            "id": "x",
            "nodes": [{
                "id": "s0", "type": "state", "enable": "onActivateIn",
                "report": true,
                "attributes": {"symbolSet": "[a-f]"},
                "outputDefs": []
            }]
        }"#;
        let net = MnrlNetwork::from_json(json).unwrap();
        match &net.node("s0").unwrap().kind {
            NodeKind::State { symbol_set } => {
                assert_eq!(*symbol_set, ByteClass::range(b'a', b'f'))
            }
            _ => panic!("expected state"),
        }
    }

    #[test]
    fn accepts_plain_mnrl_upcounter() {
        let json = r#"{
            "id": "x",
            "nodes": [{
                "id": "c", "type": "upCounter", "enable": "onActivateIn",
                "report": false,
                "attributes": {"min": 2, "max": 5},
                "outputDefs": []
            }]
        }"#;
        let net = MnrlNetwork::from_json(json).unwrap();
        assert_eq!(
            net.node("c").unwrap().kind,
            NodeKind::Counter {
                min: 2,
                max: Some(5)
            }
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(MnrlNetwork::from_json("{").is_err());
        assert!(MnrlNetwork::from_json(r#"{"id":"x","nodes":[{"id":"a","type":"wormhole","enable":"onActivateIn","report":false,"attributes":{},"outputDefs":[]}]}"#).is_err());
        let bad_enable = r#"{"id":"x","nodes":[{"id":"a","type":"state","enable":"sometimes","report":false,"attributes":{"symbolSet":"a"},"outputDefs":[]}]}"#;
        assert!(MnrlNetwork::from_json(bad_enable).is_err());
    }

    #[test]
    fn unbounded_counter_roundtrip() {
        let mut net = MnrlNetwork::new("u");
        net.add_node(Node {
            id: "c".into(),
            kind: NodeKind::Counter { min: 4, max: None },
            enable: Enable::OnActivateIn,
            report: false,
            report_id: None,
            connections: vec![],
        });
        let back = MnrlNetwork::from_json(&net.to_json()).unwrap();
        assert_eq!(
            back.node("c").unwrap().kind,
            NodeKind::Counter { min: 4, max: None }
        );
    }
}
