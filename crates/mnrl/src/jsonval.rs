//! A minimal self-contained JSON tree (parser + pretty printer).
//!
//! The build environment cannot fetch `serde`/`serde_json`, and the MNRL
//! schema is small, so the JSON layer is hand-rolled: a [`Value`] tree
//! with ordered object fields (so output is deterministic), a strict
//! recursive-descent parser, and a pretty printer matching the usual
//! two-space-indent layout.

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; MNRL only uses small integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, with field order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (strict: one value, trailing whitespace only).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Pretty-prints with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Object field access; missing fields and non-objects yield `Null`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&Value::Null)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// Array element access; out-of-range and non-arrays yield `Null`.
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<u32> for Value {
    fn eq(&self, other: &u32) -> bool {
        self.as_u64() == Some(u64::from(*other))
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        matches!(self, Value::Num(n) if *n == f64::from(*other))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    other => return Err(format!("expected ',' or '}}', found {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    other => return Err(format!("expected ',' or ']', found {other:?}")),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", want as char, *pos))
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
        .map_err(|e| e.to_string())
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        // UTF-16 surrogate pair: a high surrogate must be
                        // followed by an escaped low surrogate.
                        if (0xd800..0xdc00).contains(&code) {
                            if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return Err("high surrogate without low surrogate".into());
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err(format!("bad low surrogate {low:#06x}"));
                            }
                            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                            *pos += 6;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the whole scalar.
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("empty continuation")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty() {
        let doc = Value::Object(vec![
            ("id".into(), Value::Str("x\\y\"z".into())),
            ("n".into(), Value::Num(42.0)),
            (
                "flags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Object(vec![])),
        ]);
        let text = doc.pretty();
        assert_eq!(Value::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_standard_escapes_and_numbers() {
        let v = Value::parse(r#"{"s": "a\n\tA", "x": -1.5e2}"#).unwrap();
        assert_eq!(v["s"], "a\n\tA");
        assert_eq!(v["x"], Value::Num(-150.0));
    }

    #[test]
    fn parses_surrogate_pairs() {
        let v = Value::parse(r#"{"s": "\ud83d\ude00okA"}"#).unwrap();
        assert_eq!(v["s"], "\u{1f600}okA");
        // A lone high surrogate (or a malformed low half) is an error.
        assert!(Value::parse(r#""\ud83d""#).is_err());
        assert!(Value::parse(r#""\ud83dA""#).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{}extra").is_err());
        assert!(Value::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn indexing_is_total() {
        let v = Value::parse(r#"{"a": [1, 2]}"#).unwrap();
        assert_eq!(v["a"][0], Value::Num(1.0));
        assert_eq!(v["a"][9], Value::Null);
        assert_eq!(v["missing"]["deep"], Value::Null);
        assert_eq!(v["a"][1].as_u64(), Some(2));
    }
}
