//! # recama-mnrl
//!
//! An MNRL-style automata interchange format, extended per §4.2 of
//! *Software-Hardware Codesign for Efficient In-Memory Regular Pattern
//! Matching* (PLDI 2022) with `counter` nodes (for counter-unambiguous
//! bounded repetition, Fig. 6) and `bitVector` nodes (for counter-ambiguous
//! `σ{m,n}`, Fig. 7).
//!
//! The compiler (`recama-compiler`) emits these networks; the hardware
//! mapper/simulator (`recama-hw`) consumes them; [`MnrlNetwork::to_json`] /
//! [`MnrlNetwork::from_json`] read and write the JSON encoding.
//!
//! ## Example
//!
//! ```
//! use recama_mnrl::{Enable, MnrlNetwork, Node, NodeKind};
//! use recama_syntax::ByteClass;
//!
//! let mut net = MnrlNetwork::new("hello");
//! net.add_node(Node {
//!     id: "s0".into(),
//!     kind: NodeKind::State { symbol_set: ByteClass::digit() },
//!     enable: Enable::OnStartAndActivateIn,
//!     report: true,
//!     report_id: None,
//!     connections: vec![],
//! });
//! let json = net.to_json();
//! assert_eq!(MnrlNetwork::from_json(&json).unwrap(), net);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dot;
mod json;
pub mod jsonval;
mod network;

pub use json::MnrlError;
pub use network::{Connection, Enable, MnrlNetwork, Node, NodeKind, Port};
