//! The MNRL-style automata network: the compiler's output and the hardware
//! mapper's input.
//!
//! MNRL (Angstadt et al., "MNRL and MNCaRT") is the open JSON interchange
//! format for automata processors. Plain MNRL offers `state` (STE) and
//! `upCounter` nodes; following §4.2 of the paper we extend it with a
//! distinguished `counter` node for counter-unambiguous repetitions (ports
//! `pre`/`fst`/`lst` → `en_fst`/`en_out`, Fig. 6) and a new `bitVector`
//! node for counter-ambiguous repetitions (ports `pre`/`body` →
//! `en_body`/`en_out`, Fig. 7).

use recama_syntax::ByteClass;
use std::collections::HashMap;
use std::fmt;

/// When a node becomes enabled without an incoming activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Enable {
    /// Enabled only by incoming activations (ordinary state).
    OnActivateIn,
    /// Additionally enabled before the first symbol (start state — the
    /// targets of the Glushkov q0 edges).
    OnStartAndActivateIn,
}

/// A connection endpoint port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// STE activation input/output.
    Main,
    /// Counter/bit-vector: activation from the STE *before* the repetition.
    Pre,
    /// Counter: activation from the first STE of the repetition body.
    Fst,
    /// Counter: activation from the last STE of the repetition body.
    Lst,
    /// Bit vector: activation from the (single) body STE.
    Body,
    /// Counter output: (re-)enable the first STE of the body.
    EnFst,
    /// Counter/bit-vector output: enable the STE after the repetition.
    EnOut,
    /// Bit vector output: (re-)enable the body STE.
    EnBody,
}

impl Port {
    /// The canonical lowercase name used in the JSON encoding.
    pub fn name(self) -> &'static str {
        match self {
            Port::Main => "main",
            Port::Pre => "pre",
            Port::Fst => "fst",
            Port::Lst => "lst",
            Port::Body => "body",
            Port::EnFst => "en_fst",
            Port::EnOut => "en_out",
            Port::EnBody => "en_body",
        }
    }

    /// Parses a port name.
    pub fn from_name(s: &str) -> Option<Port> {
        Some(match s {
            "main" => Port::Main,
            "pre" => Port::Pre,
            "fst" => Port::Fst,
            "lst" => Port::Lst,
            "body" => Port::Body,
            "en_fst" => Port::EnFst,
            "en_out" => Port::EnOut,
            "en_body" => Port::EnBody,
            _ => return None,
        })
    }

    /// Whether this is an output port for the given node kind.
    pub fn is_output_of(self, kind: &NodeKind) -> bool {
        match kind {
            NodeKind::State { .. } => self == Port::Main,
            NodeKind::Counter { .. } => matches!(self, Port::EnFst | Port::EnOut),
            NodeKind::BitVector { .. } => matches!(self, Port::EnBody | Port::EnOut),
        }
    }

    /// Whether this is an input port for the given node kind.
    pub fn is_input_of(self, kind: &NodeKind) -> bool {
        match kind {
            NodeKind::State { .. } => self == Port::Main,
            NodeKind::Counter { .. } => matches!(self, Port::Pre | Port::Fst | Port::Lst),
            NodeKind::BitVector { .. } => matches!(self, Port::Pre | Port::Body),
        }
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Node payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A state transition element matching `symbol_set`.
    State {
        /// The character class this STE matches.
        symbol_set: ByteClass,
    },
    /// A counter module (Fig. 6) for a counter-unambiguous `{min,max}`.
    Counter {
        /// Lower repetition bound m.
        min: u32,
        /// Upper bound n; `None` = unbounded `{m,}` (compare `cnt ≥ m`).
        max: Option<u32>,
    },
    /// A bit-vector module (Fig. 7) for a counter-ambiguous `σ{min,max}`.
    BitVector {
        /// Physical vector length (number of value bits provisioned).
        size: u32,
        /// Disjunction window low index (= m).
        lo: u32,
        /// Disjunction window high index (= n).
        hi: u32,
    },
}

impl NodeKind {
    /// Short type tag used in JSON (`state` / `counter` / `bitVector`).
    pub fn type_name(&self) -> &'static str {
        match self {
            NodeKind::State { .. } => "state",
            NodeKind::Counter { .. } => "counter",
            NodeKind::BitVector { .. } => "bitVector",
        }
    }
}

/// One outgoing connection.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Connection {
    /// Output port on the source node.
    pub from_port: Port,
    /// Destination node id.
    pub to: String,
    /// Input port on the destination node.
    pub to_port: Port,
}

/// A network node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Unique id within the network.
    pub id: String,
    /// Payload.
    pub kind: NodeKind,
    /// Enable semantics.
    pub enable: Enable,
    /// Whether activation of this node (for states) or of its `en_out`
    /// (for modules) raises a report.
    pub report: bool,
    /// MNRL report code. Multi-pattern networks stamp every reporting node
    /// with the index of the source pattern so the accelerator's report
    /// vector attributes each event to its rule; single-pattern networks
    /// leave it `None`.
    pub report_id: Option<u32>,
    /// Outgoing connections.
    pub connections: Vec<Connection>,
}

/// An MNRL-style automata network.
///
/// # Examples
///
/// ```
/// use recama_mnrl::{MnrlNetwork, Node, NodeKind, Enable, Connection, Port};
/// use recama_syntax::ByteClass;
///
/// let mut net = MnrlNetwork::new("demo");
/// net.add_node(Node {
///     id: "s0".into(),
///     kind: NodeKind::State { symbol_set: ByteClass::singleton(b'a') },
///     enable: Enable::OnStartAndActivateIn,
///     report: false,
///     report_id: None,
///     connections: vec![Connection { from_port: Port::Main, to: "s1".into(), to_port: Port::Main }],
/// });
/// net.add_node(Node {
///     id: "s1".into(),
///     kind: NodeKind::State { symbol_set: ByteClass::singleton(b'b') },
///     enable: Enable::OnActivateIn,
///     report: true,
///     report_id: None,
///     connections: vec![],
/// });
/// assert!(net.validate().is_empty());
/// assert_eq!(net.node_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MnrlNetwork {
    /// Network id.
    pub id: String,
    nodes: Vec<Node>,
    index: HashMap<String, usize>,
}

impl MnrlNetwork {
    /// Creates an empty network.
    pub fn new(id: impl Into<String>) -> MnrlNetwork {
        MnrlNetwork {
            id: id.into(),
            nodes: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Adds a node.
    ///
    /// # Panics
    ///
    /// Panics on duplicate node id.
    pub fn add_node(&mut self, node: Node) {
        let prev = self.index.insert(node.id.clone(), self.nodes.len());
        assert!(prev.is_none(), "duplicate MNRL node id {:?}", node.id);
        self.nodes.push(node);
    }

    /// The nodes in insertion order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Mutable access to nodes (ids must not be changed).
    pub fn nodes_mut(&mut self) -> &mut [Node] {
        &mut self.nodes
    }

    /// Looks up a node by id.
    pub fn node(&self, id: &str) -> Option<&Node> {
        self.index.get(id).map(|&i| &self.nodes[i])
    }

    /// Total node count — the "number of MNRL nodes" metric of Fig. 9
    /// (linear in the number of STEs).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes of each type: (states, counters, bit vectors).
    pub fn counts_by_type(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for n in &self.nodes {
            match n.kind {
                NodeKind::State { .. } => c.0 += 1,
                NodeKind::Counter { .. } => c.1 += 1,
                NodeKind::BitVector { .. } => c.2 += 1,
            }
        }
        c
    }

    /// Merges another network into this one, prefixing its node ids with
    /// `prefix` to keep them unique (used to compile whole rulesets into a
    /// single machine image).
    pub fn merge_prefixed(&mut self, other: &MnrlNetwork, prefix: &str) {
        self.merge_impl(other, prefix, None);
    }

    /// Merges another network as rule `rule_id`: node ids are prefixed
    /// with `prefix` and every *reporting* node is stamped with
    /// `report_id = rule_id`, so downstream consumers (hardware report
    /// vectors, the multi-pattern engine) can attribute reports to the
    /// source pattern without parsing node-id prefixes.
    pub fn merge_as_rule(&mut self, other: &MnrlNetwork, prefix: &str, rule_id: u32) {
        self.merge_impl(other, prefix, Some(rule_id));
    }

    fn merge_impl(&mut self, other: &MnrlNetwork, prefix: &str, rule_id: Option<u32>) {
        for node in &other.nodes {
            let mut n = node.clone();
            n.id = format!("{prefix}{}", n.id);
            for c in &mut n.connections {
                c.to = format!("{prefix}{}", c.to);
            }
            if n.report {
                if let Some(rid) = rule_id {
                    n.report_id = Some(rid);
                }
            }
            self.add_node(n);
        }
    }

    /// All report ids present on reporting nodes, deduplicated, ascending.
    pub fn report_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .nodes
            .iter()
            .filter(|n| n.report)
            .filter_map(|n| n.report_id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Structural validation; returns a list of problems (empty = valid):
    ///
    /// * connections point to existing nodes;
    /// * output/input port compatibility with node kinds;
    /// * counters have at least `fst` and `lst` inputs connected, bit
    ///   vectors a `body` input;
    /// * bit-vector windows satisfy `lo ≤ hi ≤ size`;
    /// * counter bounds satisfy `min ≤ max`.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        // Which module input ports receive at least one connection.
        let mut fed: HashMap<(usize, Port), u32> = HashMap::new();
        for node in &self.nodes {
            for conn in &node.connections {
                if !conn.from_port.is_output_of(&node.kind) {
                    problems.push(format!(
                        "{}: port {} is not an output of a {}",
                        node.id,
                        conn.from_port,
                        node.kind.type_name()
                    ));
                }
                match self.index.get(&conn.to) {
                    None => problems.push(format!(
                        "{}: connection to unknown node {:?}",
                        node.id, conn.to
                    )),
                    Some(&ti) => {
                        let target = &self.nodes[ti];
                        if !conn.to_port.is_input_of(&target.kind) {
                            problems.push(format!(
                                "{}: port {} is not an input of {} ({})",
                                node.id,
                                conn.to_port,
                                target.id,
                                target.kind.type_name()
                            ));
                        } else {
                            *fed.entry((ti, conn.to_port)).or_insert(0) += 1;
                        }
                    }
                }
            }
            match &node.kind {
                NodeKind::State { symbol_set } => {
                    if symbol_set.is_empty() {
                        problems.push(format!("{}: empty symbol set", node.id));
                    }
                }
                NodeKind::Counter { min, max } => {
                    if let Some(n) = max {
                        if n < min {
                            problems.push(format!("{}: counter bounds inverted", node.id));
                        }
                    }
                }
                NodeKind::BitVector { size, lo, hi } => {
                    if lo > hi || hi > size {
                        problems.push(format!(
                            "{}: bit-vector window {lo}..={hi} outside size {size}",
                            node.id
                        ));
                    }
                }
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            match &node.kind {
                NodeKind::Counter { .. } => {
                    for port in [Port::Fst, Port::Lst] {
                        if !fed.contains_key(&(i, port)) {
                            problems.push(format!("{}: counter input {port} unconnected", node.id));
                        }
                    }
                }
                NodeKind::BitVector { .. } => {
                    if !fed.contains_key(&(i, Port::Body)) {
                        problems.push(format!("{}: bit-vector input body unconnected", node.id));
                    }
                }
                NodeKind::State { .. } => {}
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ste(id: &str, class: ByteClass) -> Node {
        Node {
            id: id.into(),
            kind: NodeKind::State { symbol_set: class },
            enable: Enable::OnActivateIn,
            report: false,
            report_id: None,
            connections: vec![],
        }
    }

    #[test]
    fn add_and_lookup() {
        let mut net = MnrlNetwork::new("t");
        net.add_node(ste("a", ByteClass::singleton(b'a')));
        assert!(net.node("a").is_some());
        assert!(net.node("b").is_none());
        assert_eq!(net.node_count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_ids_rejected() {
        let mut net = MnrlNetwork::new("t");
        net.add_node(ste("a", ByteClass::ANY));
        net.add_node(ste("a", ByteClass::ANY));
    }

    #[test]
    fn validate_catches_dangling_connection() {
        let mut net = MnrlNetwork::new("t");
        let mut n = ste("a", ByteClass::ANY);
        n.connections.push(Connection {
            from_port: Port::Main,
            to: "ghost".into(),
            to_port: Port::Main,
        });
        net.add_node(n);
        let problems = net.validate();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("unknown node"));
    }

    #[test]
    fn validate_catches_port_misuse() {
        let mut net = MnrlNetwork::new("t");
        let mut n = ste("a", ByteClass::ANY);
        // STEs have no en_out output.
        n.connections.push(Connection {
            from_port: Port::EnOut,
            to: "a".into(),
            to_port: Port::Main,
        });
        net.add_node(n);
        assert!(!net.validate().is_empty());
    }

    #[test]
    fn validate_counter_needs_inputs() {
        let mut net = MnrlNetwork::new("t");
        net.add_node(Node {
            id: "c0".into(),
            kind: NodeKind::Counter {
                min: 2,
                max: Some(5),
            },
            enable: Enable::OnActivateIn,
            report: false,
            report_id: None,
            connections: vec![],
        });
        let problems = net.validate();
        assert!(problems.iter().any(|p| p.contains("fst unconnected")));
        assert!(problems.iter().any(|p| p.contains("lst unconnected")));
    }

    #[test]
    fn validate_bitvector_window() {
        let mut net = MnrlNetwork::new("t");
        let mut s = ste("s", ByteClass::ANY);
        s.connections.push(Connection {
            from_port: Port::Main,
            to: "bv".into(),
            to_port: Port::Body,
        });
        net.add_node(s);
        net.add_node(Node {
            id: "bv".into(),
            kind: NodeKind::BitVector {
                size: 10,
                lo: 4,
                hi: 12,
            },
            enable: Enable::OnActivateIn,
            report: false,
            report_id: None,
            connections: vec![],
        });
        assert!(net.validate().iter().any(|p| p.contains("outside size")));
    }

    #[test]
    fn counts_by_type_and_merge() {
        let mut a = MnrlNetwork::new("a");
        a.add_node(ste("s0", ByteClass::ANY));
        let mut b = MnrlNetwork::new("b");
        b.add_node(ste("s0", ByteClass::ANY));
        b.add_node(Node {
            id: "c0".into(),
            kind: NodeKind::Counter {
                min: 1,
                max: Some(3),
            },
            enable: Enable::OnActivateIn,
            report: false,
            report_id: None,
            connections: vec![],
        });
        a.merge_prefixed(&b, "r1_");
        assert_eq!(a.node_count(), 3);
        assert!(a.node("r1_s0").is_some());
        assert!(a.node("r1_c0").is_some());
        assert_eq!(a.counts_by_type(), (2, 1, 0));
    }

    #[test]
    fn port_name_roundtrip() {
        for p in [
            Port::Main,
            Port::Pre,
            Port::Fst,
            Port::Lst,
            Port::Body,
            Port::EnFst,
            Port::EnOut,
            Port::EnBody,
        ] {
            assert_eq!(Port::from_name(p.name()), Some(p));
        }
        assert_eq!(Port::from_name("bogus"), None);
    }
}
