//! The counter/bit-vector execution engine — the software twin of the
//! paper's augmented hardware (§3.2.1, §4).
//!
//! Per-state storage is chosen by a [`CompilePlan`]:
//!
//! * pure states get one activity bit (an STE state bit);
//! * counter-**unambiguous** states get a single counter valuation — the
//!   O(log M) memory win the static analysis unlocks (counter module);
//! * counter-**ambiguous** single-counter states get a bit vector indexed
//!   by counter value, manipulated with set-first/shift/disjunct exactly as
//!   §3.2.1 describes (bit-vector module);
//! * anything else (ambiguous nested counting) falls back to an explicit
//!   token set, which is always sound — the paper handles these residual
//!   cases by partial unfolding in the compiler.
//!
//! When a plan declares a state `SingleValue` on the strength of the static
//! analysis, the engine *dynamically verifies* the claim: any collision of
//! two distinct valuations is counted in [`CompiledEngine::conflicts`]
//! (tests assert it stays 0), making the engine a runtime cross-check of
//! the analysis.

use crate::engine::Engine;
use crate::nca::{Nca, StateId};
use crate::token::{resolve_guard, resolve_transition, SlotSrc, SlotTest};
use std::collections::HashSet;

/// Storage discipline for one state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageMode {
    /// Pure state: a single activity bit.
    PureBit,
    /// Counter-unambiguous state: at most one token; stores one valuation.
    SingleValue,
    /// Counter-ambiguous state with exactly one counter of bound `n`:
    /// a bit vector `v` with `v[i] = 1` iff token `(q, i)` is live.
    BitVector,
    /// Counter-ambiguous single-counter state whose only counter-edges are
    /// a self-loop increment and `x := 1` entries (the `σ{m,n}` shape): a
    /// *counting set* stored as a sorted offset queue, the representation
    /// of Turoňová et al. [OOPSLA'20] that the paper's related work
    /// discusses — increments cost O(1) (a shared offset bump) instead of
    /// a shift over n bits.
    CountingSet,
    /// General fallback: explicit set of valuations.
    TokenSet,
}

/// Per-state storage assignment for a [`CompiledEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompilePlan {
    modes: Vec<StorageMode>,
}

impl CompilePlan {
    /// A plan that is sound without any static analysis: pure states get a
    /// bit, single-counter states a bit vector, multi-counter states a
    /// token set. (Bit vectors are always sound for single-counter states;
    /// it is `SingleValue` that needs the unambiguity proof.)
    pub fn conservative(nca: &Nca) -> CompilePlan {
        let modes = nca
            .states()
            .iter()
            .map(|s| match s.counters.len() {
                0 => StorageMode::PureBit,
                1 => StorageMode::BitVector,
                _ => StorageMode::TokenSet,
            })
            .collect();
        CompilePlan { modes }
    }

    /// A plan informed by the static analysis: states for which
    /// `unambiguous(q)` holds store a single valuation (the counter-module
    /// case); ambiguous single-counter states get bit vectors; ambiguous
    /// multi-counter states fall back to token sets.
    pub fn with_unambiguous_states(
        nca: &Nca,
        mut unambiguous: impl FnMut(StateId) -> bool,
    ) -> CompilePlan {
        let modes = nca
            .states()
            .iter()
            .enumerate()
            .map(|(qi, s)| {
                if s.counters.is_empty() {
                    StorageMode::PureBit
                } else if unambiguous(StateId(qi as u32)) {
                    StorageMode::SingleValue
                } else if s.counters.len() == 1 {
                    StorageMode::BitVector
                } else {
                    StorageMode::TokenSet
                }
            })
            .collect();
        CompilePlan { modes }
    }

    /// Like [`CompilePlan::conservative`], but using counting-set queues
    /// instead of bit vectors wherever the state qualifies (single counter;
    /// the only counter-carrying incoming edges are the self-loop increment
    /// and `x := 1` entries). Non-qualifying counted states keep bit
    /// vectors / token sets.
    pub fn counting_sets(nca: &Nca) -> CompilePlan {
        let modes = nca
            .states()
            .iter()
            .enumerate()
            .map(|(qi, s)| match s.counters.len() {
                0 => StorageMode::PureBit,
                1 if counting_set_eligible(nca, StateId(qi as u32)) => StorageMode::CountingSet,
                1 => StorageMode::BitVector,
                _ => StorageMode::TokenSet,
            })
            .collect();
        CompilePlan { modes }
    }

    /// The best statically-known plan: combines the analysis-informed
    /// [`CompilePlan::with_unambiguous_states`] selection with the
    /// counting-set queues of [`CompilePlan::counting_sets`] — unambiguous
    /// counted states store a single valuation, ambiguous eligible states
    /// get O(1)-increment queues, the rest keep bit vectors / token sets.
    pub fn optimized(nca: &Nca, mut unambiguous: impl FnMut(StateId) -> bool) -> CompilePlan {
        let modes = nca
            .states()
            .iter()
            .enumerate()
            .map(|(qi, s)| {
                let q = StateId(qi as u32);
                if s.counters.is_empty() {
                    StorageMode::PureBit
                } else if unambiguous(q) {
                    StorageMode::SingleValue
                } else if s.counters.len() == 1 && counting_set_eligible(nca, q) {
                    StorageMode::CountingSet
                } else if s.counters.len() == 1 {
                    StorageMode::BitVector
                } else {
                    StorageMode::TokenSet
                }
            })
            .collect();
        CompilePlan { modes }
    }

    /// Assembles a plan from explicit per-state modes (used when merging
    /// several automata's plans into one).
    pub fn from_modes(modes: Vec<StorageMode>) -> CompilePlan {
        CompilePlan { modes }
    }

    /// The storage mode of `q`.
    pub fn mode(&self, q: StateId) -> StorageMode {
        self.modes[q.index()]
    }

    /// Number of states covered by the plan.
    pub fn len(&self) -> usize {
        self.modes.len()
    }

    /// Whether the plan covers no states.
    pub fn is_empty(&self) -> bool {
        self.modes.is_empty()
    }

    /// Iterates over all (state, mode) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StateId, StorageMode)> + '_ {
        self.modes
            .iter()
            .enumerate()
            .map(|(i, &m)| (StateId(i as u32), m))
    }
}

/// Whether a counted state fits the counting-set representation: all
/// counter-carrying incoming edges are either the self-loop `x<n / x++` or
/// an entry `x := 1` (the `σ{m,n}` shape after Glushkov).
pub(crate) fn counting_set_eligible(nca: &Nca, q: StateId) -> bool {
    let counter = match nca.state(q).counters.as_slice() {
        [c] => *c,
        _ => return false,
    };
    if nca.counter(counter).max.is_none() {
        return false; // saturating {m,} queues would lose sortedness
    }
    nca.transitions_into(q).all(|t| {
        if t.from == q {
            t.actions == vec![crate::nca::ActionOp::Inc(counter)]
        } else {
            t.actions == vec![crate::nca::ActionOp::Set(counter, 1)]
        }
    })
}

/// A counting set as a sorted queue of token *birth clocks*: the token's
/// counter value is `clock - birth + 1`, so incrementing every live token
/// is one clock bump and expiry is popping from the front.
#[derive(Debug, Clone, Default)]
pub(crate) struct CountingQueue {
    clock: u64,
    /// Birth clocks, oldest (largest value) first.
    births: std::collections::VecDeque<u64>,
}

impl CountingQueue {
    fn value_of(&self, birth: u64) -> u32 {
        (self.clock - birth + 1) as u32
    }

    /// All tokens increment; tokens past `bound` die.
    pub(crate) fn shift(&mut self, bound: u32) {
        self.clock += 1;
        while let Some(&front) = self.births.front() {
            if self.value_of(front) > bound {
                self.births.pop_front();
            } else {
                break;
            }
        }
    }

    /// Insert a fresh token with value 1 (deduplicated).
    pub(crate) fn set_first(&mut self) {
        if self.births.back() != Some(&self.clock) {
            self.births.push_back(self.clock);
        }
    }

    pub(crate) fn clear(&mut self) {
        self.births.clear();
    }

    fn values(&self) -> impl Iterator<Item = u32> + '_ {
        self.births.iter().map(|&b| self.value_of(b))
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Storage {
    PureBit(bool),
    Single(Option<Vec<u32>>),
    /// Bit `v` (1-based; bit 0 unused) set iff token with counter value `v`
    /// is live. Length `bound + 1` bits, word-packed.
    Bits {
        words: Vec<u64>,
        bound: u32,
    },
    /// Counting-set queue (see [`StorageMode::CountingSet`]).
    Queue {
        queue: CountingQueue,
        bound: u32,
    },
    Tokens(HashSet<Vec<u32>>),
}

impl Storage {
    pub(crate) fn new(mode: StorageMode, bound: u32) -> Storage {
        match mode {
            StorageMode::PureBit => Storage::PureBit(false),
            StorageMode::SingleValue => Storage::Single(None),
            StorageMode::BitVector => Storage::Bits {
                words: vec![0; ((bound as usize + 1).div_ceil(64)).max(1)],
                bound,
            },
            StorageMode::CountingSet => Storage::Queue {
                queue: CountingQueue::default(),
                bound,
            },
            StorageMode::TokenSet => Storage::Tokens(HashSet::new()),
        }
    }

    pub(crate) fn clear(&mut self) {
        match self {
            Storage::PureBit(b) => *b = false,
            Storage::Single(v) => *v = None,
            Storage::Bits { words, .. } => words.iter_mut().for_each(|w| *w = 0),
            Storage::Queue { queue, .. } => queue.clear(),
            Storage::Tokens(set) => set.clear(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        match self {
            Storage::PureBit(b) => !*b,
            Storage::Single(v) => v.is_none(),
            Storage::Bits { words, .. } => words.iter().all(|&w| w == 0),
            Storage::Queue { queue, .. } => queue.births.is_empty(),
            Storage::Tokens(set) => set.is_empty(),
        }
    }

    /// Calls `f` with every live valuation.
    pub(crate) fn for_each(&self, mut f: impl FnMut(&[u32])) {
        match self {
            Storage::PureBit(true) => f(&[]),
            Storage::PureBit(false) => {}
            Storage::Single(Some(v)) => f(v),
            Storage::Single(None) => {}
            Storage::Bits { words, .. } => {
                for (wi, &w) in words.iter().enumerate() {
                    let mut w = w;
                    while w != 0 {
                        let b = w.trailing_zeros() as usize;
                        w &= w - 1;
                        f(&[(wi * 64 + b) as u32]);
                    }
                }
            }
            Storage::Queue { queue, .. } => {
                for v in queue.values() {
                    f(&[v]);
                }
            }
            Storage::Tokens(set) => {
                for v in set {
                    f(v);
                }
            }
        }
    }

    /// Inserts a valuation; returns `true` on a SingleValue conflict (two
    /// distinct valuations on a state the plan claims unambiguous).
    pub(crate) fn insert(&mut self, values: &[u32]) -> bool {
        match self {
            Storage::PureBit(b) => {
                debug_assert!(values.is_empty());
                *b = true;
                false
            }
            Storage::Single(slot) => match slot {
                None => {
                    *slot = Some(values.to_vec());
                    false
                }
                Some(existing) if existing.as_slice() == values => false,
                Some(existing) => {
                    // Keep the smaller valuation for determinism; flag it.
                    if values < existing.as_slice() {
                        *existing = values.to_vec();
                    }
                    true
                }
            },
            Storage::Bits { words, bound } => {
                let v = values[0];
                debug_assert!(
                    v >= 1 && v <= *bound,
                    "counter value {v} out of 1..={bound}"
                );
                words[(v / 64) as usize] |= 1 << (v % 64);
                false
            }
            Storage::Queue { .. } => {
                unreachable!("counting-set states are updated by the specialized path")
            }
            Storage::Tokens(set) => {
                set.insert(values.to_vec());
                false
            }
        }
    }
}

struct EdgeProg {
    from: StateId,
    guard: Vec<SlotTest>,
    dst: Vec<SlotSrc>,
}

/// Precomputed structure of a counting-set state's incoming edges.
struct QueueInfo {
    has_self_loop: bool,
    /// (source state, slot-resolved guard) of each entry edge.
    entry_sources: Vec<(usize, Vec<SlotTest>)>,
}

/// The compiled engine. See the module docs.
pub struct CompiledEngine<'a> {
    nca: &'a Nca,
    plan: CompilePlan,
    incoming: Vec<Vec<EdgeProg>>,
    accepts: Vec<Vec<Vec<SlotTest>>>,
    queue_info: Vec<Option<QueueInfo>>,
    /// Scratch: entry activity per counting-set state.
    queue_entry_scratch: Vec<bool>,
    /// Scratch: destination valuation under construction (reused across
    /// edges so the hot loop never allocates).
    value_scratch: Vec<u32>,
    cur: Vec<Storage>,
    nxt: Vec<Storage>,
    conflicts: u64,
}

impl<'a> CompiledEngine<'a> {
    /// Builds the engine with the given storage plan.
    pub fn new(nca: &'a Nca, plan: CompilePlan) -> CompiledEngine<'a> {
        assert_eq!(
            plan.modes.len(),
            nca.state_count(),
            "plan/automaton mismatch"
        );
        let incoming = (0..nca.state_count())
            .map(|qi| {
                nca.transitions_into(StateId(qi as u32))
                    .map(|t| {
                        let (guard, dst) = resolve_transition(nca, t);
                        EdgeProg {
                            from: t.from,
                            guard,
                            dst,
                        }
                    })
                    .collect()
            })
            .collect();
        let accepts = nca
            .states()
            .iter()
            .enumerate()
            .map(|(qi, s)| {
                s.accepts
                    .iter()
                    .map(|conj| resolve_guard(nca, StateId(qi as u32), conj))
                    .collect()
            })
            .collect();
        let queue_info: Vec<Option<QueueInfo>> = (0..nca.state_count())
            .map(|qi| {
                if plan.modes[qi] != StorageMode::CountingSet {
                    return None;
                }
                debug_assert!(
                    counting_set_eligible(nca, StateId(qi as u32)),
                    "plan assigned CountingSet to an ineligible state q{qi}"
                );
                let mut has_self_loop = false;
                let mut entry_sources = Vec::new();
                for t in nca.transitions_into(StateId(qi as u32)) {
                    if t.from.index() == qi {
                        has_self_loop = true;
                    } else {
                        entry_sources.push((t.from.index(), resolve_guard(nca, t.from, &t.guard)));
                    }
                }
                Some(QueueInfo {
                    has_self_loop,
                    entry_sources,
                })
            })
            .collect();
        let storage_for = |qi: usize| {
            let s = &nca.states()[qi];
            let bound = s
                .counters
                .first()
                .map(|&c| nca.counter(c).bound())
                .unwrap_or(0);
            Storage::new(plan.modes[qi], bound)
        };
        let cur = (0..nca.state_count()).map(storage_for).collect();
        let nxt = (0..nca.state_count()).map(storage_for).collect();
        let n = nca.state_count();
        let mut e = CompiledEngine {
            nca,
            plan,
            incoming,
            accepts,
            queue_info,
            queue_entry_scratch: vec![false; n],
            value_scratch: Vec::new(),
            cur,
            nxt,
            conflicts: 0,
        };
        e.reset();
        e
    }

    /// Builds the engine with the counting-set plan (queue representation
    /// for eligible ambiguous states; see [`CompilePlan::counting_sets`]).
    pub fn counting_sets(nca: &'a Nca) -> CompiledEngine<'a> {
        CompiledEngine::new(nca, CompilePlan::counting_sets(nca))
    }

    /// Builds the engine with the analysis-free conservative plan.
    pub fn conservative(nca: &'a Nca) -> CompiledEngine<'a> {
        CompiledEngine::new(nca, CompilePlan::conservative(nca))
    }

    /// Number of SingleValue collisions observed — a nonzero value means a
    /// state the plan declared counter-unambiguous received two distinct
    /// tokens, i.e. the plan (or the analysis that produced it) is wrong.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// The storage plan in use.
    pub fn plan(&self) -> &CompilePlan {
        &self.plan
    }

    /// Number of live tokens at state `q` (for activity statistics).
    pub fn tokens_at(&self, q: StateId) -> usize {
        let mut n = 0;
        self.cur[q.index()].for_each(|_| n += 1);
        n
    }
}

impl Engine for CompiledEngine<'_> {
    fn reset(&mut self) {
        for s in &mut self.cur {
            s.clear();
        }
        self.cur[0] = Storage::PureBit(true);
        self.conflicts = 0;
    }

    fn step(&mut self, byte: u8) {
        // Two-phase, like the hardware: "state matching" = does the input
        // satisfy the destination's class; "state transition" = move
        // tokens along the switch network / counter / bit-vector modules.
        for qi in 0..self.nca.state_count() {
            self.nxt[qi].clear();
            if self.queue_info[qi].is_some() {
                continue; // counting-set states use the specialized pass
            }
            if !self.nca.states()[qi].class.contains(byte) {
                continue;
            }
            // Split borrow: nxt[qi] mutated while cur is read.
            let nxt_q = &mut self.nxt[qi];
            let cur = &self.cur;
            let value_scratch = &mut self.value_scratch;
            let mut conflicts = 0u64;
            for edge in &self.incoming[qi] {
                let src = &cur[edge.from.index()];
                if src.is_empty() {
                    continue;
                }
                src.for_each(|values| {
                    if edge.guard.iter().all(|g| g.eval(values)) {
                        value_scratch.clear();
                        value_scratch.extend(edge.dst.iter().map(|s| s.eval(values)));
                        if nxt_q.insert(value_scratch) {
                            conflicts += 1;
                        }
                    }
                });
            }
            self.conflicts += conflicts;
        }
        // Counting-set pass. First read all entry activities (before any
        // queue is consumed — queue states may feed each other), then
        // update each queue in place: one clock bump instead of an O(n)
        // shift.
        for qi in 0..self.nca.state_count() {
            let Some(info) = &self.queue_info[qi] else {
                continue;
            };
            self.queue_entry_scratch[qi] = info.entry_sources.iter().any(|(src, guard)| {
                let mut hit = false;
                self.cur[*src].for_each(|values| {
                    hit = hit || guard.iter().all(|g| g.eval(values));
                });
                hit
            });
        }
        for qi in 0..self.nca.state_count() {
            let Some(info) = &self.queue_info[qi] else {
                continue;
            };
            let matched = self.nca.states()[qi].class.contains(byte);
            // Move the queue to the next buffer (keeps the buffers typed).
            let mut storage = std::mem::replace(&mut self.cur[qi], Storage::PureBit(false));
            match &mut storage {
                Storage::Queue { queue, bound } => {
                    if !matched {
                        queue.clear(); // the body predicate failed: all died
                    } else {
                        if info.has_self_loop {
                            queue.shift(*bound);
                        } else {
                            queue.clear();
                        }
                        if self.queue_entry_scratch[qi] {
                            queue.set_first();
                        }
                    }
                }
                _ => unreachable!("queue_info only set for Queue storage"),
            }
            self.nxt[qi] = storage;
        }
        std::mem::swap(&mut self.cur, &mut self.nxt);
        // q0 never reactivates (no incoming transitions).
    }

    fn is_accepting(&self) -> bool {
        for (qi, disjuncts) in self.accepts.iter().enumerate() {
            if disjuncts.is_empty() {
                continue;
            }
            let mut hit = false;
            self.cur[qi].for_each(|values| {
                if !hit {
                    hit = disjuncts
                        .iter()
                        .any(|conj| conj.iter().all(|g| g.eval(values)));
                }
            });
            if hit {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TokenSetEngine;
    use recama_syntax::parse;

    fn nca(p: &str) -> Nca {
        Nca::from_regex(&parse(p).unwrap().regex)
    }

    fn exhaustive_inputs(alpha: &[u8], maxlen: usize) -> Vec<Vec<u8>> {
        let mut all: Vec<Vec<u8>> = vec![vec![]];
        let mut frontier: Vec<Vec<u8>> = vec![vec![]];
        for _ in 0..maxlen {
            let mut next = Vec::new();
            for w in &frontier {
                for &c in alpha {
                    let mut w2 = w.clone();
                    w2.push(c);
                    next.push(w2);
                }
            }
            all.extend(next.iter().cloned());
            frontier = next;
        }
        all
    }

    #[test]
    fn conservative_plan_matches_reference() {
        for p in [
            "a{2,4}",
            ".*a{3}",
            "(ab){2,3}c",
            "(a{2,3}){2,3}",
            "a{2,}b",
            ".*[ab][^a]{3}",
            "(a|b){2,4}",
        ] {
            let a = nca(p);
            let mut fast = CompiledEngine::conservative(&a);
            let mut slow = TokenSetEngine::new(&a);
            for w in exhaustive_inputs(b"ab", 6) {
                assert_eq!(fast.matches(&w), slow.matches(&w), "{p} on {w:?}");
            }
            assert_eq!(fast.conflicts(), 0);
        }
    }

    #[test]
    fn conservative_plan_modes() {
        let a = nca(".*a{3}");
        let plan = CompilePlan::conservative(&a);
        let n_bitvec = plan
            .iter()
            .filter(|(_, m)| *m == StorageMode::BitVector)
            .count();
        let n_pure = plan
            .iter()
            .filter(|(_, m)| *m == StorageMode::PureBit)
            .count();
        assert_eq!(n_bitvec, 1);
        assert_eq!(n_pure, a.state_count() - 1);
        // Nested counting yields a TokenSet fallback for two-counter states.
        let b = nca("(a{2,3}b){2,3}");
        let planb = CompilePlan::conservative(&b);
        assert!(planb.iter().any(|(_, m)| m == StorageMode::TokenSet));
    }

    #[test]
    fn single_value_plan_on_unambiguous_regex() {
        // a{4} anchored: counter-unambiguous, so SingleValue everywhere.
        let a = nca("a{4}b");
        let plan = CompilePlan::with_unambiguous_states(&a, |_| true);
        let mut fast = CompiledEngine::new(&a, plan);
        let mut slow = TokenSetEngine::new(&a);
        for w in exhaustive_inputs(b"ab", 7) {
            assert_eq!(fast.matches(&w), slow.matches(&w), "on {w:?}");
        }
        assert_eq!(fast.conflicts(), 0, "a{{4}}b is counter-unambiguous");
    }

    #[test]
    fn single_value_plan_detects_bad_claims() {
        // .*a{2} is counter-ambiguous (Example 3.2): claiming SingleValue
        // everywhere must produce conflicts on input aaa.
        let a = nca(".*a{2}");
        let plan = CompilePlan::with_unambiguous_states(&a, |_| true);
        let mut e = CompiledEngine::new(&a, plan);
        e.matches(b"aaa");
        assert!(e.conflicts() > 0);
    }

    #[test]
    fn bitvector_mirrors_paper_ops() {
        // Σ*σ1σ2{n} from Example 2.2 — the bit-vector case.
        let a = nca(".*[ab][^a]{3}");
        let mut fast = CompiledEngine::conservative(&a);
        let mut slow = TokenSetEngine::new(&a);
        for w in exhaustive_inputs(b"abx", 5) {
            assert_eq!(fast.matches(&w), slow.matches(&w), "on {w:?}");
        }
    }

    #[test]
    fn match_ends_agree() {
        let p = parse("ab{2,3}").unwrap();
        let a = Nca::from_regex(&p.for_stream());
        let mut fast = CompiledEngine::conservative(&a);
        let mut slow = TokenSetEngine::new(&a);
        let input = b"zabbbabbx";
        assert_eq!(fast.match_ends(input), slow.match_ends(input));
    }

    #[test]
    fn tokens_at_counts_live_tokens() {
        let a = nca(".*a{5}");
        let mut e = CompiledEngine::conservative(&a);
        e.reset();
        for &b in b"aaa" {
            e.step(b);
        }
        // The counted state holds tokens with values 1, 2, 3.
        let counted = (0..a.state_count())
            .map(|i| StateId(i as u32))
            .find(|&q| !a.state(q).is_pure())
            .unwrap();
        assert_eq!(e.tokens_at(counted), 3);
    }
}

#[cfg(test)]
mod counting_set_tests {
    use super::*;
    use crate::engine::{Engine, TokenSetEngine};
    use recama_syntax::parse;

    fn nca(p: &str) -> Nca {
        Nca::from_regex(&parse(p).unwrap().regex)
    }

    fn exhaustive_inputs(alpha: &[u8], maxlen: usize) -> Vec<Vec<u8>> {
        let mut all: Vec<Vec<u8>> = vec![vec![]];
        let mut frontier: Vec<Vec<u8>> = vec![vec![]];
        for _ in 0..maxlen {
            let mut next = Vec::new();
            for w in &frontier {
                for &c in alpha {
                    let mut w2 = w.clone();
                    w2.push(c);
                    next.push(w2);
                }
            }
            all.extend(next.iter().cloned());
            frontier = next;
        }
        all
    }

    #[test]
    fn queue_plan_assigns_counting_sets_to_sigma_bodies() {
        let a = nca(".*a{5}");
        let plan = CompilePlan::counting_sets(&a);
        assert!(plan.iter().any(|(_, m)| m == StorageMode::CountingSet));
        // Multi-state bodies are not eligible.
        let b = nca(".*(ab){3,5}");
        let planb = CompilePlan::counting_sets(&b);
        assert!(planb
            .iter()
            .all(|(_, m)| m != StorageMode::CountingSet || matches!(m, StorageMode::CountingSet)));
        // (ab) body states loop to each other, not to themselves.
        assert!(!planb.iter().any(|(_, m)| m == StorageMode::CountingSet));
        // Unbounded {m,} is excluded (saturation breaks the queue).
        let c = nca(".*a{3,}b");
        assert!(!CompilePlan::counting_sets(&c)
            .iter()
            .any(|(_, m)| m == StorageMode::CountingSet));
    }

    #[test]
    fn counting_set_engine_matches_reference() {
        for p in [
            ".*a{3}",
            ".*a{2,4}b",
            "x[ab]{2,5}y",
            ".*[ab][^a]{3}",
            "a{2,3}c{2,3}", // chained: entry of the second is guarded
            "(x|y)a{2,4}z",
        ] {
            let a = nca(p);
            let mut fast = CompiledEngine::counting_sets(&a);
            let mut slow = TokenSetEngine::new(&a);
            for w in exhaustive_inputs(b"abxyz", 5) {
                assert_eq!(fast.matches(&w), slow.matches(&w), "{p} on {w:?}");
            }
            assert_eq!(fast.conflicts(), 0);
        }
    }

    #[test]
    fn counting_queue_semantics() {
        let mut q = CountingQueue::default();
        q.set_first();
        assert_eq!(q.values().collect::<Vec<_>>(), vec![1]);
        q.shift(5);
        q.set_first();
        assert_eq!(q.values().collect::<Vec<_>>(), vec![2, 1]);
        q.shift(5);
        q.shift(5);
        assert_eq!(q.values().collect::<Vec<_>>(), vec![4, 3]);
        // Expiry past the bound pops the oldest.
        q.shift(4);
        assert_eq!(q.values().collect::<Vec<_>>(), vec![4]);
        q.shift(4);
        assert!(q.values().next().is_none());
        // Dedup of same-cycle inserts.
        q.set_first();
        q.set_first();
        assert_eq!(q.values().count(), 1);
    }

    #[test]
    fn counting_set_match_ends_agree_with_bitvector_plan() {
        let p = parse("k.{3,9}").unwrap();
        let a = Nca::from_regex(&p.for_stream());
        let input = b"akzzzzk_zzzzzzzzzzk";
        let mut queue_engine = CompiledEngine::counting_sets(&a);
        let mut bits_engine = CompiledEngine::conservative(&a);
        assert_eq!(
            queue_engine.match_ends(input),
            bits_engine.match_ends(input)
        );
    }
}
