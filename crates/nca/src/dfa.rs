//! DFA execution via (lazy) subset construction — the classical
//! software baseline of the paper's introduction: DFAs process one byte
//! with a single table lookup but can be **exponentially larger** than the
//! NFA, and unfolded counting makes the blowup Θ(2ⁿ) for patterns like
//! `Σ*a Σ{n}` (Meyer & Fischer [34]). [`full_dfa_size`] demonstrates
//! exactly that blowup; [`DfaEngine`] builds states on demand so it stays
//! usable as a matching baseline.
//!
//! Determinization is shared with the hybrid overlay
//! ([`crate::HybridEngine`]): both intern sorted state subsets in the
//! dense-row [`SubsetCache`], indexed by byte *class* rather than raw
//! byte, so a transition row costs one `u32` per equivalence class
//! instead of 256.

use crate::engine::Engine;
use crate::hybrid::{SubsetCache, UNKNOWN};
use crate::nca::{Nca, StateId};
use recama_syntax::{ByteAlphabet, ByteClassSet};

/// Lazy-subset-construction DFA engine over a **counter-free** NCA.
///
/// States are discovered on demand and memoized; each input byte costs one
/// transition-table lookup once the state is cached (the "single memory
/// lookup" behavior of DFA matchers).
///
/// # Examples
///
/// ```
/// use recama_nca::{unfold, DfaEngine, Engine, Nca, UnfoldPolicy};
/// let r = recama_syntax::parse(".*ab{2,3}c").unwrap().regex;
/// let nca = Nca::from_regex(&unfold(&r, UnfoldPolicy::All));
/// let mut dfa = DfaEngine::new(&nca);
/// assert!(dfa.matches(b"xxabbc"));
/// assert!(!dfa.matches(b"xxabc"));
/// ```
pub struct DfaEngine<'a> {
    nca: &'a Nca,
    /// Byte equivalence classes induced by the automaton's state
    /// predicates; row lookups are class-indexed.
    alphabet: ByteAlphabet,
    cache: SubsetCache,
    accepting: Vec<bool>,
    current: u32,
    start: u32,
}

impl<'a> DfaEngine<'a> {
    /// Builds the engine (start state only; the rest is lazy).
    ///
    /// # Panics
    ///
    /// Panics if `nca` has counters — unfold first ([`crate::unfold`]).
    pub fn new(nca: &'a Nca) -> DfaEngine<'a> {
        assert!(
            nca.counters().is_empty(),
            "DfaEngine requires a counter-free automaton; unfold the regex first"
        );
        let mut class_set = ByteClassSet::new();
        for s in nca.states().iter().skip(1) {
            class_set.add(&s.class);
        }
        let alphabet = class_set.freeze();
        let mut engine = DfaEngine {
            nca,
            cache: SubsetCache::new(alphabet.len()),
            alphabet,
            accepting: Vec::new(),
            current: 0,
            start: 0,
        };
        engine.start = engine.intern(&[0]);
        engine.current = engine.start;
        engine
    }

    fn intern(&mut self, subset: &[u32]) -> u32 {
        let (id, is_new) = self.cache.intern(subset);
        if is_new {
            self.accepting.push(
                subset
                    .iter()
                    .any(|&q| self.nca.state(StateId(q)).is_final()),
            );
        }
        id
    }

    fn successor(&mut self, state: u32, byte: u8) -> u32 {
        let class = self.alphabet.class_of(byte);
        let cached = self.cache.get(state, class);
        if cached != UNKNOWN {
            return cached;
        }
        // Membership is decided per class: the alphabet refines every
        // state predicate, so the representative answers for all bytes
        // of the class.
        let rep = self.alphabet.representative(class);
        let src: Box<[u32]> = self.cache.subset(state).into();
        let mut next: Vec<u32> = Vec::new();
        for &q in src.iter() {
            for t in self.nca.transitions_from(StateId(q)) {
                if self.nca.state(t.to).class.contains(rep) {
                    next.push(t.to.0);
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        let id = self.intern(&next);
        self.cache.set(state, class, id);
        id
    }

    /// Number of DFA states materialized so far.
    pub fn discovered_states(&self) -> usize {
        self.cache.len()
    }
}

impl Engine for DfaEngine<'_> {
    fn reset(&mut self) {
        self.current = self.start;
    }

    fn step(&mut self, byte: u8) {
        self.current = self.successor(self.current, byte);
    }

    fn is_accepting(&self) -> bool {
        self.accepting[self.current as usize]
    }
}

/// Exhaustive subset construction: the number of *reachable* DFA states, or
/// `None` once more than `cap` states exist — used to demonstrate the
/// memory blowup that motivates NCAs (`Σ*aΣ{n}` reaches 2ⁿ⁺¹ states).
pub fn full_dfa_size(nca: &Nca, cap: usize) -> Option<usize> {
    assert!(
        nca.counters().is_empty(),
        "determinization requires a counter-free automaton"
    );
    let mut engine = DfaEngine::new(nca);
    let classes: Vec<u8> = engine.alphabet.classes().map(|(_, rep)| rep).collect();
    let mut frontier = vec![engine.start];
    while let Some(state) = frontier.pop() {
        // One probe per equivalence class covers all of Σ.
        for &rep in &classes {
            let before = engine.discovered_states();
            let next = engine.successor(state, rep);
            if engine.discovered_states() > before {
                frontier.push(next);
                if engine.discovered_states() > cap {
                    return None;
                }
            }
        }
    }
    Some(engine.discovered_states())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TokenSetEngine;
    use crate::unfold::{unfold, UnfoldPolicy};
    use recama_syntax::parse;

    fn unfolded(p: &str) -> Nca {
        Nca::from_regex(&unfold(&parse(p).unwrap().regex, UnfoldPolicy::All))
    }

    #[test]
    #[should_panic(expected = "counter-free")]
    fn rejects_counters() {
        let nca = Nca::from_regex(&parse("a{3}").unwrap().regex);
        let _ = DfaEngine::new(&nca);
    }

    #[test]
    fn agrees_with_reference_engine() {
        for p in [
            "a{2,4}b",
            ".*a{3}",
            "(ab){2,3}",
            "x(y|z){2}w",
            ".*[ab][^a]{2}",
        ] {
            let nca = unfolded(p);
            let mut dfa = DfaEngine::new(&nca);
            let mut reference = TokenSetEngine::new(&nca);
            let mut queue: Vec<Vec<u8>> = vec![vec![]];
            while let Some(w) = queue.pop() {
                assert_eq!(dfa.matches(&w), reference.matches(&w), "{p} on {w:?}");
                if w.len() < 6 {
                    for &c in b"abxyzw" {
                        let mut w2 = w.clone();
                        w2.push(c);
                        queue.push(w2);
                    }
                }
            }
        }
    }

    #[test]
    fn lazy_construction_discovers_few_states_on_narrow_inputs() {
        let nca = unfolded(".*a.{12}");
        let mut dfa = DfaEngine::new(&nca);
        dfa.matches(b"bbbbbbbbbbbbbbbbbbbb");
        // Only the all-b path was explored: far fewer than 2^12 states.
        assert!(dfa.discovered_states() < 64, "{}", dfa.discovered_states());
    }

    #[test]
    fn counting_blowup_is_exponential() {
        // Σ*aΣ{n}: the DFA must remember which of the last n+1 positions
        // held an 'a' → 2^n-ish reachable states.
        let size_4 = full_dfa_size(&unfolded(".*a.{4}"), 1 << 14).expect("fits");
        let size_8 = full_dfa_size(&unfolded(".*a.{8}"), 1 << 14).expect("fits");
        assert!(size_4 >= 1 << 4, "n=4: {size_4}");
        assert!(size_8 >= 1 << 8, "n=8: {size_8}");
        let growth = size_8 as f64 / size_4 as f64;
        assert!(
            growth > 8.0,
            "exponential growth expected, got {growth:.1}x"
        );
        // The NCA for the same pattern is constant-size.
        let nca = Nca::from_regex(&parse(".*a.{8}").unwrap().regex);
        assert!(nca.state_count() < 8);
    }

    #[test]
    fn unambiguous_counting_determinizes_linearly() {
        // ^a{n}b: the DFA just counts — size Θ(n), no blowup.
        let size_8 = full_dfa_size(&unfolded("^a{8}b"), 1 << 14).expect("fits");
        let size_16 = full_dfa_size(&unfolded("^a{16}b"), 1 << 14).expect("fits");
        assert!(size_16 < 2 * size_8 + 8, "{size_8} -> {size_16}");
    }

    #[test]
    fn cap_is_respected() {
        assert_eq!(full_dfa_size(&unfolded(".*a.{14}"), 100), None);
    }

    #[test]
    fn class_indexed_rows_agree_across_all_bytes() {
        // Bytes of one equivalence class share a successor row: stepping
        // any member equals stepping the class representative, for every
        // byte of Σ, including ones no pattern literal names.
        let nca = unfolded(".*a[bc]{2}");
        let mut dfa = DfaEngine::new(&nca);
        let mut reference = TokenSetEngine::new(&nca);
        for prefix in [&b""[..], b"a", b"ab", b"zza"] {
            for b in 0..=255u8 {
                let mut input = prefix.to_vec();
                input.push(b);
                assert_eq!(
                    dfa.matches(&input),
                    reference.matches(&input),
                    "byte {b:#04x} after {prefix:?}"
                );
            }
        }
        assert!(dfa.alphabet.len() < 256);
    }
}
