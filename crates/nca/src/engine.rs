//! Execution engines and the common [`Engine`] interface.
//!
//! Matching discipline: an engine consumes one byte per step (exactly like
//! the hardware consumes one symbol per cycle) and can be queried for
//! acceptance after each step. `matches` decides whole-input membership
//! `w ∈ ⟦A⟧`; `match_ends` reports every prefix length at which the
//! automaton accepts — the "report" events of the in-memory accelerators
//! (run it on the `Σ*r` streaming form to get match-end positions).

use crate::nca::Nca;
use crate::token::{Prepared, Token};
use std::collections::HashSet;

/// A byte-at-a-time automaton executor.
pub trait Engine {
    /// Returns to the initial configuration.
    fn reset(&mut self);

    /// Consumes one input byte.
    fn step(&mut self, byte: u8);

    /// Whether the current configuration contains a final token.
    fn is_accepting(&self) -> bool;

    /// Whole-input membership: resets, consumes `input`, tests acceptance.
    fn matches(&mut self, input: &[u8]) -> bool {
        self.reset();
        for &b in input {
            self.step(b);
        }
        self.is_accepting()
    }

    /// Every prefix length (0..=len) after which the engine accepts.
    fn match_ends(&mut self, input: &[u8]) -> Vec<usize> {
        self.reset();
        let mut ends = Vec::new();
        if self.is_accepting() {
            ends.push(0);
        }
        for (i, &b) in input.iter().enumerate() {
            self.step(b);
            if self.is_accepting() {
                ends.push(i + 1);
            }
        }
        ends
    }
}

/// The reference engine: maintains the exact configuration (set of tokens)
/// of the nondeterministic semantics of §2. Obviously correct and used as
/// ground truth for the optimized engines; not fast.
pub struct TokenSetEngine<'a> {
    prepared: Prepared<'a>,
    config: HashSet<Token>,
    scratch: HashSet<Token>,
    /// Largest number of simultaneous tokens observed on any single state
    /// since the last reset — a direct dynamic measurement of the
    /// counter-ambiguity *degree* (Definition 3.1).
    max_tokens_per_state: usize,
}

impl<'a> TokenSetEngine<'a> {
    /// Creates an engine over `nca` in the initial configuration.
    pub fn new(nca: &'a Nca) -> TokenSetEngine<'a> {
        let mut e = TokenSetEngine {
            prepared: Prepared::new(nca),
            config: HashSet::new(),
            scratch: HashSet::new(),
            max_tokens_per_state: 0,
        };
        e.reset();
        e
    }

    /// The current configuration (set of live tokens).
    pub fn config(&self) -> &HashSet<Token> {
        &self.config
    }

    /// See the `TokenSetEngine::max_tokens_per_state` field docs: a dynamic
    /// lower bound for `degree(q)` maximized over states and inputs seen.
    pub fn observed_degree(&self) -> usize {
        self.max_tokens_per_state
    }

    fn record_degree(&mut self) {
        let mut counts: std::collections::HashMap<crate::nca::StateId, usize> =
            std::collections::HashMap::new();
        for t in &self.config {
            *counts.entry(t.state).or_insert(0) += 1;
        }
        if let Some(&m) = counts.values().max() {
            self.max_tokens_per_state = self.max_tokens_per_state.max(m);
        }
    }
}

impl Engine for TokenSetEngine<'_> {
    fn reset(&mut self) {
        self.config.clear();
        self.config.insert(Token::initial());
        self.max_tokens_per_state = 0;
    }

    fn step(&mut self, byte: u8) {
        self.scratch.clear();
        for t in &self.config {
            let scratch = &mut self.scratch;
            self.prepared.for_each_successor(t, byte, |succ| {
                scratch.insert(succ);
            });
        }
        std::mem::swap(&mut self.config, &mut self.scratch);
        self.record_degree();
    }

    fn is_accepting(&self) -> bool {
        self.config.iter().any(|t| self.prepared.token_accepts(t))
    }
}

/// Convenience: whole-input membership via the reference engine.
///
/// # Examples
///
/// ```
/// let nca = recama_nca::Nca::from_regex(&recama_syntax::parse("a{2,4}").unwrap().regex);
/// assert!(recama_nca::matches(&nca, b"aaa"));
/// assert!(!recama_nca::matches(&nca, b"a"));
/// ```
pub fn matches(nca: &Nca, input: &[u8]) -> bool {
    TokenSetEngine::new(nca).matches(input)
}

/// Convenience: match-end positions via the reference engine.
pub fn match_ends(nca: &Nca, input: &[u8]) -> Vec<usize> {
    TokenSetEngine::new(nca).match_ends(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recama_syntax::{naive, parse};

    fn nca(p: &str) -> Nca {
        Nca::from_regex(&parse(p).unwrap().regex)
    }

    #[test]
    fn agrees_with_naive_oracle() {
        let patterns = [
            "a{2,4}",
            "(ab){2,3}",
            ".*a{3}",
            "a{3}.*b{2}",
            "(a|b){2,5}c",
            "((ab){1,2}c){2}",
            "a+b*c?",
            "(a{2,3}){2}",
            ".*[ab][^a]{3}",
            "a{2,}b",
            "(xy|z){3}",
        ];
        let alphabet = b"abcxyz";
        for p in &patterns {
            let r = parse(p).unwrap().regex;
            let a = Nca::from_regex(&r);
            let mut eng = TokenSetEngine::new(&a);
            // All strings up to length 6 over a small alphabet.
            let mut queue: Vec<Vec<u8>> = vec![vec![]];
            while let Some(w) = queue.pop() {
                let expected = naive::matches(&r, &w);
                assert_eq!(
                    eng.matches(&w),
                    expected,
                    "{p} on {:?}",
                    String::from_utf8_lossy(&w)
                );
                if w.len() < 5 {
                    for &c in alphabet {
                        let mut w2 = w.clone();
                        w2.push(c);
                        queue.push(w2);
                    }
                }
            }
        }
    }

    #[test]
    fn match_ends_on_stream_form() {
        let p = parse("ab{2}").unwrap();
        let a = Nca::from_regex(&p.for_stream());
        // "xabbabb": matches of .*ab{2} end at 4 and 7.
        assert_eq!(match_ends(&a, b"xabbabb"), vec![4, 7]);
    }

    #[test]
    fn empty_input_and_nullable() {
        let a = nca("(ab)*");
        assert!(matches(&a, b""));
        assert_eq!(match_ends(&a, b"abab"), vec![0, 2, 4]);
    }

    #[test]
    fn observed_degree_on_ambiguous_regex() {
        // Σ*σ{2} (Example 3.2) is counter-ambiguous: on input "aaa" two
        // tokens with different counter values sit on the counted state.
        let a = nca(".*a{2}");
        let mut e = TokenSetEngine::new(&a);
        e.matches(b"aaaa");
        assert!(e.observed_degree() >= 2, "degree {}", e.observed_degree());
        // a{2} alone is counter-unambiguous.
        let b = nca("a{2}");
        let mut e = TokenSetEngine::new(&b);
        e.matches(b"aa");
        assert_eq!(e.observed_degree(), 1);
    }

    #[test]
    fn unbounded_counting_semantics() {
        let a = nca("a{3,}");
        assert!(!matches(&a, b"aa"));
        assert!(matches(&a, b"aaa"));
        assert!(matches(&a, b"aaaaaaaa"));
    }
}
