//! The Glushkov construction extended with counters (§2 of the paper).
//!
//! Positions (predicate leaves) of the regex become states; the automaton is
//! ε-free and homogeneous. Each *counting* occurrence `r{m,n}` (or `{m,}`
//! with m ≥ 2) allocates one counter; a state carries the counters of all
//! counting occurrences enclosing its position (cf. Fig. 1 of the paper).
//!
//! Edge shapes produced here, matching the paper's examples:
//!
//! * entering a repetition ⇒ action `x := 1`;
//! * the loop edge `last(body) → first(body)` ⇒ guard `x < n`, action `x++`
//!   (saturating `x := min(x+1, m)` with no guard for `{m,}`);
//! * leaving a repetition ⇒ guard `m ≤ x ≤ n` (`x ≥ m` for `{m,}`).
//!
//! **Precondition**: the input must be normalized
//! ([`recama_syntax::normalize_for_nca`]): every counting body is
//! non-nullable with `m ≥ 1` (and `n ≥ 2` when bounded, `m ≥ 2` when
//! unbounded). [`crate::Nca::from_regex`] normalizes for you.

use crate::nca::{ActionOp, CounterId, CounterInfo, GuardAtom, Nca, State, StateId, Transition};
use recama_syntax::{ByteClass, Regex, RepeatId};
use std::collections::HashSet;

/// Builds the NCA for a **normalized** regex.
///
/// # Panics
///
/// Panics (in debug builds) if the regex violates the normalization
/// precondition; release builds would produce an automaton for a superset
/// language, so callers must normalize first.
pub fn build(regex: &Regex) -> Nca {
    let mut b = Builder {
        states: vec![State {
            class: ByteClass::EMPTY,
            counters: vec![],
            accepts: vec![],
        }],
        counters: Vec::new(),
        transitions: Vec::new(),
        stack: Vec::new(),
    };
    let frag = b.frag(regex);
    // q0 → first(r), with the entry actions initializing entered counters.
    for entry in &frag.first {
        b.transitions.push(Transition {
            from: StateId::INIT,
            to: entry.pos,
            guard: Vec::new(),
            actions: entry.actions.clone(),
        });
    }
    // F: last(r) positions accept under their accumulated exit guards.
    for exit in &frag.last {
        let accepts = &mut b.states[exit.pos.index()].accepts;
        if !accepts.contains(&exit.guards) {
            accepts.push(exit.guards.clone());
        }
    }
    if frag.nullable {
        b.states[0].accepts.push(Vec::new());
    }
    // Deduplicate parallel identical transitions (they can arise through
    // nullable factors in concatenations).
    let mut seen = HashSet::new();
    let transitions: Vec<Transition> = b
        .transitions
        .into_iter()
        .filter(|t| seen.insert(t.clone()))
        .collect();
    Nca::new(b.states, b.counters, transitions)
}

/// A position with the actions needed to *enter* it from outside the
/// subexpression (initializing every repetition counter crossed on the way).
#[derive(Debug, Clone)]
struct Entry {
    pos: StateId,
    actions: Vec<ActionOp>,
}

/// A position with the guards needed to *exit* the subexpression from it
/// (the exit tests of every repetition left on the way).
#[derive(Debug, Clone)]
struct Exit {
    pos: StateId,
    guards: Vec<GuardAtom>,
}

struct Frag {
    nullable: bool,
    first: Vec<Entry>,
    last: Vec<Exit>,
}

struct Builder {
    states: Vec<State>,
    counters: Vec<CounterInfo>,
    transitions: Vec<Transition>,
    /// Counters of the counting occurrences enclosing the current position.
    stack: Vec<CounterId>,
}

impl Builder {
    fn frag(&mut self, r: &Regex) -> Frag {
        match r {
            Regex::Empty => Frag {
                nullable: true,
                first: vec![],
                last: vec![],
            },
            Regex::Void => Frag {
                nullable: false,
                first: vec![],
                last: vec![],
            },
            Regex::Class(c) => {
                let pos = StateId(self.states.len() as u32);
                self.states.push(State {
                    class: *c,
                    counters: self.stack.clone(),
                    accepts: vec![],
                });
                Frag {
                    nullable: false,
                    first: vec![Entry {
                        pos,
                        actions: vec![],
                    }],
                    last: vec![Exit {
                        pos,
                        guards: vec![],
                    }],
                }
            }
            Regex::Alt(parts) => {
                let mut out = Frag {
                    nullable: false,
                    first: vec![],
                    last: vec![],
                };
                for p in parts {
                    let f = self.frag(p);
                    out.nullable |= f.nullable;
                    out.first.extend(f.first);
                    out.last.extend(f.last);
                }
                out
            }
            Regex::Concat(parts) => {
                let mut iter = parts.iter();
                let mut acc = match iter.next() {
                    Some(p) => self.frag(p),
                    None => {
                        return Frag {
                            nullable: true,
                            first: vec![],
                            last: vec![],
                        }
                    }
                };
                for p in iter {
                    let f = self.frag(p);
                    self.connect(&acc.last, &f.first, &[], &[]);
                    let mut first = acc.first;
                    if acc.nullable {
                        first.extend(f.first.iter().cloned());
                    }
                    let mut last = f.last;
                    if f.nullable {
                        last.extend(acc.last.iter().cloned());
                    }
                    acc = Frag {
                        nullable: acc.nullable && f.nullable,
                        first,
                        last,
                    };
                }
                acc
            }
            Regex::Star(inner) => {
                let f = self.frag(inner);
                self.connect(&f.last, &f.first, &[], &[]);
                Frag {
                    nullable: true,
                    first: f.first,
                    last: f.last,
                }
            }
            Regex::Repeat { inner, min, max } => {
                if Regex::is_plain_iteration(*min, *max) {
                    // `+` (or a defensive `*`): loop without a counter.
                    let f = self.frag(inner);
                    self.connect(&f.last, &f.first, &[], &[]);
                    return Frag {
                        nullable: f.nullable || *min == 0,
                        first: f.first,
                        last: f.last,
                    };
                }
                debug_assert!(
                    !inner.nullable() && *min >= 1,
                    "Glushkov precondition violated: non-normalized repeat {r}"
                );
                let cid = CounterId(self.counters.len() as u32);
                self.counters.push(CounterInfo {
                    repeat: RepeatId(cid.index()),
                    min: *min,
                    max: *max,
                });
                self.stack.push(cid);
                let f = self.frag(inner);
                self.stack.pop();
                let (loop_guard, loop_action, exit_guard) = match *max {
                    Some(n) => (
                        vec![GuardAtom::Lt(cid, n)],
                        vec![ActionOp::Inc(cid)],
                        GuardAtom::Range(cid, *min, n),
                    ),
                    None => (
                        vec![],
                        vec![ActionOp::IncSat(cid, *min)],
                        GuardAtom::Ge(cid, *min),
                    ),
                };
                self.connect(&f.last, &f.first, &loop_guard, &loop_action);
                let first = f
                    .first
                    .into_iter()
                    .map(|mut e| {
                        e.actions.insert(0, ActionOp::Set(cid, 1));
                        e
                    })
                    .collect();
                let last = f
                    .last
                    .into_iter()
                    .map(|mut e| {
                        e.guards.push(exit_guard);
                        e
                    })
                    .collect();
                Frag {
                    nullable: false,
                    first,
                    last,
                }
            }
        }
    }

    /// Emits the follow edges `lasts × firsts`, conjoining the exit guards
    /// of the source with `extra_guard` and prefixing `extra_actions`
    /// (the loop increment) to the destination's entry actions.
    fn connect(
        &mut self,
        lasts: &[Exit],
        firsts: &[Entry],
        extra_guard: &[GuardAtom],
        extra_actions: &[ActionOp],
    ) {
        for e in lasts {
            for f in firsts {
                let mut guard = e.guards.clone();
                guard.extend_from_slice(extra_guard);
                let mut actions = extra_actions.to_vec();
                actions.extend(f.actions.iter().cloned());
                self.transitions.push(Transition {
                    from: e.pos,
                    to: f.pos,
                    guard,
                    actions,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recama_syntax::{normalize_for_nca, parse};

    fn nca(pattern: &str) -> Nca {
        let r = parse(pattern).expect("parse").regex;
        build(&normalize_for_nca(&r))
    }

    /// Example 2.2, r1 = Σ*σ1σ2{n}: states q1(Σ), q2(σ1), q3(σ2):x.
    #[test]
    fn example_2_2_r1() {
        let a = nca(".*[ab][^a]{4}");
        // q0 + 3 positions.
        assert_eq!(a.state_count(), 4);
        assert_eq!(a.counters().len(), 1);
        assert_eq!(a.counter(CounterId(0)).bound(), 4);
        // The σ2 position carries the counter; others are pure.
        let counted: Vec<_> = a.states().iter().filter(|s| !s.is_pure()).collect();
        assert_eq!(counted.len(), 1);
        assert_eq!(counted[0].class, ByteClass::singleton(b'a').complement());
        // Exactly one final state, accepting at x = 4 (Range(4,4)).
        let finals: Vec<_> = a.states().iter().filter(|s| s.is_final()).collect();
        assert_eq!(finals.len(), 1);
        assert_eq!(
            finals[0].accepts,
            vec![vec![GuardAtom::Range(CounterId(0), 4, 4)]]
        );
        // The counted state has a self-loop guarded by x < 4 that increments.
        let self_loop = a
            .transitions()
            .iter()
            .find(|t| t.from == t.to && !a.state(t.from).is_pure())
            .expect("self loop");
        assert_eq!(self_loop.guard, vec![GuardAtom::Lt(CounterId(0), 4)]);
        assert_eq!(self_loop.actions, vec![ActionOp::Inc(CounterId(0))]);
    }

    /// Example 2.2, r2 = Σ*σ1(σ2σ3){m,n}σ4: five states, one counter on the
    /// two body positions.
    #[test]
    fn example_2_2_r2() {
        let a = nca(".*a(bc){2,3}d");
        assert_eq!(a.state_count(), 6); // q0, Σ, a, b, c, d
        assert_eq!(a.counters().len(), 1);
        let counted: Vec<_> = (0..a.state_count())
            .filter(|&i| !a.states()[i].is_pure())
            .collect();
        assert_eq!(counted.len(), 2); // b and c positions
                                      // Loop edge c→b with x<3 / x++.
        let loop_edge = a
            .transitions()
            .iter()
            .find(|t| t.guard == vec![GuardAtom::Lt(CounterId(0), 3)])
            .expect("loop edge");
        assert_eq!(loop_edge.actions, vec![ActionOp::Inc(CounterId(0))]);
        // Exit edge to d guarded by 2 ≤ x ≤ 3.
        let exit_edge = a
            .transitions()
            .iter()
            .find(|t| t.guard == vec![GuardAtom::Range(CounterId(0), 2, 3)])
            .expect("exit edge");
        assert_eq!(a.state(exit_edge.to).class, ByteClass::singleton(b'd'));
        // Entry edge a→b sets x := 1.
        let entry = a
            .transitions()
            .iter()
            .find(|t| t.actions == vec![ActionOp::Set(CounterId(0), 1)])
            .expect("entry edge");
        assert_eq!(a.state(entry.to).class, ByteClass::singleton(b'b'));
    }

    /// Fig. 1: Σ*σ1(σ2(σ3σ4){m,n}σ5){k}σ6 — two counters, nested scopes.
    #[test]
    fn figure_1_nested_counters() {
        let a = nca(".*q(w(er){2,3}t){4}y");
        assert_eq!(a.counters().len(), 2);
        // Outer counter x0 ({4}) on all body positions w,e,r,t;
        // inner x1 ({2,3}) only on e,r.
        let with_both: Vec<_> = a
            .states()
            .iter()
            .filter(|s| s.counters.len() == 2)
            .collect();
        assert_eq!(with_both.len(), 2);
        let with_outer_only: Vec<_> = a
            .states()
            .iter()
            .filter(|s| s.counters == vec![CounterId(0)])
            .collect();
        assert_eq!(with_outer_only.len(), 2);
        // Outer loop edge t→w: guard x0<4, action x0++ (x1 dropped).
        let outer_loop = a
            .transitions()
            .iter()
            .find(|t| t.guard == vec![GuardAtom::Lt(CounterId(0), 4)])
            .expect("outer loop");
        assert_eq!(outer_loop.actions, vec![ActionOp::Inc(CounterId(0))]);
        // Inner loop edge r→e: guard x1<3, action x1++ (x0 retained).
        let inner_loop = a
            .transitions()
            .iter()
            .find(|t| t.guard == vec![GuardAtom::Lt(CounterId(1), 3)])
            .expect("inner loop");
        assert_eq!(inner_loop.actions, vec![ActionOp::Inc(CounterId(1))]);
        // Exit edge to y: guard x0 = 4 (Range(4,4)).
        let final_exit = a
            .transitions()
            .iter()
            .find(|t| a.state(t.to).class == ByteClass::singleton(b'y'))
            .expect("exit edge");
        assert_eq!(final_exit.guard, vec![GuardAtom::Range(CounterId(0), 4, 4)]);
        // Crossing edge t→w′? No: w is entered from σ1 with x0:=1 and from t
        // via the loop; entering e from w sets x1:=1.
        let e_entry = a
            .transitions()
            .iter()
            .filter(|t| t.actions == vec![ActionOp::Set(CounterId(1), 1)])
            .count();
        assert!(e_entry >= 1, "inner entry must initialize x1");
    }

    /// r3 = σ1{m}Σ*σ2{n} (Example 2.2): two independent counters — and after
    /// the Σ* in the middle, the first counter is dropped.
    #[test]
    fn example_2_2_r3_counters_dropped_across_gap() {
        let a = nca("a{3}.*b{2}");
        assert_eq!(a.counters().len(), 2);
        // Σ position is pure.
        let sigma_state = a
            .states()
            .iter()
            .find(|s| s.class == ByteClass::ANY)
            .expect("gap state");
        assert!(sigma_state.is_pure());
    }

    #[test]
    fn unbounded_repetition_uses_saturating_counter() {
        let a = nca("a{3,}b");
        assert_eq!(a.counters().len(), 1);
        assert_eq!(a.counter(CounterId(0)).max, None);
        assert_eq!(a.counter(CounterId(0)).bound(), 3);
        let sat = a
            .transitions()
            .iter()
            .find(|t| t.actions == vec![ActionOp::IncSat(CounterId(0), 3)])
            .expect("saturating loop edge");
        assert!(sat.guard.is_empty());
        let exit = a
            .transitions()
            .iter()
            .find(|t| t.guard == vec![GuardAtom::Ge(CounterId(0), 3)])
            .expect("exit edge");
        assert_eq!(a.state(exit.to).class, ByteClass::singleton(b'b'));
    }

    #[test]
    fn plus_allocates_no_counter() {
        let a = nca("a+b");
        assert!(a.counters().is_empty());
        assert_eq!(a.state_count(), 3);
        // a has a guard-free self loop.
        assert!(a
            .transitions()
            .iter()
            .any(|t| t.from == t.to && t.guard.is_empty()));
    }

    #[test]
    fn alternation_of_counted_branches() {
        // Example 3.4 shape: Σ*(σ̄1 σ1{n} + σ̄2 σ2{n}).
        let a = nca(".*([^a]a{3}|[^b]b{3})");
        assert_eq!(a.counters().len(), 2);
        let finals: Vec<_> = a.states().iter().filter(|s| s.is_final()).collect();
        assert_eq!(finals.len(), 2);
    }

    #[test]
    fn nullable_regex_accepts_at_q0() {
        let a = nca("(ab)*");
        assert!(a.accepts_empty());
        let a2 = nca("ab");
        assert!(!a2.accepts_empty());
    }

    #[test]
    fn q0_edges_carry_entry_actions() {
        let a = nca("a{2,5}");
        let q0_edges: Vec<_> = a.transitions_from(StateId::INIT).collect();
        assert_eq!(q0_edges.len(), 1);
        assert_eq!(q0_edges[0].actions, vec![ActionOp::Set(CounterId(0), 1)]);
    }

    #[test]
    fn double_loop_produces_parallel_edges() {
        // (a{2,3}){4,5}: position a loops both as the inner increment and as
        // the outer increment (with inner exit + reset).
        let a = nca("(a{2,3}){4,5}");
        assert_eq!(a.counters().len(), 2);
        let self_loops: Vec<_> = a.transitions().iter().filter(|t| t.from == t.to).collect();
        assert_eq!(self_loops.len(), 2);
        // One of them exits the inner repetition and re-enters it while
        // incrementing the outer counter.
        let outer = self_loops
            .iter()
            .find(|t| t.actions.contains(&ActionOp::Set(CounterId(1), 1)))
            .expect("outer loop edge");
        assert!(outer.guard.contains(&GuardAtom::Range(CounterId(1), 2, 3)));
        assert!(outer.guard.contains(&GuardAtom::Lt(CounterId(0), 5)));
        assert!(outer.actions.contains(&ActionOp::Inc(CounterId(0))));
    }

    #[test]
    fn homogeneity_all_transitions_enter_via_state_class() {
        // Structural homogeneity holds by construction: predicates live on
        // states. Check transitions' predicates are the destination classes.
        let a = nca("(ab|cd){2,4}e*f");
        for t in a.transitions() {
            // Every incoming edge of `to` uses class(to) — trivially true in
            // our representation; assert classes are nonempty (no dead edge).
            assert!(!a.state(t.to).class.is_empty());
        }
    }

    #[test]
    fn validates_internally() {
        for p in [
            "a{2,3}",
            "(ab){2,}c",
            "((ab){2,3}c){4,6}",
            ".*a{5}",
            "x(y|z){3,9}w",
            "(a|bc){2,4}(d{3}|e)*",
            "a{2,3}b{4,5}c{6,7}",
        ] {
            let a = nca(p);
            assert!(a.validate().is_ok(), "invalid NCA for {p}");
        }
    }
}
