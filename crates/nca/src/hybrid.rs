//! Hybrid lazy-DFA overlay over the batched multi-pattern engine.
//!
//! The exact [`MultiEngine`] walks outgoing edges over an activity bitset
//! — faithful to the paper's hardware step, but tens of instructions per
//! input byte in software. A classical DFA costs **one table row per
//! byte**, yet determinizing a counting automaton can blow up
//! exponentially ([`crate::full_dfa_size`]). This module splits the
//! difference:
//!
//! * **pure frontiers are determinized lazily** — whenever the live
//!   configuration holds only counter-free states, it is interned as a
//!   DFA state with a dense `byte_class → next_state` row filled on
//!   demand, so the benign-traffic hot path is a single indexed load;
//! * **counter activity is the escape hatch** — a transition that would
//!   wake a counter-carrying state is marked [`FALLBACK`]; the overlay
//!   rehydrates the exact engine with the current frontier, steps it
//!   byte-by-byte, and re-enters the DFA cache as soon as counting
//!   *quiesces* (no counted state live — an O(words) mask test per
//!   step);
//! * **the cache is bounded** — at most `state_budget` determinized
//!   states exist at once; on overflow the cache is flushed and rebuilt
//!   from the traffic that is actually hot, so adversarial state blowup
//!   degrades throughput instead of memory.
//!
//! Determinizing pure frontiers is *sound* because every transition
//! guard and acceptance condition resolves against **source-state
//! counters only** ([`crate::nca`] invariant): edges leaving pure states
//! are unguarded and pure accepting states accept unconditionally, so
//! the successor of a pure frontier — and its report set — depends on
//! nothing but the frontier itself.

use crate::multi::{MultiEngine, MultiEngineState, MultiNca, MultiReport};
use crate::nca::StateId;
use std::collections::HashMap;

/// Default bound on cached determinized states per hybrid engine.
pub const DEFAULT_STATE_BUDGET: usize = 4096;

/// How a pattern-set engine walks input bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Exact batched NCA stepping: per-byte edge walks over the activity
    /// frontier — the software twin of the paper's hardware step.
    Nca,
    /// Lazy-DFA overlay over the exact engine (see [`HybridEngine`]):
    /// one dense table row per byte on pure frontiers, exact stepping
    /// while counters are active.
    Hybrid {
        /// Maximum number of cached determinized states per engine;
        /// the cache flushes and rebuilds when exceeded. Tiny budgets
        /// stay correct but thrash.
        state_budget: usize,
    },
}

impl Default for ScanMode {
    /// [`ScanMode::Hybrid`] with [`DEFAULT_STATE_BUDGET`].
    fn default() -> Self {
        ScanMode::Hybrid {
            state_budget: DEFAULT_STATE_BUDGET,
        }
    }
}

/// Row entry: transition not yet computed.
pub(crate) const UNKNOWN: u32 = u32::MAX;
/// Row entry: the successor wakes a counter-carrying state — the byte
/// must be stepped by the exact engine.
pub(crate) const FALLBACK: u32 = u32::MAX - 1;

/// Shared dense-row subset interner: maps sorted NCA state sets to dense
/// DFA ids and stores one flat `byte_class → next` row per id. Used by
/// both [`HybridEngine`] and [`crate::DfaEngine`].
#[derive(Debug)]
pub(crate) struct SubsetCache {
    stride: usize,
    ids: HashMap<Box<[u32]>, u32>,
    subsets: Vec<Box<[u32]>>,
    /// `rows[id * stride + class]`; [`UNKNOWN`] / [`FALLBACK`] sentinels.
    rows: Vec<u32>,
}

impl SubsetCache {
    pub(crate) fn new(stride: usize) -> SubsetCache {
        SubsetCache {
            stride,
            ids: HashMap::new(),
            subsets: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Number of interned subsets (= discovered DFA states).
    pub(crate) fn len(&self) -> usize {
        self.subsets.len()
    }

    /// The sorted NCA state set behind DFA state `id`.
    pub(crate) fn subset(&self, id: u32) -> &[u32] {
        &self.subsets[id as usize]
    }

    /// The cached transition of `(id, class)` ([`UNKNOWN`] if unfilled).
    #[inline]
    pub(crate) fn get(&self, id: u32, class: usize) -> u32 {
        self.rows[id as usize * self.stride + class]
    }

    /// Fills the transition of `(id, class)`.
    pub(crate) fn set(&mut self, id: u32, class: usize, next: u32) {
        self.rows[id as usize * self.stride + class] = next;
    }

    /// Interns `subset` (must be sorted, deduplicated); returns its id
    /// and whether it is new.
    pub(crate) fn intern(&mut self, subset: &[u32]) -> (u32, bool) {
        if let Some(&id) = self.ids.get(subset) {
            return (id, false);
        }
        let id = self.subsets.len() as u32;
        let boxed: Box<[u32]> = subset.into();
        self.ids.insert(boxed.clone(), id);
        self.subsets.push(boxed);
        let filled = self.rows.len() + self.stride;
        self.rows.resize(filled, UNKNOWN);
        (id, true)
    }

    /// Drops every interned subset and row (the overflow flush).
    pub(crate) fn clear(&mut self) {
        self.ids.clear();
        self.subsets.clear();
        self.rows.clear();
    }
}

/// Cumulative counters of one [`HybridEngine`] (or an aggregate over
/// several — see [`HybridStats::merge`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HybridStats {
    /// Bytes consumed on the determinized fast path.
    pub dfa_bytes: u64,
    /// Bytes stepped by the exact engine (counter fallback).
    pub fallback_bytes: u64,
    /// Determinized states currently cached (discovered since the last
    /// flush).
    pub dfa_states: usize,
    /// Cache flushes forced by the state budget.
    pub flushes: u64,
}

impl HybridStats {
    /// Fraction of bytes served by the DFA fast path (1.0 on an empty
    /// stream).
    pub fn dfa_hit_rate(&self) -> f64 {
        let total = self.dfa_bytes + self.fallback_bytes;
        if total == 0 {
            1.0
        } else {
            self.dfa_bytes as f64 / total as f64
        }
    }

    /// Accumulates another engine's counters (summing states).
    pub fn merge(&mut self, other: &HybridStats) {
        self.dfa_bytes += other.dfa_bytes;
        self.fallback_bytes += other.fallback_bytes;
        self.dfa_states += other.dfa_states;
        self.flushes += other.flushes;
    }
}

/// The hybrid lazy-DFA engine. See the module docs.
///
/// Report-for-report identical to [`MultiEngine`] on the same merged
/// automaton — same `(pattern, end)` pairs in the same order, across any
/// chunking — which the differential suites pin.
///
/// # Examples
///
/// ```
/// use recama_nca::{CompilePlan, MultiNca, Nca};
/// let a = Nca::from_regex(&recama_syntax::parse("ab").unwrap().for_stream());
/// let parts = [(&a, CompilePlan::conservative(&a))];
/// let multi = MultiNca::merge(&parts);
/// let reports = multi.hybrid_engine(64).match_reports(b"xabab");
/// assert_eq!(reports.len(), 2);
/// assert!(multi.hybrid_engine(64).stats().dfa_hit_rate() >= 0.0);
/// ```
pub struct HybridEngine<'a> {
    multi: &'a MultiNca,
    /// The exact engine, rehydrated on fallback; owns the stream
    /// position while falling back.
    exact: MultiEngine<'a>,
    cache: SubsetCache,
    /// Patterns accepted in each DFA state (ascending, deduplicated) —
    /// parallel to the cache's subsets.
    accepts: Vec<Box<[u32]>>,
    /// Flat byte → class table (u16 so an 8-byte lane of lookups
    /// vectorizes without widening).
    class_map: Box<[u16; 256]>,
    state_budget: usize,
    /// Current DFA state (valid only in DFA mode).
    cur: u32,
    /// DFA mode vs. exact-fallback mode.
    in_dfa: bool,
    /// Stream position in DFA mode (the exact engine's while falling
    /// back).
    position: u64,
    stats: HybridStats,
    frontier_scratch: Vec<u32>,
    succ_scratch: Vec<u32>,
}

/// The owned mutable half of a [`HybridEngine`]: the exact engine's
/// detached state plus the overlay's interned DFA cache, accept sets,
/// byte-class table, mode flags, and counters — everything but the
/// `&MultiNca` borrow. Detaching preserves the warm cache, so a flow
/// parked between chunks resumes on hot rows.
pub(crate) struct HybridEngineState {
    exact: MultiEngineState,
    cache: SubsetCache,
    accepts: Vec<Box<[u32]>>,
    class_map: Box<[u16; 256]>,
    state_budget: usize,
    cur: u32,
    in_dfa: bool,
    position: u64,
    stats: HybridStats,
    frontier_scratch: Vec<u32>,
    succ_scratch: Vec<u32>,
}

impl HybridEngineState {
    /// Bytes consumed when the state was detached.
    pub(crate) fn position(&self) -> u64 {
        if self.in_dfa {
            self.position
        } else {
            self.exact.position
        }
    }

    /// Cumulative overlay counters as of the detach.
    pub(crate) fn stats(&self) -> HybridStats {
        HybridStats {
            dfa_states: self.cache.len(),
            ..self.stats
        }
    }
}

impl<'a> HybridEngine<'a> {
    /// Builds an overlay engine over `multi` caching at most
    /// `state_budget` determinized states.
    pub fn new(multi: &'a MultiNca, state_budget: usize) -> HybridEngine<'a> {
        let alphabet = multi.alphabet();
        let mut class_map = Box::new([0u16; 256]);
        for b in 0..=255u8 {
            class_map[b as usize] = alphabet.class_of(b) as u16;
        }
        let mut e = HybridEngine {
            multi,
            exact: multi.engine(),
            cache: SubsetCache::new(alphabet.len()),
            accepts: Vec::new(),
            class_map,
            state_budget: state_budget.max(1),
            cur: 0,
            in_dfa: true,
            position: 0,
            stats: HybridStats::default(),
            frontier_scratch: Vec::new(),
            succ_scratch: Vec::new(),
        };
        e.reset();
        e
    }

    /// Detaches the overlay's mutable state (including the warm DFA
    /// cache) from the automaton borrow. The inverse of
    /// [`HybridEngine::resume`].
    pub(crate) fn into_state(self) -> HybridEngineState {
        HybridEngineState {
            exact: self.exact.into_state(),
            cache: self.cache,
            accepts: self.accepts,
            class_map: self.class_map,
            state_budget: self.state_budget,
            cur: self.cur,
            in_dfa: self.in_dfa,
            position: self.position,
            stats: self.stats,
            frontier_scratch: self.frontier_scratch,
            succ_scratch: self.succ_scratch,
        }
    }

    /// Reattaches a state detached by [`HybridEngine::into_state`] to
    /// `multi`, resuming mid-stream with the cache intact.
    ///
    /// # Panics
    ///
    /// Panics under the [`MultiEngine::resume`] shape checks if `multi`
    /// does not match the automaton the state was detached from.
    pub(crate) fn resume(multi: &'a MultiNca, state: HybridEngineState) -> HybridEngine<'a> {
        HybridEngine {
            multi,
            exact: MultiEngine::resume(multi, state.exact),
            cache: state.cache,
            accepts: state.accepts,
            class_map: state.class_map,
            state_budget: state.state_budget,
            cur: state.cur,
            in_dfa: state.in_dfa,
            position: state.position,
            stats: state.stats,
            frontier_scratch: state.frontier_scratch,
            succ_scratch: state.succ_scratch,
        }
    }

    /// Returns to the initial configuration (stream position 0). The
    /// state cache and cumulative [`HybridEngine::stats`] persist across
    /// resets — a reused engine keeps its hot rows.
    pub fn reset(&mut self) {
        self.exact.reset();
        self.position = 0;
        self.in_dfa = true;
        self.cur = self.intern_subset_at(0);
    }

    /// Bytes consumed since the last reset.
    pub fn position(&self) -> u64 {
        if self.in_dfa {
            self.position
        } else {
            self.exact.position()
        }
    }

    /// Returns to the initial configuration but continues the byte count
    /// from absolute offset `position` (see
    /// [`MultiEngine::restart_at`](crate::MultiEngine::restart_at)). The
    /// cache and cumulative stats persist, exactly as with
    /// [`reset`](HybridEngine::reset); a later fallback to the exact
    /// engine inherits the teleported position via the frontier hand-off.
    pub fn restart_at(&mut self, position: u64) {
        self.reset();
        self.position = position;
    }

    /// Number of live NCA states behind the current configuration.
    pub fn active_states(&self) -> usize {
        if self.in_dfa {
            self.cache.subset(self.cur).len()
        } else {
            self.exact.active_states()
        }
    }

    /// Determinized states discovered since the last flush.
    pub fn discovered_states(&self) -> usize {
        self.cache.len()
    }

    /// Cumulative overlay counters ([`HybridStats::dfa_states`] reflects
    /// the cache as of this call).
    pub fn stats(&self) -> HybridStats {
        HybridStats {
            dfa_states: self.cache.len(),
            ..self.stats
        }
    }

    /// Interns the singleton subset `{q}` (used for the start state).
    fn intern_subset_at(&mut self, q: u32) -> u32 {
        let mut scratch = std::mem::take(&mut self.succ_scratch);
        scratch.clear();
        scratch.push(q);
        let id = self.intern_subset(&scratch);
        self.succ_scratch = scratch;
        id
    }

    /// Interns `subset`, flushing the cache first if the budget is
    /// exhausted. Any previously returned id is invalid after a flush;
    /// only the returned id is guaranteed current.
    fn intern_subset(&mut self, subset: &[u32]) -> u32 {
        if let Some(&id) = self.cache.ids.get(subset) {
            return id;
        }
        if self.cache.len() >= self.state_budget {
            self.cache.clear();
            self.accepts.clear();
            self.stats.flushes += 1;
        }
        let (id, is_new) = self.cache.intern(subset);
        if is_new {
            self.accepts.push(self.accept_patterns(subset));
        }
        id
    }

    /// Patterns accepted by a pure frontier, ascending and deduplicated.
    /// Pure accepting states accept unconditionally, and the merge lays
    /// patterns out in ascending contiguous state ranges, so a sorted
    /// subset yields ascending patterns — preserving the per-step report
    /// order contract of [`MultiEngine::step_into`].
    fn accept_patterns(&self, subset: &[u32]) -> Box<[u32]> {
        let tables = self.multi.tables();
        let mut out: Vec<u32> = Vec::new();
        for &q in subset {
            if tables.accepts[q as usize].is_empty() {
                continue;
            }
            let p = self
                .multi
                .pattern_of(StateId(q))
                .expect("the merged q0 never accepts");
            if out.last() != Some(&p) {
                out.push(p);
            }
        }
        out.into_boxed_slice()
    }

    /// Computes (and caches) the successor of DFA state `state` on
    /// `class`. Returns [`FALLBACK`] if the successor frontier wakes a
    /// counter-carrying state.
    fn successor(&mut self, state: u32, class: usize) -> u32 {
        let multi: &'a MultiNca = self.multi;
        let tables = multi.tables();
        let member_row = &tables.class_member[class];
        let src: Box<[u32]> = self.cache.subset(state).into();
        let mut next = std::mem::take(&mut self.succ_scratch);
        next.clear();
        let mut falls_back = false;
        for &p in src.iter() {
            for edge in &tables.out_edges[p as usize] {
                let q = edge.to as usize;
                if member_row[q / 64] & (1 << (q % 64)) == 0 {
                    continue;
                }
                debug_assert!(
                    edge.guard.is_empty(),
                    "edges out of pure states are unguarded"
                );
                if tables.counted_mask[q / 64] & (1 << (q % 64)) != 0 {
                    falls_back = true;
                    break;
                }
                next.push(q as u32);
            }
            if falls_back {
                break;
            }
        }
        if falls_back {
            self.succ_scratch = next;
            self.cache.set(state, class, FALLBACK);
            return FALLBACK;
        }
        next.sort_unstable();
        next.dedup();
        let flushes = self.stats.flushes;
        let id = self.intern_subset(&next);
        self.succ_scratch = next;
        // A flush invalidated `state`; only then is the row write wrong.
        if self.stats.flushes == flushes {
            self.cache.set(state, class, id);
        }
        id
    }

    /// Leaves DFA mode: rehydrates the exact engine with the current
    /// frontier and steps `byte` exactly.
    fn enter_fallback(&mut self, byte: u8, out: &mut Vec<MultiReport>) {
        let mut frontier = std::mem::take(&mut self.frontier_scratch);
        frontier.clear();
        frontier.extend_from_slice(self.cache.subset(self.cur));
        self.exact.load_pure_frontier(&frontier, self.position);
        self.frontier_scratch = frontier;
        self.in_dfa = false;
        self.exact.step_into(byte, out);
        self.stats.fallback_bytes += 1;
        self.maybe_reenter();
    }

    /// Returns to DFA mode if counting has quiesced (the live frontier
    /// is pure again).
    fn maybe_reenter(&mut self) {
        if self.exact.counting_active() {
            return;
        }
        let mut frontier = std::mem::take(&mut self.frontier_scratch);
        self.exact.pure_frontier_into(&mut frontier);
        self.position = self.exact.position();
        self.cur = self.intern_subset(&frontier);
        self.frontier_scratch = frontier;
        self.in_dfa = true;
    }

    /// Consumes one byte, appending `(pattern, end)` reports to `out`
    /// with the same dedup and ordering contract as
    /// [`MultiEngine::step_into`].
    pub fn step_into(&mut self, byte: u8, out: &mut Vec<MultiReport>) {
        if !self.in_dfa {
            self.exact.step_into(byte, out);
            self.stats.fallback_bytes += 1;
            self.maybe_reenter();
            return;
        }
        let class = self.class_map[byte as usize] as usize;
        let mut next = self.cache.get(self.cur, class);
        if next == UNKNOWN {
            next = self.successor(self.cur, class);
        }
        if next == FALLBACK {
            self.enter_fallback(byte, out);
            return;
        }
        self.advance_dfa(next, out);
    }

    /// One DFA-mode transition: move to `next`, report its accepts.
    #[inline]
    fn advance_dfa(&mut self, next: u32, out: &mut Vec<MultiReport>) {
        self.cur = next;
        self.position += 1;
        self.stats.dfa_bytes += 1;
        let acc = &self.accepts[next as usize];
        if !acc.is_empty() {
            for &pattern in acc.iter() {
                out.push(MultiReport {
                    pattern,
                    end: self.position,
                });
            }
        }
    }

    /// Feeds a whole chunk, appending reports to `out`. Stream position
    /// persists across calls, so chunked feeding is equivalent to one
    /// contiguous scan.
    ///
    /// While in DFA mode, bytes are classified in 8-byte lanes through
    /// the flat `u16` class table (a vectorizable gather) before the
    /// row-walk consumes the lane.
    pub fn feed_into(&mut self, chunk: &[u8], out: &mut Vec<MultiReport>) {
        let mut i = 0;
        'outer: while i < chunk.len() {
            if !self.in_dfa {
                self.step_into(chunk[i], out);
                i += 1;
                continue;
            }
            let lane = &chunk[i..chunk.len().min(i + 8)];
            let mut classes = [0u16; 8];
            for (slot, &b) in classes.iter_mut().zip(lane) {
                *slot = self.class_map[b as usize];
            }
            for k in 0..lane.len() {
                let next = self.cache.get(self.cur, classes[k] as usize);
                if next >= FALLBACK {
                    // Uncached or fallback: take the slow per-byte path
                    // for this byte, then restart the lane loop.
                    self.step_into(lane[k], out);
                    i += k + 1;
                    continue 'outer;
                }
                self.advance_dfa(next, out);
            }
            i += lane.len();
        }
    }

    /// One-shot scan: resets, consumes `input`, returns all reports in
    /// stream order.
    pub fn match_reports(&mut self, input: &[u8]) -> Vec<MultiReport> {
        self.reset();
        let mut out = Vec::new();
        self.feed_into(input, &mut out);
        out
    }
}

impl std::fmt::Debug for HybridEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HybridEngine(dfa_states = {}, in_dfa = {}, position = {})",
            self.cache.len(),
            self.in_dfa,
            self.position()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::CompilePlan;
    use crate::dfa::full_dfa_size;
    use crate::nca::Nca;
    use recama_syntax::parse;

    fn merged(patterns: &[&str]) -> MultiNca {
        let ncas: Vec<Nca> = patterns
            .iter()
            .map(|p| Nca::from_regex(&parse(p).unwrap().for_stream()))
            .collect();
        let parts: Vec<(&Nca, CompilePlan)> = ncas
            .iter()
            .map(|n| (n, CompilePlan::optimized(n, |_| false)))
            .collect();
        MultiNca::merge(&parts)
    }

    fn assert_hybrid_matches_exact(patterns: &[&str], input: &[u8], budget: usize) {
        let m = merged(patterns);
        let expected = m.engine().match_reports(input);
        let mut hybrid = m.hybrid_engine(budget);
        assert_eq!(
            hybrid.match_reports(input),
            expected,
            "{patterns:?} (budget {budget}) on {:?}",
            String::from_utf8_lossy(input)
        );
        // Chunked feeding agrees too, including mid-fallback boundaries.
        for chunk_len in [1usize, 3, 7] {
            let mut engine = m.hybrid_engine(budget);
            let mut got = Vec::new();
            for chunk in input.chunks(chunk_len) {
                engine.feed_into(chunk, &mut got);
            }
            assert_eq!(got, expected, "chunk length {chunk_len}");
            assert_eq!(engine.position(), input.len() as u64);
        }
    }

    #[test]
    fn pure_patterns_stay_in_dfa_mode() {
        let m = merged(&["abc", "x[yz]", "q"]);
        let mut hybrid = m.hybrid_engine(DEFAULT_STATE_BUDGET);
        let reports = hybrid.match_reports(b"abcxzqq abc");
        assert_eq!(reports, m.engine().match_reports(b"abcxzqq abc"));
        let stats = hybrid.stats();
        assert_eq!(stats.fallback_bytes, 0, "no counters, no fallback");
        assert_eq!(stats.dfa_bytes, 11);
        assert!((stats.dfa_hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counters_fall_back_and_reenter() {
        let patterns = ["ka{2,3}b", "xyz"];
        let input = b"kaab..xyz..kaaab..kab.kaaaab";
        assert_hybrid_matches_exact(&patterns, input, DEFAULT_STATE_BUDGET);
        let m = merged(&patterns);
        let mut hybrid = m.hybrid_engine(DEFAULT_STATE_BUDGET);
        hybrid.match_reports(input);
        let stats = hybrid.stats();
        assert!(stats.fallback_bytes > 0, "counting must trigger fallback");
        assert!(stats.dfa_bytes > 0, "benign bytes must re-enter the DFA");
    }

    #[test]
    fn mixed_rulesets_agree_with_exact_engine() {
        let sets: [&[&str]; 3] = [
            &["ab{2,3}c", "a{3}", "x[yz]{2}", "cab"],
            &[".*a{3}", "k.{2,5}z"],
            &["^a{2}b", "b{2}", "^x", "needle"],
        ];
        for patterns in sets {
            for input in [
                &b"abbc.aaa.xyz.cab.k42z"[..],
                b"aaaaaa kxxz kxxxxxz",
                b"aab bb x needle",
                b"",
                b"completely benign traffic, nothing matches",
            ] {
                assert_hybrid_matches_exact(patterns, input, DEFAULT_STATE_BUDGET);
            }
        }
    }

    #[test]
    fn tiny_budgets_thrash_but_stay_exact() {
        let patterns = ["ab{2,3}c", "a{3}", "x[yz]{2}"];
        let input = b"abbc.aaa.xyz.abbbc.xyy.aaaa";
        for budget in [1usize, 2, 3] {
            assert_hybrid_matches_exact(&patterns, input, budget);
            let m = merged(&patterns);
            let mut hybrid = m.hybrid_engine(budget);
            hybrid.match_reports(input);
            let stats = hybrid.stats();
            assert!(stats.flushes > 0, "budget {budget} must overflow");
            assert!(stats.dfa_states <= budget);
        }
    }

    #[test]
    fn cache_persists_across_resets() {
        let m = merged(&["abc", "xy"]);
        let mut hybrid = m.hybrid_engine(DEFAULT_STATE_BUDGET);
        hybrid.match_reports(b"abcxyabc");
        let discovered = hybrid.discovered_states();
        assert!(discovered > 1);
        hybrid.match_reports(b"abcxyabc");
        assert_eq!(
            hybrid.discovered_states(),
            discovered,
            "second scan rides the warm cache"
        );
    }

    /// Regression (satellite of the DfaEngine rewrite): driving the
    /// hybrid cache to saturation discovers exactly the reachable DFA
    /// states [`full_dfa_size`] counts on the same merged automaton.
    #[test]
    fn saturated_cache_agrees_with_full_dfa_size() {
        let m = merged(&["abc", "x[yz]x", ".*ba"]);
        assert!(
            m.nca().counters().is_empty(),
            "saturation comparison needs a counter-free merge"
        );
        let expected = full_dfa_size(m.nca(), 1 << 12).expect("small DFA");
        let mut hybrid = m.hybrid_engine(1 << 12);
        // Fixpoint: expand every (state, class) row until no new state
        // appears.
        let mut done = 0;
        while done < hybrid.cache.len() {
            let state = done as u32;
            for class in 0..m.alphabet().len() {
                let next = hybrid.successor(state, class);
                assert_ne!(next, FALLBACK, "counter-free sets never fall back");
            }
            done += 1;
        }
        assert_eq!(hybrid.discovered_states(), expected);
    }
}
