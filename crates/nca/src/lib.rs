//! # recama-nca
//!
//! Nondeterministic counter automata (NCAs) with bounded counters — the
//! execution model behind the `recama` reproduction of *Software-Hardware
//! Codesign for Efficient In-Memory Regular Pattern Matching* (PLDI 2022).
//!
//! The crate provides:
//!
//! * [`Nca`] — homogeneous NCAs per Definition 2.1 of the paper, with
//!   per-state counter sets, guards, and actions;
//! * [`glushkov`] — the Glushkov construction with counters (one counter
//!   per counting occurrence; states carry enclosing counters, Fig. 1);
//! * [`Token`]/[`Prepared`] — fast token stepping shared by the engines and
//!   the static analysis;
//! * three execution engines behind the [`Engine`] trait:
//!   [`TokenSetEngine`] (reference semantics), [`CompiledEngine`]
//!   (counter registers + bit vectors, the software twin of the augmented
//!   hardware), and [`NfaEngine`] (bitset execution of unfolded automata,
//!   the baseline);
//! * [`unfold`] — the unfolding rewrite with the threshold knob of Fig. 9.
//!
//! ## Example
//!
//! ```
//! use recama_nca::{CompiledEngine, Engine, Nca};
//!
//! let parsed = recama_syntax::parse(".*ab{3,5}c").unwrap();
//! let nca = Nca::from_regex(&parsed.regex);
//! let mut engine = CompiledEngine::conservative(&nca);
//! assert!(engine.matches(b"xxabbbbc"));
//! assert!(!engine.matches(b"xxabbc"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod compiled;
mod dfa;
mod engine;
pub mod glushkov;
mod hybrid;
mod multi;
mod nca;
mod nfa;
mod token;
mod unfold;

pub use compiled::{CompilePlan, CompiledEngine, StorageMode};
pub use dfa::{full_dfa_size, DfaEngine};
pub use engine::{match_ends, matches, Engine, TokenSetEngine};
pub use hybrid::{HybridEngine, HybridStats, ScanMode, DEFAULT_STATE_BUDGET};
pub use multi::{MultiEngine, MultiNca, MultiReport, ShardStream, ShardStreamState, ShardedMulti};
pub use nca::{ActionOp, CounterId, CounterInfo, GuardAtom, Nca, State, StateId, Transition};
pub use nfa::NfaEngine;
pub use token::{Prepared, Token};
pub use unfold::{unfold, unfold_one, unfolded_leaves, UnfoldPolicy};
