//! Multi-pattern execution: many per-pattern NCAs merged into **one**
//! shared automaton, stepped by a batched engine over dense state
//! frontiers.
//!
//! This is the software twin of a whole machine image: production
//! deployments of automata accelerators compile the entire ruleset into
//! one network and stream traffic through it once, instead of running one
//! engine per rule. The merge keeps each pattern's states and counters
//! disjoint (they only share the input stream and the initial state), so
//! per-pattern semantics — including the storage plans chosen by the
//! static analysis — carry over unchanged, and every accepting state
//! remembers which pattern it reports for.
//!
//! Two batching effects make [`MultiEngine`] faster than a loop over
//! single-pattern engines:
//!
//! * **shared byte-class alphabet** — the union of all patterns'
//!   predicates partitions Σ into equivalence classes
//!   ([`recama_syntax::ByteClassSet`]); each input byte is classified
//!   once, and destination-class tests become one bit probe instead of a
//!   256-bit membership test per state;
//! * **dense activity frontiers** — one bitset marks the live states of
//!   the whole set, so per-byte work scales with the number of *active*
//!   states (typically a few per pattern on benign traffic), not with the
//!   total automaton size the way `N × CompiledEngine` does.

use crate::compiled::{counting_set_eligible, CompilePlan, Storage, StorageMode};
use crate::hybrid::{HybridEngine, HybridEngineState, HybridStats, ScanMode};
use crate::nca::{ActionOp, GuardAtom, Nca, State, StateId, Transition};
use crate::token::{resolve_guard, resolve_transition, SlotSrc, SlotTest};
use recama_syntax::{ByteAlphabet, ByteClassSet};

/// A report of the multi-pattern engine: pattern `pattern` matched with
/// its last byte at 1-based offset `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MultiReport {
    /// Index of the pattern in the merged set.
    pub pattern: u32,
    /// 1-based end offset (stream position after the matching byte).
    pub end: u64,
}

/// Several per-pattern NCAs merged into one shared automaton.
///
/// State 0 is the single merged `q0`; states and counters of pattern `i`
/// occupy contiguous id ranges, recorded so reports can be attributed.
/// The merged `q0` never accepts: like the hardware (which cannot report
/// "before the first symbol"), the multi-pattern machinery only reports
/// matches ending at offset ≥ 1.
#[derive(Debug)]
pub struct MultiNca {
    nca: Nca,
    plan: CompilePlan,
    alphabet: ByteAlphabet,
    /// Pattern owning each state; `u32::MAX` for the merged `q0`.
    pattern_of_state: Vec<u32>,
    pattern_count: usize,
    /// Immutable engine tables, built once here so every
    /// [`MultiNca::engine`] call only allocates mutable state.
    tables: EngineTables,
}

impl MultiNca {
    /// Merges per-pattern automata (with their storage plans) into one,
    /// computing the shared byte-class alphabet from the union of the
    /// parts' predicates.
    ///
    /// Per-pattern storage modes — including
    /// [`StorageMode::CountingSet`] queues — carry over unchanged: the
    /// merge maps states and transitions 1:1 into disjoint id ranges, so
    /// counting-set eligibility of a state is preserved.
    ///
    /// # Panics
    ///
    /// Panics if a plan's length does not match its automaton.
    pub fn merge(parts: &[(&Nca, CompilePlan)]) -> MultiNca {
        MultiNca::merge_with_alphabet(parts, union_alphabet(parts))
    }

    /// Like [`MultiNca::merge`], but with an externally supplied
    /// byte-class alphabet — the sharded configuration, where one
    /// alphabet is computed once over the *whole* pattern set and shared
    /// by every per-shard automaton, so the input decoder classifies
    /// each byte once for all shards.
    ///
    /// `alphabet` must *refine* every state predicate of `parts`: each
    /// equivalence class is either fully inside or disjoint from every
    /// state's class. Any alphabet built from a [`ByteClassSet`] that saw
    /// (at least) all the parts' predicates satisfies this.
    ///
    /// # Panics
    ///
    /// Same as [`MultiNca::merge`].
    pub fn merge_with_alphabet(parts: &[(&Nca, CompilePlan)], alphabet: ByteAlphabet) -> MultiNca {
        let mut states: Vec<State> = vec![State {
            class: recama_syntax::ByteClass::EMPTY,
            counters: Vec::new(),
            accepts: Vec::new(),
        }];
        let mut counters = Vec::new();
        let mut transitions: Vec<Transition> = Vec::new();
        let mut modes: Vec<StorageMode> = vec![StorageMode::PureBit];
        let mut pattern_of_state: Vec<u32> = vec![u32::MAX];

        for (pi, (nca, plan)) in parts.iter().enumerate() {
            assert_eq!(plan.len(), nca.state_count(), "plan/automaton mismatch");
            // Local state j (j ≥ 1) lands at state_base + j - 1; local
            // counter k lands at counter_base + k.
            let state_base = states.len() as u32;
            let counter_base = counters.len() as u32;
            let map_state = |q: StateId| -> StateId {
                if q == StateId::INIT {
                    StateId::INIT
                } else {
                    StateId(state_base + q.0 - 1)
                }
            };
            let map_counter = |c: crate::nca::CounterId| crate::nca::CounterId(counter_base + c.0);
            let map_guard = |g: &GuardAtom| match *g {
                GuardAtom::Lt(c, n) => GuardAtom::Lt(map_counter(c), n),
                GuardAtom::Range(c, lo, hi) => GuardAtom::Range(map_counter(c), lo, hi),
                GuardAtom::Ge(c, m) => GuardAtom::Ge(map_counter(c), m),
                GuardAtom::Eq(c, n) => GuardAtom::Eq(map_counter(c), n),
            };
            for (qi, s) in nca.states().iter().enumerate().skip(1) {
                debug_assert!(
                    (0..=255u8).all(|b| s.class.contains(b)
                        == s.class
                            .contains(alphabet.representative(alphabet.class_of(b)))),
                    "alphabet does not refine a state predicate of pattern {pi}"
                );
                states.push(State {
                    class: s.class,
                    counters: s.counters.iter().map(|&c| map_counter(c)).collect(),
                    accepts: s
                        .accepts
                        .iter()
                        .map(|conj| conj.iter().map(map_guard).collect())
                        .collect(),
                });
                modes.push(plan.mode(StateId(qi as u32)));
                pattern_of_state.push(pi as u32);
            }
            counters.extend_from_slice(nca.counters());
            for t in nca.transitions() {
                transitions.push(Transition {
                    from: map_state(t.from),
                    to: map_state(t.to),
                    guard: t.guard.iter().map(map_guard).collect(),
                    actions: t
                        .actions
                        .iter()
                        .map(|op| match *op {
                            ActionOp::Set(c, v) => ActionOp::Set(map_counter(c), v),
                            ActionOp::Inc(c) => ActionOp::Inc(map_counter(c)),
                            ActionOp::IncSat(c, cap) => ActionOp::IncSat(map_counter(c), cap),
                        })
                        .collect(),
                });
            }
        }

        let nca = Nca::new(states, counters, transitions);
        // The merge maps per-pattern states/transitions 1:1 with no
        // cross-pattern edges, so the `σ{m,n}` shape that justifies a
        // queue survives it.
        debug_assert!(
            modes
                .iter()
                .enumerate()
                .all(|(qi, &m)| m != StorageMode::CountingSet
                    || counting_set_eligible(&nca, StateId(qi as u32))),
            "merge must preserve counting-set eligibility"
        );
        let plan = CompilePlan::from_modes(modes);
        let tables = EngineTables::build(&nca, &plan, &alphabet);
        MultiNca {
            nca,
            plan,
            alphabet,
            pattern_of_state,
            pattern_count: parts.len(),
            tables,
        }
    }

    /// The merged automaton.
    pub fn nca(&self) -> &Nca {
        &self.nca
    }

    /// The merged storage plan.
    pub fn plan(&self) -> &CompilePlan {
        &self.plan
    }

    /// The shared byte-class alphabet of the whole set.
    pub fn alphabet(&self) -> &ByteAlphabet {
        &self.alphabet
    }

    /// Number of merged patterns.
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// The pattern owning state `q` (`None` for the merged `q0`).
    pub fn pattern_of(&self, q: StateId) -> Option<u32> {
        match self.pattern_of_state[q.index()] {
            u32::MAX => None,
            p => Some(p),
        }
    }

    /// Creates a batched engine over the merged automaton.
    pub fn engine(&self) -> MultiEngine<'_> {
        MultiEngine::new(self)
    }

    /// Creates a hybrid lazy-DFA overlay engine (see
    /// [`crate::HybridEngine`]): determinized byte-class rows for pure
    /// frontiers, exact [`MultiEngine`] stepping while counters are
    /// active, at most `state_budget` cached DFA states.
    pub fn hybrid_engine(&self, state_budget: usize) -> HybridEngine<'_> {
        HybridEngine::new(self, state_budget)
    }

    /// The immutable engine tables (shared by every engine instance).
    pub(crate) fn tables(&self) -> &EngineTables {
        &self.tables
    }
}

/// A pattern set partitioned into shards: one [`MultiNca`] per shard,
/// all sharing a single [`ByteAlphabet`] computed once over the union of
/// every pattern's predicates.
///
/// Sharding is the banked deployment shape: each shard's automaton fits
/// one accelerator bank, and the software twin runs one engine per shard
/// (typically on its own thread). Because the alphabet is shared, every
/// shard classifies an input byte identically, mirroring the single
/// input decoder that feeds all banks.
///
/// Per-shard reports carry *local* pattern indices; translate them with
/// [`ShardedMulti::global_pattern`].
#[derive(Debug)]
pub struct ShardedMulti {
    shards: Vec<MultiNca>,
    /// Global pattern index per (shard, local pattern index).
    members: Vec<Vec<u32>>,
    alphabet: ByteAlphabet,
    pattern_count: usize,
}

impl ShardedMulti {
    /// Merges `parts` (indexed globally) into one automaton per shard.
    /// `shards` must partition `0..parts.len()` with strictly ascending
    /// members per shard, so that per-shard report order (ascending local
    /// index within a step) translates to ascending global order.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is not such a partition, or under the
    /// [`MultiNca::merge`] conditions.
    pub fn merge(parts: &[(&Nca, CompilePlan)], shards: &[Vec<usize>]) -> ShardedMulti {
        let mut seen = vec![false; parts.len()];
        for members in shards {
            for window in members.windows(2) {
                assert!(window[0] < window[1], "shard members must be ascending");
            }
            for &i in members {
                assert!(
                    i < parts.len() && !std::mem::replace(&mut seen[i], true),
                    "shards must partition the pattern indices (bad index {i})"
                );
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "shards must cover every pattern exactly once"
        );

        let alphabet = union_alphabet(parts);
        let built: Vec<MultiNca> = shards
            .iter()
            .map(|members| {
                let sub: Vec<(&Nca, CompilePlan)> = members
                    .iter()
                    .map(|&i| (parts[i].0, parts[i].1.clone()))
                    .collect();
                MultiNca::merge_with_alphabet(&sub, alphabet.clone())
            })
            .collect();
        ShardedMulti {
            shards: built,
            members: shards
                .iter()
                .map(|m| m.iter().map(|&i| i as u32).collect())
                .collect(),
            alphabet,
            pattern_count: parts.len(),
        }
    }

    /// Number of shards (≥ 1 whenever built from a `ShardPlan`-style
    /// partition; 0 only if `shards` was empty).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard merged automata.
    pub fn shards(&self) -> &[MultiNca] {
        &self.shards
    }

    /// The merged automaton of shard `i`.
    pub fn shard(&self, i: usize) -> &MultiNca {
        &self.shards[i]
    }

    /// The alphabet shared by every shard.
    pub fn alphabet(&self) -> &ByteAlphabet {
        &self.alphabet
    }

    /// Total number of patterns across all shards.
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// Global pattern indices of shard `i` (ascending), indexed by the
    /// shard's local pattern index.
    pub fn shard_members(&self, i: usize) -> &[u32] {
        &self.members[i]
    }

    /// Translates a shard-local pattern index to the global index.
    pub fn global_pattern(&self, shard: usize, local: u32) -> u32 {
        self.members[shard][local as usize]
    }

    /// One engine per shard, ready for parallel stepping.
    pub fn engines(&self) -> Vec<MultiEngine<'_>> {
        self.shards.iter().map(|m| m.engine()).collect()
    }

    /// A resumable scanning state for shard `i`, reporting **global**
    /// pattern indices — the unit a many-flow scheduler checks out.
    /// Uses the exact NCA engine; see
    /// [`ShardedMulti::shard_stream_with`] for the hybrid overlay.
    pub fn shard_stream(&self, i: usize) -> ShardStream<'_> {
        self.shard_stream_with(i, ScanMode::Nca)
    }

    /// Like [`ShardedMulti::shard_stream`], but with an explicit
    /// [`ScanMode`]: [`ScanMode::Hybrid`] overlays a lazy-DFA cache on
    /// the shard's engine (see [`crate::HybridEngine`]).
    pub fn shard_stream_with(&self, i: usize, mode: ScanMode) -> ShardStream<'_> {
        let engine = match mode {
            ScanMode::Nca => StreamEngine::Nca(Box::new(self.shards[i].engine())),
            ScanMode::Hybrid { state_budget } => {
                StreamEngine::Hybrid(Box::new(self.shards[i].hybrid_engine(state_budget)))
            }
        };
        ShardStream {
            members: &self.members[i],
            shard: i,
            engine,
        }
    }

    /// One detachable [`ShardStream`] per shard — together they scan one
    /// logical byte stream (every shard must be fed the same bytes).
    pub fn shard_streams(&self) -> Vec<ShardStream<'_>> {
        (0..self.shards.len())
            .map(|i| self.shard_stream(i))
            .collect()
    }

    /// Like [`ShardedMulti::shard_streams`], but every stream scans with
    /// the given [`ScanMode`].
    pub fn shard_streams_with(&self, mode: ScanMode) -> Vec<ShardStream<'_>> {
        (0..self.shards.len())
            .map(|i| self.shard_stream_with(i, mode))
            .collect()
    }

    /// Reattaches a detached [`ShardStreamState`] to this set, resuming
    /// the stream exactly where [`ShardStream::into_state`] left it —
    /// position, token configuration, and (in hybrid mode) the warm
    /// lazy-DFA cache all carry over. The inverse of `into_state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` did not come from a stream of an identically
    /// shaped set (same shard count, same per-shard automaton shape) —
    /// the cheap structural check that catches resuming against the
    /// wrong [`ShardedMulti`].
    pub fn resume_shard_stream(&self, state: ShardStreamState) -> ShardStream<'_> {
        let shard = state.shard;
        assert!(
            shard < self.shards.len(),
            "ShardStreamState for shard {shard} resumed on a set with {} shard(s)",
            self.shards.len()
        );
        let engine = match state.engine {
            StreamEngineState::Nca(s) => {
                StreamEngine::Nca(Box::new(MultiEngine::resume(&self.shards[shard], *s)))
            }
            StreamEngineState::Hybrid(s) => {
                StreamEngine::Hybrid(Box::new(HybridEngine::resume(&self.shards[shard], *s)))
            }
        };
        ShardStream {
            members: &self.members[shard],
            shard,
            engine,
        }
    }
}

/// A resumable per-shard scanning state: ONE shard's batched engine plus
/// the shard-local → global report translation, detached from its sibling
/// shards so each can be advanced independently.
///
/// All shards of a [`ShardedMulti`] scan the *same* logical byte stream;
/// a `ShardStream` tracks its own position in that stream, so a scheduler
/// can hand different shards of one flow to different workers and let
/// them progress at different rates. The stream is `Send` (it owns its
/// mutable engine state and only borrows the immutable automaton), and
/// reports already carry global pattern indices, so no per-shard
/// translation table travels with it.
pub struct ShardStream<'a> {
    members: &'a [u32],
    shard: usize,
    engine: StreamEngine<'a>,
}

/// The execution strategy behind one [`ShardStream`]: the exact batched
/// NCA engine, or the lazy-DFA hybrid overlay. Both variants are boxed:
/// streams move between workers at every checkout/check-in, and the
/// engines are hundreds of bytes of inline state.
enum StreamEngine<'a> {
    Nca(Box<MultiEngine<'a>>),
    Hybrid(Box<HybridEngine<'a>>),
}

impl ShardStream<'_> {
    /// The shard index this stream advances.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Bytes of the logical stream this shard has consumed.
    pub fn position(&self) -> u64 {
        match &self.engine {
            StreamEngine::Nca(e) => e.position(),
            StreamEngine::Hybrid(e) => e.position(),
        }
    }

    /// Number of live states in this shard's frontier.
    pub fn active_states(&self) -> usize {
        match &self.engine {
            StreamEngine::Nca(e) => e.active_states(),
            StreamEngine::Hybrid(e) => e.active_states(),
        }
    }

    /// Hybrid-overlay counters of this stream, if it scans in
    /// [`ScanMode::Hybrid`] (`None` under [`ScanMode::Nca`]).
    pub fn hybrid_stats(&self) -> Option<HybridStats> {
        match &self.engine {
            StreamEngine::Nca(_) => None,
            StreamEngine::Hybrid(e) => Some(e.stats()),
        }
    }

    /// Returns this shard to the start of the stream.
    pub fn reset(&mut self) {
        match &mut self.engine {
            StreamEngine::Nca(e) => e.reset(),
            StreamEngine::Hybrid(e) => e.reset(),
        }
    }

    /// Resets this shard's frontier and resumes counting bytes from
    /// absolute offset `position` — the literal-prefilter wake-up
    /// primitive (a cold shard's engine skips ahead without scanning the
    /// skipped bytes).
    pub fn restart_at(&mut self, position: u64) {
        match &mut self.engine {
            StreamEngine::Nca(e) => e.restart_at(position),
            StreamEngine::Hybrid(e) => e.restart_at(position),
        }
    }

    /// Consumes `chunk`, appending reports with **global** pattern
    /// indices and absolute 1-based end offsets to `out`. Appended
    /// reports are sorted by `(end, pattern)`: ends ascend with the
    /// stream position, and within one step the engine emits ascending
    /// local indices, which ascending shard members keep ascending
    /// globally.
    pub fn feed_into(&mut self, chunk: &[u8], out: &mut Vec<MultiReport>) {
        let start = out.len();
        match &mut self.engine {
            StreamEngine::Nca(e) => e.feed_into(chunk, out),
            StreamEngine::Hybrid(e) => e.feed_into(chunk, out),
        }
        for r in &mut out[start..] {
            r.pattern = self.members[r.pattern as usize];
        }
    }

    /// Detaches this stream's mutable state from the borrowed automaton,
    /// producing an owned, `'static` [`ShardStreamState`] that can be
    /// parked in long-lived flow tables and later reattached with
    /// [`ShardedMulti::resume_shard_stream`]. Nothing is recomputed on
    /// either side of the round trip: token storage, stream position,
    /// and the hybrid overlay's interned DFA cache move as-is.
    pub fn into_state(self) -> ShardStreamState {
        ShardStreamState {
            shard: self.shard,
            engine: match self.engine {
                StreamEngine::Nca(e) => StreamEngineState::Nca(Box::new(e.into_state())),
                StreamEngine::Hybrid(e) => StreamEngineState::Hybrid(Box::new(e.into_state())),
            },
        }
    }
}

/// The owned, automaton-free state of one [`ShardStream`]: everything a
/// stream mutates while scanning, detached from the [`ShardedMulti`] it
/// borrows. `'static` and `Send`, so a serving layer can park per-flow
/// scan progress in a flow table that outlives any particular borrow of
/// the pattern set, and reattach it with
/// [`ShardedMulti::resume_shard_stream`] only for the duration of each
/// scan. In hybrid mode the detached state keeps its warm lazy-DFA cache.
pub struct ShardStreamState {
    shard: usize,
    engine: StreamEngineState,
}

/// Owned counterpart of [`StreamEngine`].
enum StreamEngineState {
    Nca(Box<MultiEngineState>),
    Hybrid(Box<HybridEngineState>),
}

impl ShardStreamState {
    /// The shard index this state belongs to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Bytes of the logical stream consumed when the state was detached.
    pub fn position(&self) -> u64 {
        match &self.engine {
            StreamEngineState::Nca(s) => s.position,
            StreamEngineState::Hybrid(s) => s.position(),
        }
    }

    /// Hybrid-overlay counters carried by this state (`None` if it was
    /// detached from a [`ScanMode::Nca`] stream).
    pub fn hybrid_stats(&self) -> Option<HybridStats> {
        match &self.engine {
            StreamEngineState::Nca(_) => None,
            StreamEngineState::Hybrid(s) => Some(s.stats()),
        }
    }
}

impl std::fmt::Debug for ShardStreamState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ShardStreamState(shard = {}, position = {})",
            self.shard,
            self.position()
        )
    }
}

impl std::fmt::Debug for ShardStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ShardStream(shard = {}, position = {})",
            self.shard,
            self.position()
        )
    }
}

/// The byte-class alphabet induced by the union of all parts' state
/// predicates — the partition every merged engine (single or sharded)
/// classifies input bytes with.
fn union_alphabet(parts: &[(&Nca, CompilePlan)]) -> ByteAlphabet {
    let mut class_set = ByteClassSet::new();
    for (nca, _) in parts {
        for s in nca.states().iter().skip(1) {
            class_set.add(&s.class);
        }
    }
    class_set.freeze()
}

/// One outgoing transition, slot-resolved and class-indexed.
#[derive(Debug)]
pub(crate) struct OutEdge {
    pub(crate) to: u32,
    pub(crate) guard: Vec<SlotTest>,
    pub(crate) dst: Vec<SlotSrc>,
}

/// The immutable, shareable part of the batched engine: edge programs,
/// finalization predicates, and class-membership bitsets. Built once per
/// [`MultiNca`]; every engine instance borrows it.
#[derive(Debug)]
pub(crate) struct EngineTables {
    /// Outgoing edge programs per state.
    pub(crate) out_edges: Vec<Vec<OutEdge>>,
    /// Slot-resolved finalization DNF per state.
    pub(crate) accepts: Vec<Vec<Vec<SlotTest>>>,
    /// `class_member[c]` is a bitset over states: bit `q` set iff the
    /// equivalence class `c` is inside `class(q)`.
    pub(crate) class_member: Vec<Vec<u64>>,
    /// Bitset over states: bit `q` set iff state `q` carries a counter —
    /// the O(words) quiescence mask of the hybrid overlay.
    pub(crate) counted_mask: Vec<u64>,
    /// Whether each state uses the counting-set queue representation.
    is_queue: Vec<bool>,
    /// For queue states: whether the state has the self-loop increment
    /// edge (its tokens survive a matching byte).
    queue_self_loop: Vec<bool>,
}

impl EngineTables {
    fn build(nca: &Nca, plan: &CompilePlan, alphabet: &ByteAlphabet) -> EngineTables {
        let n = nca.state_count();
        let words = n.div_ceil(64);
        let out_edges = (0..n)
            .map(|qi| {
                nca.transitions_from(StateId(qi as u32))
                    .map(|t| {
                        let (guard, dst) = resolve_transition(nca, t);
                        OutEdge {
                            to: t.to.0,
                            guard,
                            dst,
                        }
                    })
                    .collect()
            })
            .collect();
        let accepts = nca
            .states()
            .iter()
            .enumerate()
            .map(|(qi, s)| {
                s.accepts
                    .iter()
                    .map(|conj| resolve_guard(nca, StateId(qi as u32), conj))
                    .collect()
            })
            .collect();
        let class_member = alphabet
            .classes()
            .map(|(_, rep)| {
                let mut row = vec![0u64; words];
                for (qi, s) in nca.states().iter().enumerate().skip(1) {
                    if s.class.contains(rep) {
                        row[qi / 64] |= 1 << (qi % 64);
                    }
                }
                row
            })
            .collect();
        let mut counted_mask = vec![0u64; words];
        for (qi, s) in nca.states().iter().enumerate() {
            if !s.counters.is_empty() {
                counted_mask[qi / 64] |= 1 << (qi % 64);
            }
        }
        let is_queue: Vec<bool> = (0..n)
            .map(|qi| plan.mode(StateId(qi as u32)) == StorageMode::CountingSet)
            .collect();
        let queue_self_loop = (0..n)
            .map(|qi| {
                is_queue[qi]
                    && nca
                        .transitions_into(StateId(qi as u32))
                        .any(|t| t.from.index() == qi)
            })
            .collect();
        EngineTables {
            out_edges,
            accepts,
            class_member,
            counted_mask,
            is_queue,
            queue_self_loop,
        }
    }
}

/// The batched multi-pattern engine. See the module docs.
pub struct MultiEngine<'a> {
    multi: &'a MultiNca,
    /// Shared immutable tables (owned by the [`MultiNca`]).
    tables: &'a EngineTables,
    /// Per-state token storage for the current / next configuration.
    cur: Vec<Storage>,
    nxt: Vec<Storage>,
    /// Bitset over states: `cur[q]` holds at least one token.
    active: Vec<u64>,
    next_active: Vec<u64>,
    /// Generation stamps for lazy clearing of `nxt`.
    stamp: Vec<u64>,
    generation: u64,
    /// Reusable destination-valuation buffer.
    value_scratch: Vec<u32>,
    /// Per-pattern stamp deduplicating reports within one step.
    report_stamp: Vec<u64>,
    /// Counting-set scratch: queue states reached by this step's frontier.
    touched_queues: Vec<u32>,
    /// Generation stamp marking queue states already in `touched_queues`.
    queue_touch_stamp: Vec<u64>,
    /// Whether a guarded entry edge fired into each touched queue state.
    queue_entry_hit: Vec<bool>,
    /// Stream position (bytes consumed since reset).
    position: u64,
    conflicts: u64,
}

/// The owned mutable half of a [`MultiEngine`]: every field the engine
/// mutates while scanning, with the `&MultiNca` / `&EngineTables` borrows
/// stripped. Produced by [`MultiEngine::into_state`], consumed by
/// [`MultiEngine::resume`]; the detach/reattach round trip copies and
/// recomputes nothing.
pub(crate) struct MultiEngineState {
    pub(crate) cur: Vec<Storage>,
    pub(crate) nxt: Vec<Storage>,
    pub(crate) active: Vec<u64>,
    pub(crate) next_active: Vec<u64>,
    pub(crate) stamp: Vec<u64>,
    pub(crate) generation: u64,
    pub(crate) value_scratch: Vec<u32>,
    pub(crate) report_stamp: Vec<u64>,
    pub(crate) touched_queues: Vec<u32>,
    pub(crate) queue_touch_stamp: Vec<u64>,
    pub(crate) queue_entry_hit: Vec<bool>,
    pub(crate) position: u64,
    pub(crate) conflicts: u64,
}

impl<'a> MultiEngine<'a> {
    /// Builds an engine over `multi`'s shared tables; only the mutable
    /// per-engine state (token storage, frontiers, stamps) is allocated.
    pub fn new(multi: &'a MultiNca) -> MultiEngine<'a> {
        let nca = &multi.nca;
        let n = nca.state_count();
        let words = n.div_ceil(64);
        let storage_for = |qi: usize| {
            let s = &nca.states()[qi];
            let bound = s
                .counters
                .first()
                .map(|&c| nca.counter(c).bound())
                .unwrap_or(0);
            Storage::new(multi.plan.mode(StateId(qi as u32)), bound)
        };
        let mut e = MultiEngine {
            multi,
            tables: &multi.tables,
            cur: (0..n).map(storage_for).collect(),
            nxt: (0..n).map(storage_for).collect(),
            active: vec![0; words],
            next_active: vec![0; words],
            stamp: vec![0; n],
            generation: 0,
            value_scratch: Vec::new(),
            report_stamp: vec![0; multi.pattern_count],
            touched_queues: Vec::new(),
            queue_touch_stamp: vec![0; n],
            queue_entry_hit: vec![false; n],
            position: 0,
            conflicts: 0,
        };
        e.reset();
        e
    }

    /// Detaches the engine's mutable state from the automaton borrow.
    /// The inverse of [`MultiEngine::resume`].
    pub(crate) fn into_state(self) -> MultiEngineState {
        MultiEngineState {
            cur: self.cur,
            nxt: self.nxt,
            active: self.active,
            next_active: self.next_active,
            stamp: self.stamp,
            generation: self.generation,
            value_scratch: self.value_scratch,
            report_stamp: self.report_stamp,
            touched_queues: self.touched_queues,
            queue_touch_stamp: self.queue_touch_stamp,
            queue_entry_hit: self.queue_entry_hit,
            position: self.position,
            conflicts: self.conflicts,
        }
    }

    /// Reattaches a state detached by [`MultiEngine::into_state`] to
    /// `multi`, resuming mid-stream with no recomputation.
    ///
    /// # Panics
    ///
    /// Panics if the state's shape (state count, pattern count) does not
    /// match `multi` — the structural check against resuming on the
    /// wrong automaton.
    pub(crate) fn resume(multi: &'a MultiNca, state: MultiEngineState) -> MultiEngine<'a> {
        assert_eq!(
            state.cur.len(),
            multi.nca.state_count(),
            "engine state resumed on an automaton with a different state count"
        );
        assert_eq!(
            state.report_stamp.len(),
            multi.pattern_count,
            "engine state resumed on an automaton with a different pattern count"
        );
        MultiEngine {
            multi,
            tables: &multi.tables,
            cur: state.cur,
            nxt: state.nxt,
            active: state.active,
            next_active: state.next_active,
            stamp: state.stamp,
            generation: state.generation,
            value_scratch: state.value_scratch,
            report_stamp: state.report_stamp,
            touched_queues: state.touched_queues,
            queue_touch_stamp: state.queue_touch_stamp,
            queue_entry_hit: state.queue_entry_hit,
            position: state.position,
            conflicts: state.conflicts,
        }
    }

    /// Returns to the initial configuration (stream position 0).
    pub fn reset(&mut self) {
        for w in &mut self.active {
            *w = 0;
        }
        for s in &mut self.cur {
            s.clear();
        }
        self.cur[0] = Storage::PureBit(true);
        self.active[0] = 1;
        self.stamp.iter_mut().for_each(|s| *s = 0);
        self.report_stamp.iter_mut().for_each(|s| *s = 0);
        self.queue_touch_stamp.iter_mut().for_each(|s| *s = 0);
        self.generation = 0;
        self.position = 0;
        self.conflicts = 0;
    }

    /// Bytes consumed since the last reset.
    pub fn position(&self) -> u64 {
        self.position
    }

    /// Returns to the initial configuration but reports subsequent
    /// matches as if the stream started at absolute offset `position` —
    /// the primitive behind prefilter wake-up, where a cold shard's
    /// engine teleports past skipped bytes and resumes with a fresh
    /// `Σ*` frontier (sound because a fresh frontier at any offset is a
    /// subset of the true frontier there, and over-approximates nothing
    /// the search form `Σ*·r` would not restart anyway).
    pub fn restart_at(&mut self, position: u64) {
        self.reset();
        self.position = position;
    }

    /// Number of `SingleValue` collisions observed (must stay 0 when the
    /// plans came from a sound analysis; see [`crate::CompiledEngine`]).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Number of live (token-holding) states — the frontier size the
    /// per-byte work scales with.
    pub fn active_states(&self) -> usize {
        self.active.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any counter-carrying state is live. O(state words): one
    /// AND against the precomputed counted-state mask — the quiescence
    /// test the hybrid overlay runs after every exact step.
    pub fn counting_active(&self) -> bool {
        self.active
            .iter()
            .zip(&self.tables.counted_mask)
            .any(|(a, m)| a & m != 0)
    }

    /// Collects the live frontier (ascending state ids) into `out`.
    /// Intended for pure frontiers (see
    /// [`MultiEngine::load_pure_frontier`]); ascending order makes the
    /// subset directly internable by the hybrid cache.
    pub(crate) fn pure_frontier_into(&self, out: &mut Vec<u32>) {
        out.clear();
        for (wi, &word) in self.active.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                out.push((wi * 64 + bit) as u32);
            }
        }
    }

    /// Replaces the live configuration with a frontier of **pure**
    /// states (each holding one anonymous token) at stream offset
    /// `position` — how the hybrid overlay rehydrates the exact engine
    /// when a cached DFA state must fall back to exact stepping.
    pub(crate) fn load_pure_frontier(&mut self, states: &[u32], position: u64) {
        for (wi, word) in self.active.iter_mut().enumerate() {
            let mut w = std::mem::take(word);
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                self.cur[wi * 64 + bit].clear();
            }
        }
        for &q in states {
            let qi = q as usize;
            debug_assert!(
                self.tables.counted_mask[qi / 64] & (1 << (qi % 64)) == 0,
                "hybrid frontiers contain only pure states"
            );
            self.cur[qi] = Storage::PureBit(true);
            self.active[qi / 64] |= 1 << (qi % 64);
        }
        self.position = position;
    }

    /// Consumes one byte, appending `(pattern, end)` reports to `out`.
    ///
    /// Reports are deduplicated per pattern and appended in merged state
    /// order. Because [`MultiNca::merge`] lays out each pattern's states
    /// contiguously in pattern order and the frontier is walked in state
    /// order, this is **ascending pattern order within one step** — a
    /// guaranteed contract: the sharded ordered merge
    /// (`ShardedPatternSet` in `recama`) relies on it to recombine
    /// per-shard reports byte-identically. `end` is the current 1-based
    /// stream offset.
    pub fn step_into(&mut self, byte: u8, out: &mut Vec<MultiReport>) {
        self.position += 1;
        self.generation = self.generation.wrapping_add(1);
        let generation = self.generation;
        let class = self.multi.alphabet.class_of(byte);
        let member_row = &self.tables.class_member[class];
        for w in &mut self.next_active {
            *w = 0;
        }
        let cur = &self.cur;
        let nxt = &mut self.nxt;
        let stamp = &mut self.stamp;
        let next_active = &mut self.next_active;
        let value_scratch = &mut self.value_scratch;
        let touched_queues = &mut self.touched_queues;
        let queue_touch_stamp = &mut self.queue_touch_stamp;
        let queue_entry_hit = &mut self.queue_entry_hit;
        let is_queue = &self.tables.is_queue;
        touched_queues.clear();
        let mut conflicts = 0u64;
        for (wi, &word) in self.active.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                let p = wi * 64 + bit;
                let src = &cur[p];
                for edge in &self.tables.out_edges[p] {
                    let q = edge.to as usize;
                    if member_row[q / 64] & (1 << (q % 64)) == 0 {
                        continue;
                    }
                    if is_queue[q] {
                        // Counting-set destinations are advanced by the
                        // specialized pass below; here only record that
                        // the state was reached and whether a (guarded)
                        // entry edge fired against the *current*
                        // configuration — queues must not mutate before
                        // every entry guard has been read (queue states
                        // may feed each other).
                        if queue_touch_stamp[q] != generation {
                            queue_touch_stamp[q] = generation;
                            queue_entry_hit[q] = false;
                            touched_queues.push(q as u32);
                        }
                        if p != q && !queue_entry_hit[q] {
                            let mut hit = false;
                            src.for_each(|values| {
                                hit = hit || edge.guard.iter().all(|g| g.eval(values));
                            });
                            queue_entry_hit[q] = hit;
                        }
                        continue;
                    }
                    if stamp[q] != generation {
                        stamp[q] = generation;
                        nxt[q].clear();
                    }
                    let nxt_q = &mut nxt[q];
                    src.for_each(|values| {
                        if edge.guard.iter().all(|g| g.eval(values)) {
                            value_scratch.clear();
                            value_scratch.extend(edge.dst.iter().map(|s| s.eval(values)));
                            if nxt_q.insert(value_scratch) {
                                conflicts += 1;
                            }
                        }
                    });
                    if !nxt_q.is_empty() {
                        next_active[q / 64] |= 1 << (q % 64);
                    }
                }
            }
        }
        // Counting-set pass: each touched queue advances with one clock
        // bump (`shift`) and at most one fresh value-1 token instead of an
        // O(bound) bit-vector walk. Untouched queues (their class did not
        // match the byte, or no live predecessor reached them) simply stay
        // inactive; their stale storage is stamp-cleared on next touch.
        let cur = &mut self.cur;
        let queue_self_loop = &self.tables.queue_self_loop;
        for &q in touched_queues.iter() {
            let qi = q as usize;
            if stamp[qi] != generation {
                stamp[qi] = generation;
                nxt[qi].clear();
            }
            let live = self.active[qi / 64] & (1 << (qi % 64)) != 0;
            let survives = live && queue_self_loop[qi];
            if survives {
                // Move the live queue into the next buffer; the cleared
                // one swaps back and is reused on a later step.
                std::mem::swap(&mut cur[qi], &mut nxt[qi]);
            }
            match &mut nxt[qi] {
                Storage::Queue { queue, bound } => {
                    if survives {
                        queue.shift(*bound);
                    }
                    if queue_entry_hit[qi] {
                        queue.set_first();
                    }
                }
                _ => unreachable!("counting-set states use Queue storage"),
            }
            if !nxt[qi].is_empty() {
                next_active[qi / 64] |= 1 << (qi % 64);
            }
        }
        self.conflicts += conflicts;
        std::mem::swap(&mut self.cur, &mut self.nxt);
        std::mem::swap(&mut self.active, &mut self.next_active);
        self.collect_reports(out);
    }

    fn collect_reports(&mut self, out: &mut Vec<MultiReport>) {
        let generation = self.generation;
        for (wi, &word) in self.active.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                let q = wi * 64 + bit;
                let disjuncts = &self.tables.accepts[q];
                if disjuncts.is_empty() {
                    continue;
                }
                let pattern = self.multi.pattern_of_state[q];
                debug_assert_ne!(pattern, u32::MAX, "merged q0 never accepts");
                if self.report_stamp[pattern as usize] == generation {
                    continue; // this pattern already reported at this offset
                }
                let mut hit = false;
                self.cur[q].for_each(|values| {
                    if !hit {
                        hit = disjuncts
                            .iter()
                            .any(|conj| conj.iter().all(|g| g.eval(values)));
                    }
                });
                if hit {
                    self.report_stamp[pattern as usize] = generation;
                    out.push(MultiReport {
                        pattern,
                        end: self.position,
                    });
                }
            }
        }
    }

    /// Feeds a whole chunk, appending reports to `out`. Stream position
    /// persists across calls, so chunked feeding is equivalent to one
    /// contiguous scan.
    pub fn feed_into(&mut self, chunk: &[u8], out: &mut Vec<MultiReport>) {
        for &b in chunk {
            self.step_into(b, out);
        }
    }

    /// One-shot scan: resets, consumes `input`, returns all reports in
    /// stream order.
    pub fn match_reports(&mut self, input: &[u8]) -> Vec<MultiReport> {
        self.reset();
        let mut out = Vec::new();
        self.feed_into(input, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::CompiledEngine;
    use recama_syntax::parse;

    fn stream_nca(pattern: &str) -> Nca {
        Nca::from_regex(&parse(pattern).unwrap().for_stream())
    }

    fn multi(patterns: &[&str]) -> MultiNca {
        let ncas: Vec<Nca> = patterns.iter().map(|p| stream_nca(p)).collect();
        let parts: Vec<(&Nca, CompilePlan)> = ncas
            .iter()
            .map(|n| (n, CompilePlan::conservative(n)))
            .collect();
        let m = MultiNca::merge(&parts);
        // `parts` borrows ncas, which drop here; MultiNca owns its copy.
        m
    }

    fn per_pattern_reports(patterns: &[&str], input: &[u8]) -> Vec<MultiReport> {
        let mut expected = Vec::new();
        for (pi, p) in patterns.iter().enumerate() {
            let nca = stream_nca(p);
            let mut engine = CompiledEngine::conservative(&nca);
            for end in engine.match_ends(input) {
                if end > 0 {
                    expected.push(MultiReport {
                        pattern: pi as u32,
                        end: end as u64,
                    });
                }
            }
        }
        expected.sort();
        expected
    }

    fn assert_agrees(patterns: &[&str], input: &[u8]) {
        let m = multi(patterns);
        let mut got = m.engine().match_reports(input);
        got.sort();
        assert_eq!(
            got,
            per_pattern_reports(patterns, input),
            "{patterns:?} on {:?}",
            String::from_utf8_lossy(input)
        );
    }

    #[test]
    fn merged_reports_equal_per_pattern_union() {
        let patterns = ["ab{2,3}c", "a{3}", "x[yz]{2}", "cab"];
        for input in [
            &b"abbc.aaa.xyz.cab"[..],
            b"abbbcabbc",
            b"aaaaaa",
            b"xzy xyy xzz",
            b"",
            b"no matches here",
        ] {
            assert_agrees(&patterns, input);
        }
    }

    #[test]
    fn overlapping_patterns_report_independently() {
        // Same trigger, different tails; plus a pattern equal to another's
        // prefix.
        let patterns = ["ka{2}", "ka{2}b", "k"];
        assert_agrees(&patterns, b"kaab kaa");
    }

    #[test]
    fn anchored_and_counting_mix() {
        let patterns = ["^a{2}b", "b{2}", "^x"];
        assert_agrees(&patterns, b"aab bb x");
        assert_agrees(&patterns, b"xaabbb");
    }

    #[test]
    fn shared_alphabet_is_smaller_than_sigma() {
        let m = multi(&["a{3}", "[ab]{2}x", "\\d{4}"]);
        // Classes: {a}, {b}, {x}, digits, rest — far fewer than 256.
        assert_eq!(m.alphabet().len(), 5);
    }

    #[test]
    fn state_attribution_covers_all_patterns() {
        let patterns = ["ab", "cd{2}"];
        let m = multi(&patterns);
        assert_eq!(m.pattern_count(), 2);
        assert_eq!(m.pattern_of(StateId::INIT), None);
        let mut seen = vec![false; patterns.len()];
        for qi in 1..m.nca().state_count() {
            let p = m
                .pattern_of(StateId(qi as u32))
                .expect("non-q0 states are owned");
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chunked_feeding_matches_oneshot() {
        let patterns = ["ab{2,4}c", "x{3}", "q[rs]{2}t"];
        let m = multi(&patterns);
        let input = b"zabbbc_xxx_qrst_abbc_xxxx".to_vec();
        let mut engine = m.engine();
        let oneshot = engine.match_reports(&input);
        for chunk_len in [1usize, 2, 3, 7, input.len()] {
            let mut engine = m.engine();
            let mut chunked = Vec::new();
            for chunk in input.chunks(chunk_len) {
                engine.feed_into(chunk, &mut chunked);
            }
            assert_eq!(chunked, oneshot, "chunk length {chunk_len}");
            assert_eq!(engine.position(), input.len() as u64);
        }
    }

    #[test]
    fn frontier_stays_sparse_on_benign_input() {
        let patterns = ["needle{2}x", "spike[ab]{3}", "^anchored{2}"];
        let m = multi(&patterns);
        let mut engine = m.engine();
        let mut out = Vec::new();
        for &b in b"purely unrelated traffic ........." {
            engine.step_into(b, &mut out);
        }
        // Only the Σ* self-loop states (one per unanchored pattern) and
        // occasional literal heads stay live.
        assert!(engine.active_states() <= 8, "{}", engine.active_states());
        assert!(out.is_empty());
    }

    #[test]
    fn empty_set_matches_nothing() {
        let m = MultiNca::merge(&[]);
        let mut engine = m.engine();
        assert!(engine.match_reports(b"anything").is_empty());
        assert_eq!(m.pattern_count(), 0);
    }

    fn sharded(patterns: &[&str], shards: &[Vec<usize>]) -> ShardedMulti {
        let ncas: Vec<Nca> = patterns.iter().map(|p| stream_nca(p)).collect();
        let parts: Vec<(&Nca, CompilePlan)> = ncas
            .iter()
            .map(|n| (n, CompilePlan::conservative(n)))
            .collect();
        ShardedMulti::merge(&parts, shards)
    }

    #[test]
    fn sharded_union_equals_single_merge() {
        let patterns = ["ab{2,3}c", "a{3}", "x[yz]{2}", "cab", "k\\d{2}"];
        let input = b"abbc.aaa.xyz.cab.k42.abbbc";
        let single = multi(&patterns);
        let mut expected = single.engine().match_reports(input);
        expected.sort();
        for shards in [
            vec![vec![0, 1, 2, 3, 4]],
            vec![vec![0, 1], vec![2, 3], vec![4]],
            vec![vec![0], vec![1], vec![2], vec![3], vec![4]],
            vec![vec![0, 1, 2], vec![3, 4]],
        ] {
            let sm = sharded(&patterns, &shards);
            let mut got = Vec::new();
            for (si, mut engine) in sm.engines().into_iter().enumerate() {
                for r in engine.match_reports(input) {
                    got.push(MultiReport {
                        pattern: sm.global_pattern(si, r.pattern),
                        end: r.end,
                    });
                }
            }
            got.sort();
            assert_eq!(got, expected, "shards {shards:?}");
        }
    }

    #[test]
    fn shards_share_the_union_alphabet() {
        let sm = sharded(&["a{3}", "[ab]{2}x", "\\d{4}"], &[vec![0, 1], vec![2]]);
        // Union classes: {a}, {b}, {x}, digits, rest — even though shard 1
        // alone would only need {digits, rest}.
        assert_eq!(sm.alphabet().len(), 5);
        for shard in sm.shards() {
            assert_eq!(shard.alphabet().len(), 5, "every shard sees the union");
        }
        assert_eq!(sm.pattern_count(), 3);
        assert_eq!(sm.shard_members(1), &[2]);
    }

    #[test]
    fn merge_with_alphabet_accepts_finer_partitions() {
        // An alphabet refined by predicates the pattern never uses is fine.
        let nca = stream_nca("a{2}b");
        let mut class_set = ByteClassSet::new();
        for s in nca.states().iter().skip(1) {
            class_set.add(&s.class);
        }
        class_set.add(&recama_syntax::ByteClass::digit()); // extra refinement
        let parts = [(&nca, CompilePlan::conservative(&nca))];
        let m = MultiNca::merge_with_alphabet(&parts, class_set.freeze());
        let reports = m.engine().match_reports(b"xaab aab");
        assert_eq!(reports.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cover every pattern")]
    fn sharded_merge_rejects_incomplete_partitions() {
        sharded(&["ab", "cd"], &[vec![0]]);
    }

    #[test]
    #[should_panic(expected = "partition the pattern indices")]
    fn sharded_merge_rejects_duplicates() {
        sharded(&["ab", "cd"], &[vec![0, 1], vec![1]]);
    }

    #[test]
    fn shard_streams_translate_and_resume_independently() {
        let patterns = ["ab{2,3}c", "a{3}", "x[yz]{2}", "cab", "k\\d{2}"];
        let input = b"abbc.aaa.xyz.cab.k42.abbbc";
        let mut expected = multi(&patterns).engine().match_reports(input);
        expected.sort();

        let sm = sharded(&patterns, &[vec![0, 1], vec![2, 3], vec![4]]);
        let mut streams = sm.shard_streams();
        let mut got = Vec::new();
        // Advance shards at *different* rates and in arbitrary order —
        // each keeps its own position in the logical stream.
        for (si, stream) in streams.iter_mut().enumerate() {
            assert_eq!(stream.shard(), si);
            for chunk in input.chunks(si + 1) {
                stream.feed_into(chunk, &mut got);
            }
            assert_eq!(stream.position(), input.len() as u64);
        }
        got.sort();
        assert_eq!(got, expected, "reports carry global pattern ids");
    }

    #[test]
    fn conflicts_stay_zero_with_sound_plans() {
        let patterns = [".*a{3}", "k.{2,5}z"];
        let m = multi(&patterns);
        let mut engine = m.engine();
        engine.match_reports(b"aaaa k..z aaa kzzzzz");
        assert_eq!(engine.conflicts(), 0);
    }

    /// Differential: the ported counting-set queue pass must be
    /// byte-identical to the bit-vector plan on bounded-repeat rulesets,
    /// across chunk boundaries.
    #[test]
    fn counting_set_multi_engine_matches_bitvector_plan() {
        let rulesets: [&[&str]; 3] = [
            &[".*a{3}", "k.{2,5}z", "ab{2,3}c"],
            &["x[ab]{2,5}y", "a{2,3}c{2,3}", "plain"],
            &[".*[ab][^a]{3}", "b{4}", "^q{2,4}t"],
        ];
        for patterns in rulesets {
            let ncas: Vec<Nca> = patterns.iter().map(|p| stream_nca(p)).collect();
            let queue_parts: Vec<(&Nca, CompilePlan)> = ncas
                .iter()
                .map(|n| (n, CompilePlan::counting_sets(n)))
                .collect();
            let bits_parts: Vec<(&Nca, CompilePlan)> = ncas
                .iter()
                .map(|n| (n, CompilePlan::conservative(n)))
                .collect();
            let queues = MultiNca::merge(&queue_parts);
            assert!(
                queues
                    .plan()
                    .iter()
                    .any(|(_, m)| m == StorageMode::CountingSet),
                "{patterns:?}: ruleset must exercise the queue pass"
            );
            let bits = MultiNca::merge(&bits_parts);
            for input in [
                &b"aaaa k..z abbc kzzzzz"[..],
                b"xaby xabababy aacc aaccc plain",
                b"bbbb qqt abxxx kaaz",
                b"",
            ] {
                let expected = bits.engine().match_reports(input);
                assert_eq!(
                    queues.engine().match_reports(input),
                    expected,
                    "{patterns:?} on {:?}",
                    String::from_utf8_lossy(input)
                );
                // Chunked feeding hits the stamp-based lazy clears too.
                for chunk_len in [1usize, 2, 5] {
                    let mut engine = queues.engine();
                    let mut got = Vec::new();
                    for chunk in input.chunks(chunk_len) {
                        engine.feed_into(chunk, &mut got);
                    }
                    assert_eq!(got, expected, "chunk length {chunk_len}");
                }
            }
        }
    }

    /// The optimized plan (analysis + counting sets) stays exact on the
    /// merged engine.
    #[test]
    fn optimized_plan_agrees_with_conservative() {
        let patterns = [".*a{3}", "ab{2,3}c", "x[yz]{2}", "k.{2,5}z"];
        let ncas: Vec<Nca> = patterns.iter().map(|p| stream_nca(p)).collect();
        let opt_parts: Vec<(&Nca, CompilePlan)> = ncas
            .iter()
            .map(|n| (n, CompilePlan::optimized(n, |_| false)))
            .collect();
        let opt = MultiNca::merge(&opt_parts);
        let baseline = multi(&patterns);
        for input in [&b"aaaa abbc xyz kxxz"[..], b"abbbc k....z aaa"] {
            assert_eq!(
                opt.engine().match_reports(input),
                baseline.engine().match_reports(input)
            );
        }
    }
}
