//! Nondeterministic counter automata (Definition 2.1 of the paper), in the
//! homogeneous, ε-free form produced by the Glushkov construction.
//!
//! Each state carries its own (possibly empty) set of counters `R(q)`; a
//! transition `(p, σ, φ, q, ϑ)` stores the guard φ over `R(p)`-valuations and
//! the action ϑ mapping `R(p)`-valuations to `R(q)`-valuations. Because the
//! automaton is homogeneous, the predicate σ is the destination state's
//! class and is stored once per state.

use recama_syntax::{ByteClass, RepeatId};
use std::fmt;

/// Index of a control state. State `0` is always the unique initial state
/// `q0` (pure, no incoming transitions).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl StateId {
    /// The initial state `q0`.
    pub const INIT: StateId = StateId(0);

    /// The state index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Index of a counter register. Counter `k` belongs to the `k`-th counting
/// occurrence (preorder) of the normalized source regex.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CounterId(pub u32);

impl CounterId {
    /// The counter index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CounterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for CounterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// One conjunct of a transition guard φ (or of a finalization predicate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuardAtom {
    /// `x < n` — guards the increment of a bounded repetition.
    Lt(CounterId, u32),
    /// `lo ≤ x ≤ hi` — the exit test `m ≤ x ≤ n` of `{m,n}`.
    Range(CounterId, u32, u32),
    /// `x ≥ m` — the exit test of the unbounded `{m,}`.
    Ge(CounterId, u32),
    /// `x = n`.
    Eq(CounterId, u32),
}

impl GuardAtom {
    /// The counter the atom tests.
    pub fn counter(&self) -> CounterId {
        match *self {
            GuardAtom::Lt(c, _)
            | GuardAtom::Range(c, _, _)
            | GuardAtom::Ge(c, _)
            | GuardAtom::Eq(c, _) => c,
        }
    }

    /// Evaluates the atom on a concrete counter value.
    pub fn eval(&self, value: u32) -> bool {
        match *self {
            GuardAtom::Lt(_, n) => value < n,
            GuardAtom::Range(_, lo, hi) => lo <= value && value <= hi,
            GuardAtom::Ge(_, m) => value >= m,
            GuardAtom::Eq(_, n) => value == n,
        }
    }
}

impl fmt::Display for GuardAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GuardAtom::Lt(c, n) => write!(f, "{c}<{n}"),
            GuardAtom::Range(c, lo, hi) => write!(f, "{lo}<={c}<={hi}"),
            GuardAtom::Ge(c, m) => write!(f, "{c}>={m}"),
            GuardAtom::Eq(c, n) => write!(f, "{c}={n}"),
        }
    }
}

/// One assignment of a transition action ϑ. Destination counters without an
/// explicit op retain their source value (`x := x`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionOp {
    /// `x := v` — (re-)initialization when entering a repetition.
    Set(CounterId, u32),
    /// `x++` — the guarded increment of a bounded repetition loop.
    Inc(CounterId),
    /// `x := min(x+1, cap)` — saturating increment for unbounded `{m,}`.
    IncSat(CounterId, u32),
}

impl ActionOp {
    /// The counter the op writes.
    pub fn counter(&self) -> CounterId {
        match *self {
            ActionOp::Set(c, _) | ActionOp::Inc(c) | ActionOp::IncSat(c, _) => c,
        }
    }
}

impl fmt::Display for ActionOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ActionOp::Set(c, v) => write!(f, "{c}:={v}"),
            ActionOp::Inc(c) => write!(f, "{c}++"),
            ActionOp::IncSat(c, cap) => write!(f, "{c}:=min({c}+1,{cap})"),
        }
    }
}

/// A transition `(p, σ, φ, q, ϑ)`; σ is `state(q).class` by homogeneity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Transition {
    /// Source state p.
    pub from: StateId,
    /// Destination state q.
    pub to: StateId,
    /// Guard φ: conjunction of atoms over `R(p)`.
    pub guard: Vec<GuardAtom>,
    /// Action ϑ: explicit ops; unlisted destination counters are retained.
    pub actions: Vec<ActionOp>,
}

/// A control state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// The predicate labeling all incoming transitions (pushed into the
    /// state by homogeneity; Fig. 4(b) of the paper).
    pub class: ByteClass,
    /// `R(q)`: the counters this state carries, sorted ascending.
    pub counters: Vec<CounterId>,
    /// Finalization predicate `F(q)` in disjunctive form: the state is final
    /// iff this is nonempty, and a token is accepted iff some disjunct's
    /// conjunction of atoms holds. `vec![vec![]]` accepts unconditionally.
    pub accepts: Vec<Vec<GuardAtom>>,
}

impl State {
    /// Whether the state is pure (`R(q) = ∅`).
    pub fn is_pure(&self) -> bool {
        self.counters.is_empty()
    }

    /// Whether the state is final (`q ∈ dom(F)`).
    pub fn is_final(&self) -> bool {
        !self.accepts.is_empty()
    }

    /// Slot of `counter` in this state's valuation vectors.
    pub fn slot(&self, counter: CounterId) -> Option<usize> {
        self.counters.binary_search(&counter).ok()
    }
}

/// Static description of one counter: which counting occurrence of the
/// (normalized) source regex it implements and that occurrence's bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterInfo {
    /// The counting occurrence (preorder id in the normalized regex).
    pub repeat: RepeatId,
    /// Lower bound m of `{m,n}` / `{m,}`.
    pub min: u32,
    /// Upper bound n, or `None` for the unbounded `{m,}`.
    pub max: Option<u32>,
}

impl CounterInfo {
    /// The largest value the counter can hold during any run: n for
    /// `{m,n}`, m for the saturating `{m,}`. Values range over `1..=bound()`.
    pub fn bound(&self) -> u32 {
        self.max.unwrap_or(self.min)
    }
}

/// A homogeneous nondeterministic counter automaton.
///
/// Build one from a regex with [`crate::glushkov::build`] (or the
/// convenience [`Nca::from_regex`]); execute it with the engines in
/// the `engine` module.
#[derive(Debug, Clone, PartialEq)]
pub struct Nca {
    states: Vec<State>,
    counters: Vec<CounterInfo>,
    transitions: Vec<Transition>,
    /// Outgoing transition indices per state.
    out: Vec<Vec<u32>>,
    /// Incoming transition indices per state.
    into: Vec<Vec<u32>>,
}

impl Nca {
    /// Assembles an NCA from parts.
    ///
    /// # Panics
    ///
    /// Panics if the automaton violates a structural invariant (see
    /// [`Nca::validate`]); construction sites are all internal, so a panic
    /// here indicates a bug in a builder, not bad user input.
    pub fn new(
        states: Vec<State>,
        counters: Vec<CounterInfo>,
        transitions: Vec<Transition>,
    ) -> Nca {
        let mut out = vec![Vec::new(); states.len()];
        let mut into = vec![Vec::new(); states.len()];
        for (i, t) in transitions.iter().enumerate() {
            out[t.from.index()].push(i as u32);
            into[t.to.index()].push(i as u32);
        }
        let nca = Nca {
            states,
            counters,
            transitions,
            out,
            into,
        };
        if let Err(e) = nca.validate() {
            panic!("malformed NCA: {e}");
        }
        nca
    }

    /// Builds the NCA for a regex: normalizes it (see
    /// [`recama_syntax::normalize_for_nca`]) and runs the Glushkov
    /// construction with counters.
    pub fn from_regex(regex: &recama_syntax::Regex) -> Nca {
        crate::glushkov::build(&recama_syntax::normalize_for_nca(regex))
    }

    /// The states; index with [`StateId::index`]. State 0 is `q0`.
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// The state record for `q`.
    pub fn state(&self, q: StateId) -> &State {
        &self.states[q.index()]
    }

    /// The counters.
    pub fn counters(&self) -> &[CounterInfo] {
        &self.counters
    }

    /// The counter record for `c`.
    pub fn counter(&self, c: CounterId) -> &CounterInfo {
        &self.counters[c.index()]
    }

    /// All transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Outgoing transitions of `p`.
    pub fn transitions_from(&self, p: StateId) -> impl Iterator<Item = &Transition> + '_ {
        self.out[p.index()]
            .iter()
            .map(move |&i| &self.transitions[i as usize])
    }

    /// Incoming transitions of `q`.
    pub fn transitions_into(&self, q: StateId) -> impl Iterator<Item = &Transition> + '_ {
        self.into[q.index()]
            .iter()
            .map(move |&i| &self.transitions[i as usize])
    }

    /// Number of states including `q0`.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of position states (STE candidates): states except `q0`.
    pub fn ste_count(&self) -> usize {
        self.states.len() - 1
    }

    /// Whether the automaton accepts ε (i.e. `q0` is final).
    pub fn accepts_empty(&self) -> bool {
        self.states[0].is_final()
    }

    /// Checks the structural invariants:
    ///
    /// * state 0 exists, is pure, and has no incoming transitions;
    /// * `R(q)` vectors are sorted and duplicate-free;
    /// * guards test only counters of the source state; finalization
    ///   predicates test only counters of their state;
    /// * each destination counter has at most one action op; `Inc`/`IncSat`
    ///   sources exist in `R(p)`; retained counters exist in `R(p)`;
    /// * action ops never target counters outside `R(q)`;
    /// * counter ids referenced anywhere are in range.
    pub fn validate(&self) -> Result<(), String> {
        if self.states.is_empty() {
            return Err("no states".into());
        }
        if !self.states[0].is_pure() {
            return Err("q0 must be pure".into());
        }
        if !self.into[0].is_empty() {
            return Err("q0 must have no incoming transitions".into());
        }
        for (qi, s) in self.states.iter().enumerate() {
            if !s.counters.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("q{qi}: R(q) not sorted/unique"));
            }
            for c in &s.counters {
                if c.index() >= self.counters.len() {
                    return Err(format!("q{qi}: counter {c} out of range"));
                }
            }
            for conj in &s.accepts {
                for atom in conj {
                    if s.slot(atom.counter()).is_none() {
                        return Err(format!(
                            "q{qi}: finalization tests {} ∉ R(q)",
                            atom.counter()
                        ));
                    }
                }
            }
        }
        for (ti, t) in self.transitions.iter().enumerate() {
            if t.from.index() >= self.states.len() || t.to.index() >= self.states.len() {
                return Err(format!("t{ti}: state out of range"));
            }
            let src = &self.states[t.from.index()];
            let dst = &self.states[t.to.index()];
            for atom in &t.guard {
                if src.slot(atom.counter()).is_none() {
                    return Err(format!("t{ti}: guard tests {} ∉ R(p)", atom.counter()));
                }
            }
            let mut seen = Vec::new();
            for op in &t.actions {
                let c = op.counter();
                if seen.contains(&c) {
                    return Err(format!("t{ti}: duplicate action for {c}"));
                }
                seen.push(c);
                if dst.slot(c).is_none() {
                    return Err(format!("t{ti}: action writes {c} ∉ R(q)"));
                }
                match op {
                    ActionOp::Inc(c) | ActionOp::IncSat(c, _) => {
                        if src.slot(*c).is_none() {
                            return Err(format!("t{ti}: increment reads {c} ∉ R(p)"));
                        }
                    }
                    ActionOp::Set(..) => {}
                }
            }
            for c in &dst.counters {
                if !seen.contains(c) && src.slot(*c).is_none() {
                    return Err(format!("t{ti}: {c} retained but ∉ R(p)"));
                }
            }
        }
        Ok(())
    }

    /// Total number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// An upper bound on the number of distinct tokens the automaton can
    /// produce: Σ over states of Π over their counters of `bound`.
    /// Saturates at `u64::MAX`.
    pub fn token_space_bound(&self) -> u64 {
        let mut total: u64 = 0;
        for s in &self.states {
            let mut per: u64 = 1;
            for c in &s.counters {
                per = per.saturating_mul(u64::from(self.counter(*c).bound()));
            }
            total = total.saturating_add(per);
        }
        total
    }
}

impl fmt::Display for Nca {
    /// A human-readable dump in the notation of the paper's figures:
    /// `q3:x1 [a-c] <- q2 on (x1<5 / x1++)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "NCA: {} states, {} counters, {} transitions",
            self.states.len(),
            self.counters.len(),
            self.transitions.len()
        )?;
        for (i, s) in self.states.iter().enumerate() {
            write!(f, "  q{i}")?;
            if !s.counters.is_empty() {
                write!(f, ":")?;
                for (k, c) in s.counters.iter().enumerate() {
                    if k > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{c}")?;
                }
            }
            if i > 0 {
                write!(f, " [{}]", s.class)?;
            }
            if s.is_final() {
                write!(f, " FINAL")?;
                for conj in &s.accepts {
                    write!(f, " (")?;
                    for (k, a) in conj.iter().enumerate() {
                        if k > 0 {
                            write!(f, " & ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")?;
                }
            }
            writeln!(f)?;
        }
        for t in &self.transitions {
            write!(f, "  {} -> {}", t.from, t.to)?;
            if !t.guard.is_empty() || !t.actions.is_empty() {
                write!(f, " on (")?;
                for (k, a) in t.guard.iter().enumerate() {
                    if k > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, " / ")?;
                for (k, a) in t.actions.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_nca() -> Nca {
        // q0 --a--> q1:x (x:=1); q1 --a--> q1 (x<3 / x++); accept x in [2,3].
        let states = vec![
            State {
                class: ByteClass::EMPTY,
                counters: vec![],
                accepts: vec![],
            },
            State {
                class: ByteClass::singleton(b'a'),
                counters: vec![CounterId(0)],
                accepts: vec![vec![GuardAtom::Range(CounterId(0), 2, 3)]],
            },
        ];
        let counters = vec![CounterInfo {
            repeat: RepeatId(0),
            min: 2,
            max: Some(3),
        }];
        let transitions = vec![
            Transition {
                from: StateId(0),
                to: StateId(1),
                guard: vec![],
                actions: vec![ActionOp::Set(CounterId(0), 1)],
            },
            Transition {
                from: StateId(1),
                to: StateId(1),
                guard: vec![GuardAtom::Lt(CounterId(0), 3)],
                actions: vec![ActionOp::Inc(CounterId(0))],
            },
        ];
        Nca::new(states, counters, transitions)
    }

    #[test]
    fn construction_and_accessors() {
        let nca = tiny_nca();
        assert_eq!(nca.state_count(), 2);
        assert_eq!(nca.ste_count(), 1);
        assert_eq!(nca.transition_count(), 2);
        assert!(!nca.accepts_empty());
        assert!(nca.state(StateId(1)).is_final());
        assert!(nca.state(StateId(0)).is_pure());
        assert_eq!(nca.transitions_from(StateId(1)).count(), 1);
        assert_eq!(nca.transitions_into(StateId(1)).count(), 2);
        assert_eq!(nca.counter(CounterId(0)).bound(), 3);
        assert_eq!(nca.token_space_bound(), 1 + 3);
    }

    #[test]
    fn guard_atom_eval() {
        let c = CounterId(0);
        assert!(GuardAtom::Lt(c, 3).eval(2));
        assert!(!GuardAtom::Lt(c, 3).eval(3));
        assert!(GuardAtom::Range(c, 2, 4).eval(2));
        assert!(GuardAtom::Range(c, 2, 4).eval(4));
        assert!(!GuardAtom::Range(c, 2, 4).eval(5));
        assert!(GuardAtom::Ge(c, 2).eval(7));
        assert!(!GuardAtom::Ge(c, 2).eval(1));
        assert!(GuardAtom::Eq(c, 2).eval(2));
        assert!(!GuardAtom::Eq(c, 2).eval(3));
    }

    #[test]
    #[should_panic(expected = "malformed NCA")]
    fn rejects_guard_on_missing_counter() {
        let states = vec![
            State {
                class: ByteClass::EMPTY,
                counters: vec![],
                accepts: vec![],
            },
            State {
                class: ByteClass::ANY,
                counters: vec![],
                accepts: vec![vec![]],
            },
        ];
        let transitions = vec![Transition {
            from: StateId(0),
            to: StateId(1),
            guard: vec![GuardAtom::Lt(CounterId(0), 3)],
            actions: vec![],
        }];
        Nca::new(states, vec![], transitions);
    }

    #[test]
    #[should_panic(expected = "malformed NCA")]
    fn rejects_retained_counter_not_in_source() {
        let states = vec![
            State {
                class: ByteClass::EMPTY,
                counters: vec![],
                accepts: vec![],
            },
            State {
                class: ByteClass::ANY,
                counters: vec![CounterId(0)],
                accepts: vec![],
            },
        ];
        let counters = vec![CounterInfo {
            repeat: RepeatId(0),
            min: 1,
            max: Some(2),
        }];
        // No Set action for x at a pure->counted edge: invalid retain.
        let transitions = vec![Transition {
            from: StateId(0),
            to: StateId(1),
            guard: vec![],
            actions: vec![],
        }];
        Nca::new(states, counters, transitions);
    }

    #[test]
    fn display_is_nonempty_and_mentions_parts() {
        let nca = tiny_nca();
        let dump = nca.to_string();
        assert!(dump.contains("q1"));
        assert!(dump.contains("FINAL"));
        assert!(dump.contains("x0++"));
    }
}
