//! Bitset execution of counter-free NCAs — the classical homogeneous-NFA
//! engine that models how the unfolding baseline (AP/CA/Impala/CAMA without
//! counter modules) executes: an active-state bit vector ANDed with the
//! match results each cycle.

use crate::engine::Engine;
use crate::nca::{Nca, StateId};

/// Word-packed bitset over states.
#[derive(Debug, Clone, PartialEq, Eq)]
struct StateBits(Vec<u64>);

impl StateBits {
    fn new(n: usize) -> StateBits {
        StateBits(vec![0; n.div_ceil(64)])
    }
    fn clear(&mut self) {
        self.0.iter_mut().for_each(|w| *w = 0);
    }
    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
    fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.0.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
    fn intersects(&self, other: &StateBits) -> bool {
        self.0.iter().zip(&other.0).any(|(a, b)| a & b != 0)
    }
}

/// Bitset NFA engine over a **counter-free** NCA.
///
/// # Examples
///
/// ```
/// use recama_nca::{unfold, Engine, Nca, NfaEngine, UnfoldPolicy};
/// let r = recama_syntax::parse("a{2,3}").unwrap().regex;
/// let nfa = Nca::from_regex(&unfold(&r, UnfoldPolicy::All));
/// let mut e = NfaEngine::new(&nfa);
/// assert!(e.matches(b"aa"));
/// assert!(!e.matches(b"a"));
/// ```
pub struct NfaEngine<'a> {
    nca: &'a Nca,
    /// Deduplicated successor lists.
    succ: Vec<Vec<u32>>,
    finals: StateBits,
    active: StateBits,
    next: StateBits,
}

impl<'a> NfaEngine<'a> {
    /// Builds the engine.
    ///
    /// # Panics
    ///
    /// Panics if `nca` has counters — unfold first ([`crate::unfold`]).
    pub fn new(nca: &'a Nca) -> NfaEngine<'a> {
        assert!(
            nca.counters().is_empty(),
            "NfaEngine requires a counter-free automaton; unfold the regex first"
        );
        let n = nca.state_count();
        let succ = (0..n)
            .map(|qi| {
                let mut s: Vec<u32> = nca
                    .transitions_from(StateId(qi as u32))
                    .map(|t| t.to.0)
                    .collect();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        let mut finals = StateBits::new(n);
        for (qi, s) in nca.states().iter().enumerate() {
            if s.is_final() {
                finals.set(qi);
            }
        }
        let mut e = NfaEngine {
            nca,
            succ,
            finals,
            active: StateBits::new(n),
            next: StateBits::new(n),
        };
        e.reset();
        e
    }

    /// Number of currently active states (for activity statistics).
    pub fn active_count(&self) -> usize {
        self.active.iter_ones().count()
    }
}

impl Engine for NfaEngine<'_> {
    fn reset(&mut self) {
        self.active.clear();
        self.active.set(0);
    }

    fn step(&mut self, byte: u8) {
        self.next.clear();
        for p in self.active.iter_ones() {
            for &q in &self.succ[p] {
                if self.nca.state(StateId(q)).class.contains(byte) {
                    self.next.set(q as usize);
                }
            }
        }
        std::mem::swap(&mut self.active, &mut self.next);
    }

    fn is_accepting(&self) -> bool {
        self.active.intersects(&self.finals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TokenSetEngine;
    use crate::unfold::{unfold, UnfoldPolicy};
    use recama_syntax::parse;

    #[test]
    #[should_panic(expected = "counter-free")]
    fn rejects_counted_automata() {
        let nca = Nca::from_regex(&parse("a{2,3}").unwrap().regex);
        let _ = NfaEngine::new(&nca);
    }

    #[test]
    fn agrees_with_token_engine_on_unfolded() {
        for p in ["a{2,4}", "(ab){2,3}", ".*a{3}", "(a|b){2}c*", "a{2,}b"] {
            let r = unfold(&parse(p).unwrap().regex, UnfoldPolicy::All);
            let nca = Nca::from_regex(&r);
            let mut nfa = NfaEngine::new(&nca);
            let mut tok = TokenSetEngine::new(&nca);
            for w in [
                &b""[..],
                b"a",
                b"aa",
                b"aaa",
                b"aaaa",
                b"aaaaa",
                b"ab",
                b"abab",
                b"ababab",
                b"abc",
                b"ababc",
                b"bc",
                b"bbc",
                b"xaaa",
                b"aab",
            ] {
                assert_eq!(nfa.matches(w), tok.matches(w), "{p} on {w:?}");
            }
        }
    }

    #[test]
    fn match_ends_and_activity() {
        let p = parse("ab").unwrap();
        let nca = Nca::from_regex(&p.for_stream());
        let mut e = NfaEngine::new(&nca);
        assert_eq!(e.match_ends(b"abxab"), vec![2, 5]);
        e.reset();
        assert_eq!(e.active_count(), 1);
    }
}
