//! Tokens and fast token stepping.
//!
//! A *token* is a pair `(q, β)` of a control state and a valuation of its
//! counters (§2 of the paper). Both the reference execution engine and the
//! static analysis step tokens millions of times, so [`Prepared`]
//! pre-resolves every transition's guard and action to counter *slots*
//! (positions in the valuation vector) once.

use crate::nca::{ActionOp, GuardAtom, Nca, StateId, Transition};
use recama_syntax::ByteClass;
use std::fmt;

/// A token `(q, β)`: `values[i]` is the value of the `i`-th counter of
/// `R(q)` (sorted order). Pure states have an empty vector.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token {
    /// The control state q.
    pub state: StateId,
    /// The valuation β, aligned with `State::counters`.
    pub values: Vec<u32>,
}

impl Token {
    /// The initial token `(q0, ∅)`.
    pub fn initial() -> Token {
        Token {
            state: StateId::INIT,
            values: Vec::new(),
        }
    }

    /// A token on a pure state.
    pub fn pure(state: StateId) -> Token {
        Token {
            state,
            values: Vec::new(),
        }
    }
}

impl fmt::Debug for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.values.is_empty() {
            write!(f, "({})", self.state)
        } else {
            write!(f, "({}, {:?})", self.state, self.values)
        }
    }
}

/// Slot-resolved guard test (shared with the compiled engine).
#[derive(Debug, Clone, Copy)]
pub(crate) enum SlotTest {
    Lt(usize, u32),
    Range(usize, u32, u32),
    Ge(usize, u32),
    Eq(usize, u32),
}

impl SlotTest {
    pub(crate) fn eval(&self, values: &[u32]) -> bool {
        match *self {
            SlotTest::Lt(s, n) => values[s] < n,
            SlotTest::Range(s, lo, hi) => (lo..=hi).contains(&values[s]),
            SlotTest::Ge(s, m) => values[s] >= m,
            SlotTest::Eq(s, n) => values[s] == n,
        }
    }
}

/// Slot-resolved producer of one destination counter value.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SlotSrc {
    Const(u32),
    Copy(usize),
    Inc(usize),
    IncSat(usize, u32),
}

impl SlotSrc {
    pub(crate) fn eval(&self, src: &[u32]) -> u32 {
        match *self {
            SlotSrc::Const(v) => v,
            SlotSrc::Copy(s) => src[s],
            SlotSrc::Inc(s) => src[s] + 1,
            SlotSrc::IncSat(s, cap) => (src[s] + 1).min(cap),
        }
    }
}

#[derive(Debug, Clone)]
struct Prog {
    /// Transition index in the NCA.
    index: u32,
    to: StateId,
    class: ByteClass,
    guard: Vec<SlotTest>,
    dst: Vec<SlotSrc>,
}

/// An [`Nca`] with slot-resolved transition programs, ready for fast token
/// stepping. Borrowed from the automaton; build once, step many.
///
/// # Examples
///
/// ```
/// use recama_nca::{Nca, Prepared, Token};
/// let nca = Nca::from_regex(&recama_syntax::parse("a{2,3}").unwrap().regex);
/// let prep = Prepared::new(&nca);
/// let mut tokens = vec![Token::initial()];
/// for &b in b"aa" {
///     let mut next = Vec::new();
///     for t in &tokens {
///         prep.for_each_successor(t, b, |succ| next.push(succ));
///     }
///     tokens = next;
/// }
/// assert!(tokens.iter().any(|t| prep.token_accepts(t)));
/// ```
pub struct Prepared<'a> {
    nca: &'a Nca,
    /// Outgoing programs per state.
    progs: Vec<Vec<Prog>>,
    /// Slot-resolved finalization predicates per state (DNF).
    accepts: Vec<Vec<Vec<SlotTest>>>,
}

pub(crate) fn resolve_guard(nca: &Nca, state: StateId, atoms: &[GuardAtom]) -> Vec<SlotTest> {
    atoms
        .iter()
        .map(|a| {
            let slot = nca
                .state(state)
                .slot(a.counter())
                .expect("validated: guard counter in R(state)");
            match *a {
                GuardAtom::Lt(_, n) => SlotTest::Lt(slot, n),
                GuardAtom::Range(_, lo, hi) => SlotTest::Range(slot, lo, hi),
                GuardAtom::Ge(_, m) => SlotTest::Ge(slot, m),
                GuardAtom::Eq(_, n) => SlotTest::Eq(slot, n),
            }
        })
        .collect()
}

/// Resolves one transition's guard and action to slot programs. Shared by
/// [`Prepared`] and the compiled engine.
pub(crate) fn resolve_transition(nca: &Nca, t: &Transition) -> (Vec<SlotTest>, Vec<SlotSrc>) {
    let src_state = nca.state(t.from);
    let dst_state = nca.state(t.to);
    let guard = resolve_guard(nca, t.from, &t.guard);
    let dst = dst_state
        .counters
        .iter()
        .map(|&c| {
            for op in &t.actions {
                if op.counter() == c {
                    return match *op {
                        ActionOp::Set(_, v) => SlotSrc::Const(v),
                        ActionOp::Inc(_) => SlotSrc::Inc(src_state.slot(c).expect("validated")),
                        ActionOp::IncSat(_, cap) => {
                            SlotSrc::IncSat(src_state.slot(c).expect("validated"), cap)
                        }
                    };
                }
            }
            SlotSrc::Copy(src_state.slot(c).expect("validated: retained counter"))
        })
        .collect();
    (guard, dst)
}

impl<'a> Prepared<'a> {
    /// Resolves all transitions of `nca` to slot programs.
    pub fn new(nca: &'a Nca) -> Prepared<'a> {
        let progs = (0..nca.state_count())
            .map(|qi| {
                nca.transitions()
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.from.index() == qi)
                    .map(|(i, t)| Self::compile(nca, i as u32, t))
                    .collect()
            })
            .collect();
        let accepts = nca
            .states()
            .iter()
            .enumerate()
            .map(|(qi, s)| {
                s.accepts
                    .iter()
                    .map(|conj| resolve_guard(nca, StateId(qi as u32), conj))
                    .collect()
            })
            .collect();
        Prepared {
            nca,
            progs,
            accepts,
        }
    }

    fn compile(nca: &Nca, index: u32, t: &Transition) -> Prog {
        let (guard, dst) = resolve_transition(nca, t);
        Prog {
            index,
            to: t.to,
            class: nca.state(t.to).class,
            guard,
            dst,
        }
    }

    /// The underlying automaton.
    pub fn nca(&self) -> &Nca {
        self.nca
    }

    /// Calls `f` for every token reachable from `token` on input `byte`
    /// (the token transition relation `→_byte` of §2).
    pub fn for_each_successor(&self, token: &Token, byte: u8, mut f: impl FnMut(Token)) {
        for prog in &self.progs[token.state.index()] {
            if !prog.class.contains(byte) {
                continue;
            }
            if !prog.guard.iter().all(|g| g.eval(&token.values)) {
                continue;
            }
            let values = prog.dst.iter().map(|s| s.eval(&token.values)).collect();
            f(Token {
                state: prog.to,
                values,
            });
        }
    }

    /// Calls `f` with `(transition index, σ, successor token)` for every
    /// *symbolic* successor: guards are evaluated on the concrete valuation,
    /// but the input predicate σ (the destination class) is left symbolic.
    /// This is the edge relation the static analysis' product construction
    /// consumes (§3.1).
    pub fn for_each_symbolic_successor(
        &self,
        token: &Token,
        mut f: impl FnMut(u32, &ByteClass, Token),
    ) {
        for prog in &self.progs[token.state.index()] {
            if !prog.guard.iter().all(|g| g.eval(&token.values)) {
                continue;
            }
            let values = prog.dst.iter().map(|s| s.eval(&token.values)).collect();
            f(
                prog.index,
                &prog.class,
                Token {
                    state: prog.to,
                    values,
                },
            );
        }
    }

    /// Whether `token` is final: its state is final and the valuation
    /// satisfies some disjunct of `F(q)`.
    pub fn token_accepts(&self, token: &Token) -> bool {
        self.accepts[token.state.index()]
            .iter()
            .any(|conj| conj.iter().all(|g| g.eval(&token.values)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recama_syntax::parse;

    fn prep(pattern: &str) -> (Nca, Vec<u8>) {
        let nca = Nca::from_regex(&parse(pattern).unwrap().regex);
        (nca, vec![])
    }

    #[test]
    fn initial_token() {
        let t = Token::initial();
        assert_eq!(t.state, StateId::INIT);
        assert!(t.values.is_empty());
    }

    #[test]
    fn step_counts_up() {
        let (nca, _) = prep("a{2,3}");
        let p = Prepared::new(&nca);
        let mut toks = vec![Token::initial()];
        let step = |toks: &Vec<Token>, b: u8| {
            let mut next = Vec::new();
            for t in toks {
                p.for_each_successor(t, b, |s| next.push(s));
            }
            next
        };
        let t1 = step(&toks, b'a');
        assert_eq!(t1.len(), 1);
        assert_eq!(t1[0].values, vec![1]);
        assert!(!p.token_accepts(&t1[0]));
        let t2 = step(&t1, b'a');
        assert_eq!(t2[0].values, vec![2]);
        assert!(p.token_accepts(&t2[0]));
        let t3 = step(&t2, b'a');
        assert_eq!(t3[0].values, vec![3]);
        assert!(p.token_accepts(&t3[0]));
        // Guard x<3 now blocks the loop.
        let t4 = step(&t3, b'a');
        assert!(t4.is_empty());
        toks.clear();
    }

    #[test]
    fn wrong_byte_kills_tokens() {
        let (nca, _) = prep("a{2,3}");
        let p = Prepared::new(&nca);
        let t0 = Token::initial();
        let mut next = Vec::new();
        p.for_each_successor(&t0, b'z', |s| next.push(s));
        assert!(next.is_empty());
    }

    #[test]
    fn symbolic_successors_expose_classes() {
        let (nca, _) = prep(".*[ab]c{2,4}");
        let p = Prepared::new(&nca);
        let t0 = Token::initial();
        let mut seen = Vec::new();
        p.for_each_symbolic_successor(&t0, |_, class, tok| {
            seen.push((*class, tok));
        });
        // q0 → Σ-state and q0 → [ab]-state.
        assert_eq!(seen.len(), 2);
        assert!(seen.iter().any(|(c, _)| c.is_full()));
        assert!(seen.iter().any(|(c, _)| *c == ByteClass::from_bytes(b"ab")));
    }
}
