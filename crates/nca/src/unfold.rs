//! Unfolding of counting — the baseline the paper compares against.
//!
//! Existing in-memory NFA architectures (AP, CA, Impala, CAMA) support
//! counting only by rewriting `r{m,n}` into `r·r·…·r·(r?)^(n−m)`, which
//! costs Θ(n·|r|) STEs. [`unfold`] performs that rewrite, either fully or
//! only for occurrences with bounds up to a threshold — the *unfolding
//! threshold* knob swept in Fig. 9 and Fig. 10 of the paper.

use recama_syntax::Regex;

/// Which counting occurrences to unfold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnfoldPolicy {
    /// Unfold every counting occurrence (the pure-NFA baseline).
    All,
    /// Unfold only occurrences whose relevant bound (n for `{m,n}`, m for
    /// `{m,}`) is ≤ the threshold; keep the rest for counters/bit vectors.
    UpTo(u32),
    /// Unfold nothing.
    None,
}

impl UnfoldPolicy {
    fn applies(self, min: u32, max: Option<u32>) -> bool {
        match self {
            UnfoldPolicy::All => true,
            UnfoldPolicy::UpTo(k) => max.unwrap_or(min) <= k,
            UnfoldPolicy::None => false,
        }
    }
}

/// Rewrites counting occurrences selected by `policy` into concatenations:
/// `r{m,n} → r^m·(r?)^(n−m)`, `r{m,} → r^(m−1)·r+`. Plain `*`/`+` iteration
/// is left alone. The result's language is unchanged.
///
/// # Examples
///
/// ```
/// use recama_nca::{unfold, UnfoldPolicy};
/// use recama_syntax::parse;
///
/// let r = parse("a{3}b{2,4}").unwrap().regex;
/// let u = unfold(&r, UnfoldPolicy::All);
/// assert_eq!(u.to_string(), "aaabbb?b?");
/// let partial = unfold(&r, UnfoldPolicy::UpTo(3));
/// assert_eq!(partial.to_string(), "aaab{2,4}");
/// ```
pub fn unfold(regex: &Regex, policy: UnfoldPolicy) -> Regex {
    match regex {
        Regex::Empty | Regex::Void | Regex::Class(_) => regex.clone(),
        Regex::Concat(parts) => Regex::concat(parts.iter().map(|p| unfold(p, policy)).collect()),
        Regex::Alt(parts) => Regex::alt(parts.iter().map(|p| unfold(p, policy)).collect()),
        Regex::Star(inner) => Regex::star(unfold(inner, policy)),
        Regex::Repeat { inner, min, max } => {
            let body = unfold(inner, policy);
            if Regex::is_plain_iteration(*min, *max) {
                return Regex::Repeat {
                    inner: Box::new(body),
                    min: *min,
                    max: *max,
                };
            }
            if !policy.applies(*min, *max) {
                return Regex::repeat(body, *min, *max);
            }
            unfold_one(body, *min, *max)
        }
    }
}

/// Unfolds a single occurrence: `body{min,max}` into a counting-free
/// concatenation (`body` must already be free of occurrences you want
/// unfolded). Exposed for callers that unfold selected occurrences by
/// identity rather than by bound (e.g. the per-occurrence exact analysis).
pub fn unfold_one(body: Regex, min: u32, max: Option<u32>) -> Regex {
    let mut parts: Vec<Regex> = Vec::new();
    match max {
        Some(n) => {
            for _ in 0..min {
                parts.push(body.clone());
            }
            for _ in min..n {
                parts.push(Regex::opt(body.clone()));
            }
        }
        None => {
            for _ in 1..min {
                parts.push(body.clone());
            }
            parts.push(Regex::plus(body));
        }
    }
    Regex::concat(parts)
}

/// Number of STEs (Glushkov positions) the unfolded form of `regex` needs —
/// without materializing the unfolded AST. This is what the micro-benchmarks
/// of Fig. 8 count for the "Unfold" series.
pub fn unfolded_leaves(regex: &Regex) -> u64 {
    match regex {
        Regex::Empty | Regex::Void => 0,
        Regex::Class(_) => 1,
        Regex::Concat(parts) | Regex::Alt(parts) => parts.iter().map(unfolded_leaves).sum(),
        Regex::Star(inner) => unfolded_leaves(inner),
        Regex::Repeat { inner, min, max } => {
            let per = unfolded_leaves(inner);
            if Regex::is_plain_iteration(*min, *max) {
                per
            } else {
                per * u64::from(max.unwrap_or(*min).max(1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{matches, Engine, TokenSetEngine};
    use crate::nca::Nca;
    use recama_syntax::{naive, parse};

    fn ast(p: &str) -> Regex {
        parse(p).unwrap().regex
    }

    #[test]
    fn full_unfold_shapes() {
        assert_eq!(unfold(&ast("a{3}"), UnfoldPolicy::All).to_string(), "aaa");
        assert_eq!(
            unfold(&ast("a{1,3}"), UnfoldPolicy::All).to_string(),
            "aa?a?"
        );
        assert_eq!(
            unfold(&ast("a{0,2}"), UnfoldPolicy::All).to_string(),
            "a?a?"
        );
        assert_eq!(unfold(&ast("a{3,}"), UnfoldPolicy::All).to_string(), "aaa+");
        assert_eq!(
            unfold(&ast("(ab){2}"), UnfoldPolicy::All).to_string(),
            "abab"
        );
    }

    #[test]
    fn nested_unfold() {
        // (a{2}){3} unfolds inside-out to a^6.
        assert_eq!(
            unfold(&ast("(a{2}){3}"), UnfoldPolicy::All).to_string(),
            "aaaaaa"
        );
    }

    #[test]
    fn threshold_is_selective() {
        let r = ast("a{2}b{100}c{5,}");
        let u = unfold(&r, UnfoldPolicy::UpTo(10));
        // a{2} unfolds (bound 2), c{5,} unfolds (bound 5), b{100} stays.
        assert!(u.to_string().starts_with("aab{100}"));
        assert!(!u.has_counting() || u.repeats().iter().all(|i| i.max == Some(100)));
        assert_eq!(unfold(&r, UnfoldPolicy::None), r);
    }

    #[test]
    fn star_and_plus_untouched() {
        let r = ast("a*b+");
        assert_eq!(unfold(&r, UnfoldPolicy::All), r);
    }

    #[test]
    fn unfolding_preserves_language() {
        for p in [
            "a{2,4}",
            "(ab){2,3}c",
            "a{3,}",
            "(a|b){2}",
            "(a{2}b){1,2}",
            ".*a{3}",
        ] {
            let r = ast(p);
            let u = unfold(&r, UnfoldPolicy::All);
            assert!(!u.has_counting(), "unfold-all left counting in {u}");
            for w in [
                "", "a", "aa", "aaa", "aaaa", "ab", "abab", "ababc", "abc", "aab", "xaaa", "baaa",
                "aaab",
            ] {
                assert_eq!(
                    naive::matches(&r, w.as_bytes()),
                    naive::matches(&u, w.as_bytes()),
                    "{p} vs unfolded {u} differ on {w}"
                );
            }
        }
    }

    #[test]
    fn unfolded_nca_is_counter_free_and_equivalent() {
        for p in ["a{2,4}b", "(ab){3}", ".*[ab]{2,3}"] {
            let r = ast(p);
            let u = unfold(&r, UnfoldPolicy::All);
            let nca_c = Nca::from_regex(&r);
            let nca_u = Nca::from_regex(&u);
            assert!(nca_u.counters().is_empty());
            let mut e1 = TokenSetEngine::new(&nca_c);
            let mut e2 = TokenSetEngine::new(&nca_u);
            for w in [
                &b"ab"[..],
                b"abab",
                b"ababab",
                b"aa",
                b"aaa",
                b"aabbb",
                b"xabb",
            ] {
                assert_eq!(e1.matches(w), e2.matches(w), "{p} on {w:?}");
            }
            let _ = matches(&nca_u, b"");
        }
    }

    #[test]
    fn unfolded_leaves_counts() {
        assert_eq!(unfolded_leaves(&ast("a{1000}")), 1000);
        assert_eq!(unfolded_leaves(&ast("(ab){10,50}")), 100);
        assert_eq!(unfolded_leaves(&ast("a{3,}")), 3);
        assert_eq!(unfolded_leaves(&ast("abc")), 3);
        assert_eq!(unfolded_leaves(&ast("(a{10}){20}")), 200);
        assert_eq!(unfolded_leaves(&ast("a*")), 1);
    }
}
