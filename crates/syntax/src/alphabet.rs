//! Byte equivalence classes shared across a whole pattern set.
//!
//! Hardware automata processors never look at raw bytes twice: the input
//! decoder maps each byte to its *equivalence class* under the set of all
//! predicates appearing in the machine image, and every downstream lookup
//! is indexed by class. Two bytes are equivalent iff no predicate of the
//! compiled set distinguishes them — e.g. a ruleset whose classes are
//! `[a-z]`, `\d` and `.` partitions Σ into {lowercase}, {digits}, {rest},
//! so per-step transition work shrinks from 256-way to 3-way.
//!
//! [`ByteClassSet`] accumulates the predicates of every pattern in a set;
//! [`ByteAlphabet`] is the frozen byte→class mapping the multi-pattern
//! engine indexes its transition tables with.

use crate::class::ByteClass;

/// Builder: accumulates predicates and refines the partition of Σ.
///
/// # Examples
///
/// ```
/// use recama_syntax::{ByteAlphabet, ByteClass, ByteClassSet};
///
/// let mut set = ByteClassSet::new();
/// set.add(&ByteClass::digit());
/// set.add(&ByteClass::range(b'a', b'z'));
/// let alphabet = set.freeze();
/// assert_eq!(alphabet.len(), 3); // digits | lowercase | everything else
/// assert_eq!(alphabet.class_of(b'3'), alphabet.class_of(b'7'));
/// assert_ne!(alphabet.class_of(b'3'), alphabet.class_of(b'x'));
/// ```
#[derive(Debug, Clone)]
pub struct ByteClassSet {
    /// Current partition of Σ: disjoint, nonempty, union = Σ.
    parts: Vec<ByteClass>,
}

impl Default for ByteClassSet {
    fn default() -> Self {
        Self::new()
    }
}

impl ByteClassSet {
    /// The trivial partition {Σ}.
    pub fn new() -> ByteClassSet {
        ByteClassSet {
            parts: vec![ByteClass::ANY],
        }
    }

    /// Refines the partition so `class` is a union of parts.
    pub fn add(&mut self, class: &ByteClass) {
        if class.is_empty() || class.is_full() {
            return;
        }
        let mut next = Vec::with_capacity(self.parts.len() + 1);
        for part in &self.parts {
            let inside = part.intersect(class);
            if inside.is_empty() || inside == *part {
                next.push(*part);
                continue;
            }
            next.push(inside);
            next.push(part.minus(class));
        }
        self.parts = next;
    }

    /// Number of equivalence classes so far.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the partition is still trivial.
    pub fn is_empty(&self) -> bool {
        self.parts.len() == 1
    }

    /// Freezes into the byte→class lookup table.
    pub fn freeze(&self) -> ByteAlphabet {
        let mut map = [0u8; 256];
        let mut representatives = Vec::with_capacity(self.parts.len());
        for (i, part) in self.parts.iter().enumerate() {
            debug_assert!(i < 256, "at most 256 equivalence classes exist");
            for b in part.iter() {
                map[b as usize] = i as u8;
            }
            representatives.push(part.min_byte().expect("partition parts are nonempty"));
        }
        ByteAlphabet {
            map,
            representatives,
        }
    }
}

/// A frozen byte→equivalence-class mapping.
///
/// The multi-pattern engine sizes its per-state transition masks by
/// [`ByteAlphabet::len`] and translates each input byte once with
/// [`ByteAlphabet::class_of`].
#[derive(Clone)]
pub struct ByteAlphabet {
    map: [u8; 256],
    /// One representative byte per class (index = class id).
    representatives: Vec<u8>,
}

impl ByteAlphabet {
    /// The equivalence class of `byte`.
    #[inline]
    pub fn class_of(&self, byte: u8) -> usize {
        self.map[byte as usize] as usize
    }

    /// Number of equivalence classes (1..=256).
    pub fn len(&self) -> usize {
        self.representatives.len()
    }

    /// Whether the alphabet is the trivial single-class partition.
    pub fn is_empty(&self) -> bool {
        self.representatives.len() == 1
    }

    /// A representative byte of class `class`. Any predicate added to the
    /// originating [`ByteClassSet`] either contains the whole class or is
    /// disjoint from it, so testing the representative decides membership
    /// for every byte of the class.
    pub fn representative(&self, class: usize) -> u8 {
        self.representatives[class]
    }

    /// Iterates over `(class, representative)` pairs.
    pub fn classes(&self) -> impl Iterator<Item = (usize, u8)> + '_ {
        self.representatives
            .iter()
            .enumerate()
            .map(|(i, &b)| (i, b))
    }
}

impl std::fmt::Debug for ByteAlphabet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ByteAlphabet({} classes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force check: two bytes share a class iff no added predicate
    /// separates them.
    fn assert_partition_correct(classes: &[ByteClass], alphabet: &ByteAlphabet) {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                let same = alphabet.class_of(a) == alphabet.class_of(b);
                let separated = classes.iter().any(|c| c.contains(a) != c.contains(b));
                assert_eq!(same, !separated, "bytes {a:#04x} vs {b:#04x}");
            }
        }
    }

    #[test]
    fn trivial_alphabet_has_one_class() {
        let alphabet = ByteClassSet::new().freeze();
        assert_eq!(alphabet.len(), 1);
        assert_eq!(alphabet.class_of(0), alphabet.class_of(255));
        assert!(alphabet.is_empty());
    }

    #[test]
    fn full_and_empty_classes_do_not_refine() {
        let mut set = ByteClassSet::new();
        set.add(&ByteClass::ANY);
        set.add(&ByteClass::EMPTY);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn overlapping_classes_split_correctly() {
        let classes = [
            ByteClass::range(b'a', b'm'),
            ByteClass::range(b'h', b'z'),
            ByteClass::digit(),
        ];
        let mut set = ByteClassSet::new();
        for c in &classes {
            set.add(c);
        }
        let alphabet = set.freeze();
        // [a-g], [h-m], [n-z], digits, rest.
        assert_eq!(alphabet.len(), 5);
        assert_partition_correct(&classes, &alphabet);
    }

    #[test]
    fn representatives_decide_membership() {
        let classes = [
            ByteClass::word(),
            ByteClass::space(),
            ByteClass::range(0x80, 0xff),
        ];
        let mut set = ByteClassSet::new();
        for c in &classes {
            set.add(c);
        }
        let alphabet = set.freeze();
        for c in &classes {
            for (class, rep) in alphabet.classes() {
                // All members of the class agree with the representative.
                for b in 0..=255u8 {
                    if alphabet.class_of(b) == class {
                        assert_eq!(c.contains(b), c.contains(rep));
                    }
                }
            }
        }
    }

    #[test]
    fn singletons_reach_the_256_class_limit() {
        let mut set = ByteClassSet::new();
        for b in 0..=255u8 {
            set.add(&ByteClass::singleton(b));
        }
        let alphabet = set.freeze();
        assert_eq!(alphabet.len(), 256);
        for b in 0..=255u8 {
            assert_eq!(alphabet.representative(alphabet.class_of(b)), b);
        }
    }
}
