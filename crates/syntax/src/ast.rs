//! The abstract syntax of regular expressions with counting.
//!
//! The grammar follows §2 of the paper:
//! `r ::= ε | σ | r·r | r + r | r* | r{m,n}` with `σ ⊆ Σ` a byte predicate.
//! We additionally carry `∅` (the empty language, [`Regex::Void`]) because
//! the ε-stripping normalization of repetition bodies can produce it as an
//! intermediate, and the unbounded form `r{m,}` because it occurs throughout
//! the practical rulesets (it is *not* counted as bounded repetition by the
//! analysis; its NCA uses a saturating counter).

use crate::class::ByteClass;
use std::fmt;

/// A regular expression with counting over the byte alphabet.
///
/// # Examples
///
/// ```
/// use recama_syntax::{Regex, ByteClass};
///
/// // Σ* a{3,5}
/// let r = Regex::concat(vec![
///     Regex::star(Regex::any()),
///     Regex::repeat(Regex::byte(b'a'), 3, Some(5)),
/// ]);
/// assert!(r.has_counting());
/// assert_eq!(r.mu(), 5);
/// assert_eq!(r.to_string(), ".*a{3,5}");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Regex {
    /// ε — the language {""}.
    Empty,
    /// ∅ — the empty language. Never produced by the parser; arises only
    /// from rewriting and is eliminated by [`crate::simplify`].
    Void,
    /// A predicate σ ⊆ Σ (character class). Parser invariant: nonempty.
    Class(ByteClass),
    /// Concatenation r₁·r₂·…·rₖ.
    Concat(Vec<Regex>),
    /// Nondeterministic choice r₁ + r₂ + … + rₖ.
    Alt(Vec<Regex>),
    /// Kleene iteration r*.
    Star(Box<Regex>),
    /// Bounded repetition r{m,n} (`max = Some(n)`) or r{m,} (`max = None`).
    Repeat {
        /// The repeated subexpression.
        inner: Box<Regex>,
        /// Lower bound m.
        min: u32,
        /// Upper bound n; `None` encodes the unbounded `{m,}`.
        max: Option<u32>,
    },
}

/// Decision returned by the callback of [`Regex::rewrite_repeats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepeatRewrite {
    /// Keep the occurrence as written.
    Keep,
    /// Relax `r{m,n}` to `r*` (the over-approximation of §3.2).
    Star,
}

/// Identifier of one occurrence of bounded repetition inside a regex:
/// the preorder index among `Repeat` nodes. Stable under cloning; the static
/// analysis and the compiler use it to refer to "the i-th `{m,n}`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RepeatId(pub usize);

impl fmt::Display for RepeatId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Summary of one repetition occurrence, as enumerated by [`Regex::repeats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepeatInfo {
    /// Preorder identifier.
    pub id: RepeatId,
    /// Lower bound m.
    pub min: u32,
    /// Upper bound n (`None` for `{m,}`).
    pub max: Option<u32>,
    /// If the body is a single character class σ (the `σ{m,n}` shape that the
    /// hardware bit-vector module supports directly, §4.1), that class.
    pub single_class_body: Option<ByteClass>,
    /// Number of AST leaves (predicate occurrences) in the body.
    pub body_leaves: usize,
    /// Nesting depth: number of enclosing `Repeat` nodes.
    pub depth: usize,
}

impl Regex {
    /// The Σ predicate (`.` with `dot_matches_newline`).
    pub fn any() -> Regex {
        Regex::Class(ByteClass::ANY)
    }

    /// A single-byte literal.
    pub fn byte(b: u8) -> Regex {
        Regex::Class(ByteClass::singleton(b))
    }

    /// A character class atom.
    ///
    /// # Panics
    ///
    /// Panics if the class is empty; use [`Regex::Void`] for ∅.
    pub fn class(c: ByteClass) -> Regex {
        assert!(!c.is_empty(), "empty class atom; use Regex::Void");
        Regex::Class(c)
    }

    /// The literal string `s` (concatenation of its bytes).
    pub fn literal(s: &[u8]) -> Regex {
        match s.len() {
            0 => Regex::Empty,
            1 => Regex::byte(s[0]),
            _ => Regex::Concat(s.iter().map(|&b| Regex::byte(b)).collect()),
        }
    }

    /// Concatenation; flattens nested concatenations and drops ε factors.
    pub fn concat(parts: Vec<Regex>) -> Regex {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Concat(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        if out.iter().any(|p| matches!(p, Regex::Void)) {
            return Regex::Void;
        }
        match out.len() {
            0 => Regex::Empty,
            1 => out.pop().expect("len checked"),
            _ => Regex::Concat(out),
        }
    }

    /// Alternation; flattens nested alternations and drops ∅ arms.
    pub fn alt(parts: Vec<Regex>) -> Regex {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Void => {}
                Regex::Alt(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Void,
            1 => out.pop().expect("len checked"),
            _ => Regex::Alt(out),
        }
    }

    /// Kleene star r*.
    pub fn star(inner: Regex) -> Regex {
        match inner {
            Regex::Empty | Regex::Void => Regex::Empty,
            Regex::Star(i) => Regex::Star(i),
            other => Regex::Star(Box::new(other)),
        }
    }

    /// r? ≡ r + ε.
    pub fn opt(inner: Regex) -> Regex {
        match inner {
            Regex::Empty => Regex::Empty,
            Regex::Void => Regex::Empty,
            other if other.nullable() => other,
            other => Regex::Alt(vec![other, Regex::Empty]),
        }
    }

    /// r+, represented natively as `r{1,}` — plain iteration, *not* a
    /// counting occurrence (no counter is allocated for it; see
    /// [`Regex::repeats`]).
    pub fn plus(inner: Regex) -> Regex {
        match inner {
            Regex::Empty | Regex::Void => inner,
            other => Regex::Repeat {
                inner: Box::new(other),
                min: 1,
                max: None,
            },
        }
    }

    /// Whether a `{min,max}` pair is *plain iteration* (`{0,}` ≡ `*`,
    /// `{1,}` ≡ `+`) rather than a counting occurrence. Plain iteration
    /// needs no counter and is excluded from [`Regex::repeats`] and μ.
    pub fn is_plain_iteration(min: u32, max: Option<u32>) -> bool {
        max.is_none() && min <= 1
    }

    /// Bounded repetition r{min,max} (`max = None` for `{min,}`).
    ///
    /// # Panics
    ///
    /// Panics if `max < min`.
    pub fn repeat(inner: Regex, min: u32, max: Option<u32>) -> Regex {
        if let Some(n) = max {
            assert!(
                min <= n,
                "repetition bounds must satisfy m <= n, got {{{min},{n}}}"
            );
        }
        Regex::Repeat {
            inner: Box::new(inner),
            min,
            max,
        }
    }

    /// Whether ε ∈ ⟦r⟧.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Void => false,
            Regex::Class(_) => false,
            Regex::Concat(parts) => parts.iter().all(Regex::nullable),
            Regex::Alt(parts) => parts.iter().any(Regex::nullable),
            Regex::Star(_) => true,
            Regex::Repeat { inner, min, .. } => *min == 0 || inner.nullable(),
        }
    }

    /// Whether ⟦r⟧ = ∅.
    pub fn is_void(&self) -> bool {
        match self {
            Regex::Void => true,
            Regex::Empty | Regex::Class(_) | Regex::Star(_) => false,
            Regex::Concat(parts) => parts.iter().any(Regex::is_void),
            Regex::Alt(parts) => parts.iter().all(Regex::is_void),
            Regex::Repeat { inner, min, .. } => *min > 0 && inner.is_void(),
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Void | Regex::Class(_) => 1,
            Regex::Concat(parts) | Regex::Alt(parts) => {
                1 + parts.iter().map(Regex::size).sum::<usize>()
            }
            Regex::Star(inner) => 1 + inner.size(),
            Regex::Repeat { inner, .. } => 1 + inner.size(),
        }
    }

    /// Number of predicate leaves (Glushkov positions before unfolding).
    pub fn leaves(&self) -> usize {
        match self {
            Regex::Empty | Regex::Void => 0,
            Regex::Class(_) => 1,
            Regex::Concat(parts) | Regex::Alt(parts) => {
                parts.iter().map(Regex::leaves).sum::<usize>()
            }
            Regex::Star(inner) => inner.leaves(),
            Regex::Repeat { inner, .. } => inner.leaves(),
        }
    }

    /// Whether the regex contains at least one occurrence of *counting*
    /// (`{m,n}` or `{m,}` with m ≥ 2); plain `*`/`+` iteration is excluded.
    pub fn has_counting(&self) -> bool {
        match self {
            Regex::Empty | Regex::Void | Regex::Class(_) => false,
            Regex::Concat(parts) | Regex::Alt(parts) => parts.iter().any(Regex::has_counting),
            Regex::Star(inner) => inner.has_counting(),
            Regex::Repeat { inner, min, max } => {
                !Self::is_plain_iteration(*min, *max) || inner.has_counting()
            }
        }
    }

    /// μ(r): the maximum repetition upper bound over all occurrences of
    /// `{m,n}` (§3.3, "measure of complexity"). Unbounded occurrences
    /// contribute their lower bound. 0 when there is no counting.
    pub fn mu(&self) -> u32 {
        match self {
            Regex::Empty | Regex::Void | Regex::Class(_) => 0,
            Regex::Concat(parts) | Regex::Alt(parts) => {
                parts.iter().map(Regex::mu).max().unwrap_or(0)
            }
            Regex::Star(inner) => inner.mu(),
            Regex::Repeat { inner, min, max } => {
                if Self::is_plain_iteration(*min, *max) {
                    inner.mu()
                } else {
                    max.unwrap_or(*min).max(inner.mu())
                }
            }
        }
    }

    /// Enumerates all *counting* occurrences in preorder (plain `*`/`+`
    /// iteration excluded).
    pub fn repeats(&self) -> Vec<RepeatInfo> {
        let mut out = Vec::new();
        fn walk(r: &Regex, depth: usize, out: &mut Vec<RepeatInfo>) {
            match r {
                Regex::Empty | Regex::Void | Regex::Class(_) => {}
                Regex::Concat(parts) | Regex::Alt(parts) => {
                    for p in parts {
                        walk(p, depth, out);
                    }
                }
                Regex::Star(inner) => walk(inner, depth, out),
                Regex::Repeat { inner, min, max } => {
                    if Regex::is_plain_iteration(*min, *max) {
                        walk(inner, depth, out);
                    } else {
                        out.push(RepeatInfo {
                            id: RepeatId(out.len()),
                            min: *min,
                            max: *max,
                            single_class_body: match inner.as_ref() {
                                Regex::Class(c) => Some(*c),
                                _ => None,
                            },
                            body_leaves: inner.leaves(),
                            depth,
                        });
                        walk(inner, depth + 1, out);
                    }
                }
            }
        }
        walk(self, 0, &mut out);
        out
    }

    /// Rewrites counting occurrences in place. `f` is called for every
    /// counting occurrence (preorder, same numbering as [`Regex::repeats`])
    /// and decides whether to keep it or relax it to `body*` — the
    /// over-approximation of §3.2 of the paper. Nested occurrences inside a
    /// relaxed body keep their numbering and are still visited.
    pub fn rewrite_repeats(&self, f: &mut impl FnMut(RepeatId) -> RepeatRewrite) -> Regex {
        fn walk(
            r: &Regex,
            next: &mut usize,
            f: &mut impl FnMut(RepeatId) -> RepeatRewrite,
        ) -> Regex {
            match r {
                Regex::Empty | Regex::Void | Regex::Class(_) => r.clone(),
                Regex::Concat(parts) => {
                    Regex::concat(parts.iter().map(|p| walk(p, next, f)).collect())
                }
                Regex::Alt(parts) => Regex::alt(parts.iter().map(|p| walk(p, next, f)).collect()),
                Regex::Star(inner) => Regex::star(walk(inner, next, f)),
                Regex::Repeat { inner, min, max } => {
                    if Regex::is_plain_iteration(*min, *max) {
                        return Regex::Repeat {
                            inner: Box::new(walk(inner, next, f)),
                            min: *min,
                            max: *max,
                        };
                    }
                    let id = RepeatId(*next);
                    *next += 1;
                    let body = walk(inner, next, f);
                    match f(id) {
                        RepeatRewrite::Keep => Regex::Repeat {
                            inner: Box::new(body),
                            min: *min,
                            max: *max,
                        },
                        // r{m,n} ⊆ r* — strictly more behaviors, per §3.2.
                        RepeatRewrite::Star => Regex::star(body),
                    }
                }
            }
        }
        let mut next = 0;
        walk(self, &mut next, f)
    }

    fn precedence(&self) -> u8 {
        match self {
            // Alt[r, ε] prints as `r?`, which binds like a postfix operator.
            Regex::Alt(parts) if parts.len() == 2 && parts[1] == Regex::Empty => 2,
            Regex::Alt(_) => 0,
            Regex::Concat(_) => 1,
            Regex::Star(_) | Regex::Repeat { .. } => 2,
            Regex::Empty | Regex::Void | Regex::Class(_) => 3,
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, min_prec: u8) -> fmt::Result {
        let paren = self.precedence() < min_prec;
        if paren {
            write!(f, "(")?;
        }
        match self {
            Regex::Empty => write!(f, "()")?,
            Regex::Void => write!(f, "[]")?,
            Regex::Class(c) => write!(f, "{c}")?,
            Regex::Concat(parts) => {
                for p in parts {
                    p.fmt_prec(f, 2)?;
                }
            }
            Regex::Alt(parts) => {
                // r? prints as `r?` when it is literally Alt[r, ε].
                if parts.len() == 2 && parts[1] == Regex::Empty {
                    parts[0].fmt_prec(f, 3)?;
                    write!(f, "?")?;
                } else {
                    for (i, p) in parts.iter().enumerate() {
                        if i > 0 {
                            write!(f, "|")?;
                        }
                        p.fmt_prec(f, 1)?;
                    }
                }
            }
            Regex::Star(inner) => {
                inner.fmt_prec(f, 3)?;
                write!(f, "*")?;
            }
            Regex::Repeat { inner, min, max } => {
                inner.fmt_prec(f, 3)?;
                match (min, max) {
                    (0, None) => write!(f, "*")?,
                    (1, None) => write!(f, "+")?,
                    (_, None) => write!(f, "{{{min},}}")?,
                    (_, Some(n)) if n == min => write!(f, "{{{min}}}")?,
                    (_, Some(n)) => write!(f, "{{{min},{n}}}")?,
                }
            }
        }
        if paren {
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Prints in POSIX-style concrete syntax, reparseable by [`crate::parse`].
impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

impl fmt::Debug for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Regex({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Regex {
        Regex::byte(b'a')
    }
    fn b() -> Regex {
        Regex::byte(b'b')
    }

    #[test]
    fn constructors_flatten() {
        let c = Regex::concat(vec![a(), Regex::concat(vec![b(), a()]), Regex::Empty]);
        assert_eq!(c.to_string(), "aba");
        let al = Regex::alt(vec![a(), Regex::alt(vec![b()]), Regex::Void]);
        assert_eq!(al.to_string(), "a|b");
        assert_eq!(Regex::concat(vec![]), Regex::Empty);
        assert_eq!(Regex::alt(vec![]), Regex::Void);
        assert_eq!(Regex::concat(vec![a(), Regex::Void]), Regex::Void);
    }

    #[test]
    fn star_normalizes() {
        assert_eq!(Regex::star(Regex::Empty), Regex::Empty);
        assert_eq!(Regex::star(Regex::Void), Regex::Empty);
        assert_eq!(Regex::star(Regex::star(a())).to_string(), "a*");
    }

    #[test]
    fn nullable() {
        assert!(Regex::Empty.nullable());
        assert!(!Regex::Void.nullable());
        assert!(!a().nullable());
        assert!(Regex::star(a()).nullable());
        assert!(Regex::opt(a()).nullable());
        assert!(!Regex::plus(a()).nullable());
        assert!(Regex::repeat(a(), 0, Some(3)).nullable());
        assert!(!Regex::repeat(a(), 1, Some(3)).nullable());
        assert!(Regex::repeat(Regex::opt(a()), 5, Some(5)).nullable());
    }

    #[test]
    fn is_void() {
        assert!(Regex::Void.is_void());
        assert!(Regex::concat(vec![a(), Regex::Void]).is_void());
        assert!(!Regex::alt(vec![a(), Regex::Void]).is_void());
        assert!(Regex::Repeat {
            inner: Box::new(Regex::Void),
            min: 2,
            max: Some(3)
        }
        .is_void());
        assert!(!Regex::Repeat {
            inner: Box::new(Regex::Void),
            min: 0,
            max: Some(3)
        }
        .is_void());
    }

    #[test]
    fn mu_and_counting() {
        let r = Regex::concat(vec![
            Regex::repeat(a(), 1, Some(5)),
            b(),
            Regex::repeat(b(), 4, Some(4)),
        ]);
        assert_eq!(r.mu(), 5);
        assert!(r.has_counting());
        assert!(!Regex::star(a()).has_counting());
        assert_eq!(Regex::star(a()).mu(), 0);
        // Nested: mu is the max across nesting levels.
        let nested = Regex::repeat(Regex::repeat(a(), 2, Some(9)), 1, Some(3));
        assert_eq!(nested.mu(), 9);
    }

    #[test]
    fn repeats_enumeration() {
        // (a{2,3} b){4} with a nested occurrence; preorder: outer {4} first.
        let r = Regex::repeat(
            Regex::concat(vec![Regex::repeat(a(), 2, Some(3)), b()]),
            4,
            Some(4),
        );
        let reps = r.repeats();
        assert_eq!(reps.len(), 2);
        assert_eq!(reps[0].id, RepeatId(0));
        assert_eq!((reps[0].min, reps[0].max), (4, Some(4)));
        assert_eq!(reps[0].depth, 0);
        assert_eq!((reps[1].min, reps[1].max), (2, Some(3)));
        assert_eq!(reps[1].depth, 1);
        assert_eq!(reps[1].single_class_body, Some(ByteClass::singleton(b'a')));
        assert_eq!(reps[0].single_class_body, None);
        assert_eq!(reps[0].body_leaves, 2);
    }

    #[test]
    fn rewrite_repeats_relaxes_by_id() {
        let r = Regex::concat(vec![
            Regex::repeat(a(), 2, Some(3)),
            Regex::repeat(b(), 1, Some(9)),
        ]);
        // Relax occurrence #1 (the b{1,9}) to b*.
        let out = r.rewrite_repeats(&mut |id| {
            if id == RepeatId(1) {
                RepeatRewrite::Star
            } else {
                RepeatRewrite::Keep
            }
        });
        assert_eq!(out.to_string(), "a{2,3}b*");
    }

    #[test]
    fn rewrite_repeats_keeps_nested_numbering() {
        // ((a{2,3}){4,5}): outer is #0, inner is #1.
        let r = Regex::repeat(Regex::repeat(a(), 2, Some(3)), 4, Some(5));
        // Relax only the outer; the inner keeps counting.
        let out = r.rewrite_repeats(&mut |id| {
            if id == RepeatId(0) {
                RepeatRewrite::Star
            } else {
                RepeatRewrite::Keep
            }
        });
        assert_eq!(out.to_string(), "(a{2,3})*");
        // Relax only the inner.
        let out = r.rewrite_repeats(&mut |id| {
            if id == RepeatId(1) {
                RepeatRewrite::Star
            } else {
                RepeatRewrite::Keep
            }
        });
        assert_eq!(out.to_string(), "(a*){4,5}");
    }

    #[test]
    fn plus_is_not_counting() {
        let p = Regex::plus(a());
        assert!(!p.has_counting());
        assert_eq!(p.mu(), 0);
        assert!(p.repeats().is_empty());
        // {2,} is counting though.
        let r = Regex::repeat(a(), 2, None);
        assert!(r.has_counting());
        assert_eq!(r.mu(), 2);
        assert_eq!(r.repeats().len(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Regex::repeat(a(), 3, Some(3)).to_string(), "a{3}");
        assert_eq!(Regex::repeat(a(), 3, None).to_string(), "a{3,}");
        assert_eq!(Regex::opt(a()).to_string(), "a?");
        assert_eq!(Regex::plus(a()).to_string(), "a+");
        let alt_in_concat = Regex::concat(vec![Regex::alt(vec![a(), b()]), a()]);
        assert_eq!(alt_in_concat.to_string(), "(a|b)a");
        let star_of_alt = Regex::star(Regex::alt(vec![a(), b()]));
        assert_eq!(star_of_alt.to_string(), "(a|b)*");
        let rep_of_concat = Regex::repeat(Regex::literal(b"ab"), 2, Some(4));
        assert_eq!(rep_of_concat.to_string(), "(ab){2,4}");
    }

    #[test]
    fn sizes() {
        let r = Regex::concat(vec![a(), b(), Regex::star(a())]);
        assert_eq!(r.leaves(), 3);
        assert_eq!(r.size(), 5);
        assert_eq!(Regex::Empty.leaves(), 0);
    }
}

impl Regex {
    /// The reversal rᴿ: ⟦rᴿ⟧ = { reverse(w) | w ∈ ⟦r⟧ }. Counting bounds
    /// are preserved (reversal distributes through repetition). Used to
    /// locate match *starts* by running the reversed automaton backward
    /// from a match end.
    pub fn reverse(&self) -> Regex {
        match self {
            Regex::Empty | Regex::Void | Regex::Class(_) => self.clone(),
            Regex::Concat(parts) => Regex::Concat(parts.iter().rev().map(Regex::reverse).collect()),
            Regex::Alt(parts) => Regex::Alt(parts.iter().map(Regex::reverse).collect()),
            Regex::Star(inner) => Regex::Star(Box::new(inner.reverse())),
            Regex::Repeat { inner, min, max } => Regex::Repeat {
                inner: Box::new(inner.reverse()),
                min: *min,
                max: *max,
            },
        }
    }
}

#[cfg(test)]
mod reverse_tests {
    use super::*;

    #[test]
    fn reversal_shapes() {
        let r = Regex::concat(vec![
            Regex::byte(b'a'),
            Regex::repeat(Regex::literal(b"bc"), 2, Some(4)),
            Regex::byte(b'd'),
        ]);
        assert_eq!(r.reverse().to_string(), "d(cb){2,4}a");
        assert_eq!(r.reverse().reverse(), r);
    }

    #[test]
    fn reversal_preserves_language_reversed() {
        let r = crate::parse("a(b|cd){1,2}e").unwrap().regex;
        let rev = r.reverse();
        for w in ["abe", "acde", "abcde", "acdbe"] {
            let mut back: Vec<u8> = w.bytes().collect();
            back.reverse();
            assert_eq!(
                crate::naive::matches(&r, w.as_bytes()),
                crate::naive::matches(&rev, &back),
                "{w}"
            );
        }
    }
}
