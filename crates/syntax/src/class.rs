//! Predicates over the byte alphabet Σ = {0, …, 255}.
//!
//! The paper's automata are *symbolic*: transitions carry predicates σ ⊆ Σ
//! (character classes) rather than single symbols. Both the static analysis
//! (which intersects predicates when building product transition systems,
//! §3.1 of the paper) and the hardware mapper (which stores one 256-bit
//! membership column per STE) need a cheap set algebra over Σ, so a class is
//! represented as a 256-bit set packed into four `u64` words.

use std::fmt;

/// A set of bytes: a predicate σ ⊆ Σ over the 8-bit alphabet.
///
/// `ByteClass` is the "character class" of POSIX regex syntax and the
/// predicate labeling NCA transitions. It is a value type (4 × `u64`) with
/// O(1) boolean-algebra operations.
///
/// # Examples
///
/// ```
/// use recama_syntax::ByteClass;
///
/// let digits = ByteClass::range(b'0', b'9');
/// assert!(digits.contains(b'7'));
/// assert_eq!(digits.len(), 10);
///
/// let not_digits = digits.complement();
/// assert!(!not_digits.contains(b'7'));
/// assert!(digits.intersect(&not_digits).is_empty());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ByteClass {
    bits: [u64; 4],
}

impl ByteClass {
    /// The empty predicate ∅ (matches no byte).
    pub const EMPTY: ByteClass = ByteClass { bits: [0; 4] };

    /// The full alphabet Σ (matches every byte).
    pub const ANY: ByteClass = ByteClass {
        bits: [u64::MAX; 4],
    };

    /// Creates the empty class.
    ///
    /// ```
    /// # use recama_syntax::ByteClass;
    /// assert!(ByteClass::new().is_empty());
    /// ```
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// The singleton class {b}.
    pub fn singleton(b: u8) -> Self {
        let mut c = Self::EMPTY;
        c.insert(b);
        c
    }

    /// The inclusive range `[lo-hi]`. An inverted range yields the empty class.
    pub fn range(lo: u8, hi: u8) -> Self {
        let mut c = Self::EMPTY;
        if lo <= hi {
            for b in lo..=hi {
                c.insert(b);
            }
        }
        c
    }

    /// Builds a class containing exactly the given bytes.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut c = Self::EMPTY;
        for &b in bytes {
            c.insert(b);
        }
        c
    }

    /// POSIX `\d`.
    pub fn digit() -> Self {
        Self::range(b'0', b'9')
    }

    /// POSIX `\w` (ASCII word characters).
    pub fn word() -> Self {
        Self::range(b'a', b'z')
            .union(&Self::range(b'A', b'Z'))
            .union(&Self::digit())
            .union(&Self::singleton(b'_'))
    }

    /// POSIX `\s` (ASCII whitespace).
    pub fn space() -> Self {
        Self::from_bytes(&[b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c])
    }

    /// Adds a byte to the class.
    pub fn insert(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Removes a byte from the class.
    pub fn remove(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] &= !(1u64 << (b & 63));
    }

    /// Tests membership of a byte.
    pub fn contains(&self, b: u8) -> bool {
        self.bits[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }

    /// σ ∪ τ.
    pub fn union(&self, other: &ByteClass) -> ByteClass {
        let mut bits = self.bits;
        for (w, o) in bits.iter_mut().zip(other.bits.iter()) {
            *w |= o;
        }
        ByteClass { bits }
    }

    /// σ ∩ τ — the operation the product-system construction of the static
    /// analysis performs on every edge pair (§3.1).
    pub fn intersect(&self, other: &ByteClass) -> ByteClass {
        let mut bits = self.bits;
        for (w, o) in bits.iter_mut().zip(other.bits.iter()) {
            *w &= o;
        }
        ByteClass { bits }
    }

    /// σ̄ = Σ ∖ σ.
    pub fn complement(&self) -> ByteClass {
        let mut bits = self.bits;
        for w in bits.iter_mut() {
            *w = !*w;
        }
        ByteClass { bits }
    }

    /// σ ∖ τ.
    pub fn minus(&self, other: &ByteClass) -> ByteClass {
        self.intersect(&other.complement())
    }

    /// Whether the class matches no byte.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Whether the class matches every byte.
    pub fn is_full(&self) -> bool {
        self.bits.iter().all(|&w| w == u64::MAX)
    }

    /// Number of bytes in the class.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &ByteClass) -> bool {
        self.intersect(other) == *self
    }

    /// The smallest byte in the class, if any. Used by the witness
    /// reconstruction of the static analysis to pick a concrete symbol from
    /// a predicate intersection.
    pub fn min_byte(&self) -> Option<u8> {
        for (i, &w) in self.bits.iter().enumerate() {
            if w != 0 {
                return Some((i as u32 * 64 + w.trailing_zeros()) as u8);
            }
        }
        None
    }

    /// Iterates over the member bytes in ascending order.
    ///
    /// ```
    /// # use recama_syntax::ByteClass;
    /// let c = ByteClass::from_bytes(b"cab");
    /// let v: Vec<u8> = c.iter().collect();
    /// assert_eq!(v, b"abc");
    /// ```
    pub fn iter(&self) -> Iter {
        Iter {
            class: *self,
            next: 0,
            done: false,
        }
    }

    /// Adds the case-folded counterparts of all ASCII letters in the class
    /// (used for `(?i)` patterns).
    pub fn case_fold(&self) -> ByteClass {
        let mut out = *self;
        for b in self.iter() {
            if b.is_ascii_lowercase() {
                out.insert(b.to_ascii_uppercase());
            } else if b.is_ascii_uppercase() {
                out.insert(b.to_ascii_lowercase());
            }
        }
        out
    }

    /// Projects the class onto (high-nibble set, low-nibble set) and reports
    /// whether the class is exactly the product of the two — the condition
    /// under which the CAMA-style two-nibble CAM encoding stores the class in
    /// a single column (see `recama-hw`).
    pub fn nibble_projections(&self) -> (u16, u16, bool) {
        let mut hi: u16 = 0;
        let mut lo: u16 = 0;
        for b in self.iter() {
            hi |= 1 << (b >> 4);
            lo |= 1 << (b & 0xf);
        }
        let product_size = (hi.count_ones() as usize) * (lo.count_ones() as usize);
        (hi, lo, product_size == self.len())
    }

    /// Raw 256-bit membership words (low byte first).
    pub fn words(&self) -> [u64; 4] {
        self.bits
    }
}

impl FromIterator<u8> for ByteClass {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        let mut c = ByteClass::new();
        for b in iter {
            c.insert(b);
        }
        c
    }
}

impl Extend<u8> for ByteClass {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        for b in iter {
            self.insert(b);
        }
    }
}

impl From<u8> for ByteClass {
    fn from(b: u8) -> Self {
        ByteClass::singleton(b)
    }
}

/// Iterator over the bytes of a [`ByteClass`] in ascending order.
#[derive(Debug, Clone)]
pub struct Iter {
    class: ByteClass,
    next: u8,
    done: bool,
}

impl Iterator for Iter {
    type Item = u8;

    fn next(&mut self) -> Option<u8> {
        if self.done {
            return None;
        }
        let mut b = self.next;
        loop {
            if self.class.contains(b) {
                if b == u8::MAX {
                    self.done = true;
                } else {
                    self.next = b + 1;
                }
                return Some(b);
            }
            if b == u8::MAX {
                self.done = true;
                return None;
            }
            b += 1;
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, b: u8) -> fmt::Result {
    match b {
        b'\n' => write!(f, "\\n"),
        b'\r' => write!(f, "\\r"),
        b'\t' => write!(f, "\\t"),
        b'-' | b']' | b'[' | b'^' | b'\\' => write!(f, "\\{}", b as char),
        0x20..=0x7e => write!(f, "{}", b as char),
        _ => write!(f, "\\x{b:02x}"),
    }
}

/// Renders the class in POSIX bracket notation, preferring the shorter of
/// the positive and the negated form, e.g. `[^a]` instead of a 255-byte set.
impl fmt::Display for ByteClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_full() {
            return write!(f, ".");
        }
        if self.is_empty() {
            return write!(f, "[]");
        }
        if *self == ByteClass::digit() {
            return write!(f, "\\d");
        }
        if *self == ByteClass::word() {
            return write!(f, "\\w");
        }
        if *self == ByteClass::space() {
            return write!(f, "\\s");
        }
        if self.len() == 1 {
            let b = self.min_byte().expect("nonempty");
            return match b {
                b'\n' => write!(f, "\\n"),
                b'\r' => write!(f, "\\r"),
                b'\t' => write!(f, "\\t"),
                b'.' | b'*' | b'+' | b'?' | b'(' | b')' | b'[' | b']' | b'{' | b'}' | b'|'
                | b'^' | b'$' | b'\\' => write!(f, "\\{}", b as char),
                0x20..=0x7e => write!(f, "{}", b as char),
                _ => write!(f, "\\x{b:02x}"),
            };
        }
        let (body, negated) = if self.len() > 128 {
            (self.complement(), true)
        } else {
            (*self, false)
        };
        write!(f, "[")?;
        if negated {
            write!(f, "^")?;
        }
        // Emit maximal runs as ranges.
        let bytes: Vec<u8> = body.iter().collect();
        let mut i = 0;
        while i < bytes.len() {
            let start = bytes[i];
            let mut j = i;
            while j + 1 < bytes.len() && bytes[j + 1] == bytes[j] + 1 {
                j += 1;
            }
            let end = bytes[j];
            if end - start >= 2 {
                write_escaped(f, start)?;
                write!(f, "-")?;
                write_escaped(f, end)?;
            } else {
                for &b in &bytes[i..=j] {
                    write_escaped(f, b)?;
                }
            }
            i = j + 1;
        }
        write!(f, "]")
    }
}

impl fmt::Debug for ByteClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteClass({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        assert!(ByteClass::EMPTY.is_empty());
        assert!(ByteClass::ANY.is_full());
        assert_eq!(ByteClass::ANY.len(), 256);
        assert_eq!(ByteClass::EMPTY.len(), 0);
        assert_eq!(ByteClass::new(), ByteClass::default());
    }

    #[test]
    fn insert_remove_contains() {
        let mut c = ByteClass::new();
        c.insert(0);
        c.insert(63);
        c.insert(64);
        c.insert(255);
        assert!(c.contains(0) && c.contains(63) && c.contains(64) && c.contains(255));
        assert!(!c.contains(1));
        c.remove(63);
        assert!(!c.contains(63));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn range_semantics() {
        let c = ByteClass::range(b'a', b'f');
        assert_eq!(c.len(), 6);
        assert!(c.contains(b'c'));
        assert!(!c.contains(b'g'));
        assert!(ByteClass::range(b'z', b'a').is_empty());
        assert_eq!(ByteClass::range(b'q', b'q'), ByteClass::singleton(b'q'));
    }

    #[test]
    fn boolean_algebra() {
        let a = ByteClass::range(0, 100);
        let b = ByteClass::range(50, 150);
        assert_eq!(a.intersect(&b), ByteClass::range(50, 100));
        assert_eq!(a.union(&b), ByteClass::range(0, 150));
        assert_eq!(a.minus(&b), ByteClass::range(0, 49));
        assert_eq!(a.complement().complement(), a);
        assert_eq!(a.union(&a.complement()), ByteClass::ANY);
        assert!(a.intersect(&a.complement()).is_empty());
    }

    #[test]
    fn subset() {
        let small = ByteClass::range(b'a', b'c');
        let big = ByteClass::range(b'a', b'z');
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(small.is_subset(&small));
        assert!(ByteClass::EMPTY.is_subset(&small));
    }

    #[test]
    fn min_byte_and_iter() {
        assert_eq!(ByteClass::EMPTY.min_byte(), None);
        assert_eq!(ByteClass::singleton(200).min_byte(), Some(200));
        let c = ByteClass::from_bytes(&[5, 3, 200]);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![3, 5, 200]);
        assert_eq!(ByteClass::ANY.iter().count(), 256);
        assert_eq!(
            ByteClass::singleton(255).iter().collect::<Vec<_>>(),
            vec![255]
        );
    }

    #[test]
    fn predefined_classes() {
        assert_eq!(ByteClass::digit().len(), 10);
        assert_eq!(ByteClass::word().len(), 63);
        assert_eq!(ByteClass::space().len(), 6);
        assert!(ByteClass::word().contains(b'_'));
    }

    #[test]
    fn case_fold() {
        let c = ByteClass::from_bytes(b"aZ0");
        let f = c.case_fold();
        assert!(f.contains(b'A') && f.contains(b'a'));
        assert!(f.contains(b'z') && f.contains(b'Z'));
        assert!(f.contains(b'0'));
        assert_eq!(f.len(), 5);
    }

    #[test]
    fn nibble_projection_product() {
        // {0x12} is trivially a product set.
        let (hi, lo, ok) = ByteClass::singleton(0x12).nibble_projections();
        assert_eq!((hi, lo, ok), (1 << 1, 1 << 2, true));
        // [0x10-0x1f] = {1} × all-lows: a product set.
        let (_, _, ok) = ByteClass::range(0x10, 0x1f).nibble_projections();
        assert!(ok);
        // {0x12, 0x21} is not a product set (product would include 0x11, 0x22).
        let (_, _, ok) = ByteClass::from_bytes(&[0x12, 0x21]).nibble_projections();
        assert!(!ok);
        // Σ is a product set.
        let (hi, lo, ok) = ByteClass::ANY.nibble_projections();
        assert_eq!((hi, lo, ok), (0xffff, 0xffff, true));
    }

    #[test]
    fn display_roundtrip_feel() {
        assert_eq!(ByteClass::ANY.to_string(), ".");
        assert_eq!(ByteClass::singleton(b'a').to_string(), "a");
        assert_eq!(ByteClass::singleton(b'+').to_string(), "\\+");
        assert_eq!(ByteClass::digit().to_string(), "\\d");
        assert_eq!(ByteClass::range(b'a', b'c').to_string(), "[a-c]");
        let almost_all = ByteClass::singleton(b'a').complement();
        assert_eq!(almost_all.to_string(), "[^a]");
    }

    #[test]
    fn from_iterator_and_extend() {
        let c: ByteClass = (b'a'..=b'e').collect();
        assert_eq!(c, ByteClass::range(b'a', b'e'));
        let mut d = ByteClass::new();
        d.extend(b"xyz".iter().copied());
        assert_eq!(d, ByteClass::from_bytes(b"xyz"));
    }
}
