//! # recama-syntax
//!
//! Regular expressions with counting (bounded repetition `r{m,n}`) over the
//! byte alphabet — the front end of the `recama` reproduction of
//! *Software-Hardware Codesign for Efficient In-Memory Regular Pattern
//! Matching* (PLDI 2022).
//!
//! The crate provides:
//!
//! * [`ByteClass`] — 256-bit predicates σ ⊆ Σ with the boolean algebra the
//!   static analysis and the CAM encoder need;
//! * [`Regex`] — the counting-regex AST of §2 of the paper;
//! * [`parse`] / [`parse_with`] — a POSIX/PCRE-style parser that classifies
//!   out-of-fragment constructs (backreferences, lookaround, …) as
//!   [`ErrorKind::Unsupported`], which is what Table 1's "# supported"
//!   column counts;
//! * [`simplify`] — the compiler front-end rewrites (§4.2 step 1);
//! * [`normalize_for_nca`] — establishes the Glushkov-with-counters
//!   precondition (non-nullable repetition bodies);
//! * [`naive`] — a slow membership oracle used as ground truth in tests.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), recama_syntax::ParseError> {
//! use recama_syntax::{parse, simplify};
//!
//! let parsed = parse(r".*[ab][^a]{8}")?;
//! let regex = simplify(&parsed.regex);
//! assert!(regex.has_counting());
//! assert_eq!(regex.mu(), 8); // μ(r): max repetition upper bound
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod alphabet;
mod ast;
mod class;
pub mod naive;
mod parser;
mod simplify;

pub use alphabet::{ByteAlphabet, ByteClassSet};
pub use ast::{Regex, RepeatId, RepeatInfo, RepeatRewrite};
pub use class::{ByteClass, Iter as ByteClassIter};
pub use parser::{
    parse, parse_with, ErrorKind, ParseError, ParseOptions, Parsed, Unsupported, MAX_REPEAT_BOUND,
};
pub use simplify::{nonnull, normalize_for_nca, simplify};
