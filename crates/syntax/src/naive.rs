//! A naive membership oracle, used throughout the workspace as the ground
//! truth in tests: `matches(r, w)` decides `w ∈ ⟦r⟧` by memoized recursion
//! over substrings. Exponential state in the worst case — intended for short
//! inputs in tests only, never on the hot path.

use crate::ast::Regex;
use std::collections::HashMap;

/// Decides whether `input ∈ ⟦regex⟧` (whole-string membership, the ⟦·⟧
/// semantics of §2 of the paper).
///
/// Complexity is polynomial in `input.len()` for fixed regex size but can be
/// exponential in nesting of counting; use only as a test oracle.
///
/// # Examples
///
/// ```
/// use recama_syntax::{naive, parse};
/// let r = parse("a(bc){1,3}d").unwrap().regex;
/// assert!(naive::matches(&r, b"abcbcd"));
/// assert!(!naive::matches(&r, b"ad"));
/// ```
pub fn matches(regex: &Regex, input: &[u8]) -> bool {
    let mut memo = Memo::default();
    matches_range(regex, input, 0, input.len(), &mut memo)
}

type Key = (usize, usize, usize); // (node address, lo, hi)
#[derive(Default)]
struct Memo(HashMap<Key, bool>);

fn key(r: &Regex, lo: usize, hi: usize) -> Key {
    (r as *const Regex as usize, lo, hi)
}

fn matches_range(r: &Regex, s: &[u8], lo: usize, hi: usize, memo: &mut Memo) -> bool {
    let k = key(r, lo, hi);
    if let Some(&v) = memo.0.get(&k) {
        return v;
    }
    // Seed with `false` to cut (harmless) cycles through identical ranges.
    memo.0.insert(k, false);
    let v = compute(r, s, lo, hi, memo);
    memo.0.insert(k, v);
    v
}

fn compute(r: &Regex, s: &[u8], lo: usize, hi: usize, memo: &mut Memo) -> bool {
    match r {
        Regex::Empty => lo == hi,
        Regex::Void => false,
        Regex::Class(c) => hi == lo + 1 && c.contains(s[lo]),
        Regex::Alt(parts) => parts.iter().any(|p| matches_range(p, s, lo, hi, memo)),
        Regex::Concat(parts) => concat_matches(parts, s, lo, hi, memo),
        Regex::Star(inner) => {
            if lo == hi {
                return true;
            }
            // First nonempty factor at some split, rest matches star again.
            (lo + 1..=hi).any(|mid| {
                matches_range(inner, s, lo, mid, memo) && matches_range(r, s, mid, hi, memo)
            })
        }
        Regex::Repeat { inner, min, max } => repeat_matches(inner, *min, *max, s, lo, hi, memo),
    }
}

fn concat_matches(parts: &[Regex], s: &[u8], lo: usize, hi: usize, memo: &mut Memo) -> bool {
    match parts {
        [] => lo == hi,
        [single] => matches_range(single, s, lo, hi, memo),
        [head, rest @ ..] => (lo..=hi).any(|mid| {
            matches_range(head, s, lo, mid, memo) && concat_matches(rest, s, mid, hi, memo)
        }),
    }
}

#[allow(clippy::needless_range_loop)] // i/j index two parallel reachability arrays
fn repeat_matches(
    inner: &Regex,
    min: u32,
    max: Option<u32>,
    s: &[u8],
    lo: usize,
    hi: usize,
    memo: &mut Memo,
) -> bool {
    // count(k) table over positions: reachable[i] = set of positions after
    // exactly k iterations. Positions ≤ input length, iterations capped by
    // max (or by input length + min for the unbounded case: more nonempty
    // iterations than bytes are impossible, and empty iterations keep the
    // position, so saturating the count at `min` is sound).
    let len = hi - lo;
    let cap = match max {
        Some(n) => n as usize,
        None => min as usize + len,
    };
    let mut reachable = vec![false; len + 1];
    reachable[0] = true; // 0 iterations: position lo
    if min == 0 && lo == hi {
        return true;
    }
    let acceptable_now = |reach: &[bool], iters: usize| -> bool {
        iters >= min as usize && max.is_none_or(|n| iters <= n as usize) && reach[len]
    };
    if acceptable_now(&reachable, 0) {
        return true;
    }
    let nullable = inner.nullable();
    for iters in 1..=cap {
        let mut next = vec![false; len + 1];
        let mut any = false;
        for i in 0..=len {
            if !reachable[i] {
                continue;
            }
            for j in i..=len {
                if j == i && !nullable {
                    continue;
                }
                if matches_range(inner, s, lo + i, lo + j, memo) {
                    next[j] = true;
                    any = true;
                }
            }
        }
        reachable = next;
        if acceptable_now(&reachable, iters) {
            return true;
        }
        if !any {
            return false;
        }
        // Unbounded case: once past `min`, any further iterations only need
        // nonempty progress, and reaching the end suffices.
        if max.is_none() && iters >= min as usize && reachable[len] {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn m(p: &str, s: &str) -> bool {
        matches(&parse(p).unwrap().regex, s.as_bytes())
    }

    #[test]
    fn basics() {
        assert!(m("abc", "abc"));
        assert!(!m("abc", "ab"));
        assert!(m("a|b", "b"));
        assert!(m("a*", ""));
        assert!(m("a*", "aaaa"));
        assert!(!m("a*", "ab"));
        assert!(m("(ab)*", "abab"));
        assert!(!m("(ab)*", "aba"));
    }

    #[test]
    fn counting() {
        assert!(m("a{3}", "aaa"));
        assert!(!m("a{3}", "aa"));
        assert!(!m("a{3}", "aaaa"));
        assert!(m("a{2,4}", "aa"));
        assert!(m("a{2,4}", "aaaa"));
        assert!(!m("a{2,4}", "a"));
        assert!(!m("a{2,4}", "aaaaa"));
        assert!(m("a{2,}", "aaaaaaa"));
        assert!(!m("a{2,}", "a"));
        assert!(m("(ab){2,3}", "ababab"));
        assert!(!m("(ab){2,3}", "ab"));
    }

    #[test]
    fn nullable_bodies() {
        assert!(m("(a?){3}", ""));
        assert!(m("(a?){3}", "aa"));
        assert!(m("(a?){3}", "aaa"));
        assert!(!m("(a?){3}", "aaaa"));
        assert!(m("(a*){2}", "aaaaa"));
    }

    #[test]
    fn nested_counting() {
        // (a{2}){3} = a{6}
        assert!(m("(a{2}){3}", "aaaaaa"));
        assert!(!m("(a{2}){3}", "aaaaa"));
        // ((ab){1,2}c){2}
        assert!(m("((ab){1,2}c){2}", "abcababc"));
        assert!(!m("((ab){1,2}c){2}", "abc"));
    }

    #[test]
    fn search_forms() {
        let p = parse("needle").unwrap();
        let stream = p.for_stream();
        assert!(matches(&stream, b"hay needle"));
        assert!(!matches(&stream, b"needle hay"));
        let search = p.for_search();
        assert!(matches(&search, b"hay needle hay"));
    }
}
