//! POSIX/PCRE-style concrete syntax for regexes with counting.
//!
//! The parser accepts the subset of PCRE used by the paper's rulesets
//! (Snort, Suricata, Protomata, SpamAssassin, ClamAV): literals, escapes,
//! character classes (including POSIX named classes), `.`, grouping,
//! alternation, `* + ?`, bounded repetition `{m}`, `{m,}`, `{m,n}`, edge
//! anchors `^`/`$`, and the inline flags `(?i)`/`(?s)`.
//!
//! Constructs that fall outside regular languages or outside the paper's
//! supported fragment (backreferences, lookaround, word boundaries, …)
//! produce [`ErrorKind::Unsupported`]; Table 1's "# supported" column counts
//! exactly the patterns that parse without this error.

use crate::ast::Regex;
use crate::class::ByteClass;
use std::fmt;

/// Maximum accepted repetition bound; larger bounds are rejected to keep the
/// analyses' token spaces within memory (the AP hardware similarly treats
/// huge bounds as unbounded [paper §5]).
pub const MAX_REPEAT_BOUND: u32 = 1 << 20;

/// What made a pattern unsupported (non-regular or out of fragment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unsupported {
    /// `\1`…`\9` — can describe non-regular languages.
    Backreference,
    /// `(?=…)`, `(?!…)`, `(?<=…)`, `(?<!…)`.
    Lookaround,
    /// `\b`, `\B` word boundaries.
    WordBoundary,
    /// `^`/`$` in a position other than the pattern edges, or `(?m)`.
    InnerAnchor,
    /// `(?>…)` atomic groups, `\K`, and other PCRE control escapes.
    OtherPcre,
}

impl fmt::Display for Unsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Unsupported::Backreference => "backreference",
            Unsupported::Lookaround => "lookaround assertion",
            Unsupported::WordBoundary => "word-boundary assertion",
            Unsupported::InnerAnchor => "non-edge anchor",
            Unsupported::OtherPcre => "unsupported PCRE construct",
        };
        f.write_str(s)
    }
}

/// The reason a pattern failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// Syntactically malformed pattern.
    Syntax(String),
    /// Well-formed PCRE that is outside the supported regular fragment.
    Unsupported(Unsupported),
    /// `{m,n}` with n < m.
    InvertedRepeatBounds {
        /// Lower bound m.
        min: u32,
        /// Upper bound n (< m).
        max: u32,
    },
    /// Repetition bound larger than [`MAX_REPEAT_BOUND`].
    RepeatBoundTooLarge(u64),
}

/// Parse error with byte offset into the pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset at which the error was detected.
    pub offset: usize,
    /// Classification of the failure.
    pub kind: ErrorKind,
}

impl ParseError {
    /// Whether the pattern is valid PCRE but outside the supported regular
    /// fragment (the paper's "unsupported operators" category).
    pub fn is_unsupported(&self) -> bool {
        matches!(self.kind, ErrorKind::Unsupported(_))
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ErrorKind::Syntax(msg) => write!(f, "syntax error at byte {}: {}", self.offset, msg),
            ErrorKind::Unsupported(u) => {
                write!(f, "unsupported construct at byte {}: {}", self.offset, u)
            }
            ErrorKind::InvertedRepeatBounds { min, max } => {
                write!(
                    f,
                    "inverted repetition bounds {{{min},{max}}} at byte {}",
                    self.offset
                )
            }
            ErrorKind::RepeatBoundTooLarge(n) => {
                write!(
                    f,
                    "repetition bound {n} at byte {} exceeds {}",
                    self.offset, MAX_REPEAT_BOUND
                )
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parser configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseOptions {
    /// Start in case-insensitive mode (as if the pattern began with `(?i)`).
    pub case_insensitive: bool,
    /// `.` matches every byte including `\n` (the paper equates `.*` with
    /// `Σ*`); when false, `.` is `[^\n]`.
    pub dot_matches_newline: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            case_insensitive: false,
            dot_matches_newline: true,
        }
    }
}

/// Result of parsing: the counting-regex AST plus edge-anchor information.
///
/// The AST itself never contains anchors; `^`/`$` at the pattern edges are
/// reported here so callers choose the match discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// The parsed expression.
    pub regex: Regex,
    /// Pattern began with `^`.
    pub anchored_start: bool,
    /// Pattern ended with `$`.
    pub anchored_end: bool,
}

impl Parsed {
    /// The streaming form `Σ*·r` used by automata processors: a report fires
    /// whenever a *prefix* of the input ends with a match. A leading `^`
    /// suppresses the implicit `Σ*`.
    pub fn for_stream(&self) -> Regex {
        if self.anchored_start {
            self.regex.clone()
        } else {
            Regex::concat(vec![Regex::star(Regex::any()), self.regex.clone()])
        }
    }

    /// The whole-input membership form `Σ*·r·Σ*` (unless anchored): the
    /// language of inputs that *contain* a match.
    pub fn for_search(&self) -> Regex {
        let mut parts = Vec::new();
        if !self.anchored_start {
            parts.push(Regex::star(Regex::any()));
        }
        parts.push(self.regex.clone());
        if !self.anchored_end {
            parts.push(Regex::star(Regex::any()));
        }
        Regex::concat(parts)
    }
}

/// Parses a pattern with default options.
///
/// # Errors
///
/// Returns [`ParseError`] for malformed patterns and for well-formed PCRE
/// outside the supported regular fragment (see [`ErrorKind`]).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), recama_syntax::ParseError> {
/// let p = recama_syntax::parse(r"a[bc]{3,5}d")?;
/// assert_eq!(p.regex.to_string(), "a[bc]{3,5}d");
/// assert!(!p.anchored_start);
/// # Ok(())
/// # }
/// ```
pub fn parse(pattern: &str) -> Result<Parsed, ParseError> {
    parse_with(pattern, ParseOptions::default())
}

/// Parses a pattern with explicit [`ParseOptions`].
///
/// # Errors
///
/// Same as [`parse`].
pub fn parse_with(pattern: &str, options: ParseOptions) -> Result<Parsed, ParseError> {
    let mut p = Parser {
        input: pattern.as_bytes(),
        pos: 0,
        options,
        ci: options.case_insensitive,
        saw_end_anchor: false,
    };
    let anchored_start = p.eat(b'^');
    let regex = p.parse_alt(true)?;
    // `$` is consumed by parse_alt at top level; anything left is an error.
    if p.pos < p.input.len() {
        return Err(p.err_here(ErrorKind::Syntax(format!(
            "unexpected `{}`",
            p.input[p.pos] as char
        ))));
    }
    Ok(Parsed {
        regex,
        anchored_start,
        anchored_end: p.saw_end_anchor,
    })
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    options: ParseOptions,
    ci: bool,
    /// Set when the top level consumed a final `$`.
    saw_end_anchor: bool,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn err_here(&self, kind: ErrorKind) -> ParseError {
        ParseError {
            offset: self.pos.min(self.input.len()),
            kind,
        }
    }

    fn err_at(&self, offset: usize, kind: ErrorKind) -> ParseError {
        ParseError { offset, kind }
    }
}

impl<'a> Parser<'a> {
    fn parse_alt(&mut self, top: bool) -> Result<Regex, ParseError> {
        let mut arms = vec![self.parse_seq(top)?];
        while self.eat(b'|') {
            arms.push(self.parse_seq(top)?);
        }
        Ok(Regex::alt(arms))
    }

    fn parse_seq(&mut self, top: bool) -> Result<Regex, ParseError> {
        let mut parts: Vec<Regex> = Vec::new();
        loop {
            match self.peek() {
                None | Some(b'|') => break,
                Some(b')') if !top => break,
                Some(b')') => return Err(self.err_here(ErrorKind::Syntax("unmatched `)`".into()))),
                Some(b'$') => {
                    // Only valid as the last token of the whole pattern or of
                    // a top-level alternative ending the pattern.
                    let at = self.pos;
                    self.pos += 1;
                    let end_of_pattern = self.pos == self.input.len();
                    if top && end_of_pattern {
                        self.saw_end_anchor = true;
                        break;
                    }
                    return Err(self.err_at(at, ErrorKind::Unsupported(Unsupported::InnerAnchor)));
                }
                Some(b'^') => {
                    return Err(self.err_here(ErrorKind::Unsupported(Unsupported::InnerAnchor)))
                }
                _ => {
                    let atom = self.parse_atom()?;
                    let atom = self.parse_postfix(atom)?;
                    parts.push(atom);
                }
            }
        }
        Ok(Regex::concat(parts))
    }

    fn parse_postfix(&mut self, mut atom: Regex) -> Result<Regex, ParseError> {
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    self.skip_quantifier_mode();
                    atom = Regex::star(atom);
                }
                Some(b'+') => {
                    self.pos += 1;
                    self.skip_quantifier_mode();
                    atom = Regex::plus(atom);
                }
                Some(b'?') => {
                    self.pos += 1;
                    self.skip_quantifier_mode();
                    atom = Regex::opt(atom);
                }
                Some(b'{') => {
                    let start = self.pos;
                    match self.try_parse_bounds()? {
                        Some((min, max)) => {
                            self.skip_quantifier_mode();
                            if let Some(n) = max {
                                if n < min {
                                    return Err(self.err_at(
                                        start,
                                        ErrorKind::InvertedRepeatBounds { min, max: n },
                                    ));
                                }
                            }
                            atom = Regex::repeat(atom, min, max);
                        }
                        None => break, // literal `{`, handled by caller as atom
                    }
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    /// After `* + ? {..}`, PCRE allows a lazy `?` or possessive `+` mode
    /// suffix. Laziness/possessiveness changes which match is preferred, not
    /// the language, so we accept and ignore it.
    fn skip_quantifier_mode(&mut self) {
        if let Some(b'?' | b'+') = self.peek() {
            self.pos += 1;
        }
    }

    /// Parses `{m}`, `{m,}`, `{m,n}` starting at `{`; returns `None` (and
    /// rewinds) when the braces do not form a quantifier, in which case `{`
    /// is a literal, matching PCRE.
    fn try_parse_bounds(&mut self) -> Result<Option<(u32, Option<u32>)>, ParseError> {
        let save = self.pos;
        debug_assert_eq!(self.peek(), Some(b'{'));
        self.pos += 1;
        let min = match self.parse_number()? {
            Some(n) => n,
            None => {
                self.pos = save;
                return Ok(None);
            }
        };
        if self.eat(b'}') {
            return Ok(Some((min, Some(min))));
        }
        if !self.eat(b',') {
            self.pos = save;
            return Ok(None);
        }
        if self.eat(b'}') {
            return Ok(Some((min, None)));
        }
        let max = match self.parse_number()? {
            Some(n) => n,
            None => {
                self.pos = save;
                return Ok(None);
            }
        };
        if !self.eat(b'}') {
            self.pos = save;
            return Ok(None);
        }
        Ok(Some((min, Some(max))))
    }

    fn parse_number(&mut self) -> Result<Option<u32>, ParseError> {
        let start = self.pos;
        let mut val: u64 = 0;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            val = val * 10 + u64::from(b - b'0');
            if val > u64::from(MAX_REPEAT_BOUND) {
                // Consume remaining digits for a clean offset, then error.
                while let Some(b'0'..=b'9') = self.peek() {
                    self.pos += 1;
                }
                return Err(self.err_at(start, ErrorKind::RepeatBoundTooLarge(val)));
            }
            self.pos += 1;
        }
        if self.pos == start {
            Ok(None)
        } else {
            Ok(Some(val as u32))
        }
    }

    fn parse_atom(&mut self) -> Result<Regex, ParseError> {
        let at = self.pos;
        let b = self.bump().expect("caller checked non-empty");
        match b {
            b'.' => {
                let c = if self.options.dot_matches_newline {
                    ByteClass::ANY
                } else {
                    ByteClass::singleton(b'\n').complement()
                };
                Ok(Regex::Class(c))
            }
            b'(' => self.parse_group(at),
            b'[' => {
                let c = self.parse_class(at)?;
                if c.is_empty() {
                    return Err(self.err_at(at, ErrorKind::Syntax("empty character class".into())));
                }
                Ok(Regex::Class(self.fold(c)))
            }
            b'\\' => self.parse_escape(at).map(|c| Regex::Class(self.fold(c))),
            b'*' | b'+' | b'?' => Err(self.err_at(
                at,
                ErrorKind::Syntax(format!("quantifier `{}` with nothing to repeat", b as char)),
            )),
            b'{' => {
                // A `{` that begins a valid quantifier here has nothing to
                // repeat; otherwise it is a literal.
                self.pos = at;
                if self.try_parse_bounds()?.is_some() {
                    return Err(self.err_at(
                        at,
                        ErrorKind::Syntax("quantifier `{` with nothing to repeat".into()),
                    ));
                }
                self.pos = at + 1;
                Ok(Regex::Class(self.fold(ByteClass::singleton(b'{'))))
            }
            other => Ok(Regex::Class(self.fold(ByteClass::singleton(other)))),
        }
    }

    fn fold(&self, c: ByteClass) -> ByteClass {
        if self.ci {
            c.case_fold()
        } else {
            c
        }
    }

    fn parse_group(&mut self, at: usize) -> Result<Regex, ParseError> {
        let saved_ci = self.ci;
        if self.eat(b'?') {
            match self.peek() {
                Some(b':') => {
                    self.pos += 1;
                }
                Some(b'=') | Some(b'!') => {
                    return Err(self.err_at(at, ErrorKind::Unsupported(Unsupported::Lookaround)))
                }
                Some(b'<') => {
                    // (?<=, (?<! lookbehind; (?<name> named group.
                    match self.input.get(self.pos + 1) {
                        Some(b'=') | Some(b'!') => {
                            return Err(
                                self.err_at(at, ErrorKind::Unsupported(Unsupported::Lookaround))
                            )
                        }
                        _ => {
                            // Named group: skip to `>`.
                            while let Some(b) = self.bump() {
                                if b == b'>' {
                                    break;
                                }
                            }
                        }
                    }
                }
                Some(b'P') => {
                    // (?P<name>…) — python-style named group.
                    self.pos += 1;
                    if self.eat(b'<') {
                        while let Some(b) = self.bump() {
                            if b == b'>' {
                                break;
                            }
                        }
                    } else {
                        return Err(self.err_at(at, ErrorKind::Unsupported(Unsupported::OtherPcre)));
                    }
                }
                Some(b'>') => {
                    return Err(self.err_at(at, ErrorKind::Unsupported(Unsupported::OtherPcre)))
                }
                _ => {
                    // Inline flags: (?i), (?s), (?is), (?i:…).
                    let mut closed = false;
                    while let Some(f) = self.peek() {
                        match f {
                            b'i' => {
                                self.ci = true;
                                self.pos += 1;
                            }
                            b's' => {
                                self.pos += 1; // `.` already Σ by default
                            }
                            b'x' => {
                                self.pos += 1; // extended mode: no-op for our inputs
                            }
                            b'm' => {
                                return Err(self
                                    .err_at(at, ErrorKind::Unsupported(Unsupported::InnerAnchor)))
                            }
                            b')' => {
                                self.pos += 1;
                                closed = true;
                                break;
                            }
                            b':' => {
                                self.pos += 1;
                                break;
                            }
                            _ => {
                                return Err(
                                    self.err_at(at, ErrorKind::Unsupported(Unsupported::OtherPcre))
                                )
                            }
                        }
                    }
                    if closed {
                        // Flag-setting group `(?i)`: applies to the rest of
                        // the enclosing expression; return ε.
                        return Ok(Regex::Empty);
                    }
                }
            }
        }
        let inner = self.parse_alt(false)?;
        if !self.eat(b')') {
            return Err(self.err_at(at, ErrorKind::Syntax("unclosed group".into())));
        }
        self.ci = saved_ci;
        Ok(inner)
    }

    fn parse_escape(&mut self, at: usize) -> Result<ByteClass, ParseError> {
        let b = self
            .bump()
            .ok_or_else(|| self.err_at(at, ErrorKind::Syntax("dangling `\\`".into())))?;
        match b {
            b'd' => Ok(ByteClass::digit()),
            b'D' => Ok(ByteClass::digit().complement()),
            b'w' => Ok(ByteClass::word()),
            b'W' => Ok(ByteClass::word().complement()),
            b's' => Ok(ByteClass::space()),
            b'S' => Ok(ByteClass::space().complement()),
            b'n' => Ok(ByteClass::singleton(b'\n')),
            b'r' => Ok(ByteClass::singleton(b'\r')),
            b't' => Ok(ByteClass::singleton(b'\t')),
            b'f' => Ok(ByteClass::singleton(0x0c)),
            b'v' => Ok(ByteClass::singleton(0x0b)),
            b'a' => Ok(ByteClass::singleton(0x07)),
            b'e' => Ok(ByteClass::singleton(0x1b)),
            b'0' => Ok(ByteClass::singleton(0)),
            b'x' => {
                let mut hex = String::new();
                if self.eat(b'{') {
                    while let Some(h) = self.peek() {
                        if h == b'}' {
                            break;
                        }
                        hex.push(h as char);
                        self.pos += 1;
                    }
                    if !self.eat(b'}') {
                        return Err(self.err_at(at, ErrorKind::Syntax("unclosed \\x{..}".into())));
                    }
                } else {
                    for _ in 0..2 {
                        if let Some(h) = self.peek() {
                            if h.is_ascii_hexdigit() {
                                hex.push(h as char);
                                self.pos += 1;
                            }
                        }
                    }
                }
                let v = u32::from_str_radix(&hex, 16)
                    .map_err(|_| self.err_at(at, ErrorKind::Syntax("bad hex escape".into())))?;
                if v > 0xff {
                    return Err(self.err_at(
                        at,
                        ErrorKind::Syntax("non-byte codepoint in \\x{..}".into()),
                    ));
                }
                Ok(ByteClass::singleton(v as u8))
            }
            b'1'..=b'9' => Err(self.err_at(at, ErrorKind::Unsupported(Unsupported::Backreference))),
            b'b' | b'B' => Err(self.err_at(at, ErrorKind::Unsupported(Unsupported::WordBoundary))),
            b'A' | b'z' | b'Z' | b'G' | b'K' => {
                Err(self.err_at(at, ErrorKind::Unsupported(Unsupported::OtherPcre)))
            }
            other => Ok(ByteClass::singleton(other)),
        }
    }

    fn parse_class(&mut self, at: usize) -> Result<ByteClass, ParseError> {
        let negated = self.eat(b'^');
        let mut class = ByteClass::new();
        let mut first = true;
        loop {
            let b = self
                .bump()
                .ok_or_else(|| self.err_at(at, ErrorKind::Syntax("unclosed `[`".into())))?;
            if b == b']' && !first {
                break;
            }
            first = false;
            // POSIX named class [:name:].
            if b == b'[' && self.peek() == Some(b':') {
                let start = self.pos;
                self.pos += 1;
                let mut name = String::new();
                while let Some(c) = self.peek() {
                    if c == b':' {
                        break;
                    }
                    name.push(c as char);
                    self.pos += 1;
                }
                if self.eat(b':') && self.eat(b']') {
                    class = class.union(&named_class(&name).ok_or_else(|| {
                        self.err_at(
                            start,
                            ErrorKind::Syntax(format!("unknown class [:{name}:]")),
                        )
                    })?);
                    continue;
                }
                self.pos = start;
            }
            let lo_class = if b == b'\\' {
                self.parse_escape(self.pos - 1)?
            } else {
                ByteClass::singleton(b)
            };
            // Range `x-y` only when the left side was a single byte.
            if lo_class.len() == 1 && self.peek() == Some(b'-') {
                match self.input.get(self.pos + 1) {
                    Some(b']') | None => {
                        class = class.union(&lo_class);
                        // `-` literal before `]`.
                        continue;
                    }
                    Some(&hi_b) => {
                        self.pos += 1; // consume '-'
                        let hi_at = self.pos;
                        let hi_byte = self.bump().expect("peeked");
                        let hi_class = if hi_byte == b'\\' {
                            self.parse_escape(hi_at)?
                        } else {
                            ByteClass::singleton(hi_byte)
                        };
                        if hi_class.len() != 1 {
                            return Err(self.err_at(
                                hi_at,
                                ErrorKind::Syntax("class range with multi-byte endpoint".into()),
                            ));
                        }
                        let lo = lo_class.min_byte().expect("len 1");
                        let hi = hi_class.min_byte().expect("len 1");
                        if hi < lo {
                            return Err(self.err_at(
                                hi_at,
                                ErrorKind::Syntax(format!(
                                    "inverted class range {}-{}",
                                    lo as char, hi as char
                                )),
                            ));
                        }
                        class = class.union(&ByteClass::range(lo, hi));
                        let _ = hi_b;
                        continue;
                    }
                }
            }
            class = class.union(&lo_class);
        }
        Ok(if negated { class.complement() } else { class })
    }
}

fn named_class(name: &str) -> Option<ByteClass> {
    Some(match name {
        "alpha" => ByteClass::range(b'a', b'z').union(&ByteClass::range(b'A', b'Z')),
        "digit" => ByteClass::digit(),
        "alnum" => ByteClass::range(b'a', b'z')
            .union(&ByteClass::range(b'A', b'Z'))
            .union(&ByteClass::digit()),
        "upper" => ByteClass::range(b'A', b'Z'),
        "lower" => ByteClass::range(b'a', b'z'),
        "space" => ByteClass::space(),
        "punct" => {
            let mut c = ByteClass::new();
            for b in 0x21..=0x7eu8 {
                if !b.is_ascii_alphanumeric() {
                    c.insert(b);
                }
            }
            c
        }
        "xdigit" => ByteClass::digit()
            .union(&ByteClass::range(b'a', b'f'))
            .union(&ByteClass::range(b'A', b'F')),
        "print" => ByteClass::range(0x20, 0x7e),
        "graph" => ByteClass::range(0x21, 0x7e),
        "cntrl" => ByteClass::range(0, 0x1f).union(&ByteClass::singleton(0x7f)),
        "blank" => ByteClass::from_bytes(b" \t"),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ast(p: &str) -> Regex {
        parse(p).expect("parse").regex
    }

    #[test]
    fn literals_and_concat() {
        assert_eq!(ast("abc").to_string(), "abc");
        assert_eq!(ast(""), Regex::Empty);
        assert_eq!(ast("a"), Regex::byte(b'a'));
    }

    #[test]
    fn alternation_and_groups() {
        assert_eq!(ast("a|b|c").to_string(), "a|b|c");
        assert_eq!(ast("(ab)|c").to_string(), "ab|c");
        assert_eq!(ast("(?:ab)c").to_string(), "abc");
        assert_eq!(ast("a(b|)c").to_string(), "ab?c");
        assert_eq!(ast("(?<name>ab)").to_string(), "ab");
        assert_eq!(ast("(?P<name>ab)").to_string(), "ab");
    }

    #[test]
    fn quantifiers() {
        assert_eq!(ast("a*").to_string(), "a*");
        assert_eq!(ast("a+").to_string(), "a+");
        assert_eq!(ast("a?").to_string(), "a?");
        assert_eq!(ast("a{3}"), Regex::repeat(Regex::byte(b'a'), 3, Some(3)));
        assert_eq!(ast("a{3,}"), Regex::repeat(Regex::byte(b'a'), 3, None));
        assert_eq!(ast("a{3,7}"), Regex::repeat(Regex::byte(b'a'), 3, Some(7)));
        assert_eq!(ast("(ab){2,4}").to_string(), "(ab){2,4}");
        // Lazy and possessive modes are language-neutral.
        assert_eq!(ast("a*?"), ast("a*"));
        assert_eq!(ast("a{2,3}?"), ast("a{2,3}"));
        assert_eq!(ast("a++"), ast("a+"));
    }

    #[test]
    fn literal_brace() {
        assert_eq!(ast("a{b").to_string(), "a\\{b");
        assert_eq!(ast("a{,3}").to_string(), "a\\{,3\\}");
        assert_eq!(ast("{2").to_string(), "\\{2");
    }

    #[test]
    fn classes() {
        assert_eq!(ast("[abc]"), Regex::Class(ByteClass::from_bytes(b"abc")));
        assert_eq!(ast("[a-f]"), Regex::Class(ByteClass::range(b'a', b'f')));
        assert_eq!(
            ast("[^a]"),
            Regex::Class(ByteClass::singleton(b'a').complement())
        );
        // `]` literal in first position; `-` literal at the end.
        assert_eq!(ast("[]a]"), Regex::Class(ByteClass::from_bytes(b"]a")));
        assert_eq!(ast("[a-]"), Regex::Class(ByteClass::from_bytes(b"a-")));
        assert_eq!(ast(r"[\d]"), Regex::Class(ByteClass::digit()));
        assert_eq!(ast("[[:digit:]]"), Regex::Class(ByteClass::digit()));
        assert_eq!(
            ast(r"[\x41-\x43]"),
            Regex::Class(ByteClass::range(b'A', b'C'))
        );
    }

    #[test]
    fn escapes() {
        assert_eq!(ast(r"\d"), Regex::Class(ByteClass::digit()));
        assert_eq!(ast(r"\x2f"), Regex::byte(b'/'));
        assert_eq!(ast(r"\x{2f}"), Regex::byte(b'/'));
        assert_eq!(ast(r"\."), Regex::byte(b'.'));
        assert_eq!(ast(r"\\"), Regex::byte(b'\\'));
        assert_eq!(ast(r"\n"), Regex::byte(b'\n'));
        assert_eq!(ast(r"\W"), Regex::Class(ByteClass::word().complement()));
    }

    #[test]
    fn anchors() {
        let p = parse("^abc$").unwrap();
        assert!(p.anchored_start && p.anchored_end);
        assert_eq!(p.regex.to_string(), "abc");
        let p = parse("abc").unwrap();
        assert!(!p.anchored_start && !p.anchored_end);
        assert_eq!(p.for_stream().to_string(), ".*abc");
        assert_eq!(p.for_search().to_string(), ".*abc.*");
        let p = parse("^abc").unwrap();
        assert_eq!(p.for_stream().to_string(), "abc");
        // Inner anchors are unsupported.
        assert!(matches!(
            parse("a^b").unwrap_err().kind,
            ErrorKind::Unsupported(Unsupported::InnerAnchor)
        ));
        assert!(matches!(
            parse("a$b").unwrap_err().kind,
            ErrorKind::Unsupported(Unsupported::InnerAnchor)
        ));
    }

    #[test]
    fn unsupported_constructs() {
        assert!(matches!(
            parse(r"(a)\1").unwrap_err().kind,
            ErrorKind::Unsupported(Unsupported::Backreference)
        ));
        assert!(matches!(
            parse(r"(?=a)b").unwrap_err().kind,
            ErrorKind::Unsupported(Unsupported::Lookaround)
        ));
        assert!(matches!(
            parse(r"(?<!a)b").unwrap_err().kind,
            ErrorKind::Unsupported(Unsupported::Lookaround)
        ));
        assert!(matches!(
            parse(r"\bword\b").unwrap_err().kind,
            ErrorKind::Unsupported(Unsupported::WordBoundary)
        ));
        assert!(parse(r"(a)\1").unwrap_err().is_unsupported());
        assert!(!parse("a(").unwrap_err().is_unsupported());
    }

    #[test]
    fn syntax_errors() {
        assert!(matches!(
            parse("a(b").unwrap_err().kind,
            ErrorKind::Syntax(_)
        ));
        assert!(matches!(
            parse("a)b").unwrap_err().kind,
            ErrorKind::Syntax(_)
        ));
        assert!(matches!(
            parse("*a").unwrap_err().kind,
            ErrorKind::Syntax(_)
        ));
        assert!(matches!(
            parse("[a").unwrap_err().kind,
            ErrorKind::Syntax(_)
        ));
        assert!(matches!(
            parse("[z-a]").unwrap_err().kind,
            ErrorKind::Syntax(_)
        ));
        assert!(matches!(
            parse("a{5,2}").unwrap_err().kind,
            ErrorKind::InvertedRepeatBounds { min: 5, max: 2 }
        ));
        assert!(matches!(
            parse("a{9999999}").unwrap_err().kind,
            ErrorKind::RepeatBoundTooLarge(_)
        ));
    }

    #[test]
    fn case_insensitive() {
        let p = parse("(?i)abc").unwrap();
        assert_eq!(p.regex.to_string(), "[Aa][Bb][Cc]");
        let p = parse_with(
            "ab",
            ParseOptions {
                case_insensitive: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(p.regex.to_string(), "[Aa][Bb]");
        // Scoped flag group restores outer mode.
        let p = parse("(?i:a)b").unwrap();
        assert_eq!(p.regex.to_string(), "[Aa]b");
    }

    #[test]
    fn dot_modes() {
        assert_eq!(ast("."), Regex::any());
        let p = parse_with(
            ".",
            ParseOptions {
                dot_matches_newline: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            p.regex,
            Regex::Class(ByteClass::singleton(b'\n').complement())
        );
    }

    #[test]
    fn paper_running_examples_parse() {
        // r1 = .*[ab][^a]{n} (Example 2.2 with σ1=[ab], σ2=[^a], n=4)
        let r1 = ast(".*[ab][^a]{4}");
        assert_eq!(r1.mu(), 4);
        // Fig. 4 regex a(bc){1,3}d.
        let fig4 = ast("a(bc){1,3}d");
        assert_eq!(fig4.repeats().len(), 1);
        // Fig. 7 regex [ab]*a[ab]{m,n}b.
        let fig7 = ast("[ab]*a[ab]{3,5}b");
        assert_eq!(
            fig7.repeats()[0].single_class_body,
            Some(ByteClass::from_bytes(b"ab"))
        );
        // Fig. 1 regex with two nested counters.
        let fig1 = ast(".*a(b(cd){2,3}e){4}f");
        assert_eq!(fig1.repeats().len(), 2);
    }

    #[test]
    fn display_reparse_fixpoint() {
        for p in [
            "abc",
            "a|b",
            "(ab|c)*d",
            "a{2,5}",
            "[a-f]{3}",
            "a?b+c*",
            ".*[ab][^a]{7}",
            r"\d{4}-\d{2}",
            "(?:xy){2,}z",
        ] {
            let once = ast(p);
            let twice = ast(&once.to_string());
            assert_eq!(once, twice, "display/reparse not a fixpoint for {p}");
        }
    }
}
