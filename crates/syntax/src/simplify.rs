//! Language-preserving rewriting of counting regexes.
//!
//! Two layers:
//!
//! 1. [`simplify`] — the compiler front-end rewrites of §4.2 step (1):
//!    unfolding of repetitions with upper bound < 2, merging of character
//!    classes inside simple alternations (`[a]|[b]` → `[ab]`), flattening,
//!    and elimination of the ∅/ε degenerate forms.
//! 2. [`normalize_for_nca`] — establishes the Glushkov-with-counters
//!    precondition that every remaining `Repeat` node has a **non-nullable
//!    body** and bounds `1 ≤ m (≤ n, n ≥ 2)`. Nullable bodies are rewritten
//!    with the ε-stripping transformation [`nonnull`]
//!    (`r{m,n} ≡ (nonnull(r)){0,n}` when ε ∈ ⟦r⟧), the regex-with-counting
//!    analogue of star normal form.
//!
//! All rewrites preserve ⟦r⟧ exactly; this is checked against the naive
//! oracle in the tests and against the NCA engines in integration tests.

use crate::ast::Regex;
use crate::class::ByteClass;

/// Applies the compiler's front-end rewrite rules bottom-up until fixpoint.
///
/// # Examples
///
/// ```
/// use recama_syntax::{parse, simplify};
/// let r = parse("x(a|b|c)y{1}z{0,1}").unwrap().regex;
/// assert_eq!(simplify(&r).to_string(), "x[a-c]yz?");
/// ```
pub fn simplify(r: &Regex) -> Regex {
    let mut cur = simplify_once(r);
    loop {
        let next = simplify_once(&cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
}

fn simplify_once(r: &Regex) -> Regex {
    match r {
        Regex::Empty | Regex::Void | Regex::Class(_) => r.clone(),
        Regex::Concat(parts) => simplify_concat(parts.iter().map(simplify_once).collect()),
        Regex::Alt(parts) => {
            let parts: Vec<Regex> = parts.iter().map(simplify_once).collect();
            simplify_alt(parts)
        }
        Regex::Star(inner) => Regex::star(simplify_once(inner)),
        Regex::Repeat { inner, min, max } => {
            let inner = simplify_once(inner);
            simplify_repeat(inner, *min, *max)
        }
    }
}

/// Concatenation cleanup: flatten (via the constructor) and fuse the
/// `r·r*` / `r*·r` adjacency into `r+`.
fn simplify_concat(parts: Vec<Regex>) -> Regex {
    let flat = match Regex::concat(parts) {
        Regex::Concat(parts) => parts,
        other => return other,
    };
    let mut out: Vec<Regex> = Vec::with_capacity(flat.len());
    for p in flat {
        let fused = match (out.last(), &p) {
            (Some(prev), Regex::Star(inner)) if *prev == **inner => true,
            (Some(Regex::Star(inner)), cur) if **inner == *cur => true,
            _ => false,
        };
        if fused {
            let prev = out.pop().expect("fused implies a previous part");
            let base = match prev {
                Regex::Star(inner) => *inner,
                other => other,
            };
            out.push(Regex::plus(base));
        } else {
            out.push(p);
        }
    }
    Regex::concat(out)
}

/// Alternation cleanup: flatten, drop ∅, deduplicate syntactically equal
/// arms, merge all single-class arms into one class (`[a]|[b]` → `[ab]`),
/// and keep at most one ε arm.
fn simplify_alt(parts: Vec<Regex>) -> Regex {
    let flat = match Regex::alt(parts) {
        Regex::Alt(parts) => parts,
        other => return other,
    };
    let mut merged_class: Option<ByteClass> = None;
    let mut class_slot: Option<usize> = None;
    let mut out: Vec<Regex> = Vec::with_capacity(flat.len());
    let mut saw_empty = false;
    for p in flat {
        match p {
            Regex::Class(c) => {
                merged_class = Some(match merged_class {
                    Some(acc) => acc.union(&c),
                    None => c,
                });
                if class_slot.is_none() {
                    class_slot = Some(out.len());
                    out.push(Regex::Void); // placeholder, patched below
                }
            }
            Regex::Empty => {
                if !saw_empty {
                    saw_empty = true;
                    out.push(Regex::Empty);
                }
            }
            other => {
                if !out.contains(&other) {
                    out.push(other);
                }
            }
        }
    }
    if let (Some(slot), Some(c)) = (class_slot, merged_class) {
        out[slot] = Regex::Class(c);
    }
    // ε is absorbed by any nullable sibling.
    if saw_empty && out.iter().any(|p| *p != Regex::Empty && p.nullable()) {
        out.retain(|p| *p != Regex::Empty);
    }
    Regex::alt(out)
}

/// Repetition cleanup, including the "unfold upper bound < 2" compiler rule.
fn simplify_repeat(inner: Regex, min: u32, max: Option<u32>) -> Regex {
    if inner.is_void() {
        return if min == 0 { Regex::Empty } else { Regex::Void };
    }
    if inner == Regex::Empty {
        return Regex::Empty;
    }
    match (min, max) {
        (_, Some(0)) => Regex::Empty,
        (0, Some(1)) => Regex::opt(inner),
        (1, Some(1)) => inner,
        (0, None) => Regex::star(inner),
        (1, None) => Regex::plus(inner),
        _ => Regex::repeat(inner, min, max),
    }
}

/// Computes a regex denoting ⟦r⟧ ∖ {ε} (possibly [`Regex::Void`]).
///
/// This is the ε-stripping transformation used to normalize nullable
/// repetition bodies before the Glushkov construction.
pub fn nonnull(r: &Regex) -> Regex {
    if !r.nullable() {
        return r.clone();
    }
    match r {
        Regex::Empty | Regex::Void => Regex::Void,
        Regex::Class(_) => unreachable!("classes are not nullable"),
        Regex::Alt(parts) => Regex::alt(parts.iter().map(nonnull).collect()),
        Regex::Concat(parts) => nonnull_concat(parts),
        Regex::Star(inner) => {
            let head = nonnull(inner);
            Regex::concat(vec![head, Regex::star(inner.as_ref().clone())])
        }
        Regex::Repeat { inner, min: _, max } => {
            // r nullable here, so ⟦r{m,n}⟧ = ⟦inner{0,n}⟧ and the nonempty
            // words use ≥ 1 nonempty iteration of the body.
            let head = nonnull(inner);
            let tail = match max {
                None => Regex::star(inner.as_ref().clone()),
                Some(0) | Some(1) => Regex::Empty,
                Some(n) => Regex::repeat(inner.as_ref().clone(), 0, Some(n - 1)),
            };
            Regex::concat(vec![head, tail])
        }
    }
}

/// nonnull over a concatenation: a nonempty word picks the first factor that
/// contributes a nonempty piece.
fn nonnull_concat(parts: &[Regex]) -> Regex {
    match parts {
        [] => Regex::Void,
        [single] => nonnull(single),
        [head, rest @ ..] => {
            let mut arms = vec![Regex::concat(
                std::iter::once(nonnull(head))
                    .chain(rest.iter().cloned())
                    .collect(),
            )];
            if head.nullable() {
                arms.push(nonnull_concat(rest));
            }
            Regex::alt(arms)
        }
    }
}

/// Rewrites `r` so that every remaining `Repeat` node satisfies the
/// Glushkov-with-counters precondition:
///
/// * the body is **non-nullable**, and
/// * bounds are `{m,n}` with `1 ≤ m ≤ n`, `n ≥ 2`, or `{m,}` with `m ≥ 2`.
///
/// Everything else is expressed with `ε`, `?`, `*`, `·`, `+` around the
/// repetition, preserving the language. Runs [`simplify`] first and keeps the
/// result simplified.
///
/// # Examples
///
/// ```
/// use recama_syntax::{parse, normalize_for_nca};
/// let r = parse("(a?){3,5}").unwrap().regex;
/// // nullable body: stripped to a{1,5}, made optional
/// assert_eq!(normalize_for_nca(&r).to_string(), "(a{1,5})?");
/// ```
pub fn normalize_for_nca(r: &Regex) -> Regex {
    let s = simplify(r);
    let n = normalize_rec(&s);
    simplify(&n)
}

fn normalize_rec(r: &Regex) -> Regex {
    match r {
        Regex::Empty | Regex::Void | Regex::Class(_) => r.clone(),
        Regex::Concat(parts) => Regex::concat(parts.iter().map(normalize_rec).collect()),
        Regex::Alt(parts) => Regex::alt(parts.iter().map(normalize_rec).collect()),
        Regex::Star(inner) => Regex::star(normalize_rec(inner)),
        Regex::Repeat { inner, min, max } => {
            let body = normalize_rec(inner);
            normalize_repeat(body, *min, *max)
        }
    }
}

fn normalize_repeat(body: Regex, min: u32, max: Option<u32>) -> Regex {
    if body.is_void() {
        return if min == 0 { Regex::Empty } else { Regex::Void };
    }
    if body.nullable() {
        // ⟦body{m,n}⟧ = ⟦nonnull(body){0,n}⟧.
        let stripped = simplify(&nonnull(&body));
        return normalize_repeat_nonnullable(stripped, 0, max);
    }
    normalize_repeat_nonnullable(body, min, max)
}

/// `body` non-nullable here.
fn normalize_repeat_nonnullable(body: Regex, min: u32, max: Option<u32>) -> Regex {
    if body.is_void() {
        return if min == 0 { Regex::Empty } else { Regex::Void };
    }
    match (min, max) {
        (_, Some(0)) => Regex::Empty,
        (0, Some(1)) => Regex::opt(body),
        (1, Some(1)) => body,
        (0, None) => Regex::star(body),
        (1, None) => Regex::plus(body),
        (0, Some(n)) => Regex::opt(Regex::repeat(body, 1, Some(n))),
        _ => Regex::repeat(body, min, max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::parse;

    fn ast(p: &str) -> Regex {
        parse(p).expect("parse").regex
    }

    /// Checks ⟦a⟧ = ⟦b⟧ on all strings over `alpha` up to length `maxlen`.
    fn assert_equiv(a: &Regex, b: &Regex, alpha: &[u8], maxlen: usize) {
        let mut inputs: Vec<Vec<u8>> = vec![vec![]];
        let mut frontier: Vec<Vec<u8>> = vec![vec![]];
        for _ in 0..maxlen {
            let mut next = Vec::new();
            for w in &frontier {
                for &c in alpha {
                    let mut w2 = w.clone();
                    w2.push(c);
                    next.push(w2);
                }
            }
            inputs.extend(next.iter().cloned());
            frontier = next;
        }
        for w in &inputs {
            assert_eq!(
                naive::matches(a, w),
                naive::matches(b, w),
                "languages differ on {:?}\n  a = {a}\n  b = {b}",
                String::from_utf8_lossy(w),
            );
        }
    }

    #[test]
    fn unfolds_small_upper_bounds() {
        assert_eq!(simplify(&ast("a{0,1}")).to_string(), "a?");
        assert_eq!(simplify(&ast("a{1}")).to_string(), "a");
        assert_eq!(simplify(&ast("a{0,0}")), Regex::Empty);
        assert_eq!(simplify(&ast("a{0,}")).to_string(), "a*");
        assert_eq!(simplify(&ast("a{1,}")).to_string(), "a+");
        // Larger bounds are kept for the counter machinery.
        assert_eq!(simplify(&ast("a{2,5}")).to_string(), "a{2,5}");
    }

    #[test]
    fn merges_classes_in_alternations() {
        assert_eq!(simplify(&ast("a|b")).to_string(), "[ab]");
        assert_eq!(simplify(&ast("[a-c]|[x-z]")).to_string(), "[a-cx-z]");
        assert_eq!(simplify(&ast("a|bc|d")).to_string(), "[ad]|bc");
        // ε arms are absorbed by nullable siblings but otherwise kept.
        assert_eq!(simplify(&ast("a*|b|")).to_string(), "a*|b");
        assert_eq!(simplify(&ast("ab|")).to_string(), "(ab)?");
    }

    #[test]
    fn dedups_alt_arms() {
        assert_eq!(simplify(&ast("ab|ab|ab")).to_string(), "ab");
    }

    #[test]
    fn simplify_preserves_language() {
        for p in [
            "a{0,1}b{1}c{0,0}",
            "a|b|c|",
            "(a|b)*|c{1,}",
            "x(|y)z{0,}",
            "(a{0,2}){0,1}",
        ] {
            let r = ast(p);
            assert_equiv(&r, &simplify(&r), b"abcxyz", 4);
        }
    }

    #[test]
    fn nonnull_strips_epsilon() {
        let r = ast("a*");
        let nn = simplify(&nonnull(&r));
        assert!(!nn.nullable());
        assert_equiv(&nn, &ast("aa*"), b"ab", 4);

        let r = ast("(a|)(b|)");
        let nn = simplify(&nonnull(&r));
        assert!(!nn.nullable());
        // ⟦(a?)(b?)⟧ ∖ ε = {a, b, ab}
        assert!(naive::matches(&nn, b"a"));
        assert!(naive::matches(&nn, b"b"));
        assert!(naive::matches(&nn, b"ab"));
        assert!(!naive::matches(&nn, b""));
        assert!(!naive::matches(&nn, b"ba"));
    }

    #[test]
    fn nonnull_of_nullable_repeat() {
        let r = ast("(a?){2,3}");
        let nn = simplify(&nonnull(&r));
        assert!(!nn.nullable());
        for w in ["a", "aa", "aaa"] {
            assert!(naive::matches(&nn, w.as_bytes()), "{nn} should match {w}");
        }
        assert!(!naive::matches(&nn, b""));
        assert!(!naive::matches(&nn, b"aaaa"));
    }

    #[test]
    fn normalize_gives_nonnullable_bodies() {
        for p in [
            "(a?){3,5}",
            "(a|b?){2,4}",
            "((a?)(b?)){2,2}",
            "(a*){3}",
            "(a?){2,}",
            "(ab?){0,3}",
        ] {
            let r = ast(p);
            let n = normalize_for_nca(&r);
            for info in n.repeats() {
                assert!(
                    info.min >= 1 || info.max.is_none(),
                    "bad bounds in {n} for {p}"
                );
            }
            fn check_bodies(r: &Regex) {
                match r {
                    Regex::Repeat { inner, min, max } => {
                        assert!(!inner.nullable(), "nullable body survived: {r}");
                        assert!(*min >= 1, "min 0 survived: {r}");
                        if let Some(n) = max {
                            assert!(*n >= 2, "tiny bound survived: {r}");
                        }
                        // max = None with min == 1 is plain `+`: fine.
                        check_bodies(inner);
                    }
                    Regex::Concat(ps) | Regex::Alt(ps) => ps.iter().for_each(check_bodies),
                    Regex::Star(i) => check_bodies(i),
                    _ => {}
                }
            }
            check_bodies(&n);
            assert_equiv(&r, &n, b"ab", 5);
        }
    }

    #[test]
    fn normalize_preserves_plain_counting() {
        let r = ast("a(bc){2,7}d");
        assert_eq!(normalize_for_nca(&r), simplify(&r));
    }

    #[test]
    fn normalize_handles_void_bodies() {
        let void_rep = Regex::repeat(Regex::Void, 2, Some(5));
        assert_eq!(normalize_for_nca(&void_rep), Regex::Void);
        let void_rep0 = Regex::repeat(Regex::Void, 0, Some(5));
        assert_eq!(normalize_for_nca(&void_rep0), Regex::Empty);
        // A body that only matches ε.
        let eps_rep = Regex::repeat(Regex::opt(Regex::Void), 2, Some(5));
        assert_eq!(normalize_for_nca(&eps_rep), Regex::Empty);
    }
}
