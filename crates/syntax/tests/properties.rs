//! Property-based tests for the syntax layer: boolean-algebra laws of
//! byte classes, display/reparse round trips, and language preservation of
//! the rewriting passes.

use proptest::prelude::*;
use recama_syntax::{naive, normalize_for_nca, parse, simplify, ByteClass, Regex};

fn arb_class() -> impl Strategy<Value = ByteClass> {
    prop::collection::vec(any::<u8>(), 0..12).prop_map(|v| ByteClass::from_bytes(&v))
}

fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        prop::sample::select(vec![
            Regex::byte(b'a'),
            Regex::byte(b'b'),
            Regex::Class(ByteClass::from_bytes(b"ab")),
            Regex::Class(ByteClass::singleton(b'b').complement()),
        ]),
        Just(Regex::Empty),
    ];
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::star),
            inner.clone().prop_map(Regex::opt),
            (inner, 0u32..3, 0u32..4).prop_map(|(r, m, e)| Regex::repeat(r, m, Some(m + e))),
        ]
    })
}

fn arb_input() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(b"abx".to_vec()), 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn class_union_is_commutative_and_associative(a in arb_class(), b in arb_class(), c in arb_class()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn class_de_morgan(a in arb_class(), b in arb_class()) {
        prop_assert_eq!(a.union(&b).complement(), a.complement().intersect(&b.complement()));
        prop_assert_eq!(a.intersect(&b).complement(), a.complement().union(&b.complement()));
    }

    #[test]
    fn class_absorption_and_idempotence(a in arb_class(), b in arb_class()) {
        prop_assert_eq!(a.union(&a), a);
        prop_assert_eq!(a.intersect(&a), a);
        prop_assert_eq!(a.union(&a.intersect(&b)), a);
        prop_assert_eq!(a.intersect(&a.union(&b)), a);
    }

    #[test]
    fn class_len_inclusion_exclusion(a in arb_class(), b in arb_class()) {
        prop_assert_eq!(
            a.union(&b).len() + a.intersect(&b).len(),
            a.len() + b.len()
        );
    }

    #[test]
    fn class_display_reparses(a in arb_class()) {
        prop_assume!(!a.is_empty());
        let rendered = a.to_string();
        let parsed = parse(&rendered).unwrap_or_else(|e| panic!("{rendered}: {e}"));
        match parsed.regex {
            Regex::Class(back) => prop_assert_eq!(back, a, "render {}", rendered),
            other => prop_assert!(false, "{} reparsed as {:?}", rendered, other),
        }
    }

    #[test]
    fn regex_display_reparse_is_language_preserving(r in arb_regex(), w in arb_input()) {
        let rendered = r.to_string();
        let reparsed = parse(&rendered).unwrap_or_else(|e| panic!("{rendered}: {e}")).regex;
        prop_assert_eq!(
            naive::matches(&reparsed, &w),
            naive::matches(&r, &w),
            "display {} changed the language", rendered
        );
    }

    #[test]
    fn simplify_is_idempotent_and_language_preserving(r in arb_regex(), w in arb_input()) {
        let s = simplify(&r);
        prop_assert_eq!(simplify(&s).clone(), s.clone(), "simplify not idempotent");
        prop_assert_eq!(naive::matches(&s, &w), naive::matches(&r, &w));
    }

    #[test]
    fn normalize_is_idempotent_and_language_preserving(r in arb_regex(), w in arb_input()) {
        let n = normalize_for_nca(&r);
        prop_assert_eq!(normalize_for_nca(&n).clone(), n.clone(), "normalize not idempotent");
        prop_assert_eq!(naive::matches(&n, &w), naive::matches(&r, &w));
    }

    #[test]
    fn mu_never_shrinks_under_display_roundtrip(r in arb_regex()) {
        let reparsed = parse(&r.to_string()).unwrap().regex;
        prop_assert_eq!(reparsed.mu(), r.mu());
        prop_assert_eq!(reparsed.has_counting(), r.has_counting());
    }

    #[test]
    fn nullable_agrees_with_naive_on_empty(r in arb_regex()) {
        prop_assert_eq!(r.nullable(), naive::matches(&r, b""));
    }
}
