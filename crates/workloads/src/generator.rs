//! Seeded synthetic ruleset generators.
//!
//! The paper's rulesets (Snort, Suricata, Protomata, SpamAssassin, ClamAV)
//! are proprietary or too large to ship; every experiment in the paper
//! consumes only their distributional properties — how many patterns,
//! which fraction uses counting, which fraction is counter-ambiguous, and
//! how large the bounds are. The generators below produce pattern sets
//! with those properties **by construction** (see DESIGN.md §4), using
//! shape families whose ambiguity classification is known:
//!
//! * *ambiguous counting*: an unanchored prefix whose last symbols can
//!   recur inside the counted class (`lit.{m,n}`, `w[a-z ]{m,n}w'`,
//!   PROSITE-style `.{m,n}` gaps, hex signatures with wildcard gaps);
//! * *unambiguous counting*: anchored prefixes (`^lit σ{n}…`) or counted
//!   classes disjoint from their trigger (`lit[^X]X{n}`, `lit\d{n}`,
//!   zero-padding signatures), plus the `Σ*(σ̄₁σ₁{m}+σ̄₂σ₂{n})`
//!   exact-analysis stress family of §3.3;
//! * *unsupported*: backreferences/lookarounds (Table 1's rejected rows);
//! * *plain*: literals, classes and `*`/`+` with no counting.

use crate::profiles::{profile, BenchmarkId, Table1Row};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The intended classification of a generated pattern (ground truth used
/// by tests and reported next to measured verdicts in Table 1 runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternClass {
    /// Uses a non-regular operator; the parser must reject it.
    Unsupported,
    /// No counting occurrence.
    Plain,
    /// Counting, intended counter-unambiguous.
    CountingUnambiguous,
    /// Counting, intended counter-ambiguous.
    CountingAmbiguous,
}

/// A generated ruleset.
#[derive(Debug, Clone)]
pub struct Ruleset {
    /// Which benchmark profile generated it.
    pub id: BenchmarkId,
    /// The scale factor applied to the Table 1 sizes.
    pub scale: f64,
    /// Patterns with their intended classification.
    pub patterns: Vec<(String, PatternClass)>,
}

impl Ruleset {
    /// Pattern strings only.
    pub fn pattern_strings(&self) -> Vec<String> {
        self.patterns.iter().map(|(p, _)| p.clone()).collect()
    }

    /// The intended Table 1 row of this (scaled) set.
    pub fn intended_table1(&self) -> Table1Row {
        let mut row = Table1Row {
            total: 0,
            supported: 0,
            counting: 0,
            ambiguous: 0,
        };
        for (_, class) in &self.patterns {
            row.total += 1;
            match class {
                PatternClass::Unsupported => {}
                PatternClass::Plain => row.supported += 1,
                PatternClass::CountingUnambiguous => {
                    row.supported += 1;
                    row.counting += 1;
                }
                PatternClass::CountingAmbiguous => {
                    row.supported += 1;
                    row.counting += 1;
                    row.ambiguous += 1;
                }
            }
        }
        row
    }
}

/// Generates the ruleset for `id` at `scale` (1.0 reproduces the Table 1
/// sizes) with a deterministic `seed`.
pub fn generate(id: BenchmarkId, scale: f64, seed: u64) -> Ruleset {
    let prof = profile(id);
    let t = prof.table1;
    let scaled = |n: usize| ((n as f64 * scale).round() as usize).max(if n > 0 { 1 } else { 0 });
    let total = scaled(t.total);
    let unsupported = scaled(t.total - t.supported);
    let counting = scaled(t.counting).min(total - unsupported);
    let ambiguous = scaled(t.ambiguous).min(counting);
    let expensive = prof.expensive_instances.min(counting - ambiguous);
    let plain = total - unsupported - counting;

    let mut rng = StdRng::seed_from_u64(seed ^ fnv(id.name()));
    let mut gen = ShapeGen {
        id,
        rng: &mut rng,
        bound_range: prof.bound_range,
        range_fraction: prof.range_fraction,
    };

    let mut patterns = Vec::with_capacity(total);
    for _ in 0..unsupported {
        patterns.push((gen.unsupported(), PatternClass::Unsupported));
    }
    for _ in 0..plain {
        patterns.push((gen.plain(), PatternClass::Plain));
    }
    for _ in 0..ambiguous {
        patterns.push((gen.counting_ambiguous(), PatternClass::CountingAmbiguous));
    }
    for _ in 0..expensive {
        patterns.push((
            gen.expensive_unambiguous(),
            PatternClass::CountingUnambiguous,
        ));
    }
    for _ in 0..counting - ambiguous - expensive {
        patterns.push((
            gen.counting_unambiguous(),
            PatternClass::CountingUnambiguous,
        ));
    }
    // Deterministic shuffle so categories are interleaved like real sets.
    for i in (1..patterns.len()).rev() {
        let j = rng.gen_range(0..=i);
        patterns.swap(i, j);
    }
    Ruleset {
        id,
        scale,
        patterns,
    }
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

struct ShapeGen<'a> {
    id: BenchmarkId,
    rng: &'a mut StdRng,
    bound_range: (u32, u32),
    range_fraction: f64,
}

const PROTEIN: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";

impl ShapeGen<'_> {
    fn word(&mut self, lo: usize, hi: usize) -> String {
        let len = self.rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| (b'a' + self.rng.gen_range(0..26)) as char)
            .collect()
    }

    fn upper_word(&mut self, lo: usize, hi: usize) -> String {
        let len = self.rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| PROTEIN[self.rng.gen_range(0..PROTEIN.len())] as char)
            .collect()
    }

    fn hex_literal(&mut self, lo: usize, hi: usize) -> String {
        let len = self.rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| format!("\\x{:02x}", self.rng.gen_range(1..=255u8)))
            .collect()
    }

    /// Log-uniform bound in the profile range.
    fn bound(&mut self) -> u32 {
        let (lo, hi) = self.bound_range;
        let (lo_f, hi_f) = (f64::from(lo).ln(), f64::from(hi).ln());
        let x = self.rng.gen_range(lo_f..=hi_f);
        (x.exp().round() as u32).clamp(lo, hi).max(2)
    }

    /// `{n}` or `{m,n}` with n from the profile distribution; returns the
    /// rendered suffix and the upper bound n.
    fn counting_suffix(&mut self) -> (String, u32) {
        let n = self.bound();
        let s = if self.rng.gen_bool(self.range_fraction) && n > 2 {
            let m = self.rng.gen_range(1..n);
            format!("{{{m},{n}}}")
        } else {
            format!("{{{n}}}")
        };
        (s, n)
    }

    /// Length for a trigger literal placed before an ambiguous counting
    /// occurrence with upper bound `n`: a fresh occurrence of the trigger
    /// must be able to complete inside the counting window (length ≤ n−1),
    /// otherwise tokens cannot coexist and the occurrence degenerates to
    /// counter-unambiguous.
    fn trigger_len(&mut self, n: u32, cap: usize) -> usize {
        let max_len = cap.min((n.saturating_sub(1)).max(1) as usize).max(1);
        self.rng.gen_range(1..=max_len)
    }

    fn unsupported(&mut self) -> String {
        let w = self.word(3, 8);
        match self.rng.gen_range(0..3) {
            0 => format!("({w})x*\\1"),
            1 => format!("{w}(?=[0-9]+)[a-z]{{2,}}"),
            _ => format!("\\b{w}\\b"),
        }
    }

    fn plain(&mut self) -> String {
        match self.id {
            BenchmarkId::Protomata => {
                // Motif without a counting gap.
                let a = self.upper_word(3, 6);
                let b = self.upper_word(2, 5);
                format!("{a}[{}]{b}", &self.upper_word(3, 5))
            }
            BenchmarkId::ClamAv => self.hex_literal(8, 24),
            _ => {
                let a = self.word(4, 10);
                match self.rng.gen_range(0..3) {
                    0 => a,
                    1 => format!("{a}[0-9a-f]+{}", self.word(2, 5)),
                    _ => format!("{a}\\s*{}", self.word(3, 7)),
                }
            }
        }
    }

    fn counting_ambiguous(&mut self) -> String {
        let (suffix, n) = self.counting_suffix();
        match self.id {
            BenchmarkId::Protomata => {
                // PROSITE-style: MOTIF x(m,n) MOTIF — the `.` gap restarts
                // (trigger short enough to recur inside the window).
                let len = self.trigger_len(n, 4);
                let a = self.upper_word(len, len);
                let b = self.upper_word(2, 4);
                format!("{a}.{suffix}{b}")
            }
            BenchmarkId::ClamAv => {
                // Signature with a wildcard gap.
                let len = self.trigger_len(n, 8);
                let a = self.hex_literal(len, len);
                let b = self.hex_literal(4, 10);
                format!("{a}.{suffix}{b}")
            }
            BenchmarkId::SpamAssassin => {
                // Body class overlaps the trigger word.
                let len = self.trigger_len(n, 6);
                let a = self.word(len, len);
                let b = self.word(3, 6);
                format!("{a}[a-z ]{suffix}{b}")
            }
            _ => {
                // Snort/Suricata: `.`/[^\n] bodies after a literal.
                let len = self.trigger_len(n, 7);
                let a = self.word(len, len);
                if self.rng.gen_bool(0.5) {
                    format!("{a}.{suffix}")
                } else {
                    format!("{a}[^\\n]{suffix}{}", self.word(2, 5))
                }
            }
        }
    }

    fn counting_unambiguous(&mut self) -> String {
        let (suffix, _) = self.counting_suffix();
        match self.id {
            BenchmarkId::Protomata => {
                // Anchored motif (PROSITE `<` anchor): single entry point.
                let a = self.upper_word(2, 5);
                let b = self.upper_word(2, 4);
                format!("^{a}[{}]{suffix}{b}", &self.upper_word(3, 5))
            }
            BenchmarkId::ClamAv => {
                // Zero-padding run delimited by nonzero literals.
                let a = self.hex_literal(4, 10);
                let b = self.hex_literal(4, 10);
                format!("{a}\\x00{suffix}{b}")
            }
            _ => {
                if self.rng.gen_bool(0.5) {
                    // Anchored.
                    let a = self.word(4, 9);
                    format!("^{a}[0-9a-f]{suffix}")
                } else {
                    // Guarded: counted digits cannot restart the letter
                    // trigger.
                    let a = self.word(4, 9);
                    let b = self.word(2, 5);
                    format!("{a}\\d{suffix}{b}")
                }
            }
        }
    }

    /// The `Σ*(σ̄₁σ₁{m}+σ̄₂σ₂{n}+···)` family with overlapping classes:
    /// counter-unambiguous but Θ(n²)-expensive for the exact analysis.
    fn expensive_unambiguous(&mut self) -> String {
        let n1 = self.bound().max(64);
        let n2 = self.bound().max(64);
        format!("([^ac][ac]{{{n1}}}|[^bc][bc]{{{n2}}})")
    }
}

/// Background byte distribution per benchmark.
fn background_byte(id: BenchmarkId, rng: &mut StdRng) -> u8 {
    match id {
        BenchmarkId::Protomata => PROTEIN[rng.gen_range(0..PROTEIN.len())],
        BenchmarkId::ClamAv => rng.gen(),
        _ => {
            // Printable-ish network/text payload.
            if rng.gen_bool(0.9) {
                rng.gen_range(0x20..0x7f)
            } else {
                rng.gen()
            }
        }
    }
}

/// Generates a synthetic input stream of `len` bytes for `ruleset`, with
/// matches of randomly chosen patterns planted at roughly `plant_rate`
/// occurrences per byte (e.g. 0.001 = one planted match per KiB).
pub fn traffic(ruleset: &Ruleset, len: usize, plant_rate: f64, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7261666669637421);
    let mut out = Vec::with_capacity(len + 64);
    let supported: Vec<&String> = ruleset
        .patterns
        .iter()
        .filter(|(_, c)| *c != PatternClass::Unsupported)
        .map(|(p, _)| p)
        .collect();
    while out.len() < len {
        if !supported.is_empty() && rng.gen_bool(plant_rate.clamp(0.0, 1.0)) {
            let p = supported[rng.gen_range(0..supported.len())];
            if let Ok(parsed) = recama_syntax::parse(p) {
                if let Some(m) = crate::sample::sample_match(&parsed.regex, &mut rng) {
                    out.extend_from_slice(&m);
                    continue;
                }
            }
        }
        let id = ruleset.id;
        out.push(background_byte(id, &mut rng));
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use recama_analysis::{check, CheckConfig, Method};

    #[test]
    fn scaled_counts_match_profile() {
        for id in BenchmarkId::ALL {
            let rs = generate(id, 0.01, 7);
            let intended = rs.intended_table1();
            let paper = crate::profiles::paper_table1(id);
            let expect = |n: usize| ((n as f64 * 0.01).round() as usize).max(1);
            assert_eq!(intended.total, rs.patterns.len());
            // Within rounding of the scaled targets.
            assert!(
                intended.total.abs_diff(expect(paper.total)) <= 1,
                "{id:?} total"
            );
            assert!(
                intended.counting.abs_diff(expect(paper.counting)) <= 2,
                "{id:?} counting {} vs {}",
                intended.counting,
                expect(paper.counting)
            );
        }
    }

    #[test]
    fn determinism() {
        let a = generate(BenchmarkId::Snort, 0.005, 99);
        let b = generate(BenchmarkId::Snort, 0.005, 99);
        assert_eq!(a.patterns, b.patterns);
        let c = generate(BenchmarkId::Snort, 0.005, 100);
        assert_ne!(a.patterns, c.patterns);
    }

    #[test]
    fn unsupported_patterns_fail_parsing_as_intended() {
        for id in BenchmarkId::ALL {
            let rs = generate(id, 0.02, 3);
            for (p, class) in &rs.patterns {
                let parsed = recama_syntax::parse(p);
                match class {
                    PatternClass::Unsupported => {
                        let err = parsed.expect_err("intended-unsupported must not parse");
                        assert!(err.is_unsupported(), "{p}: wrong rejection {err}");
                    }
                    _ => {
                        let parsed = parsed.unwrap_or_else(|e| panic!("{p}: {e}"));
                        let has_counting = parsed.regex.has_counting();
                        let expect_counting = matches!(
                            class,
                            PatternClass::CountingAmbiguous | PatternClass::CountingUnambiguous
                        );
                        assert_eq!(has_counting, expect_counting, "{p}");
                    }
                }
            }
        }
    }

    #[test]
    fn intended_ambiguity_agrees_with_checker_on_sample() {
        // The generator's ground-truth labels must agree with the actual
        // hybrid analysis (sampled for time).
        let cfg = CheckConfig::default();
        for id in BenchmarkId::ALL {
            let rs = generate(id, 0.01, 11);
            let mut checked = 0;
            for (p, class) in &rs.patterns {
                let expect = match class {
                    PatternClass::CountingAmbiguous => Some(true),
                    PatternClass::CountingUnambiguous => Some(false),
                    _ => continue,
                };
                // Skip the largest bounds to keep the test fast.
                let parsed = recama_syntax::parse(p).unwrap();
                if parsed.regex.mu() > 300 {
                    continue;
                }
                let res = check(&parsed.for_stream(), Method::Hybrid, &cfg);
                assert_eq!(res.ambiguous, expect, "{id:?} pattern {p}");
                checked += 1;
                if checked >= 12 {
                    break;
                }
            }
            assert!(checked >= 2, "{id:?}: too few counting patterns sampled");
        }
    }

    #[test]
    fn traffic_is_seeded_and_sized() {
        let rs = generate(BenchmarkId::Snort, 0.002, 5);
        let a = traffic(&rs, 4096, 0.001, 1);
        let b = traffic(&rs, 4096, 0.001, 1);
        assert_eq!(a.len(), 4096);
        assert_eq!(a, b);
        let c = traffic(&rs, 4096, 0.001, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn protein_traffic_uses_protein_alphabet() {
        let rs = generate(BenchmarkId::Protomata, 0.002, 5);
        let t = traffic(&rs, 2048, 0.0, 9);
        assert!(t.iter().all(|b| PROTEIN.contains(b)));
    }
}
