//! # recama-workloads
//!
//! Seeded synthetic stand-ins for the paper's five evaluation rulesets
//! (Snort, Suricata, Protomata, SpamAssassin, ClamAV) and their input
//! streams. Every experiment of the paper consumes only the rulesets'
//! *distributional* properties — pattern counts, counting fraction,
//! ambiguity fraction, bound distribution (Table 1, Fig. 9) — which the
//! generators reproduce by construction; see DESIGN.md §4 for the
//! substitution rationale.
//!
//! ## Example
//!
//! ```
//! use recama_workloads::{generate, traffic, BenchmarkId};
//!
//! let ruleset = generate(BenchmarkId::Snort, 0.01, 42); // 1% scale
//! let input = traffic(&ruleset, 4096, 0.001, 42);
//! assert_eq!(input.len(), 4096);
//! assert_eq!(ruleset.patterns.len(), 58); // 1% of Snort's 5839 rules
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod generator;
mod profiles;
pub mod sample;

pub use generator::{generate, traffic, PatternClass, Ruleset};
pub use profiles::{paper_table1, profile, BenchmarkId, Profile, Table1Row};
