//! Statistical profiles of the paper's five rulesets (Table 1) that the
//! synthetic generators are tuned to reproduce.

/// The five application benchmarks of §3.3 / §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkId {
    /// Snort network-intrusion rules.
    Snort,
    /// Suricata network-intrusion rules.
    Suricata,
    /// Protomata protein motifs (PROSITE-derived).
    Protomata,
    /// SpamAssassin anti-spam patterns.
    SpamAssassin,
    /// ClamAV virus signatures.
    ClamAv,
}

impl BenchmarkId {
    /// All five benchmarks, in the paper's Table 1 order.
    pub const ALL: [BenchmarkId; 5] = [
        BenchmarkId::Protomata,
        BenchmarkId::Snort,
        BenchmarkId::Suricata,
        BenchmarkId::SpamAssassin,
        BenchmarkId::ClamAv,
    ];

    /// The four benchmarks used in the hardware evaluation (Fig. 9/10:
    /// ClamAV is excluded there).
    pub const HARDWARE: [BenchmarkId; 4] = [
        BenchmarkId::Protomata,
        BenchmarkId::SpamAssassin,
        BenchmarkId::Snort,
        BenchmarkId::Suricata,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkId::Snort => "Snort",
            BenchmarkId::Suricata => "Suricata",
            BenchmarkId::Protomata => "Protomata",
            BenchmarkId::SpamAssassin => "SpamAssassin",
            BenchmarkId::ClamAv => "ClamAV",
        }
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// Total number of regexes in the ruleset.
    pub total: usize,
    /// Regexes using only supported (regular) operators.
    pub supported: usize,
    /// Regexes with at least one counting occurrence.
    pub counting: usize,
    /// Counter-ambiguous regexes.
    pub ambiguous: usize,
}

/// The published Table 1 numbers, for paper-vs-measured comparisons.
pub fn paper_table1(id: BenchmarkId) -> Table1Row {
    match id {
        BenchmarkId::Protomata => Table1Row {
            total: 2338,
            supported: 2338,
            counting: 1675,
            ambiguous: 1675,
        },
        BenchmarkId::Snort => Table1Row {
            total: 5839,
            supported: 5315,
            counting: 1934,
            ambiguous: 282,
        },
        BenchmarkId::Suricata => Table1Row {
            total: 4480,
            supported: 3728,
            counting: 1510,
            ambiguous: 246,
        },
        BenchmarkId::SpamAssassin => Table1Row {
            total: 3786,
            supported: 3690,
            counting: 459,
            ambiguous: 279,
        },
        BenchmarkId::ClamAv => Table1Row {
            total: 100472,
            supported: 100472,
            counting: 4823,
            ambiguous: 3626,
        },
    }
}

/// Generator tuning knobs per benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Target Table 1 row at scale 1.0.
    pub table1: Table1Row,
    /// Range of repetition bounds (log-uniform-ish sampling).
    pub bound_range: (u32, u32),
    /// Fraction of counting regexes that use `{m,n}` (vs exact `{n}`).
    pub range_fraction: f64,
    /// Number of "expensive exact analysis" instances of the
    /// `Σ*(σ̄₁σ₁{m}+σ̄₂σ₂{n}+···)` family (§3.3, Fig. 3 outliers).
    pub expensive_instances: usize,
}

/// The tuned profile for a benchmark.
pub fn profile(id: BenchmarkId) -> Profile {
    match id {
        BenchmarkId::Snort => Profile {
            table1: paper_table1(id),
            bound_range: (8, 2048),
            range_fraction: 0.45,
            expensive_instances: 12,
        },
        BenchmarkId::Suricata => Profile {
            table1: paper_table1(id),
            bound_range: (8, 2048),
            range_fraction: 0.45,
            expensive_instances: 10,
        },
        BenchmarkId::Protomata => Profile {
            table1: paper_table1(id),
            bound_range: (2, 30),
            range_fraction: 0.7,
            expensive_instances: 0,
        },
        BenchmarkId::SpamAssassin => Profile {
            table1: paper_table1(id),
            bound_range: (4, 120),
            range_fraction: 0.5,
            expensive_instances: 0,
        },
        BenchmarkId::ClamAv => Profile {
            table1: paper_table1(id),
            bound_range: (8, 400),
            range_fraction: 0.6,
            expensive_instances: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_match_publication() {
        let p = paper_table1(BenchmarkId::Protomata);
        assert_eq!((p.total, p.counting, p.ambiguous), (2338, 1675, 1675));
        let s = paper_table1(BenchmarkId::Snort);
        assert_eq!(s.total - s.supported, 524); // backreference rules
        assert_eq!(paper_table1(BenchmarkId::ClamAv).total, 100472);
    }

    #[test]
    fn profiles_are_consistent() {
        for id in BenchmarkId::ALL {
            let p = profile(id);
            assert!(p.table1.supported <= p.table1.total);
            assert!(p.table1.counting <= p.table1.supported);
            assert!(p.table1.ambiguous <= p.table1.counting);
            assert!(p.bound_range.0 >= 2 && p.bound_range.0 <= p.bound_range.1);
            assert!((0.0..=1.0).contains(&p.range_fraction));
        }
    }

    #[test]
    fn names_match() {
        assert_eq!(BenchmarkId::Snort.name(), "Snort");
        assert_eq!(BenchmarkId::ClamAv.name(), "ClamAV");
        assert_eq!(BenchmarkId::ALL.len(), 5);
        assert_eq!(BenchmarkId::HARDWARE.len(), 4);
    }
}
