//! Sampling matching strings from a regex — used to plant true matches in
//! synthetic traffic streams.

use rand::Rng;
use recama_syntax::Regex;

/// Draws a random member of ⟦r⟧ (None when ⟦r⟧ = ∅).
///
/// Iteration counts for `*`/`+`/`{m,}` are kept small (geometric); bounded
/// repetitions sample a count in `[m, min(n, m+4)]` to keep planted matches
/// short.
pub fn sample_match(regex: &Regex, rng: &mut impl Rng) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    if walk(regex, rng, &mut out) {
        Some(out)
    } else {
        None
    }
}

fn walk(r: &Regex, rng: &mut impl Rng, out: &mut Vec<u8>) -> bool {
    match r {
        Regex::Empty => true,
        Regex::Void => false,
        Regex::Class(c) => {
            let k = rng.gen_range(0..c.len());
            let b = c.iter().nth(k).expect("class nonempty");
            out.push(b);
            true
        }
        Regex::Concat(parts) => parts.iter().all(|p| walk(p, rng, out)),
        Regex::Alt(parts) => {
            // Try arms in a random rotation until one samples.
            let n = parts.len();
            let start = rng.gen_range(0..n);
            for k in 0..n {
                let mark = out.len();
                if walk(&parts[(start + k) % n], rng, out) {
                    return true;
                }
                out.truncate(mark);
            }
            false
        }
        Regex::Star(inner) => {
            let reps = geometric(rng);
            for _ in 0..reps {
                let mark = out.len();
                if !walk(inner, rng, out) {
                    out.truncate(mark);
                    break;
                }
            }
            true
        }
        Regex::Repeat { inner, min, max } => {
            let hi = match max {
                Some(n) => (*n).min(min + 4),
                None => min + geometric(rng),
            };
            let reps = rng.gen_range(*min..=hi.max(*min));
            for k in 0..reps {
                if !walk(inner, rng, out) {
                    // Body unexpectedly void: succeed only if min reached.
                    return k >= *min;
                }
            }
            true
        }
    }
}

fn geometric(rng: &mut impl Rng) -> u32 {
    let mut n = 0;
    while n < 8 && rng.gen_bool(0.5) {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use recama_syntax::{naive, parse};

    #[test]
    fn samples_are_members() {
        let mut rng = StdRng::seed_from_u64(7);
        for p in [
            "a{2,5}b",
            "(ab|cd){3}",
            "x[0-9]{2,4}y",
            "a*b+c?",
            "(a|b)*abb",
        ] {
            let r = parse(p).unwrap().regex;
            for _ in 0..50 {
                let w = sample_match(&r, &mut rng).expect("nonempty language");
                assert!(
                    naive::matches(&r, &w),
                    "sample {:?} does not match {p}",
                    String::from_utf8_lossy(&w)
                );
            }
        }
    }

    #[test]
    fn void_samples_none() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(sample_match(&Regex::Void, &mut rng), None);
        assert_eq!(sample_match(&Regex::Empty, &mut rng), Some(vec![]));
    }

    #[test]
    fn deterministic_under_seed() {
        let r = parse("[a-z]{4,8}").unwrap().regex;
        let a = sample_match(&r, &mut StdRng::seed_from_u64(42));
        let b = sample_match(&r, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
