//! Counter-ambiguity explorer: the paper's worked examples, the four
//! analysis variants side by side, witness replay, and the NP-hardness
//! reduction of Lemma 3.3 solving SUBSET-SUM with the checker.
//!
//! ```sh
//! cargo run --release --example ambiguity_explorer
//! ```

use recama::analysis::hardness::{subset_sum_regex, target_occurrence};
use recama::analysis::{check, check_occurrence, CheckConfig, Method, Verdict};
use recama::nca::{Engine, Nca, TokenSetEngine};

fn main() {
    let cfg = CheckConfig::default();

    println!("== Paper examples =======================================");
    let examples = [
        (".*a{2}", "Example 3.2: Σ*σ{2}"),
        (".*[ab][^a]{4}", "Example 2.2 r1: Σ*σ1σ2{n}"),
        ("a{3}.*b{3}", "Example 2.2 r3: σ1{m}Σ*σ2{n}"),
        (
            ".*([^ac][ac]{8}|[^bc][bc]{8})",
            "Example 3.4: Σ*(σ̄1σ1{n}+σ̄2σ2{n})",
        ),
        ("a(bc){1,3}d", "Fig. 4: a(bc){1,3}d"),
    ];
    for (pattern, label) in examples {
        // Surface a bad pattern as a report line, not a crash: the rest
        // of the tour still runs.
        let parsed = match recama::syntax::parse(pattern) {
            Ok(p) => p,
            Err(e) => {
                println!("{label:45} SKIPPED (parse error: {e})");
                continue;
            }
        };
        print!("{label:45} ");
        for method in [Method::Exact, Method::Approximate, Method::Hybrid] {
            let res = check(&parsed.regex, method, &cfg);
            let tag = match (method, res.ambiguous) {
                (_, Some(true)) => "ambig",
                (_, Some(false)) => "unamb",
                (_, None) => "??",
            };
            print!(
                "{}={tag}({} pairs)  ",
                match method {
                    Method::Exact => "E",
                    Method::Approximate => "A",
                    Method::Hybrid => "H",
                    Method::HybridWitness => "HW",
                },
                res.stats.pairs_created
            );
        }
        println!();
    }

    println!("\n== Witness replay =======================================");
    let parsed = recama::syntax::parse(".*a{4}").unwrap_or_else(|e| {
        eprintln!("cannot parse the witness-replay regex: {e}");
        std::process::exit(1);
    });
    let res = check(&parsed.regex, Method::HybridWitness, &cfg);
    let witness = res.witness.expect("ambiguous regex yields a witness");
    println!(
        "witness for Σ*a{{4}}: {:?}",
        String::from_utf8_lossy(&witness)
    );
    let nca = Nca::from_regex(&parsed.regex);
    let mut engine = TokenSetEngine::new(&nca);
    engine.matches(&witness);
    println!(
        "replaying it puts {} tokens on one state (degree ≥ 2 = ambiguous)",
        engine.observed_degree()
    );
    assert!(engine.observed_degree() >= 2);

    println!("\n== Verdicts drive the compiled engine ===================");
    // The same analysis picks the storage module when the patterns are
    // compiled for real: unambiguous counting gets an O(log n) counter,
    // ambiguous single-class counting gets a bit vector.
    // A strict (non-lossy) build rejects unsupported rules with a
    // CompileError naming the offender — report it instead of crashing.
    let engine = match recama::Engine::builder()
        .rule(32, "^head[0-9]{500}tail") // Example-3.2-style, unambiguous
        .rule(22, "k.{500}") // Σ*σ{n}: counter-ambiguous
        .build()
    {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("engine build failed: {e}");
            eprintln!("  (phase {:?}, rule index {})", e.phase, e.index);
            std::process::exit(1);
        }
    };
    for i in 0..engine.len() {
        println!(
            "  rule {} ({:40}) -> modules {:?}",
            engine.rule_id(i),
            engine.pattern(i),
            engine.outputs()[i].modules
        );
    }

    println!("\n== Lemma 3.3: solving SUBSET-SUM with the checker =======");
    for (set, target) in [
        (vec![2u32, 3, 7], 10u32), // 3 + 7 ✓
        (vec![2, 3, 7], 11),       // ✗ (sums: 2,3,5,7,9,10,12)
        (vec![4, 5, 6], 15),       // 4+5+6 ✓
        (vec![4, 5, 6], 8),        // ✗
    ] {
        let regex = subset_sum_regex(&set, target);
        let verdict = check_occurrence(&regex, target_occurrence(set.len()), Method::Exact, &cfg);
        let solvable = verdict.verdict == Verdict::Ambiguous;
        println!(
            "subset of {set:?} summing to {target}? {}  (b{{2}} occurrence is {:?})",
            if solvable { "YES" } else { "no " },
            verdict.verdict
        );
    }
}
