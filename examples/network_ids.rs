//! Network intrusion detection: scan synthetic traffic with a Snort-like
//! ruleset and compare the augmented design against pure unfolding —
//! the workload family where the paper reports up to 76% energy and 58%
//! area reduction (§4.3).
//!
//! ```sh
//! cargo run --release --example network_ids
//! ```

use recama::compiler::{compile_ruleset, CompileOptions};
use recama::hw::{run, AreaGranularity};
use recama::nca::UnfoldPolicy;
use recama::workloads::{generate, traffic, BenchmarkId};

fn main() {
    // A 1%-scale Snort-like ruleset (58 rules) and 16 KiB of traffic with
    // planted matches.
    let ruleset = generate(BenchmarkId::Snort, 0.01, 2022);
    let patterns = ruleset.pattern_strings();
    let input = traffic(&ruleset, 16 * 1024, 0.0005, 7);
    println!(
        "ruleset: {} patterns ({} with counting)",
        patterns.len(),
        ruleset.intended_table1().counting
    );

    let mut results = Vec::new();
    for (label, unfold) in [
        ("augmented (counters + bit vectors)", UnfoldPolicy::None),
        ("unfold ≤ 50", UnfoldPolicy::UpTo(50)),
        ("unfold all (CAMA baseline)", UnfoldPolicy::All),
    ] {
        let out = compile_ruleset(
            &patterns,
            &CompileOptions {
                unfold,
                ..Default::default()
            },
        );
        let report = run(&out.network, &input, AreaGranularity::WholeModule);
        println!(
            "{label:38} {:>7} nodes  {:>9.4} nJ/B  {:>8.5} mm²  {} reports",
            out.network.node_count(),
            report.energy.nj_per_byte(),
            report.area.total_mm2(),
            report.match_ends.len()
        );
        results.push((label, report.energy.nj_per_byte(), report.match_ends));
    }

    // All three configurations implement the same rules: reports agree.
    assert_eq!(
        results[0].2, results[2].2,
        "designs must report identically"
    );
    let reduction = 100.0 * (1.0 - results[0].1 / results[2].1);
    println!("\nenergy reduction of the augmented design vs unfolding: {reduction:.1}%");

    // The software twin of the same deployment: the whole ruleset behind
    // the `Engine` facade (bank-aware sharding, parallel scan), attributing
    // hits to rules.
    let engine = recama::Engine::builder()
        .patterns(&patterns)
        .lossy(true)
        .build()
        .expect("lossy builds are infallible");
    let hits = engine.scan(&input);
    let mut per_rule = vec![0usize; engine.len()];
    for m in &hits {
        per_rule[m.pattern] += 1;
    }
    if let Some((rule, count)) = per_rule.iter().enumerate().max_by_key(|&(_, n)| n) {
        println!(
            "software engine: {} shard(s), {} reports; hottest rule {:?} with {} hits",
            engine.shard_count(),
            hits.len(),
            engine.pattern(rule),
            count
        );
    }

    // An IDS tap serves many concurrent connections, not one buffer:
    // the owned service hands MTU-sized chunks to per-connection flows
    // and scans them on its own worker pool. Each flow carries the same
    // traffic here, so all flows must agree with each other.
    let svc = engine.serve();
    let flows: Vec<_> = (0..4).map(|_| svc.open_flow()).collect();
    for chunk in input.chunks(1500) {
        for flow in &flows {
            svc.push(*flow, chunk);
        }
    }
    for flow in &flows {
        svc.close(*flow);
    }
    svc.barrier();
    let per_flow: Vec<usize> = flows.iter().map(|f| svc.poll(*f).len()).collect();
    let metrics = svc.metrics();
    println!(
        "served {} flows: {per_flow:?} reports; {} B scanned across {} shard(s), queue peak {}",
        flows.len(),
        metrics.shard_scan_bytes.iter().sum::<u64>(),
        metrics.shard_scan_bytes.len(),
        metrics.queue_depth_peak
    );
    assert!(
        per_flow.iter().all(|&n| n == per_flow[0]),
        "identical flows must report identically"
    );

    // The literal-prefilter block: per-(flow, shard) chunks skipped
    // because no required literal appeared, and how many rules opted
    // out of filtering. Snort-profile sets keep their Σ*-family
    // counting rules (no extractable literal) spread across the
    // shards, so those shards stay always-on — the counters make that
    // cost visible per deployment.
    if let Some(pf) = &metrics.prefilter {
        println!(
            "prefilter: skipped units per shard {:?} ({} B total), {} candidate wakes, \
             {} always-on rules",
            pf.skipped_units,
            pf.total_skipped_bytes(),
            pf.candidate_hits,
            pf.always_on_rules
        );
    }
    svc.shutdown();
}
