//! Protein motif search: PROSITE-style patterns (the Protomata workload)
//! over a synthetic protein sequence. Motif gaps `x(m,n)` become
//! counter-ambiguous counting — the paper's bit-vector case — and because
//! bounds are small, several motifs share one physical 2000-bit module.
//!
//! ```sh
//! cargo run --release --example protein_motifs
//! ```

use recama::compiler::{compile_ruleset, CompileOptions};
use recama::hw::{place, run, AreaGranularity};
use recama::workloads::{generate, traffic, BenchmarkId};

fn main() {
    let ruleset = generate(BenchmarkId::Protomata, 0.01, 1309);
    let patterns = ruleset.pattern_strings();
    // A synthetic "proteome": 8 KiB of residues with planted motif hits.
    let sequence = traffic(&ruleset, 8 * 1024, 0.001, 42);

    let out = compile_ruleset(&patterns, &CompileOptions::default());
    let placement = place(&out.network);
    println!("motifs compiled:       {}", out.rules.len());
    let (stes, counters, bitvectors) = out.network.counts_by_type();
    println!(
        "network:               {stes} STEs, {counters} counters, {bitvectors} bit-vector segments"
    );
    println!(
        "bit-vector sharing:    {} segments ({} bits) in {} physical modules ({} bits wasted)",
        placement.bitvector_segments,
        placement.bitvector_bits_used,
        placement.bitvector_modules,
        placement.bitvector_bits_wasted()
    );

    let report = run(&out.network, &sequence, AreaGranularity::WholeModule);
    println!(
        "scan of {} residues:  {} motif hits, {:.4} nJ/byte, {:.5} mm²",
        sequence.len(),
        report.match_ends.len(),
        report.energy.nj_per_byte(),
        report.area.total_mm2()
    );

    // Motif *extents* through the facade: the engine locates full
    // `[start, end)` spans (automata report only ends; the reversed-NCA
    // pass recovers starts), which is what an annotation pipeline wants.
    let engine = recama::Engine::builder()
        .patterns(&patterns)
        .lossy(true)
        .build()
        .expect("lossy builds are infallible");
    let spans = engine.scan_spans(&sequence);
    println!("located motif spans:   {}", spans.len());
    for s in spans.iter().take(3) {
        println!(
            "  motif #{} ({}) spans residues {}..{}",
            s.pattern,
            engine.pattern(s.pattern),
            s.start,
            s.end
        );
    }

    // Spot-check one hit against the software reference engine.
    if let Some(rule) = out.rules.first() {
        let mut sw = recama::nca::CompiledEngine::conservative(&rule.nca);
        use recama::nca::Engine;
        let sw_ends: Vec<usize> = sw
            .match_ends(&sequence)
            .into_iter()
            .filter(|&e| e > 0)
            .collect();
        let mut hw = recama::hw::HwSimulator::new(&rule.network);
        assert_eq!(hw.match_ends(&sequence), sw_ends);
        println!(
            "cross-check:           rule 0 hardware == software ({} hits)",
            sw_ends.len()
        );
    }
}
