//! Quickstart: the whole pipeline on one pattern.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use recama::analysis::{check, CheckConfig, Method};
use recama::hw::{run, AreaGranularity};
use recama::Pattern;

fn main() {
    // A Snort-style payload rule: a keyword, then 10–40 arbitrary bytes,
    // then a delimiter.
    let source = r"User-Agent:[^\n]{10,40}\n";

    // 1. Parse + static analysis: is the counting counter-ambiguous?
    let parsed = recama::syntax::parse(source).expect("pattern parses");
    let verdict = check(
        &parsed.for_stream(),
        Method::Hybrid,
        &CheckConfig::default(),
    );
    println!("pattern:          {source}");
    println!(
        "counter-ambiguous: {:?} ({} token pairs explored in {:?})",
        verdict.ambiguous, verdict.stats.pairs_created, verdict.stats.duration
    );

    // 2. Compile to the extended MNRL network.
    let pattern = Pattern::compile(source).expect("compiles");
    let (stes, counters, bitvectors) = pattern.network().counts_by_type();
    println!("network:          {stes} STEs + {counters} counters + {bitvectors} bit vectors");
    println!(
        "vs unfolding:     {} STEs would be needed without modules",
        recama::nca::unfolded_leaves(&parsed.for_stream())
    );

    // 3. Match in software (the counter/bit-vector engine of §3.2.1).
    let haystack: &[u8] = b"GET / HTTP/1.1\nUser-Agent: recama-quickstart/1.0\nHost: x\n";
    println!("match ends:       {:?}", pattern.find_ends(haystack));

    // 4. Simulate on the augmented CAMA hardware model and price the run.
    let report = run(pattern.network(), haystack, AreaGranularity::WholeModule);
    assert_eq!(report.match_ends, pattern.find_ends(haystack), "hw == sw");
    println!(
        "hardware:         {} PEs, {:.4} nJ/byte, {:.6} mm²",
        report.placement.pe_count,
        report.energy.nj_per_byte(),
        report.area.total_mm2()
    );
    println!("hardware reports: {:?}", report.match_ends);

    // 5. Rulesets scale through the same facade: `Engine::builder()` is
    //    the one entry point for whole-set scanning, spans, streams, and
    //    flow serving (see the ruleset_stream / network_ids examples).
    let engine = recama::Engine::builder()
        .rule(1, source)
        .rule(2, r"Host: [a-z.]{1,40}\n")
        .build()
        .expect("ruleset compiles");
    for m in engine.scan(haystack) {
        println!(
            "engine:           rule id {} matched ending at {}",
            engine.rule_id(m.pattern),
            m.end
        );
    }
}
