//! Whole-ruleset streaming: compile a Snort-like ruleset into ONE shared
//! machine image with `Engine::builder()` (single-shard policy), stream
//! traffic through it in MTU-sized chunks, and compare against the
//! loop-over-`Pattern` baseline.
//!
//! ```sh
//! cargo run --release --example ruleset_stream
//! ```

use recama::hw::ShardPolicy;
use recama::workloads::{generate, traffic, BenchmarkId, PatternClass};
use recama::{Engine, Pattern};
use std::time::Instant;

fn main() {
    // A 1%-scale Snort-like ruleset and 64 KiB of traffic with planted
    // matches.
    let ruleset = generate(BenchmarkId::Snort, 0.01, 2022);
    let patterns: Vec<String> = ruleset
        .patterns
        .iter()
        .filter(|(_, c)| *c != PatternClass::Unsupported)
        .map(|(p, _)| p.clone())
        .collect();
    let input = traffic(&ruleset, 64 * 1024, 0.0005, 7);

    let start = Instant::now();
    let engine = Engine::builder()
        .patterns(&patterns)
        .shard_policy(ShardPolicy::Single) // ONE merged machine image
        .lossy(true) // skip out-of-fragment rules, queryably
        .build()
        .expect("lossy builds are infallible");
    println!(
        "compiled {} patterns into one image in {:?} ({} rejected)",
        engine.len(),
        start.elapsed(),
        engine.skipped().len()
    );
    let (stes, counters, bitvectors) = engine.network(0).counts_by_type();
    println!("merged network: {stes} STEs + {counters} counters + {bitvectors} bit vectors");
    println!(
        "shared alphabet: {} byte classes instead of 256",
        engine.set().multi().alphabet().len()
    );

    // Stream the traffic in MTU-sized chunks, as an IDS tap would.
    let start = Instant::now();
    let mut stream = engine.stream();
    let mut hits = 0usize;
    let mut first: Option<(usize, usize)> = None;
    for chunk in input.chunks(1500) {
        for m in stream.feed(chunk) {
            if first.is_none() {
                first = Some((m.pattern, m.end));
            }
            hits += 1;
        }
    }
    let shared_time = start.elapsed();
    println!(
        "\nshared engine: {hits} reports over {} KiB in {shared_time:?}",
        input.len() / 1024
    );
    if let Some((p, end)) = first {
        println!(
            "first hit: pattern #{p} ({:?}) ending at byte {end}",
            engine.pattern(p)
        );
    }

    // The loop-over-patterns baseline scans the input once per rule.
    let baseline: Vec<Pattern> = patterns
        .iter()
        .filter_map(|p| Pattern::compile(p).ok())
        .collect();
    let start = Instant::now();
    let loop_hits: usize = baseline.iter().map(|p| p.find_ends(&input).len()).sum();
    let loop_time = start.elapsed();
    println!("pattern loop:  {loop_hits} reports in {loop_time:?}");
    println!(
        "speedup: {:.1}x",
        loop_time.as_secs_f64() / shared_time.as_secs_f64().max(1e-9)
    );
    assert_eq!(hits, loop_hits, "engines must agree");

    // The same image runs on the simulated accelerator, with reports
    // attributed to rules through the stamped report ids.
    let mut hw = engine.hardware(0);
    let sample = &input[..4096];
    let by_rule = hw.match_ends_by_rule(sample);
    println!(
        "\nhardware sim on the first 4 KiB: {} attributed reports",
        by_rule.len()
    );
    for (rule, end) in by_rule.iter().take(3) {
        println!(
            "  rule #{rule} ({:?}) at byte {end}",
            engine.pattern(*rule as usize)
        );
    }
}
