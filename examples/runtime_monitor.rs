//! Runtime verification: bounded-response monitoring with counting regexes.
//!
//! §3.2.1 of the paper notes that its bit-vector operations (set-first,
//! shift, disjunction of high-order bits) are exactly the sliding-window
//! machinery of metric temporal logic (MTL) monitors: the MTL interval
//! `[m,n]` is the bounded repetition `{m,n}`. This example monitors a
//! bounded-response property over an event trace:
//!
//! > "every `R` (request) is followed by a `G` (grant) within 3 to 8
//! > ticks"
//!
//! by matching the *violation* pattern — a request followed by 8 non-grant
//! ticks — and a *satisfaction* pattern that reports grants landing inside
//! the window.
//!
//! ```sh
//! cargo run --example runtime_monitor
//! ```

use recama::Pattern;

fn main() {
    // Alphabet: R = request, G = grant, '.' = idle tick.
    // Violation: an R with no G in the next 8 ticks.
    let violation = Pattern::compile(r"R[^G]{8}").expect("compiles");
    // In-window grant: an R, 3–8 non-grant ticks, then a G (response
    // arrived within the deadline but not too early).
    let granted = Pattern::compile(r"R[^G]{3,8}G").expect("compiles");

    let trace = b"...R....G.....R.........G...R..G......R....G";
    //               ^req  ^grant    ^req (late!)   ^too early  ^ok

    println!("trace:   {}", String::from_utf8_lossy(trace));
    let violations = violation.find_ends(trace);
    let grants = granted.find_ends(trace);
    println!("violations detected at offsets: {violations:?}");
    println!("in-window grants at offsets:    {grants:?}");

    // The monitor hardware: one STE + one module per property, no
    // unfolding of the window.
    for (name, p) in [("violation", &violation), ("granted", &granted)] {
        let (stes, counters, bitvectors) = p.network().counts_by_type();
        let modules = p.compiled().modules.clone();
        println!(
            "{name:10} -> {stes} STEs, {counters} counters, {bitvectors} bit vectors ({modules:?})"
        );
        // Cross-check software and hardware streams.
        let mut hw = p.hardware();
        assert_eq!(hw.match_ends(trace), p.find_ends(trace));
    }

    // Sanity: the second request (offset 14) is violated — 9+ idle ticks
    // before its grant.
    assert!(!violations.is_empty(), "the late grant must be flagged");
    assert!(!grants.is_empty(), "the compliant grants must be seen");
    println!("\nhardware and software monitors agree on both properties");
}
